"""Trace recording: capture an execution's op schedule as it happens.

A :class:`TraceRecorder` is installed as ``cluster.recorder`` for the
duration of one driven execution.  The hook points are chosen so the
trace is *complete by construction*:

* every ledger mutation funnels through
  :meth:`~repro.mpc.cluster.Cluster.tally_members` (exchanges, gathers,
  broadcasts, and the substrate's sorted-run ledger replays alike), which
  records one :class:`~repro.plan.ir.Charge`;
* every backend compute dispatch funnels through
  :meth:`~repro.mpc.group.Group.map_parts`, which records one
  :class:`~repro.plan.ir.MapParts`;
* the Section-2 primitives and :func:`~repro.mpc.substrate.sorted_run`
  wrap their bodies in :func:`prim_span`, scoping the low-level steps
  for per-op attribution.

Recording is pure observation — it never changes what executes, what is
charged, or in which order (the hooks append to a list and return).
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from typing import Any, Iterator, Sequence

from repro.plan.ir import (
    AttachDegrees,
    Broadcast,
    Exchange,
    FoldByKey,
    GridLines,
    MapParts,
    NumberRows,
    Op,
    PhysicalPlan,
    PrimSpan,
    SampleSort,
    SearchRows,
    SemiJoin,
    Subgroup,
)

__all__ = ["TraceRecorder", "prim_span"]

_SPAN_CLASSES: dict[str, type[PrimSpan]] = {
    "SampleSort": SampleSort,
    "FoldByKey": FoldByKey,
    "SearchRows": SearchRows,
    "NumberRows": NumberRows,
    "SemiJoin": SemiJoin,
    "AttachDegrees": AttachDegrees,
}

_NULL = nullcontext()


def prim_span(cluster: Any, kind: str, detail: str = ""):
    """Span context for a primitive body; a no-op when nothing records.

    ``cluster`` is duck-typed (anything with a ``recorder`` attribute);
    the common case — no recorder installed — costs one attribute load.
    """
    rec = getattr(cluster, "recorder", None)
    if rec is None:
        return _NULL
    return rec.span(kind, detail)


class TraceRecorder:
    """Accumulates ops during one execution; ``finish()`` seals the plan."""

    def __init__(self) -> None:
        self.ops: list[Op] = []
        self._stack: list[PrimSpan] = []
        self._broadcast_pending = False

    # ------------------------------------------------------------------
    def _path(self) -> tuple[str, ...]:
        return tuple(s.kind for s in self._stack)

    def mark_broadcast(self) -> None:
        """Tag the next recorded charge as a one-to-all replication."""
        self._broadcast_pending = True

    def record_charge(
        self,
        members: Sequence[Sequence[int]],
        counts: Sequence[int],
        label: str,
    ) -> None:
        cls = Broadcast if self._broadcast_pending else Exchange
        self._broadcast_pending = False
        self.ops.append(
            cls(
                label=label,
                path=self._path(),
                members=tuple(tuple(m) for m in members),
                counts=tuple(counts),
            )
        )

    def record_map_parts(
        self, fn: Any, parts: Any, common: Any, owner: Any
    ) -> None:
        self.ops.append(
            MapParts(
                label="map_parts",
                path=self._path(),
                fn_ref=f"{fn.__module__}:{fn.__qualname__}",
                fn=fn,
                parts=parts,
                common=common,
                owner=owner,
            )
        )

    def record_structural(self, kind: str, detail: str) -> None:
        cls = Subgroup if kind == "Subgroup" else GridLines
        self.ops.append(cls(path=self._path(), detail=detail))

    @contextmanager
    def span(self, kind: str, detail: str = "") -> Iterator[PrimSpan]:
        op = _SPAN_CLASSES[kind](path=self._path(), detail=detail)
        self.ops.append(op)
        op.start = len(self.ops)
        self._stack.append(op)
        try:
            yield op
        finally:
            self._stack.pop()
            op.end = len(self.ops)

    # ------------------------------------------------------------------
    def finish(
        self,
        query: str,
        kind: str,
        algorithm: str,
        p: int,
        backend: str,
        relation_versions: dict[str, int],
    ) -> PhysicalPlan:
        return PhysicalPlan(
            query=query,
            kind=kind,
            algorithm=algorithm,
            p=p,
            backend=backend,
            relation_versions=dict(relation_versions),
            ops=self.ops,
        )
