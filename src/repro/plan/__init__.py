"""The physical plan layer: trace, fuse, and replay op schedules.

The paper's algorithms (Theorems 3/7/9, Section 4.2) are compositions of
a small vocabulary of O(1)-round linear-load primitives.  The drivers in
:mod:`repro.core` string those primitives together with Python control
flow — classification, heavy/light decisions, recursion over join
forests.  This package makes the *result* of that control flow a
first-class object:

* :mod:`repro.plan.ir` — dataclass ops mirroring the primitive
  vocabulary (`Exchange`, `MapParts`, `SampleSort`, `FoldByKey`,
  `SearchRows`, `NumberRows`, `SemiJoin`, `AttachDegrees`, `Broadcast`,
  plus structural `Subgroup`/`GridLines`) and the `PhysicalPlan` that
  sequences them.
* :mod:`repro.plan.trace` — a `TraceRecorder` that captures the op
  sequence as a driver executes (installed as ``Cluster.recorder``).
* :mod:`repro.plan.fuse` — the fusion pass grouping adjacent
  worker-local ops into batched backend requests.
* :mod:`repro.plan.executor` — the `Executor` replaying a recorded plan
  against a cluster/backend with a bit-identical ledger.
* :mod:`repro.plan.ship` — the versioned wire format that turns a traced
  plan into portable bytes one engine can export and another install
  (the serving tier's plan-shipping substrate, DESIGN.md section 11).

See DESIGN.md section 7 for the trace/replay contract.
"""

from repro.plan.executor import Executor
from repro.plan.fuse import fusion_groups
from repro.plan.ship import (
    SHIP_VERSION,
    decode_plan,
    encode_plan,
    plan_digest,
    register_shippable,
    relation_digest,
    resolve_fn,
)
from repro.plan.ir import (
    AttachDegrees,
    Broadcast,
    Charge,
    Exchange,
    FoldByKey,
    GridLines,
    MapParts,
    NumberRows,
    Op,
    PhysicalPlan,
    PrimSpan,
    SampleSort,
    SearchRows,
    SemiJoin,
    Subgroup,
)
from repro.plan.trace import TraceRecorder, prim_span

__all__ = [
    "AttachDegrees",
    "Broadcast",
    "Charge",
    "Exchange",
    "Executor",
    "FoldByKey",
    "GridLines",
    "MapParts",
    "NumberRows",
    "Op",
    "PhysicalPlan",
    "PrimSpan",
    "SHIP_VERSION",
    "SampleSort",
    "SearchRows",
    "SemiJoin",
    "Subgroup",
    "TraceRecorder",
    "decode_plan",
    "encode_plan",
    "fusion_groups",
    "plan_digest",
    "prim_span",
    "register_shippable",
    "relation_digest",
    "resolve_fn",
]
