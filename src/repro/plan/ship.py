"""Plan shipping: a versioned wire format for traced physical plans.

A traced :class:`~repro.plan.ir.PhysicalPlan` holds live references —
function objects, distributed-relation parts, recorded outputs — that
only mean something inside the engine that traced it.  This module turns
one engine's warm state for a query into *portable data* another engine
can install, so one cold trace primes a whole replica tier
(:mod:`repro.serve`).

Wire envelope::

    b"RPLN" | version (1 byte) | sha256(body)[:20] | pickled body

:func:`plan_digest` reads the 20-byte digest back as hex — the identity
a front door dedups shipments on — and :func:`decode_plan` recomputes it
over the body, so truncation or bit-rot is rejected before anything is
interpreted.  The body is a plain dict (see ``Engine.export_plan`` for
the producer): plan metadata, the op schedule with live references
replaced by *descriptors*, the recorded outputs in packed columnar form,
the traced :class:`~repro.mpc.cluster.LoadReport` fields, and two layers
of fingerprints — the planning-statistics fingerprint
(:func:`~repro.data.stats.stats_fingerprint`, which gates whether the
*plan* is still optimal) and per-relation content digests
(:func:`relation_digest`, which gate whether the recorded *outputs* are
still the truth).  Install rejects on either mismatch and the receiver
falls back to a cold trace.

Code references never travel as code.  A ``MapParts`` op ships its
``module:qualname`` string and the receiver resolves it through
:func:`resolve_fn` — module must sit under an allowlisted prefix (or be
explicitly registered via :func:`register_shippable`), the qualname must
be importable module-level (no ``<locals>``), and the resolved object
must round-trip to the same reference.  Data values (rows, annotations,
op descriptors) do travel via pickle, so the transport is trusted for
*data* the same way the result cache is; arbitrary code execution is
what the fn registry confines.

Validate the round trip on the example workload with::

    PYTHONPATH=src python -m repro.plan.ship --check
"""

from __future__ import annotations

import hashlib
import importlib
import pickle
from typing import Any, Callable, Sequence

from repro.errors import PlanShipError
from repro.plan.ir import (
    Broadcast,
    Charge,
    Exchange,
    GridLines,
    MapParts,
    Op,
    PhysicalPlan,
    PrimSpan,
    SampleSort,
    FoldByKey,
    SearchRows,
    NumberRows,
    SemiJoin,
    AttachDegrees,
    Subgroup,
)

__all__ = [
    "SHIP_VERSION",
    "encode_plan",
    "decode_plan",
    "plan_digest",
    "encode_ops",
    "decode_ops",
    "relation_digest",
    "resolve_fn",
    "register_shippable",
]

#: Wire-format version; bump on any body-schema change.  A receiver only
#: accepts its own version — plans are cheap to re-trace, so there is no
#: cross-version compatibility shim.
SHIP_VERSION = 1

_MAGIC = b"RPLN"
_DIGEST_LEN = 20
_PROTO = pickle.HIGHEST_PROTOCOL

#: Module prefixes fn references may resolve under.  The repo's own
#: drivers and primitives all live here; anything else must be
#: registered explicitly.
_ALLOWED_PREFIXES: tuple[str, ...] = ("repro.",)

#: Explicitly registered shippable functions (tests, extensions).
_REGISTERED: dict[str, Callable] = {}


def register_shippable(fn: Callable) -> Callable:
    """Allowlist one module-level callable for plan shipping (decorator).

    The escape hatch for functions outside the ``repro.`` namespace;
    resolution still verifies the reference round-trips.
    """
    _REGISTERED[f"{fn.__module__}:{fn.__qualname__}"] = fn
    return fn


def resolve_fn(ref: str) -> Callable:
    """Resolve a ``module:qualname`` reference through the allowlist.

    Raises:
        PlanShipError: Malformed reference, module outside the allowlist,
            non-importable target, or a resolved object whose own
            reference does not round-trip to ``ref``.
    """
    fn = _REGISTERED.get(ref)
    if fn is not None:
        return fn
    module_name, sep, qualname = ref.partition(":")
    if not sep or not module_name or not qualname:
        raise PlanShipError(f"malformed fn reference {ref!r}")
    if "<locals>" in qualname:
        raise PlanShipError(
            f"fn reference {ref!r} points at a closure; only module-level "
            f"functions are shippable"
        )
    if not any(module_name.startswith(p) for p in _ALLOWED_PREFIXES):
        raise PlanShipError(
            f"fn reference {ref!r} is outside the allowlisted module "
            f"prefixes {_ALLOWED_PREFIXES} and was not registered"
        )
    try:
        obj: Any = importlib.import_module(module_name)
    except ImportError as exc:
        raise PlanShipError(f"cannot import module of fn {ref!r}: {exc}") from exc
    for part in qualname.split("."):
        try:
            obj = getattr(obj, part)
        except AttributeError as exc:
            raise PlanShipError(f"cannot resolve fn {ref!r}: {exc}") from exc
    if not callable(obj) or (
        f"{getattr(obj, '__module__', '?')}:{getattr(obj, '__qualname__', '?')}"
        != ref
    ):
        raise PlanShipError(
            f"resolved object for {ref!r} does not round-trip to the same "
            f"reference"
        )
    return obj


def relation_digest(rel: Any) -> str:
    """Content digest of a registered relation (rows + annotations).

    The planning fingerprint (:func:`~repro.data.stats.stats_fingerprint`)
    deliberately summarizes only sizes and degree profiles — two
    different instances can share it, and the *plan* would still be
    optimal.  Shipped *outputs* need more: they are only the truth when
    the receiver's relation content is byte-for-byte the sender's, which
    is what this digest pins down.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(
        pickle.dumps(
            (
                tuple(rel.attrs),
                tuple(rel.rows),
                tuple(rel.annotations) if rel.annotations is not None else None,
                getattr(rel.semiring, "name", None),
            ),
            _PROTO,
        )
    )
    return h.hexdigest()


# ----------------------------------------------------------------------
# Op schedule <-> descriptor records
# ----------------------------------------------------------------------

_SPAN_KINDS: dict[str, type[PrimSpan]] = {
    "SampleSort": SampleSort,
    "FoldByKey": FoldByKey,
    "SearchRows": SearchRows,
    "NumberRows": NumberRows,
    "SemiJoin": SemiJoin,
    "AttachDegrees": AttachDegrees,
}
_CHARGE_KINDS: dict[str, type[Charge]] = {
    "Exchange": Exchange,
    "Broadcast": Broadcast,
}
_MARKER_KINDS: dict[str, type[Op]] = {
    "Subgroup": Subgroup,
    "GridLines": GridLines,
}


def encode_ops(
    ops: Sequence[Op],
    source_of: Callable[[MapParts], "tuple | None"],
) -> list[tuple]:
    """Op schedule to plain records; live refs become descriptors.

    ``source_of`` maps a :class:`MapParts` op to a rebinding descriptor
    (the exporting engine answers from its distributed-relation cache)
    or ``None`` for mid-execution intermediates, which ship *unbound*:
    the receiver's executor skips them — MapParts ops charge nothing and
    serve nothing (outputs come from the recording), so skipping changes
    worker memo warmth only, never the ledger or the results.
    """
    records: list[tuple] = []
    for op in ops:
        if isinstance(op, Charge):
            records.append(
                (op.kind, op.label, op.path, op.members, op.counts)
            )
        elif isinstance(op, MapParts):
            source = source_of(op)
            # An unbound op is skipped at replay, so its common payload
            # would be dead weight on the wire (and possibly unpicklable
            # — it never had to cross a process boundary on the serial
            # backend); ship it only when the op will actually run.
            records.append(
                ("MapParts", op.label, op.path, op.fn_ref,
                 op.common if source is not None else None, source)
            )
        elif isinstance(op, PrimSpan):
            records.append(
                (op.kind, op.label, op.path, op.detail, op.start, op.end)
            )
        else:
            records.append(
                (op.kind, op.label, op.path, getattr(op, "detail", ""))
            )
    return records


def decode_ops(
    records: Sequence[tuple],
    bind: Callable[[str, tuple], "tuple[Any, Any, Any] | None"],
) -> list[Op]:
    """Descriptor records back to an op schedule.

    ``bind(fn_ref, source)`` maps a MapParts op to ``(fn, parts, owner)``
    on the receiving engine, or ``None`` when the op must stay unbound
    (``fn=None`` — the executor skips it).  Unknown record kinds raise:
    a schedule that cannot be fully interpreted must not half-install.
    """
    ops: list[Op] = []
    for rec in records:
        kind = rec[0]
        if kind in _CHARGE_KINDS:
            _, label, path, members, counts = rec
            ops.append(
                _CHARGE_KINDS[kind](
                    label=label, path=tuple(path),
                    members=tuple(tuple(m) for m in members),
                    counts=tuple(counts),
                )
            )
        elif kind == "MapParts":
            _, label, path, fn_ref, common, source = rec
            bound = bind(fn_ref, source) if source is not None else None
            fn, parts, owner = bound if bound is not None else (None, None, None)
            ops.append(
                MapParts(
                    label=label, path=tuple(path), fn_ref=fn_ref,
                    fn=fn, parts=parts, common=common, owner=owner,
                )
            )
        elif kind in _SPAN_KINDS:
            _, label, path, detail, start, end = rec
            ops.append(
                _SPAN_KINDS[kind](
                    label=label, path=tuple(path), detail=detail,
                    start=start, end=end,
                )
            )
        elif kind in _MARKER_KINDS:
            _, label, path, detail = rec
            ops.append(
                _MARKER_KINDS[kind](label=label, path=tuple(path), detail=detail)
            )
        else:
            raise PlanShipError(f"unknown op record kind {kind!r}")
    return ops


# ----------------------------------------------------------------------
# Envelope
# ----------------------------------------------------------------------

def encode_plan(payload: dict) -> bytes:
    """Seal a plan payload dict into the versioned wire envelope."""
    try:
        body = pickle.dumps(payload, _PROTO)
    except Exception as exc:  # noqa: BLE001 - unpicklable payload values
        raise PlanShipError(f"plan payload is not serializable: {exc}") from exc
    digest = hashlib.sha256(body).digest()[:_DIGEST_LEN]
    return _MAGIC + bytes((SHIP_VERSION,)) + digest + body


def plan_digest(blob: bytes) -> str:
    """The envelope's content digest as hex (shipping-dedup identity)."""
    _check_header(blob)
    return blob[len(_MAGIC) + 1 : len(_MAGIC) + 1 + _DIGEST_LEN].hex()


def _check_header(blob: bytes) -> None:
    if len(blob) < len(_MAGIC) + 1 + _DIGEST_LEN:
        raise PlanShipError(f"plan blob truncated ({len(blob)} bytes)")
    if blob[: len(_MAGIC)] != _MAGIC:
        raise PlanShipError("plan blob has a bad magic prefix")
    version = blob[len(_MAGIC)]
    if version != SHIP_VERSION:
        raise PlanShipError(
            f"plan wire version {version} != supported {SHIP_VERSION}"
        )


def decode_plan(blob: bytes) -> dict:
    """Open the envelope: verify magic, version, and digest; return the body.

    Raises:
        PlanShipError: Truncated/corrupted blob, version mismatch, or a
            body that does not decode to a dict.
    """
    _check_header(blob)
    start = len(_MAGIC) + 1
    digest = blob[start : start + _DIGEST_LEN]
    body = blob[start + _DIGEST_LEN :]
    if hashlib.sha256(body).digest()[:_DIGEST_LEN] != digest:
        raise PlanShipError("plan blob digest mismatch (corrupted in transit)")
    try:
        payload = pickle.loads(body)
    except Exception as exc:  # noqa: BLE001 - any unpickling failure
        raise PlanShipError(f"plan body does not decode: {exc}") from exc
    if not isinstance(payload, dict):
        raise PlanShipError(
            f"plan body is {type(payload).__name__}, expected dict"
        )
    return payload


def describe(blob: bytes) -> str:
    """One human-readable line about an encoded plan (CLI/debug helper)."""
    payload = decode_plan(blob)
    n_map = sum(1 for r in payload["ops"] if r[0] == "MapParts")
    bound = sum(
        1 for r in payload["ops"] if r[0] == "MapParts" and r[5] is not None
    )
    return (
        f"plan {plan_digest(blob)[:12]} query={payload['query']!r} "
        f"kind={payload['kind']} algorithm={payload['algorithm']} "
        f"p={payload['p']} ops={len(payload['ops'])} "
        f"map={n_map} (bound {bound}) bytes={len(blob)}"
    )


# ----------------------------------------------------------------------
# Round-trip validator (CI: `python -m repro.plan.ship --check`)
# ----------------------------------------------------------------------

def _run_check(data_dir: str, queries_path: str, p: int) -> int:
    """Ship every example query engine-to-engine and verify parity.

    For each query: execute cold on a sender engine, export, round-trip
    the envelope, install into a fresh receiver over the same CSVs, and
    require the receiver's *first* execution to be a warm plan replay
    (zero re-traces) with outputs and ledger bit-identical to the
    sender's.  A corrupted blob must also be rejected up front.
    """
    from pathlib import Path

    from repro.engine import Engine
    from repro.io import read_relation_csv

    relations = [
        read_relation_csv(path)
        for path in sorted(Path(data_dir).glob("*.csv"))
    ]
    if not relations:
        print(f"no CSV relations under {data_dir}")
        return 1
    with open(queries_path) as fh:
        workload = [
            line.strip() for line in fh
            if line.strip() and not line.lstrip().startswith("#")
        ]

    def fresh_engine() -> Engine:
        # result_cache off so the receiver's first execution exercises
        # the shipped *plan replay* path, not a recording serve.
        engine = Engine(p=p, backend="serial", result_cache=False)
        for rel in relations:
            engine.register(rel)
        return engine

    sender = fresh_engine()
    failures = 0
    for text in workload:
        cold = sender.execute(text)
        blob = sender.export_plan(text)
        if decode_plan(blob) != decode_plan(bytes(blob)):
            print(f"FAIL {text!r}: decode is not deterministic")
            failures += 1
            continue
        corrupted = blob[:-1] + bytes((blob[-1] ^ 0xFF,))
        try:
            decode_plan(corrupted)
        except PlanShipError:
            pass
        else:
            print(f"FAIL {text!r}: corrupted blob was accepted")
            failures += 1
            continue
        receiver = fresh_engine()
        receiver.install_plan(blob)
        warm = receiver.execute(text)
        ok = (
            warm.metrics.plan_replayed
            and warm.report.as_dict() == cold.report.as_dict()
            and warm.scalar == cold.scalar
            and warm.rows() == cold.rows()
        )
        if not ok:
            print(f"FAIL {text!r}: shipped replay diverged from cold run")
            failures += 1
            continue
        print(f"ok   {describe(blob)}")
    if failures:
        print(f"{failures}/{len(workload)} queries FAILED the ship round-trip")
        return 1
    print(f"all {len(workload)} queries ship, install, and replay bit-identically")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.plan.ship",
        description="Round-trip validator for the plan-shipping wire format",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="ship every workload query engine-to-engine and verify parity",
    )
    parser.add_argument(
        "--data-dir", default="examples/serve_workload",
        help="directory of <relation>.csv files",
    )
    parser.add_argument(
        "--queries", default=None,
        help="file with one query per line (default: <data-dir>/queries.txt)",
    )
    parser.add_argument("-p", "--servers", type=int, default=8)
    args = parser.parse_args(argv)
    if not args.check:
        parser.print_help()
        return 2
    queries = args.queries or f"{args.data_dir}/queries.txt"
    return _run_check(args.data_dir, queries, args.servers)


if __name__ == "__main__":  # pragma: no cover - CLI entry
    import sys

    sys.exit(main())
