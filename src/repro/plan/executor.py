"""The plan executor: replay a recorded op schedule against a cluster.

Replay walks the plan's ops in order:

* a :class:`~repro.plan.ir.Charge` re-posts its recorded member/count
  vectors through :meth:`Cluster.tally_members` — the *same* entry point
  the traced execution used — so the replayed
  :class:`~repro.mpc.cluster.LoadReport` matches the traced one bit for
  bit (load, step max, step count, totals, by-label);
* :class:`~repro.plan.ir.MapParts` runs are dispatched through
  :meth:`Backend.run_ops` in the groups the fusion pass computed, with
  ``collect=False`` — the results are already pinned by the recording,
  so the backend only has to guarantee the worker-side effects (memo
  population) and may skip shipping result payloads back;
* structural ops are no-ops.

The replay contract (what a replay may and may not change) is stated in
DESIGN.md section 7; its validity condition — unchanged registered
relation versions — is enforced by the caller (the engine), exactly like
the result-cache rule of DESIGN.md 5.
"""

from __future__ import annotations

from typing import Any

from repro.plan.fuse import fusion_groups
from repro.plan.ir import Charge, MapParts, PhysicalPlan

__all__ = ["Executor"]


class Executor:
    """Replays :class:`PhysicalPlan` objects against one cluster.

    Args:
        cluster: The (already reset, recorder-free) cluster to charge.
        fusion: Batch worker-local runs into single ``run_ops`` requests;
            when False, each worker-local op is its own request (the
            unfused baseline the benchmarks gate against).
    """

    def __init__(self, cluster: Any, fusion: bool = True) -> None:
        self.cluster = cluster
        self.fusion = fusion

    def replay(self, plan: PhysicalPlan) -> dict[str, int]:
        """Execute the plan; returns replay stats for the caller's metrics.

        The caller snapshots the cluster afterwards; the snapshot equals
        the traced execution's report exactly.
        """
        cluster = self.cluster
        backend = cluster.backend
        tally = cluster.tally_members
        requests_before = backend.requests
        groups = fusion_groups(plan.ops, fuse=self.fusion)
        flush_after = {group[-1]: group for group in groups}
        ops = plan.ops
        n_map = 0
        for i, op in enumerate(ops):
            if isinstance(op, Charge):
                tally(op.members, op.counts, op.label)
            elif isinstance(op, MapParts):
                n_map += 1
            group = flush_after.get(i)
            if group is not None:
                backend.run_ops(
                    [
                        (ops[j].fn, ops[j].parts, ops[j].common, ops[j].owner)
                        for j in group
                    ],
                    collect=False,
                )
                # Charge ops check the deadline inside tally_members; this
                # covers replays whose remaining ops are all backend rounds,
                # so a deadline cancels between rounds either way.
                cluster.check_deadline()
        return {
            "ops": len(ops),
            "map_ops": n_map,
            "groups": len(groups),
            "backend_requests": backend.requests - requests_before,
        }
