"""The plan executor: replay a recorded op schedule against a cluster.

Replay walks the plan's ops in order:

* a :class:`~repro.plan.ir.Charge` re-posts its recorded member/count
  vectors through :meth:`Cluster.tally_members` — the *same* entry point
  the traced execution used — so the replayed
  :class:`~repro.mpc.cluster.LoadReport` matches the traced one bit for
  bit (load, step max, step count, totals, by-label);
* :class:`~repro.plan.ir.MapParts` runs are dispatched through
  :meth:`Backend.run_ops` in the groups the fusion pass computed, with
  ``collect=False`` — the results are already pinned by the recording,
  so the backend only has to guarantee the worker-side effects (memo
  population) and may skip shipping result payloads back;
* structural ops are no-ops.

With ``pipeline=True`` (the default) fused groups are dispatched
asynchronously through :meth:`Backend.submit_ops`: while a round is in
flight on the worker pool, the replay loop keeps walking the plan —
posting the next stretch of ledger charges and building the next group's
op batch — so coordinator-side bookkeeping overlaps backend I/O instead
of alternating with it.  This is safe precisely because of the replay
contract: with ``collect=False`` nothing downstream in the *plan* reads a
round's results, charges are replay-pure, and the backend executes
submitted batches in order, so the observable outcome (ledger, worker
memo state, outputs from the recording) is identical to the sequential
walk.  All in-flight rounds are drained before :meth:`Executor.replay`
returns — errors propagate, a deadline can still cancel between rounds,
and the caller's snapshot/metrics read a quiescent backend.

The replay contract (what a replay may and may not change) is stated in
DESIGN.md section 7; its validity condition — unchanged registered
relation versions — is enforced by the caller (the engine), exactly like
the result-cache rule of DESIGN.md 5.
"""

from __future__ import annotations

import time
from typing import Any

from repro.plan.fuse import fusion_groups
from repro.plan.ir import Charge, MapParts, PhysicalPlan

__all__ = ["Executor"]


class Executor:
    """Replays :class:`PhysicalPlan` objects against one cluster.

    Args:
        cluster: The (already reset, recorder-free) cluster to charge.
        fusion: Batch worker-local runs into single ``run_ops`` requests;
            when False, each worker-local op is its own request (the
            unfused baseline the benchmarks gate against).
        pipeline: Overlap charge posting with in-flight backend rounds
            via :meth:`Backend.submit_ops` (see module docstring).  When
            False, every round is dispatched and awaited synchronously —
            the PR-5 behaviour, kept as the benchmark baseline.
        meter: Optional :class:`~repro.obs.metrics.WireMeter` passed into
            every backend round, attributing this replay's shipped bytes
            to its query (pipelined rounds run on the backend's
            dispatcher thread, so attribution must travel with the batch,
            never via thread-local state).
        span: Optional :class:`~repro.obs.tracing.Span` the backend
            parents its ``backend.round`` spans under.  The span tree
            stays well-nested even pipelined, because the finally-drain
            below awaits every in-flight round before the caller can end
            this span.
    """

    def __init__(
        self, cluster: Any, fusion: bool = True, pipeline: bool = True,
        meter: Any = None, span: Any = None,
    ) -> None:
        self.cluster = cluster
        self.fusion = fusion
        self.pipeline = pipeline
        self.meter = meter
        self.span = span

    def replay(
        self, plan: PhysicalPlan, timed: bool = False
    ) -> dict[str, Any]:
        """Execute the plan; returns replay stats for the caller's metrics.

        The caller snapshots the cluster afterwards; the snapshot equals
        the traced execution's report exactly.

        With ``timed=True`` the fast path is abandoned for a measuring
        one (:meth:`_replay_timed`): every op runs as its own awaited
        round with per-op wall-clock and wire deltas collected into an
        ``op_timings`` entry of the stats — the engine of
        ``repro explain --timings``.
        """
        if timed:
            return self._replay_timed(plan)
        cluster = self.cluster
        backend = cluster.backend
        tally = cluster.tally_members
        requests_before = backend.requests
        groups = fusion_groups(plan.ops, fuse=self.fusion)
        flush_after = {group[-1]: group for group in groups}
        ops = plan.ops
        n_map = 0
        pending: list[Any] = []  # in-flight Futures, submission order
        try:
            for i, op in enumerate(ops):
                if isinstance(op, Charge):
                    tally(op.members, op.counts, op.label)
                elif isinstance(op, MapParts):
                    n_map += 1
                group = flush_after.get(i)
                if group is not None:
                    # Shipped plans may carry *unbound* worker-local ops
                    # (fn=None): mid-execution intermediates whose parts
                    # only existed in the tracing engine.  They charge
                    # nothing and serve nothing — outputs come from the
                    # recording — so skipping them costs worker memo
                    # warmth only, never ledger or output fidelity.
                    batch = [
                        (ops[j].fn, ops[j].parts, ops[j].common, ops[j].owner)
                        for j in group
                        if ops[j].fn is not None
                    ]
                    if not batch:
                        cluster.check_deadline()
                    elif self.pipeline:
                        pending.append(backend.submit_ops(
                            batch, collect=False,
                            meter=self.meter, span=self.span,
                        ))
                    else:
                        backend.run_ops(
                            batch, collect=False,
                            meter=self.meter, span=self.span,
                        )
                    # Charge ops check the deadline inside tally_members;
                    # this covers replays whose remaining ops are all
                    # backend rounds, so a deadline cancels between rounds
                    # either way.  (Pipelined, "between rounds" means
                    # between *submissions* — in-flight rounds are bounded
                    # by the backend's own round timeout.)
                    cluster.check_deadline()
        finally:
            # Drain every in-flight round before control returns: the
            # caller reads metrics and may mutate relations next, and a
            # backend fault must surface from *this* replay, not a later
            # one.  Even when the loop above raised, all submitted rounds
            # are awaited (their faults are suppressed in favour of the
            # original error).
            drain_error: BaseException | None = None
            for fut in pending:
                try:
                    fut.result()
                except BaseException as exc:  # noqa: BLE001 - first wins
                    if drain_error is None:
                        drain_error = exc
        if drain_error is not None:
            raise drain_error
        return {
            "ops": len(ops),
            "map_ops": n_map,
            "groups": len(groups),
            "backend_requests": backend.requests - requests_before,
        }

    def _replay_timed(self, plan: PhysicalPlan) -> dict[str, Any]:
        """Measuring replay: one awaited round per op, wall/wire per op.

        Deliberately unfused and unpipelined — fusing would smear several
        ops' time into one round, and pipelining would bill a round's
        in-flight time to whichever op happened to await it.  Runs with
        ``collect=True`` so the compute actually executes everywhere
        (serial's ``collect=False`` fast path skips execution entirely,
        which would time nothing) and warm worker memo hits still pay
        their real request/result-shipping cost.  Ledger charges replay
        identically to the fast path — charging is collect-independent —
        so a timed replay still satisfies the replay contract.

        Returns the usual stats plus ``op_timings``: ``{op_index:
        {"wall": seconds, "wire": bytes}}`` for every Charge and MapParts
        op (structural ops take no time and get no entry).
        """
        from repro.obs.metrics import WireMeter

        cluster = self.cluster
        backend = cluster.backend
        meter = self.meter if self.meter is not None else WireMeter()
        requests_before = backend.requests
        op_timings: dict[int, dict[str, float]] = {}
        n_map = 0
        for i, op in enumerate(plan.ops):
            if isinstance(op, Charge):
                t0 = time.perf_counter()
                cluster.tally_members(op.members, op.counts, op.label)
                op_timings[i] = {"wall": time.perf_counter() - t0, "wire": 0}
            elif isinstance(op, MapParts):
                n_map += 1
                if op.fn is None:  # unbound (shipped) op — nothing to run
                    continue
                wire_before = meter.bytes
                t0 = time.perf_counter()
                backend.run_ops(
                    [(op.fn, op.parts, op.common, op.owner)],
                    collect=True, meter=meter, span=self.span,
                )
                op_timings[i] = {
                    "wall": time.perf_counter() - t0,
                    "wire": meter.bytes - wire_before,
                }
                cluster.check_deadline()
        return {
            "ops": len(plan.ops),
            "map_ops": n_map,
            "groups": n_map,
            "backend_requests": backend.requests - requests_before,
            "op_timings": op_timings,
        }
