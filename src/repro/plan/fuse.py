"""The fusion pass: batch adjacent worker-local ops into one request.

At replay time every op in a :class:`~repro.plan.ir.PhysicalPlan` is one
of two things: a *pure ledger charge* (its payload movement was recorded
at trace time, so replaying it writes counts and moves no data) or a
*worker-local recomputation* (a :class:`~repro.plan.ir.MapParts` whose
inputs are recorded references and whose results feed worker-side caches
only — the query's outputs are served from the recording).  There are
therefore **no cross-op data dependencies left at replay**: the only
thing separating two worker-local steps is plan order, and a maximal run
of them can execute as one :meth:`~repro.mpc.backends.Backend.run_ops`
batch — one IPC round-trip on the multiprocess backend instead of one
per primitive step.

``exchange_barriers=True`` produces the conservative schedule a future
backend that executes exchanges *on* the workers would need (charge ops
then order worker state), at the cost of one request per primitive; the
default treats charges as transparent.
"""

from __future__ import annotations

from typing import Sequence

from repro.plan.ir import Charge, MapParts, Op

__all__ = ["fusion_groups"]


def fusion_groups(
    ops: Sequence[Op],
    fuse: bool = True,
    exchange_barriers: bool = False,
) -> list[list[int]]:
    """Indices of :class:`MapParts` ops, grouped into backend requests.

    Args:
        ops: The plan's op sequence.
        fuse: When False, every worker-local op is its own group (the
            unfused baseline: one backend request per primitive step).
        exchange_barriers: When True, a charge op closes the current
            group (see module docstring).

    Returns:
        Groups in plan order; each group is a list of op indices whose
        steps one ``run_ops`` call executes.
    """
    if not fuse:
        return [[i] for i, op in enumerate(ops) if isinstance(op, MapParts)]
    groups: list[list[int]] = []
    current: list[int] = []
    for i, op in enumerate(ops):
        if isinstance(op, MapParts):
            current.append(i)
        elif exchange_barriers and isinstance(op, Charge) and current:
            groups.append(current)
            current = []
    if current:
        groups.append(current)
    return groups
