"""The physical operator IR: what one query execution *did* to the cluster.

A :class:`PhysicalPlan` is a flat sequence of :class:`Op` records traced
from one execution of a core driver.  Three op families exist:

* **Charges** (:class:`Exchange`, :class:`Broadcast`) — one ledger write
  each: the member tuples and per-server received counts of one
  :meth:`~repro.mpc.cluster.Cluster.tally_members` call.  Replaying a
  charge re-posts exactly those counts under exactly that label, so the
  replayed :class:`~repro.mpc.cluster.LoadReport` is bit-identical to the
  traced one by construction (the same argument as the substrate's
  sorted-run ledger replay, DESIGN.md 3.2/3.4).
* **Worker-local compute** (:class:`MapParts`) — one
  :meth:`~repro.mpc.group.Group.map_parts` dispatch: a module-level pure
  function, its picklable ``common`` descriptor, and *references* to the
  immutable input parts and their owning relation.  References are cheap
  for base inputs (the version-pinned distributed relations already
  resident in the engine's caches) but do pin any mid-execution
  intermediate a driver sorted, which is why the engine bounds trace
  lifetime by recording lifetime under its LRU.  Holding them is what
  lets a replay re-issue the compute through
  :meth:`~repro.mpc.backends.Backend.run_ops` in fused batches.
* **Structure** (:class:`SampleSort`, :class:`FoldByKey`,
  :class:`SearchRows`, :class:`NumberRows`, :class:`SemiJoin`,
  :class:`AttachDegrees` spans; :class:`Subgroup` / :class:`GridLines`
  markers) — the primitive vocabulary of paper Section 2 and the grid
  shape of Section 3.2 Case 2.  Spans scope the low-level steps recorded
  while a primitive ran, giving ``explain`` its per-op ledger
  attribution; they charge nothing and replay as no-ops.

Ops are recorded with the :class:`~repro.plan.trace.TraceRecorder` and
replayed by the :class:`~repro.plan.executor.Executor`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "Op",
    "Charge",
    "Exchange",
    "Broadcast",
    "MapParts",
    "Subgroup",
    "GridLines",
    "PrimSpan",
    "SampleSort",
    "FoldByKey",
    "SearchRows",
    "NumberRows",
    "SemiJoin",
    "AttachDegrees",
    "PhysicalPlan",
]


@dataclass(eq=False)
class Op:
    """One step of a traced execution.

    Attributes:
        label: The ledger/phase label the step ran under ("" for
            structural ops, which never touch the ledger).
        path: Kinds of the enclosing primitive spans, outermost first —
            the per-op attribution used by ``explain``.
    """

    label: str = ""
    path: tuple[str, ...] = ()

    @property
    def kind(self) -> str:
        return type(self).__name__


@dataclass(eq=False)
class Charge(Op):
    """One ledger write: ``tally_members(members, counts, label)``.

    ``members`` is the group family the counts were tallied on (tuples of
    global server ids); replaying posts the identical vectors through the
    same entry point, so every `LoadReport` field reproduces exactly.
    """

    members: tuple[tuple[int, ...], ...] = ()
    counts: tuple[int, ...] = ()

    @property
    def units(self) -> int:
        """Total units this charge adds to the ledger (all members)."""
        return sum(self.counts) * len(self.members)


@dataclass(eq=False)
class Exchange(Charge):
    """A routed exchange step (the general :meth:`Group.exchange` case)."""


@dataclass(eq=False)
class Broadcast(Charge):
    """An exchange known to be a one-to-all replication."""


@dataclass(eq=False)
class MapParts(Op):
    """One backend compute dispatch: ``fn(part, common, index)`` per part.

    ``fn``/``parts``/``owner`` are live references captured at trace
    time; ``parts`` are immutable after construction (the `DistRelation`
    contract), so a replay under unchanged data versions recomputes the
    exact traced results.  Local compute is free in the MPC model — the
    op charges nothing; it exists so a replay keeps backend worker state
    (content-addressed memos) warm, and it is the unit the fusion pass
    batches into single `run_ops` round-trips.
    """

    fn_ref: str = ""
    fn: Any = None
    parts: Any = None
    common: Any = None
    owner: Any = None


@dataclass(eq=False)
class Subgroup(Op):
    """Structural marker: a driver narrowed the group to a server subset."""

    detail: str = ""


@dataclass(eq=False)
class GridLines(Op):
    """Structural marker: a hypercube grid was carved into line families."""

    detail: str = ""


@dataclass(eq=False)
class PrimSpan(Op):
    """A Section-2 primitive invocation scoping its low-level steps.

    ``ops[start:end]`` of the owning plan are the steps recorded while
    the primitive ran (spans nest: ``AttachDegrees`` contains the
    ``SampleSort`` of its relation's sorted run).
    """

    detail: str = ""
    start: int = 0
    end: int = 0


@dataclass(eq=False)
class SampleSort(PrimSpan):
    """A PSRS pass: decorate+sort, sample gather, splitters, shuffle."""


@dataclass(eq=False)
class FoldByKey(PrimSpan):
    """Per-key aggregation on a sorted run (count/fold/distinct family)."""


@dataclass(eq=False)
class SearchRows(PrimSpan):
    """Predecessor search of a relation's rows against a keyed table."""


@dataclass(eq=False)
class NumberRows(PrimSpan):
    """Consecutive per-key numbering of a relation's rows."""


@dataclass(eq=False)
class SemiJoin(PrimSpan):
    """The paper's semi-join-by-multi-search reduction."""


@dataclass(eq=False)
class AttachDegrees(PrimSpan):
    """The fused sum-by-key + multi-search behind heavy/light splits."""


def _fmt_seconds(seconds: float) -> str:
    """Compact duration for explain columns: 1.23s / 4.56ms / 789us."""
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def _fmt_bytes(n: int) -> str:
    """Compact byte count for explain columns: 1.5MiB / 2.0KiB / 37B."""
    if n >= 1 << 20:
        return f"{n / (1 << 20):.1f}MiB"
    if n >= 1 << 10:
        return f"{n / (1 << 10):.1f}KiB"
    return f"{n}B"


@dataclass(eq=False)
class PhysicalPlan:
    """A replayable recording of one query execution's op schedule.

    Attributes:
        query: The query text (or a short description) the trace served.
        kind: ``"join"`` | ``"project"`` | ``"aggregate"``.
        algorithm: The resolved algorithm that was driven.
        p: Cluster size the trace was recorded on.
        backend: Backend name of the recording session (the schedule
            itself is backend-independent — ledgers are).
        relation_versions: Registered-relation versions the trace is
            valid for; a replay under any other versions is forbidden
            (the section-3.4-style contract, see DESIGN.md 7).
        ops: The flat op sequence in execution order.
    """

    query: str = ""
    kind: str = ""
    algorithm: str = ""
    p: int = 0
    backend: str = ""
    relation_versions: dict[str, int] = field(default_factory=dict)
    ops: list[Op] = field(default_factory=list)

    # ------------------------------------------------------------------
    def charges(self) -> list[Charge]:
        return [op for op in self.ops if isinstance(op, Charge)]

    def map_ops(self) -> list[MapParts]:
        return [op for op in self.ops if isinstance(op, MapParts)]

    def charged_units(self) -> int:
        """Total ledger units a replay posts (== the traced report total)."""
        return sum(op.units for op in self.ops if isinstance(op, Charge))

    def op_counts(self) -> dict[str, int]:
        """Per-op-kind counts (the engine's per-op metrics source)."""
        return dict(Counter(op.kind for op in self.ops))

    # ------------------------------------------------------------------
    def explain(
        self, fusion: bool = True,
        timings: "dict[int, dict[str, float]] | None" = None,
    ) -> str:
        """Human-readable plan: ops, fusion groups, per-op ledger units.

        ``timings`` (from a timed replay — ``Executor.replay(plan,
        timed=True)["op_timings"]``, keyed by op index) appends measured
        ``wall=``/``wire=`` columns per op, so the ledger's *load* story
        and the measured *time/bytes* story line up row by row.  A
        :class:`PrimSpan` line aggregates the timings of the ops it
        covers, same as its units column.
        """
        from repro.plan.fuse import fusion_groups

        groups = fusion_groups(self.ops, fuse=fusion)
        group_of: dict[int, int] = {}
        for gi, group in enumerate(groups):
            for i in group:
                group_of[i] = gi
        n_map = len(self.map_ops())
        counts = self.op_counts()
        lines = [
            f"physical plan: {self.query}",
            (
                f"  kind={self.kind} algorithm={self.algorithm} "
                f"p={self.p} backend={self.backend}"
            ),
            (
                "  ops: "
                + ", ".join(f"{k} x{v}" for k, v in sorted(counts.items()))
            ),
            (
                f"  ledger: {self.charged_units()} units over "
                f"{len(self.charges())} charge steps (replayed bit-exactly)"
            ),
        ]
        if n_map:
            ratio = n_map / len(groups) if groups else 1.0
            lines.append(
                f"  fusion: {n_map} worker-local ops -> {len(groups)} "
                f"backend request(s) ({ratio:.1f}x round-trip reduction)"
                + ("" if fusion else "  [fusion disabled]")
            )
        if timings is not None:
            total_wall = sum(t["wall"] for t in timings.values())
            total_wire = sum(t["wire"] for t in timings.values())
            lines.append(
                f"  timings: {_fmt_seconds(total_wall)} measured wall, "
                f"{_fmt_bytes(int(total_wire))} shipped "
                f"(timed per-op replay, unfused)"
            )

        def cols(i: int, end: int | None = None) -> str:
            if timings is None:
                return ""
            if end is None:
                t = timings.get(i)
                if t is None:
                    return ""
                wall, wire = t["wall"], t["wire"]
            else:
                covered = [
                    timings[j] for j in range(i, end) if j in timings
                ]
                if not covered:
                    return ""
                wall = sum(t["wall"] for t in covered)
                wire = sum(t["wire"] for t in covered)
            out = f"  wall={_fmt_seconds(wall)}"
            if wire:
                out += f" wire={_fmt_bytes(int(wire))}"
            return out

        for i, op in enumerate(self.ops):
            pad = "  " * (len(op.path) + 1)
            if isinstance(op, PrimSpan):
                units = sum(
                    c.units
                    for c in self.ops[op.start : op.end]
                    if isinstance(c, Charge)
                )
                lines.append(
                    f"{pad}[{op.kind}] {op.detail}  units={units}"
                    + cols(op.start, op.end)
                )
            elif isinstance(op, Charge):
                fam = f" x{len(op.members)}" if len(op.members) > 1 else ""
                lines.append(
                    f"{pad}{op.kind} {op.label}{fam}  units={op.units}"
                    + cols(i)
                )
            elif isinstance(op, MapParts):
                lines.append(
                    f"{pad}MapParts {op.fn_ref}  (fusion group "
                    f"{group_of.get(i, '?')})" + cols(i)
                )
            else:
                lines.append(f"{pad}{op.kind} {getattr(op, 'detail', '')}")
        return "\n".join(lines)
