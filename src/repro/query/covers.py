"""Edge covers, edge packings, and the AGM bound.

* **Fractional edge cover**: weights ``u_e >= 0`` with
  ``sum_{e : x in e} u_e >= 1`` for every attribute ``x``.  The minimum
  total weight is the fractional edge cover number ``rho``.
* **Fractional edge packing**: ``sum_{e : x in e} u_e <= 1`` for every
  attribute; used by the BinHC load expression (paper Section 3.1).
* **AGM bound**: ``|Q(R)| <= prod_e N_e^{u_e}`` for any fractional edge
  cover ``u`` — minimized in log space by an LP.
* **Lemma 1**: acyclic joins have *integral* edge cover number; we implement
  the constructive GYO-style argument and cross-check against the LP.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.errors import QueryError
from repro.query.hypergraph import Hypergraph

__all__ = [
    "CoverResult",
    "fractional_edge_cover_number",
    "fractional_edge_packing_number",
    "minimize_agm",
    "agm_bound",
    "integral_edge_cover",
    "maximum_edge_packing",
]


@dataclass(frozen=True)
class CoverResult:
    """An (edge -> weight) assignment with its total weight."""

    weights: dict[str, float]
    total: float


def _incidence(query: Hypergraph) -> tuple[list[str], list[str], np.ndarray]:
    """Edge names, attribute names, and the attr x edge incidence matrix."""
    edges = list(query.edge_names)
    attrs = sorted(query.attributes)
    mat = np.zeros((len(attrs), len(edges)))
    for j, e in enumerate(edges):
        for x in query.attrs_of(e):
            mat[attrs.index(x), j] = 1.0
    return edges, attrs, mat


def fractional_edge_cover_number(query: Hypergraph) -> CoverResult:
    """Minimize ``sum u_e`` subject to covering every attribute."""
    edges, _, mat = _incidence(query)
    res = linprog(
        c=np.ones(len(edges)),
        A_ub=-mat,
        b_ub=-np.ones(mat.shape[0]),
        bounds=[(0, None)] * len(edges),
        method="highs",
    )
    if not res.success:  # pragma: no cover - LP on well-formed input
        raise QueryError(f"edge cover LP failed: {res.message}")
    return CoverResult(dict(zip(edges, res.x)), float(res.fun))


def fractional_edge_packing_number(query: Hypergraph) -> CoverResult:
    """Maximize ``sum u_e`` subject to packing constraints at every attribute."""
    edges, _, mat = _incidence(query)
    res = linprog(
        c=-np.ones(len(edges)),
        A_ub=mat,
        b_ub=np.ones(mat.shape[0]),
        bounds=[(0, None)] * len(edges),
        method="highs",
    )
    if not res.success:  # pragma: no cover
        raise QueryError(f"edge packing LP failed: {res.message}")
    return CoverResult(dict(zip(edges, res.x)), float(-res.fun))


def minimize_agm(query: Hypergraph, sizes: dict[str, int]) -> CoverResult:
    """Fractional edge cover minimizing ``prod N_e^{u_e}`` (log-space LP).

    Args:
        query: The join hypergraph.
        sizes: Relation sizes ``N_e`` keyed by edge name (must be >= 1).

    Returns:
        The optimal cover; ``total`` holds ``sum u_e log N_e``.
    """
    edges, _, mat = _incidence(query)
    logs = np.array([math.log(max(2, sizes[e])) for e in edges])
    res = linprog(
        c=logs,
        A_ub=-mat,
        b_ub=-np.ones(mat.shape[0]),
        bounds=[(0, None)] * len(edges),
        method="highs",
    )
    if not res.success:  # pragma: no cover
        raise QueryError(f"AGM LP failed: {res.message}")
    return CoverResult(dict(zip(edges, res.x)), float(res.fun))


def agm_bound(query: Hypergraph, sizes: dict[str, int]) -> float:
    """The AGM output-size bound ``min_u prod N_e^{u_e}``."""
    return math.exp(minimize_agm(query, sizes).total)


def integral_edge_cover(query: Hypergraph) -> set[str]:
    """An optimal integral edge cover of an *acyclic* query (Lemma 1).

    Constructive procedure from the Lemma 1 proof: repeatedly (a) drop an
    edge contained in another (weight 0), or (b) pick an edge owning a
    private attribute (weight 1) and remove all its attributes.  On acyclic
    queries this empties the hypergraph and the chosen edges form a minimum
    edge cover; we assert optimality against the LP relaxation.

    Raises:
        QueryError: If the procedure stalls (the query was cyclic).
    """
    remaining: dict[str, set[str]] = {n: set(query.attrs_of(n)) for n in query.edge_names}
    chosen: set[str] = set()
    while any(remaining.values()):
        progressed = False
        names = sorted(n for n in remaining if remaining[n])
        # (a) containment removal.
        for n in names:
            for n2 in names:
                if n2 != n and remaining[n] <= remaining[n2] and (
                    remaining[n] != remaining[n2] or n > n2
                ):
                    remaining[n] = set()
                    progressed = True
                    break
            if progressed:
                break
        if progressed:
            continue
        # (b) private-attribute pick.
        for n in names:
            others: set[str] = set()
            for n2 in names:
                if n2 != n:
                    others |= remaining[n2]
            if remaining[n] - others:
                chosen.add(n)
                private_and_shared = set(remaining[n])
                for n2 in names:
                    remaining[n2] -= private_and_shared
                progressed = True
                break
        if not progressed:
            raise QueryError(
                f"integral edge cover procedure stalled; {query.name} is cyclic"
            )
    lp = fractional_edge_cover_number(query)
    if len(chosen) > round(lp.total) + 1e-6:  # pragma: no cover - Lemma 1 guards
        raise QueryError(
            f"integral cover {len(chosen)} exceeds LP optimum {lp.total:.3f}"
        )
    return chosen


def maximum_edge_packing(query: Hypergraph, saturate: frozenset[str] = frozenset()) -> CoverResult | None:
    """Max-weight fractional edge packing saturating the given attributes.

    Used by the BinHC bound (paper Section 3.1): packings of the residual
    query ``Q_x`` that *saturate* ``x`` (``sum_{e : x in e} u_e >= 1`` for
    ``x in saturate``) while packing all other attributes.

    Returns:
        The packing, or ``None`` if saturation is infeasible.

    Edges contained in ``saturate`` are fixed to weight 0, following the
    paper's convention (their selections are single tuples).
    """
    edges, attrs, mat = _incidence(query)
    a_ub = []
    b_ub = []
    for i, x in enumerate(attrs):
        if x in saturate:
            a_ub.append(-mat[i])
            b_ub.append(-1.0)
        else:
            a_ub.append(mat[i])
            b_ub.append(1.0)
    bounds = []
    for e in edges:
        if query.attrs_of(e) <= saturate:
            bounds.append((0, 0))
        else:
            bounds.append((0, None))
    res = linprog(
        c=-np.ones(len(edges)),
        A_ub=np.array(a_ub),
        b_ub=np.array(b_ub),
        bounds=bounds,
        method="highs",
    )
    if not res.success:
        return None
    return CoverResult(dict(zip(edges, res.x)), float(-res.fun))
