"""Classification of joins: tall-flat, hierarchical, r-hierarchical, acyclic.

Implements the class hierarchy of paper Section 1.4 / Figure 1:

    tall-flat  <  hierarchical  <  r-hierarchical  <  acyclic  <  all joins

* A join is **hierarchical** if for every pair of attributes ``x, y`` the
  edge sets ``E_x`` and ``E_y`` are nested or disjoint.
* It is **r-hierarchical** if its *reduced* hypergraph (edges contained in
  other edges removed) is hierarchical.
* It is **tall-flat** if its attributes order as ``x1..xh, y1..yl`` with
  ``E_x1 >= E_x2 >= ... >= E_xh >= E_yj`` and ``|E_yj| = 1``.
"""

from __future__ import annotations

import enum

from repro.query.hypergraph import Hypergraph

__all__ = [
    "JoinClass",
    "classify",
    "is_acyclic",
    "is_hierarchical",
    "is_r_hierarchical",
    "is_tall_flat",
    "tall_flat_order",
]


class JoinClass(enum.IntEnum):
    """Finest class a query belongs to; lower values are more restrictive.

    Comparisons express the inclusion diagram of Figure 1: a query whose
    ``classify(...)`` value is ``TALL_FLAT`` is also in every larger class.
    """

    TALL_FLAT = 0
    HIERARCHICAL = 1
    R_HIERARCHICAL = 2
    ACYCLIC = 3
    CYCLIC = 4


def is_hierarchical(query: Hypergraph) -> bool:
    """Check the hierarchical property: all ``E_x`` nested or disjoint."""
    attrs = sorted(query.attributes)
    edge_sets = {x: query.edges_with(x) for x in attrs}
    for i, x in enumerate(attrs):
        for y in attrs[i + 1 :]:
            ex, ey = edge_sets[x], edge_sets[y]
            if not (ex <= ey or ey <= ex or not (ex & ey)):
                return False
    return True


def is_r_hierarchical(query: Hypergraph) -> bool:
    """Check whether the reduced hypergraph is hierarchical."""
    reduced, _ = query.reduce()
    return is_hierarchical(reduced)


def tall_flat_order(query: Hypergraph) -> tuple[list[str], list[str]] | None:
    """Return a witnessing tall-flat ordering ``(stem, flat)`` or ``None``.

    The *stem* attributes ``x1..xh`` satisfy ``E_x1 >= ... >= E_xh``; the
    *flat* attributes each appear in exactly one edge, contained in
    ``E_xh``.  An empty stem is allowed (then condition (2) is vacuous),
    which covers Cartesian products of single relations.
    """
    flat = [x for x in sorted(query.attributes) if len(query.edges_with(x)) == 1]
    stem = [x for x in sorted(query.attributes) if len(query.edges_with(x)) > 1]
    # Stem attributes must form a chain under edge-set containment.
    stem.sort(key=lambda x: (-len(query.edges_with(x)), x))
    for a, b in zip(stem, stem[1:]):
        if not query.edges_with(b) <= query.edges_with(a):
            return None
    if stem:
        lowest = query.edges_with(stem[-1])
        for y in flat:
            if not query.edges_with(y) <= lowest:
                return None
    return stem, flat


def is_tall_flat(query: Hypergraph) -> bool:
    """Check the tall-flat property (paper Section 1.4, from [26])."""
    return tall_flat_order(query) is not None


def is_acyclic(query: Hypergraph) -> bool:
    """Alpha-acyclicity (GYO)."""
    return query.is_acyclic()


def classify(query: Hypergraph) -> JoinClass:
    """Return the finest class of Figure 1 that contains ``query``."""
    if not query.is_acyclic():
        return JoinClass.CYCLIC
    if is_tall_flat(query):
        return JoinClass.TALL_FLAT
    if is_hierarchical(query):
        return JoinClass.HIERARCHICAL
    if is_r_hierarchical(query):
        return JoinClass.R_HIERARCHICAL
    return JoinClass.ACYCLIC
