"""Paths in hypergraphs and the Lemma 2 dichotomy witness.

A *path* between attributes ``x`` and ``y`` is a vertex sequence where each
consecutive pair co-occurs in some edge; it is *minimal* if no strict
subsequence is also a path.  ``(x1, x2, x3, x4)`` is a minimal path of
length 3 iff consecutive pairs co-occur in edges but no edge contains a
non-consecutive pair.

Paper Lemma 2: an acyclic join is **not** r-hierarchical iff it has a
minimal path of length 3.  This is the structural hook for embedding the
line-3 hard instance into any acyclic non-r-hierarchical query (Theorem 8).
"""

from __future__ import annotations

from itertools import permutations

from repro.query.hypergraph import Hypergraph

__all__ = [
    "covering_edge",
    "is_minimal_path",
    "minimal_path_of_length_3",
    "has_minimal_path_of_length_3",
]


def covering_edge(query: Hypergraph, attrs: frozenset[str] | set[str]) -> str | None:
    """Name of some edge containing all of ``attrs``, or ``None``."""
    for name in query.edge_names:
        if attrs <= query.attrs_of(name):
            return name
    return None


def is_minimal_path(query: Hypergraph, path: tuple[str, ...]) -> bool:
    """Check that ``path`` is a path and minimal (no skipping edge exists)."""
    if len(set(path)) != len(path):
        return False
    for a, b in zip(path, path[1:]):
        if covering_edge(query, {a, b}) is None:
            return False
    for i in range(len(path)):
        for j in range(i + 2, len(path)):
            if covering_edge(query, {path[i], path[j]}) is not None:
                return False
    return True


def minimal_path_of_length_3(query: Hypergraph) -> tuple[str, str, str, str] | None:
    """Find a minimal path of length 3 (4 vertices) if one exists.

    Returns:
        A witnessing tuple ``(x1, x2, x3, x4)`` or ``None``.  The search is
        exhaustive over attribute quadruples, which is fine under the paper's
        data-complexity assumption (query size is constant).
    """
    attrs = sorted(query.attributes)
    if len(attrs) < 4:
        return None
    # Precompute pair coverage once: O(n^2 m).
    covered: set[frozenset[str]] = set()
    for name in query.edge_names:
        e = sorted(query.attrs_of(name))
        for i, a in enumerate(e):
            for b in e[i + 1 :]:
                covered.add(frozenset((a, b)))

    for quad in permutations(attrs, 4):
        x1, x2, x3, x4 = quad
        # Canonical direction to halve the search: paths are symmetric.
        if x1 > x4:
            continue
        if (
            frozenset((x1, x2)) in covered
            and frozenset((x2, x3)) in covered
            and frozenset((x3, x4)) in covered
            and frozenset((x1, x3)) not in covered
            and frozenset((x1, x4)) not in covered
            and frozenset((x2, x4)) not in covered
        ):
            return quad
    return None


def has_minimal_path_of_length_3(query: Hypergraph) -> bool:
    """Whether the query has a minimal path of length 3 (Lemma 2 witness)."""
    return minimal_path_of_length_3(query) is not None
