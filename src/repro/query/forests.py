"""Attribute forests of hierarchical queries (paper Section 3, Figure 2).

In a hierarchical join all attributes organize into a forest such that ``x``
is a descendant of ``y`` iff ``E_x <= E_y``.  After the query is reduced,
each relation corresponds to a leaf of the forest and contains exactly that
leaf and its ancestors (root-to-leaf path).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.query.classify import is_hierarchical
from repro.query.hypergraph import Hypergraph

__all__ = ["AttributeForest", "attribute_forest"]


@dataclass
class AttributeForest:
    """Forest over the attributes of a hierarchical query.

    Attributes:
        query: The (hierarchical) query the forest describes.
        parent: ``parent[x]`` is the parent attribute (``None`` for roots).
        roots: Root attributes, one per tree, sorted.
        children: ``children[x]`` lists child attributes, sorted.
    """

    query: Hypergraph
    parent: dict[str, str | None]
    roots: list[str]
    children: dict[str, list[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.children:
            self.children = {x: [] for x in self.parent}
            for x, par in self.parent.items():
                if par is not None:
                    self.children[par].append(x)
            for x in self.children:
                self.children[x].sort()

    def num_trees(self) -> int:
        return len(self.roots)

    def tree_attrs(self, root: str) -> set[str]:
        """All attributes in the tree rooted at ``root``."""
        seen: set[str] = set()
        stack = [root]
        while stack:
            x = stack.pop()
            seen.add(x)
            stack.extend(self.children[x])
        return seen

    def tree_edges(self, root: str) -> set[str]:
        """Edge names whose attributes lie in the tree rooted at ``root``."""
        attrs = self.tree_attrs(root)
        return {n for n in self.query.edge_names if self.query.attrs_of(n) & attrs}

    def ancestors(self, attr: str) -> list[str]:
        """Ancestors of ``attr``, nearest first (excluding ``attr``)."""
        out: list[str] = []
        cur = self.parent[attr]
        while cur is not None:
            out.append(cur)
            cur = self.parent[cur]
        return out

    def path_to_root(self, attr: str) -> list[str]:
        """``attr`` plus its ancestors, i.e. the root-to-leaf path reversed."""
        return [attr] + self.ancestors(attr)

    def edge_leaf(self, edge_name: str) -> str:
        """The deepest attribute of an edge (its forest node).

        For a *reduced* hierarchical query each edge's attributes are exactly
        a root-to-leaf path, so the deepest attribute identifies the edge's
        position in the forest.
        """
        attrs = self.query.attrs_of(edge_name)
        deepest = None
        depth = -1
        for x in attrs:
            d = len(self.ancestors(x))
            if d > depth:
                deepest, depth = x, d
        assert deepest is not None
        return deepest

    def height(self) -> int:
        """Longest root-to-leaf path length (number of vertices)."""
        best = 0
        for x in self.parent:
            best = max(best, len(self.ancestors(x)) + 1)
        return best


def attribute_forest(query: Hypergraph) -> AttributeForest:
    """Build the attribute forest of a hierarchical query.

    ``x`` becomes a descendant of ``y`` iff ``E_x`` is a subset of ``E_y``.
    Attributes with identical edge sets are chained deterministically (sorted
    order), since either may serve as the other's parent.

    Raises:
        QueryError: If ``query`` is not hierarchical.
    """
    if not is_hierarchical(query):
        raise QueryError(f"query {query.name} is not hierarchical")
    attrs = sorted(query.attributes)
    edge_sets = {x: query.edges_with(x) for x in attrs}

    # Group attributes by identical edge set, chain within a group.
    groups: dict[frozenset[str], list[str]] = {}
    for x in attrs:
        groups.setdefault(edge_sets[x], []).append(x)
    for members in groups.values():
        members.sort()

    parent: dict[str, str | None] = {}
    group_keys = sorted(groups, key=lambda s: (-len(s), sorted(s)))
    for key in group_keys:
        members = groups[key]
        # Chain members: members[0] <- members[1] <- ...
        for prev, cur in zip(members, members[1:]):
            parent[cur] = prev
        # Parent of the group head: deepest member of the smallest strict
        # superset group.
        supersets = [k for k in group_keys if key < k]
        if supersets:
            best = min(supersets, key=lambda s: (len(s), sorted(s)))
            parent[members[0]] = groups[best][-1]
        else:
            parent[members[0]] = None

    roots = sorted(x for x, par in parent.items() if par is None)
    return AttributeForest(query=query, parent=parent, roots=roots)
