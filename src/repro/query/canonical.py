"""Canonical text forms of queries — the serving engine's plan-cache key.

Two queries that differ only in edge insertion order, attribute order
within an atom, or head-attribute order describe the same join, so a
prepared plan for one must be served for the other.  :func:`canonical_form`
renders a query (plus optional output attributes and aggregate spec) as a
normalized datalog-style string with sorted edges and sorted attributes;
string equality on canonical forms is the cache-equality the engine uses.

Relation *names* are deliberately part of the form: plans bind to named
base relations registered in a session, so ``R1(A,B), R2(B,C)`` and
``S1(A,B), S2(B,C)`` are distinct cache entries even though they are
isomorphic hypergraphs.
"""

from __future__ import annotations

from typing import Iterable

from repro.query.hypergraph import Hypergraph

__all__ = ["canonical_form"]


def canonical_form(
    query: Hypergraph,
    output_attrs: Iterable[str] | None = None,
    aggregate: str | None = None,
) -> str:
    """Normalized datalog-style text of a query.

    Args:
        query: The join hypergraph.
        output_attrs: Output (free) attributes; ``None`` means the full
            natural join (every attribute is output).
        aggregate: Optional aggregate/semiring name (``"count"``, ...);
            rendered after a ``;`` in the head, datalog-style.

    Returns:
        A string like ``"Q(A,B,C) :- R1(A,B), R2(B,C)"`` that re-parses to
        an equivalent query (``repro.engine.parse_query`` round-trips it).
    """
    body = ", ".join(
        f"{name}({','.join(sorted(query.attrs_of(name)))})"
        for name in sorted(query.edge_names)
    )
    if output_attrs is None:
        head_inner = ",".join(sorted(query.attributes))
    else:
        head_inner = ",".join(sorted(set(output_attrs)))
    if aggregate is not None:
        head_inner = f"{head_inner}; {aggregate}" if head_inner else f"; {aggregate}"
    return f"Q({head_inner}) :- {body}"
