"""Free-connex structure for join-aggregate queries (paper Section 6).

A join-aggregate query ``Q_y`` with output attributes ``y`` is *free-connex*
when it admits a width-1 GHD with a connex subset covering exactly ``y``.
Operationally (the standard equivalent form we implement): ``Q`` is acyclic
and the hypergraph ``E + {y}`` obtained by adding ``y`` as an extra hyperedge
is also acyclic.

The :class:`OutputJoinTree` built here is the scaffold that
``LinearAggroYannakakis`` (Algorithm 1) traverses: a join tree of
``E + {y}`` rooted at the virtual output edge.  The children of the virtual
root, projected onto ``y``, form the residual acyclic query ``T'`` on which
the output-optimal join algorithms run afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError
from repro.query.classify import is_r_hierarchical
from repro.query.hypergraph import Hypergraph, JoinTree, join_tree

__all__ = [
    "OUTPUT_EDGE",
    "OutputJoinTree",
    "is_free_connex",
    "output_join_tree",
    "is_out_hierarchical",
    "residual_output_query",
]

#: Name of the virtual hyperedge added for the output attributes.
OUTPUT_EDGE = "__output__"


def is_free_connex(query: Hypergraph, output_attrs: frozenset[str] | set[str]) -> bool:
    """Whether ``Q_y`` is free-connex: ``Q`` and ``Q + {y}`` both acyclic.

    The boundary cases follow the definition directly: ``y`` empty or equal
    to all attributes leaves ``Q`` unchanged up to a contained/containing
    edge, so only acyclicity of ``Q`` matters.
    """
    y = frozenset(output_attrs)
    if not y <= query.attributes:
        raise QueryError(f"output attrs {sorted(y)} not all in query {query.name}")
    if not query.is_acyclic():
        return False
    if not y or y == query.attributes:
        return True
    return query.with_edge(OUTPUT_EDGE, y).is_acyclic()


@dataclass
class OutputJoinTree:
    """Join tree of ``E + {y}`` rooted at the virtual output edge.

    Attributes:
        query: The original query (without the virtual edge).
        output_attrs: The output attributes ``y``.
        tree: Join tree over ``E + {y}``; its root is :data:`OUTPUT_EDGE`.
            When ``y`` is empty the tree is over ``E`` alone and the root is
            a real edge (total aggregation needs no virtual node).
    """

    query: Hypergraph
    output_attrs: frozenset[str]
    tree: JoinTree

    @property
    def has_virtual_root(self) -> bool:
        return self.tree.root == OUTPUT_EDGE

    def real_nodes_bottom_up(self) -> list[str]:
        """Real (non-virtual) edges in bottom-up order."""
        return [n for n in self.tree.bottom_up() if n != OUTPUT_EDGE]

    def top_attr_node(self, attr: str) -> str:
        """``TOP(x)``: the highest tree node containing ``attr``."""
        return self.tree.highest_node_with(attr)


def output_join_tree(query: Hypergraph, output_attrs: frozenset[str] | set[str]) -> OutputJoinTree:
    """Build the rooted scaffold for a free-connex join-aggregate query.

    Raises:
        QueryError: If the query is not free-connex for ``output_attrs``.
    """
    y = frozenset(output_attrs)
    if not is_free_connex(query, y):
        raise QueryError(
            f"query {query.name} with outputs {sorted(y)} is not free-connex"
        )
    if not y:
        return OutputJoinTree(query=query, output_attrs=y, tree=join_tree(query))
    augmented = query.with_edge(OUTPUT_EDGE, y)
    tree = join_tree(augmented, root=OUTPUT_EDGE)
    return OutputJoinTree(query=query, output_attrs=y, tree=tree)


def residual_output_query(scaffold: OutputJoinTree) -> Hypergraph:
    """The acyclic query ``T'`` left after non-output attributes are removed.

    Its edges are the virtual root's children projected onto ``y`` — exactly
    the relations ``LinearAggroYannakakis`` hands to the downstream join
    algorithm.  The result is checked for acyclicity.

    Raises:
        QueryError: If ``y`` is empty (no residual query: total aggregate) or
            the residual turns out cyclic (cannot happen for free-connex
            inputs; defensive check).
    """
    if not scaffold.output_attrs:
        raise QueryError("total aggregation (y = {}) has no residual query")
    y = scaffold.output_attrs
    if not scaffold.has_virtual_root:
        # y == all attributes: the residual query is the original query.
        return scaffold.query
    children = scaffold.tree.children[OUTPUT_EDGE]
    edges = {}
    for c in children:
        proj = scaffold.query.attrs_of(c) & y
        if proj:
            edges[c] = proj
    if not edges:
        raise QueryError("no residual edges; query/output mismatch")
    residual = Hypergraph(edges, name=f"{scaffold.query.name}-out")
    if not residual.is_acyclic():  # pragma: no cover - defensive
        raise QueryError("residual output query is cyclic")
    return residual


def is_out_hierarchical(query: Hypergraph, output_attrs: frozenset[str] | set[str]) -> bool:
    """Whether ``Q_y`` is out-hierarchical (paper Lemma 4).

    Free-connex and the residual query obtained by removing all non-output
    attributes is r-hierarchical.
    """
    y = frozenset(output_attrs)
    if not is_free_connex(query, y):
        return False
    if not y:
        return True
    projected = query.project(y, drop_empty=True)
    return is_r_hierarchical(projected)
