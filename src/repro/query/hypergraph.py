"""Join hypergraphs, GYO reduction, acyclicity, and join trees.

A (natural) join query is a hypergraph ``Q = (V, E)`` whose vertices model
attributes and whose hyperedges model relations (paper Section 1).  Edges are
*named* so that distinct relations over the same attribute set (self-joins)
stay distinguishable.

The central structural notions implemented here:

* **GYO reduction / acyclicity** — a query is (alpha-)acyclic iff repeated
  ear removal empties the hypergraph.  Ear removal doubles as a join-tree
  construction: when ear ``e`` is removed with witness ``e'`` we record the
  tree edge ``e -> e'``.
* **Join tree** — a tree over the edge names such that for every attribute
  the set of nodes containing it is connected (the *coherence* or *running
  intersection* property).
* **Reduce procedure** (paper Section 1.4) — repeatedly remove an edge whose
  attribute set is contained in another edge's; a query is *r-hierarchical*
  when its reduced hypergraph is hierarchical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.errors import CyclicQueryError, QueryError

__all__ = ["Hypergraph", "JoinTree", "gyo_reduction", "join_tree"]


class Hypergraph:
    """An immutable join hypergraph: named hyperedges over attributes.

    Args:
        edges: Mapping from relation (edge) name to an iterable of attribute
            names.  Attribute order is irrelevant; edges are stored as
            frozensets.
        name: Optional human-readable query name for reprs and reports.

    Raises:
        QueryError: If no edges are given or an edge is empty.
    """

    def __init__(self, edges: Mapping[str, Iterable[str]], name: str = "Q") -> None:
        if not edges:
            raise QueryError("a query needs at least one relation")
        self._edges: dict[str, frozenset[str]] = {}
        for edge_name, attrs in edges.items():
            attr_set = frozenset(attrs)
            if not attr_set:
                raise QueryError(f"edge {edge_name!r} has no attributes")
            self._edges[str(edge_name)] = attr_set
        self.name = name
        self._attrs: frozenset[str] = frozenset().union(*self._edges.values())

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def edges(self) -> dict[str, frozenset[str]]:
        """Copy of the name -> attribute-set mapping."""
        return dict(self._edges)

    @property
    def edge_names(self) -> tuple[str, ...]:
        """Edge names in insertion order."""
        return tuple(self._edges)

    @property
    def attributes(self) -> frozenset[str]:
        """All attributes appearing in some edge."""
        return self._attrs

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def num_attributes(self) -> int:
        return len(self._attrs)

    def attrs_of(self, edge_name: str) -> frozenset[str]:
        """Attribute set of the named edge."""
        try:
            return self._edges[edge_name]
        except KeyError:
            raise QueryError(f"unknown edge {edge_name!r} in query {self.name}") from None

    def edges_with(self, attr: str) -> frozenset[str]:
        """``E_x``: names of edges containing ``attr`` (paper Section 1.4)."""
        if attr not in self._attrs:
            raise QueryError(f"unknown attribute {attr!r} in query {self.name}")
        return frozenset(n for n, e in self._edges.items() if attr in e)

    def __contains__(self, edge_name: str) -> bool:
        return edge_name in self._edges

    def __iter__(self) -> Iterator[str]:
        return iter(self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return self._edges == other._edges

    def __hash__(self) -> int:
        return hash(frozenset(self._edges.items()))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{n}({','.join(sorted(a))})" for n, a in self._edges.items()
        )
        return f"Hypergraph<{self.name}: {parts}>"

    # ------------------------------------------------------------------
    # Derived hypergraphs
    # ------------------------------------------------------------------
    def with_edge(self, edge_name: str, attrs: Iterable[str], name: str | None = None) -> "Hypergraph":
        """Return a copy with one extra edge (used for free-connex tests)."""
        if edge_name in self._edges:
            raise QueryError(f"edge {edge_name!r} already exists")
        new_edges = dict(self._edges)
        new_edges[edge_name] = frozenset(attrs)
        return Hypergraph(new_edges, name=name or f"{self.name}+{edge_name}")

    def without_edges(self, edge_names: Iterable[str]) -> "Hypergraph":
        """Return a copy with the given edges removed."""
        drop = set(edge_names)
        kept = {n: a for n, a in self._edges.items() if n not in drop}
        if not kept:
            raise QueryError("cannot remove all edges")
        return Hypergraph(kept, name=f"{self.name}-minus")

    def residual(self, attrs: Iterable[str], name: str | None = None) -> "Hypergraph":
        """The residual query ``Q_x``: remove ``attrs`` from every edge.

        Edges that become empty are dropped (paper Section 3.1 sets their
        packing weight to zero; they carry no residual structure).
        """
        removed = frozenset(attrs)
        kept: dict[str, frozenset[str]] = {}
        for n, e in self._edges.items():
            rest = e - removed
            if rest:
                kept[n] = rest
        if not kept:
            raise QueryError("residual query has no edges")
        return Hypergraph(kept, name=name or f"{self.name}-residual")

    def project(self, attrs: Iterable[str], name: str | None = None, drop_empty: bool = True) -> "Hypergraph":
        """Project every edge onto ``attrs`` (used for out-hierarchical tests)."""
        keep = frozenset(attrs)
        kept: dict[str, frozenset[str]] = {}
        for n, e in self._edges.items():
            proj = e & keep
            if proj or not drop_empty:
                kept[n] = proj
        if not kept:
            raise QueryError("projection has no edges")
        return Hypergraph(kept, name=name or f"{self.name}-proj")

    def reduce(self) -> tuple["Hypergraph", dict[str, str]]:
        """Apply the reduce procedure: drop edges contained in other edges.

        Returns:
            ``(reduced, witness)`` where ``witness[removed] = survivor`` maps
            each removed edge to the edge that contained it at removal time
            (transitively resolved to a surviving edge).  Ties between equal
            attribute sets are broken by edge name so the result is
            deterministic.
        """
        remaining = dict(self._edges)
        witness: dict[str, str] = {}
        changed = True
        while changed:
            changed = False
            names = sorted(remaining)
            for n in names:
                e = remaining[n]
                for n2 in names:
                    if n2 == n or n2 not in remaining or n not in remaining:
                        continue
                    e2 = remaining[n2]
                    if e < e2 or (e == e2 and n > n2):
                        witness[n] = n2
                        del remaining[n]
                        changed = True
                        break
        # Resolve witness chains to surviving edges.
        resolved: dict[str, str] = {}
        for n in witness:
            w = witness[n]
            while w not in remaining:
                w = witness[w]
            resolved[n] = w
        return Hypergraph(remaining, name=f"{self.name}-reduced"), resolved

    def connected_components(self) -> list[frozenset[str]]:
        """Edge names grouped by attribute-sharing connectivity."""
        names = list(self._edges)
        parent = {n: n for n in names}

        def find(a: str) -> str:
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        for i, n1 in enumerate(names):
            for n2 in names[i + 1 :]:
                if self._edges[n1] & self._edges[n2]:
                    parent[find(n1)] = find(n2)
        comps: dict[str, set[str]] = {}
        for n in names:
            comps.setdefault(find(n), set()).add(n)
        return [frozenset(c) for c in comps.values()]

    def is_acyclic(self) -> bool:
        """Alpha-acyclicity via GYO reduction."""
        return gyo_reduction(self) is not None


def gyo_reduction(query: Hypergraph, keep_last: str | None = None) -> dict[str, str | None] | None:
    """Run the GYO ear-decomposition on ``query``.

    An edge ``e`` is an *ear* if the attributes it shares with the rest of the
    hypergraph are all contained in a single other edge ``e'`` (the witness).
    Removing ears until one edge remains succeeds exactly on acyclic queries.

    Args:
        query: The hypergraph to reduce.
        keep_last: Optional edge name that must survive to the end (it becomes
            the root of the derived join tree).

    Returns:
        ``parent`` mapping: for every edge its witness at removal time, and
        ``parent[last] = None`` for the single surviving edge.  ``None`` if
        the query is cyclic.
    """
    if keep_last is not None and keep_last not in query:
        raise QueryError(f"unknown edge {keep_last!r}")
    remaining = dict(query.edges)
    parent: dict[str, str | None] = {}
    while len(remaining) > 1:
        removed_one = False
        for name in sorted(remaining):
            if name == keep_last:
                continue
            e = remaining[name]
            shared: set[str] = set()
            for other, attrs in remaining.items():
                if other != name:
                    shared |= e & attrs
            witness = None
            for other in sorted(remaining):
                if other != name and shared <= remaining[other]:
                    witness = other
                    break
            if witness is not None:
                parent[name] = witness
                del remaining[name]
                removed_one = True
                break
        if not removed_one:
            return None
    last = next(iter(remaining))
    parent[last] = None
    return parent


@dataclass
class JoinTree:
    """A rooted join tree (or forest glued at an arbitrary root) of a query.

    Attributes:
        query: The underlying hypergraph.
        root: Name of the root edge.
        parent: ``parent[edge]`` is the parent edge name (``None`` for root).
        children: ``children[edge]`` lists child edge names, sorted.
    """

    query: Hypergraph
    root: str
    parent: dict[str, str | None]
    children: dict[str, list[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.children:
            self.children = {n: [] for n in self.parent}
            for n, par in self.parent.items():
                if par is not None:
                    self.children[par].append(n)
            for n in self.children:
                self.children[n].sort()

    # ------------------------------------------------------------------
    def nodes(self) -> list[str]:
        return list(self.parent)

    def leaves(self) -> list[str]:
        return [n for n, ch in self.children.items() if not ch]

    def bottom_up(self) -> list[str]:
        """Nodes ordered so every node appears before its parent."""
        order: list[str] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(self.children[node])
        order.reverse()
        return order

    def top_down(self) -> list[str]:
        """Nodes ordered so every node appears after its parent."""
        return list(reversed(self.bottom_up()))

    def depth(self, node: str) -> int:
        d = 0
        cur: str | None = node
        while cur is not None and cur != self.root:
            cur = self.parent[cur]
            d += 1
        return d

    def subtree(self, node: str) -> set[str]:
        """All nodes in the subtree rooted at ``node`` (inclusive)."""
        seen: set[str] = set()
        stack = [node]
        while stack:
            cur = stack.pop()
            seen.add(cur)
            stack.extend(self.children[cur])
        return seen

    def separator(self, node: str) -> frozenset[str]:
        """Attributes shared between ``node`` and its parent (empty at root)."""
        par = self.parent[node]
        if par is None:
            return frozenset()
        return self.query.attrs_of(node) & self.query.attrs_of(par)

    def internal_nodes_with_leaf_children(self) -> list[str]:
        """Internal nodes all of whose children are leaves (paper Section 5).

        At least one such node exists in any tree with >= 2 nodes: take a
        deepest internal node.
        """
        result = []
        for n, ch in self.children.items():
            if ch and all(not self.children[c] for c in ch):
                result.append(n)
        return result

    def validate(self) -> None:
        """Check the running-intersection (coherence) property.

        Raises:
            QueryError: If some attribute's nodes do not form a connected
                subtree.
        """
        for attr in self.query.attributes:
            holders = {n for n in self.parent if attr in self.query.attrs_of(n)}
            if not holders:
                continue
            # The highest holder is the one whose parent does not hold attr.
            tops = [n for n in holders if self.parent[n] is None or self.parent[n] not in holders]
            if len(tops) != 1:
                raise QueryError(
                    f"attribute {attr!r} occupies a disconnected node set "
                    f"{sorted(holders)} in join tree of {self.query.name}"
                )
            # Connectivity: every holder must reach the top within holders.
            top = tops[0]
            for n in holders:
                cur: str | None = n
                while cur != top:
                    cur = self.parent[cur]  # type: ignore[assignment]
                    if cur is None or (cur not in holders and cur != top):
                        raise QueryError(
                            f"attribute {attr!r} disconnected at {n!r} in join "
                            f"tree of {self.query.name}"
                        )

    def highest_node_with(self, attr: str) -> str:
        """``TOP(x)``: the unique highest tree node containing ``attr``."""
        holders = [n for n in self.parent if attr in self.query.attrs_of(n)]
        if not holders:
            raise QueryError(f"attribute {attr!r} not in query")
        best = holders[0]
        best_depth = self.depth(best)
        for n in holders[1:]:
            d = self.depth(n)
            if d < best_depth:
                best, best_depth = n, d
        return best


def join_tree(query: Hypergraph, root: str | None = None) -> JoinTree:
    """Build a join tree of an acyclic query via GYO ear decomposition.

    Args:
        query: An acyclic hypergraph (disconnected queries are glued into a
            single tree; the glue edges carry empty separators).
        root: Optional edge name to use as the tree root.

    Raises:
        CyclicQueryError: If the query is cyclic.
    """
    parent = gyo_reduction(query, keep_last=root)
    if parent is None:
        raise CyclicQueryError(f"query {query.name} is cyclic; no join tree exists")
    actual_root = next(n for n, par in parent.items() if par is None)
    tree = JoinTree(query=query, root=actual_root, parent=parent)
    tree.validate()
    return tree
