"""A catalog of named queries used throughout the paper, tests, and benches.

Each factory returns a fresh :class:`~repro.query.hypergraph.Hypergraph`.
The classification census (Figure 1 experiment) iterates :data:`CATALOG`.
"""

from __future__ import annotations

from repro.query.hypergraph import Hypergraph

__all__ = [
    "binary_join",
    "line_join",
    "line3",
    "star_join",
    "cartesian_product",
    "q1_tall_flat",
    "q2_hierarchical",
    "q2_r_hierarchical",
    "simple_r_hierarchical",
    "triangle",
    "fork_join",
    "broom_join",
    "two_ears",
    "CATALOG",
]


def binary_join() -> Hypergraph:
    """``R1(A,B) join R2(B,C)`` — the simplest (tall-flat) join."""
    return Hypergraph({"R1": ("A", "B"), "R2": ("B", "C")}, name="binary")


def line_join(k: int) -> Hypergraph:
    """The line-k join ``R1(X0,X1) join R2(X1,X2) join ... join Rk(Xk-1,Xk)``."""
    if k < 1:
        raise ValueError("line join needs k >= 1")
    edges = {f"R{i + 1}": (f"X{i}", f"X{i + 1}") for i in range(k)}
    return Hypergraph(edges, name=f"line{k}")


def line3() -> Hypergraph:
    """The paper's line-3 join ``R1(A,B) join R2(B,C) join R3(C,D)``."""
    return Hypergraph(
        {"R1": ("A", "B"), "R2": ("B", "C"), "R3": ("C", "D")}, name="line3"
    )


def star_join(k: int) -> Hypergraph:
    """``R1(Z,X1) join R2(Z,X2) join ... join Rk(Z,Xk)`` — hierarchical."""
    if k < 2:
        raise ValueError("star join needs k >= 2")
    edges = {f"R{i}": ("Z", f"X{i}") for i in range(1, k + 1)}
    return Hypergraph(edges, name=f"star{k}")


def cartesian_product(k: int) -> Hypergraph:
    """``R1(X1) x R2(X2) x ... x Rk(Xk)`` — the HyperCube benchmark query."""
    if k < 1:
        raise ValueError("cartesian product needs k >= 1")
    edges = {f"R{i}": (f"X{i}",) for i in range(1, k + 1)}
    return Hypergraph(edges, name=f"cartesian{k}")


def q1_tall_flat() -> Hypergraph:
    """Paper's Q1 (Section 3, Figure 2): a tall-flat join with 6 relations."""
    return Hypergraph(
        {
            "R1": ("x1",),
            "R2": ("x1", "x2"),
            "R3": ("x1", "x2", "x3"),
            "R4": ("x1", "x2", "x3", "x4"),
            "R5": ("x1", "x2", "x3", "x5"),
            "R6": ("x1", "x2", "x3", "x6"),
        },
        name="Q1-tall-flat",
    )


def q2_hierarchical() -> Hypergraph:
    """Paper's Q2 (Section 3, Figure 2): hierarchical but not tall-flat."""
    return Hypergraph(
        {
            "R1": ("x1", "x2"),
            "R2": ("x1", "x3", "x4"),
            "R3": ("x1", "x3", "x5"),
        },
        name="Q2-hierarchical",
    )


def q2_r_hierarchical() -> Hypergraph:
    """Paper's Q2 + R4(x3,x5) + R5(x5): r-hierarchical but not hierarchical."""
    return Hypergraph(
        {
            "R1": ("x1", "x2"),
            "R2": ("x1", "x3", "x4"),
            "R3": ("x1", "x3", "x5"),
            "R4": ("x3", "x5"),
            "R5": ("x5",),
        },
        name="Q2-r-hierarchical",
    )


def simple_r_hierarchical() -> Hypergraph:
    """``R1(A) join R2(A,B) join R3(B)`` — r-hierarchical, not hierarchical."""
    return Hypergraph(
        {"R1": ("A",), "R2": ("A", "B"), "R3": ("B",)}, name="simple-r-hier"
    )


def triangle() -> Hypergraph:
    """The triangle join ``R1(B,C) join R2(A,C) join R3(A,B)`` — cyclic."""
    return Hypergraph(
        {"R1": ("B", "C"), "R2": ("A", "C"), "R3": ("A", "B")}, name="triangle"
    )


def fork_join() -> Hypergraph:
    """A tree-shaped acyclic join: a chain with a side branch.

    ``R1(A,B) join R2(B,C) join R3(C,D) join R4(C,E)`` — acyclic but not
    r-hierarchical (contains a minimal path of length 3).
    """
    return Hypergraph(
        {
            "R1": ("A", "B"),
            "R2": ("B", "C"),
            "R3": ("C", "D"),
            "R4": ("C", "E"),
        },
        name="fork",
    )


def broom_join() -> Hypergraph:
    """Paper Figure 5's shape: internal node with several leaf children.

    ``R0(A,B,D,G) join R1(A,B,C) join R2(B,D) join R3(B) join R4(A,D,E)
    join R5(D,F) join R6(H)`` — the last relation is disconnected, matching
    the paper's dummy-attribute discussion.
    """
    return Hypergraph(
        {
            "R0": ("A", "B", "D", "G"),
            "R1": ("A", "B", "C"),
            "R2": ("B", "D"),
            "R3": ("B",),
            "R4": ("A", "D", "E"),
            "R5": ("D", "F"),
            "R6": ("H",),
        },
        name="broom",
    )


def two_ears() -> Hypergraph:
    """Acyclic non-r-hierarchical join with two length-3 minimal paths.

    Two line-3 joins glued at the middle: ``R1(A,B) join R2(B,C) join
    R3(C,D) join R4(B,E) join R5(E,F)``.
    """
    return Hypergraph(
        {
            "R1": ("A", "B"),
            "R2": ("B", "C"),
            "R3": ("C", "D"),
            "R4": ("B", "E"),
            "R5": ("E", "F"),
        },
        name="two-ears",
    )


#: Named queries for the classification census (Figure 1 experiment).
CATALOG: dict[str, Hypergraph] = {
    "binary": binary_join(),
    "line3": line3(),
    "line4": line_join(4),
    "line5": line_join(5),
    "star3": star_join(3),
    "star4": star_join(4),
    "cartesian2": cartesian_product(2),
    "cartesian3": cartesian_product(3),
    "q1_tall_flat": q1_tall_flat(),
    "q2_hierarchical": q2_hierarchical(),
    "q2_r_hierarchical": q2_r_hierarchical(),
    "simple_r_hierarchical": simple_r_hierarchical(),
    "triangle": triangle(),
    "fork": fork_join(),
    "broom": broom_join(),
    "two_ears": two_ears(),
}
