"""Hypergraph machinery: acyclicity, join trees, and query classification.

This subpackage is the structural substrate of the paper: hypergraphs and
GYO reduction (:mod:`~repro.query.hypergraph`), the tall-flat /
hierarchical / r-hierarchical / acyclic hierarchy
(:mod:`~repro.query.classify`, Figure 1), attribute forests
(:mod:`~repro.query.forests`, Figure 2), the Lemma 2 dichotomy
(:mod:`~repro.query.paths`), edge covers and packings
(:mod:`~repro.query.covers`), and free-connex scaffolding for
join-aggregate queries (:mod:`~repro.query.ghd`, Section 6).
"""

from repro.query.canonical import canonical_form
from repro.query.classify import (
    JoinClass,
    classify,
    is_acyclic,
    is_hierarchical,
    is_r_hierarchical,
    is_tall_flat,
    tall_flat_order,
)
from repro.query.covers import (
    agm_bound,
    fractional_edge_cover_number,
    fractional_edge_packing_number,
    integral_edge_cover,
    minimize_agm,
)
from repro.query.forests import AttributeForest, attribute_forest
from repro.query.ghd import (
    OUTPUT_EDGE,
    OutputJoinTree,
    is_free_connex,
    is_out_hierarchical,
    output_join_tree,
    residual_output_query,
)
from repro.query.hypergraph import Hypergraph, JoinTree, gyo_reduction, join_tree
from repro.query.paths import (
    has_minimal_path_of_length_3,
    is_minimal_path,
    minimal_path_of_length_3,
)

__all__ = [
    "Hypergraph",
    "JoinTree",
    "gyo_reduction",
    "join_tree",
    "canonical_form",
    "JoinClass",
    "classify",
    "is_acyclic",
    "is_hierarchical",
    "is_r_hierarchical",
    "is_tall_flat",
    "tall_flat_order",
    "AttributeForest",
    "attribute_forest",
    "has_minimal_path_of_length_3",
    "is_minimal_path",
    "minimal_path_of_length_3",
    "agm_bound",
    "fractional_edge_cover_number",
    "fractional_edge_packing_number",
    "integral_edge_cover",
    "minimize_agm",
    "OUTPUT_EDGE",
    "OutputJoinTree",
    "is_free_connex",
    "is_out_hierarchical",
    "output_join_tree",
    "residual_output_query",
]
