"""Load bound formulas from the paper (upper bounds and per-instance LBs).

Everything here is an exact formula evaluation — no simulation.  The
benchmarks compare these numbers against simulated loads to reproduce the
paper's optimality claims (measured load within a constant / polylog factor
of the bound, correct crossovers).
"""

from __future__ import annotations

import math
from itertools import combinations

from repro.data.instance import Instance
from repro.query.covers import maximum_edge_packing
from repro.query.hypergraph import Hypergraph
from repro.ram.yannakakis import subset_join_sizes

__all__ = [
    "l_cartesian",
    "l_instance",
    "l_binhc",
    "yannakakis_bound",
    "theorem4_bound",
    "corollary1_bound",
    "theorem5_bound",
    "theorem7_bound",
    "worst_case_line3_bound",
    "worst_case_triangle_bound",
    "k_star",
]


def l_cartesian(sizes: list[int], p: int) -> float:
    """Eq. (1): the Cartesian-product per-instance lower bound.

    ``max over subsets S of (prod_{i in S} N_i / p)^(1/|S|)``.
    """
    best = 0.0
    n = len(sizes)
    for k in range(1, n + 1):
        for combo in combinations(sizes, k):
            prod = math.prod(combo)
            best = max(best, (prod / p) ** (1.0 / k))
    return best


def l_instance(query: Hypergraph, instance: Instance, p: int) -> float:
    """Eq. (2): the per-instance lower bound ``L_instance(p, R)``.

    ``max over S subset-of E of (|Q(R, S)| / p)^(1/|S|)`` where ``Q(R, S)``
    counts the S-combinations participating in full join results.  Holds
    for every (even multi-round) tuple-based MPC algorithm.
    """
    sizes = subset_join_sizes(instance)
    best = 0.0
    for s, cnt in sizes.items():
        if cnt > 0:
            best = max(best, (cnt / p) ** (1.0 / len(s)))
    return best


def l_binhc(query: Hypergraph, instance: Instance, p: int) -> float:
    """The BinHC load expression (Section 3.1), evaluated on exact subsets.

    ``L_BinHC = max over (x, u)`` of
    ``(sum_a prod_e |sigma_{x=a} R(e)|^{u(e)} / p)^{1 / sum u}`` where ``u``
    ranges over fractional edge packings of the residual query ``Q_x`` that
    saturate ``x``.

    We evaluate the maximum over the attribute sets ``x`` for which each
    edge contains either all of ``x`` or none of it (then the inner sum
    enumerates exactly the observed assignments), using the LP
    maximum-weight saturating packing for ``u``.  Every evaluated pair is a
    valid ``(x, u)``, so the result lower-bounds the true supremum — safe
    for the Theorem 1/2 comparisons, and exact on the hierarchical
    workloads the benchmarks use (where the relevant ``x`` are root paths
    shared by whole edge groups).
    """
    attrs = sorted(query.attributes)
    best = 0.0
    for r in range(1, len(attrs) + 1):
        for xs in combinations(attrs, r):
            x = frozenset(xs)
            containing = [
                n for n in query.edge_names if x <= query.attrs_of(n)
            ]
            clean = all(
                x <= query.attrs_of(n) or not (x & query.attrs_of(n))
                for n in query.edge_names
            )
            if not containing or not clean:
                continue
            packing = maximum_edge_packing(query, saturate=x)
            if packing is None:
                continue
            u = {e: w for e, w in packing.weights.items() if w > 1e-9}
            total_u = sum(u.values())
            if total_u <= 1e-9:
                continue
            # Observed assignments: union of projections of the containing
            # relations onto x.
            assignments: set[tuple] = set()
            deg_tables: dict[str, dict[tuple, int]] = {}
            for n in containing:
                table = instance[n].degrees(tuple(sorted(x)))
                deg_tables[n] = table
                assignments.update(table)
            acc = 0.0
            for a in assignments:
                term = 1.0
                for e, w in u.items():
                    if e in deg_tables:
                        d = deg_tables[e].get(a, 0)
                    else:
                        d = len(instance[e])
                    if d == 0:
                        term = 0.0
                        break
                    term *= d ** w
                acc += term
            if acc > 0:
                best = max(best, (acc / p) ** (1.0 / total_u))
    return best


def yannakakis_bound(in_size: int, out_size: int, p: int) -> float:
    """Section 4.1: O(IN/p + OUT/p)."""
    return in_size / p + out_size / p


def k_star(in_size: int, out_size: int) -> int:
    """``k* = ceil(log_IN OUT)`` (Theorem 4)."""
    if out_size <= 1:
        return 1
    return max(1, math.ceil(math.log(out_size) / math.log(max(2, in_size))))


def theorem4_bound(in_size: int, out_size: int, p: int) -> float:
    """Theorem 4: ``IN / p^{1/max(1, k*-1)} + (OUT/p)^{1/k*}``."""
    k = k_star(in_size, out_size)
    return in_size / (p ** (1.0 / max(1, k - 1))) + (out_size / p) ** (1.0 / k)


def corollary1_bound(in_size: int, out_size: int, p: int) -> float:
    """Corollary 1: ``IN/p + sqrt(OUT/p)`` for r-hierarchical joins."""
    return in_size / p + math.sqrt(out_size / p)


def theorem5_bound(in_size: int, out_size: int, p: int) -> float:
    """Theorem 5: ``IN/p + sqrt(IN*OUT)/p`` for the line-3 join."""
    return in_size / p + math.sqrt(in_size * out_size) / p


def theorem7_bound(in_size: int, out_size: int, p: int) -> float:
    """Theorem 7: ``IN/p + sqrt(IN*OUT)/p`` for any acyclic join."""
    return theorem5_bound(in_size, out_size, p)


def worst_case_line3_bound(in_size: int, p: int) -> float:
    """[19, 24]: ``IN/sqrt(p)`` — optimal for OUT >= p*IN (Theorem 6)."""
    return in_size / math.sqrt(p)


def worst_case_triangle_bound(in_size: int, p: int) -> float:
    """[24]: ``IN/p^{2/3}`` — optimal for OUT >= IN*p^{1/3} (Theorem 11)."""
    return in_size / (p ** (2.0 / 3.0))
