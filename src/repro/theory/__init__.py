"""Bound formulas and lower-bound evaluators (the paper's quantitative claims)."""

from repro.theory.bounds import (
    corollary1_bound,
    k_star,
    l_binhc,
    l_cartesian,
    l_instance,
    theorem4_bound,
    theorem5_bound,
    theorem7_bound,
    worst_case_line3_bound,
    worst_case_triangle_bound,
    yannakakis_bound,
)
from repro.theory.lower_bounds import (
    acyclic_lower_bound,
    corollary2_lower_bound,
    estimate_j_line3,
    exact_j_line3,
    estimate_j_triangle,
    line3_lower_bound,
    min_load_from_j,
    triangle_lower_bound,
)

__all__ = [
    "l_cartesian",
    "l_instance",
    "l_binhc",
    "yannakakis_bound",
    "k_star",
    "theorem4_bound",
    "corollary1_bound",
    "theorem5_bound",
    "theorem7_bound",
    "worst_case_line3_bound",
    "worst_case_triangle_bound",
    "line3_lower_bound",
    "acyclic_lower_bound",
    "corollary2_lower_bound",
    "triangle_lower_bound",
    "estimate_j_line3",
    "exact_j_line3",
    "estimate_j_triangle",
    "min_load_from_j",
]
