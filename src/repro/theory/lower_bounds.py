"""Lower-bound formulas and empirical J(L) estimators (Theorems 6, 8, 11).

The paper's lower bounds state that on suitable hard instances, any
tuple-based O(1)-round algorithm must incur the given load.  We cannot
prove impossibility by simulation, so the reproduction has two parts:

* the closed-form bound values (this module), checked in the benchmarks
  against every upper-bound algorithm (measured load must be >= bound, and
  our output-optimal algorithms should sit within a polylog factor);
* empirical estimates of ``J(L)`` — the maximum number of join results a
  single server can emit after receiving ``L`` tuples — on the randomized
  hard instances, validating the counting core of the proofs
  (``p * J(L) >= OUT`` forces the stated loads).
"""

from __future__ import annotations

import math
from typing import Callable

from repro.data.instance import Instance
from repro.data.seeds import rng_for

__all__ = [
    "line3_lower_bound",
    "acyclic_lower_bound",
    "corollary2_lower_bound",
    "triangle_lower_bound",
    "estimate_j_line3",
    "exact_j_line3",
    "estimate_j_triangle",
    "min_load_from_j",
]


def line3_lower_bound(in_size: int, out_size: int, p: int) -> float:
    """Theorem 6: ``min(sqrt(IN*OUT / (p log IN)), IN/sqrt(p))``.

    Holds for OUT >= IN on the Figure 4 instance family.
    """
    log_in = max(2.0, math.log2(max(2, in_size)))
    return min(
        math.sqrt(in_size * out_size / (p * log_in)),
        in_size / math.sqrt(p),
    )


def acyclic_lower_bound(in_size: int, out_size: int, p: int) -> float:
    """Theorem 8: the line-3 bound transfers to every acyclic
    non-r-hierarchical join via the Lemma 2 embedding (OUT <= IN^2)."""
    return line3_lower_bound(in_size, out_size, p)


def corollary2_lower_bound(in_size: int, p: int) -> float:
    """Corollaries 2-3: ``IN / (sqrt(p) log IN)`` at OUT = p * IN, versus
    ``L_instance = O(IN/p)`` — the gap that rules out instance-optimal
    algorithms beyond r-hierarchical joins."""
    log_in = max(2.0, math.log2(max(2, in_size)))
    return in_size / (math.sqrt(p) * log_in)


def triangle_lower_bound(in_size: int, out_size: int, p: int) -> float:
    """Theorem 11: ``min(IN/p + OUT/(p log IN), IN/p^{2/3})``."""
    log_in = max(2.0, math.log2(max(2, in_size)))
    return min(
        in_size / p + out_size / (p * log_in),
        in_size / (p ** (2.0 / 3.0)),
    )


# ----------------------------------------------------------------------
# Empirical J(L): how many results can one server emit from L tuples?
# ----------------------------------------------------------------------

def estimate_j_line3(
    instance: Instance, load: int, seed: int = 0, trials: int = 16
) -> int:
    """Estimate ``J(L)`` on a Figure 4 line-3 instance.

    Follows the proof's structure: the server loads whole groups (all tau
    tuples of one B value from R1, one C value from R3 — the proof shows
    full groups dominate) and reads R2 for free.  We take the best of
    random and degree-greedy group selections.
    """
    r1 = instance["R1"]
    r2 = instance["R2"]
    r3 = instance["R3"]
    b_groups = r1.degrees(("B",))
    c_groups = r3.degrees(("C",))
    # adjacency: b -> set of c with (b, c) in R2
    adj: dict = {}
    deg_b: dict = {}
    deg_c: dict = {}
    pos_b, pos_c = r2.positions(("B", "C"))
    for row in r2.rows:
        b, c = row[pos_b], row[pos_c]
        adj.setdefault(b, set()).add(c)
        deg_b[b] = deg_b.get(b, 0) + 1
        deg_c[c] = deg_c.get(c, 0) + 1

    tau = max(1, max(b_groups.values(), default=1))
    n_groups = max(1, load // tau)
    rng = rng_for(seed, "lower_bounds")
    b_keys = sorted(b_groups, key=repr)
    c_keys = sorted(c_groups, key=repr)

    def score(bs: list, cs: list) -> int:
        cset = set(cs)
        joined = 0
        for b in bs:
            group_b = b_groups[b]
            for c in adj.get(b, ()):
                if c in cset:
                    joined += group_b * c_groups[c]
        return joined

    best = 0
    # Degree-greedy: the densest B rows and C columns of R2.
    greedy_b = sorted(b_keys, key=lambda b: -deg_b.get(b, 0))[:n_groups]
    greedy_c = sorted(c_keys, key=lambda c: -deg_c.get(c, 0))[:n_groups]
    best = max(best, score(greedy_b, greedy_c))
    for _ in range(trials):
        bs = rng.sample(b_keys, min(n_groups, len(b_keys)))
        cs = rng.sample(c_keys, min(n_groups, len(c_keys)))
        best = max(best, score(bs, cs))
    return best


def estimate_j_triangle(
    instance: Instance, load: int, seed: int = 0, trials: int = 16
) -> int:
    """Estimate ``J(L)`` on a Figure 6 triangle instance.

    Per the proof's reduction, the server loads Cartesian products
    ``X x Y_C`` from R2 and ``X x Y_B`` from R3 (X from dom(A)) and reads
    R1 free; triangles = |X| * |R1 restricted to (Y_B x Y_C)|.
    """
    r1 = instance["R1"]
    r2 = instance["R2"]
    r3 = instance["R3"]
    a_vals = sorted({row[r2.positions(("A",))[0]] for row in r2.rows}, key=repr)
    b_vals = sorted({row[r3.positions(("B",))[0]] for row in r3.rows}, key=repr)
    c_vals = sorted({row[r2.positions(("C",))[0]] for row in r2.rows}, key=repr)
    pos_b, pos_c = r1.positions(("B", "C"))
    edges = {(row[pos_b], row[pos_c]) for row in r1.rows}
    deg_b: dict = {}
    deg_c: dict = {}
    for b, c in edges:
        deg_b[b] = deg_b.get(b, 0) + 1
        deg_c[c] = deg_c.get(c, 0) + 1

    rng = rng_for(seed, "lower_bounds")
    best = 0
    candidates_x = [
        max(1, min(len(a_vals), load // max(1, side)))
        for side in (len(b_vals), max(1, int(math.isqrt(load))), 1)
    ]
    for n_x in sorted(set(candidates_x)):
        width = max(1, load // n_x)  # how many B (and C) values we afford
        greedy_b = sorted(b_vals, key=lambda b: -deg_b.get(b, 0))[:width]
        greedy_c = sorted(c_vals, key=lambda c: -deg_c.get(c, 0))[:width]
        inside = sum(
            1 for (b, c) in edges if b in set(greedy_b) and c in set(greedy_c)
        )
        # R1 is load-restricted too (ILP1): at most `load` of the box's
        # edges can actually be present on the server.
        best = max(best, n_x * min(inside, load))
        for _ in range(trials // 4 + 1):
            bs = set(rng.sample(b_vals, min(width, len(b_vals))))
            cs = set(rng.sample(c_vals, min(width, len(c_vals))))
            inside = sum(1 for (b, c) in edges if b in bs and c in cs)
            best = max(best, n_x * min(inside, load))
    return best


def exact_j_line3(
    instance: Instance,
    load: int,
    max_groups: int = 12,
) -> int | None:
    """Exact ``J(L)`` on a Figure 4 instance, by exhaustive group choice.

    The Theorem 6 proof shows the adversary-optimal server loads whole
    groups (all tau R1-tuples of a B value / all tau R3-tuples of a C
    value); with ``g = L // tau`` groups affordable per side, the exact
    optimum enumerates every pair of g-subsets.  Exponential — only
    feasible on tiny instances, which is exactly what it is for: testing
    that the greedy/random estimator never exceeds the true optimum.

    Returns:
        The exact maximum, or ``None`` when the instance has more than
        ``max_groups`` groups per side (enumeration would blow up).
    """
    from itertools import combinations

    r1 = instance["R1"]
    r2 = instance["R2"]
    r3 = instance["R3"]
    b_groups = r1.degrees(("B",))
    c_groups = r3.degrees(("C",))
    if len(b_groups) > max_groups or len(c_groups) > max_groups:
        return None
    tau = max(1, max(b_groups.values(), default=1))
    g = max(0, load // tau)
    if g == 0:
        return 0
    pos_b, pos_c = r2.positions(("B", "C"))
    edges = {(row[pos_b], row[pos_c]) for row in r2.rows}

    best = 0
    b_keys = sorted(b_groups, key=repr)
    c_keys = sorted(c_groups, key=repr)
    for bs in combinations(b_keys, min(g, len(b_keys))):
        bset = set(bs)
        for cs in combinations(c_keys, min(g, len(c_keys))):
            cset = set(cs)
            joined = sum(
                b_groups[b] * c_groups[c]
                for (b, c) in edges
                if b in bset and c in cset
            )
            best = max(best, joined)
    return best


def min_load_from_j(
    out_size: int,
    p: int,
    j_of: Callable[[int], int],
    lo: int = 1,
    hi: int | None = None,
) -> int:
    """Smallest L with ``p * J(L) >= OUT`` (binary search over the estimator).

    This is the empirical counterpart of the proofs' counting argument: any
    O(1)-round algorithm needs at least this load on the instance, up to
    the estimator's slack.
    """
    hi = hi or max(2, out_size)
    while lo < hi:
        mid = (lo + hi) // 2
        if p * j_of(mid) >= out_size:
            hi = mid
        else:
            lo = mid + 1
    return lo
