"""Distributed relations: schema-carrying data partitioned over a group.

A :class:`DistRelation` is the MPC-side counterpart of
:class:`~repro.data.relation.Relation`: the same rows, split into one part
per local server of the group that owns it.  Rows are plain value tuples
aligned with ``attrs``; annotated executions (Section 6) thread annotations
through as extra pseudo-attribute columns, so all join machinery stays
oblivious to them.

Parts exist in up to two interchangeable representations:

* **row parts** — ``parts[i]`` is local server ``i``'s rows as a list of
  tuples (what every ``core/`` algorithm iterates), and
* **column parts** — ``column_parts[i]`` is the same data as a typed,
  dictionary-encoded :class:`~repro.data.columns.ColumnBlock`.

A relation born from :func:`distribute_relation` starts columnar (sliced
straight from the base relation's column backing, no row pass); its row
view materializes lazily on first ``.parts`` access and is then cached.
Either view converts to the other exactly — decoding is a guaranteed
round-trip — so algorithms, primitives, and the ledger observe identical
tuples regardless of which representation a relation currently holds.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.data.columns import ColumnBlock, encode_column, pack_blob
from repro.data.relation import Relation, Row, project_row
from repro.errors import MPCError, SchemaError
from repro.mpc.group import Group

__all__ = ["DistRelation", "distribute_instance", "distribute_relation"]


class DistRelation:
    """Rows of one relation, partitioned across a group's local servers.

    Parts are treated as immutable after construction: every transforming
    operation returns a fresh ``DistRelation``.  The performance substrate
    (:mod:`repro.mpc.substrate`) relies on that to cache per-relation
    derived state — column kinds, encoded keys, sorted runs, wire blobs —
    in ``_substrate``, keyed by object identity, with no invalidation
    needed.

    Args:
        name: Relation name.
        attrs: Attribute names in column order.
        parts: ``parts[i]`` holds local server ``i``'s rows.
        owned: The caller hands over freshly built lists it will never
            touch again, so the per-part defensive copy is skipped.  All
            internal transforming operations use this fast path; external
            callers holding onto their lists must leave it off.
    """

    def __init__(
        self,
        name: str,
        attrs: Sequence[str],
        parts: Sequence[list[Row]],
        *,
        owned: bool = False,
    ) -> None:
        self.name = name
        self.attrs: tuple[str, ...] = tuple(attrs)
        self._parts: list[list[Row]] | None = (
            list(parts) if owned else [list(p) for p in parts]
        )
        self._cols: list[ColumnBlock] | None = None
        self._substrate: dict = {}
        self._attr_pos: dict[str, int] | None = None

    @classmethod
    def from_column_parts(
        cls, name: str, attrs: Sequence[str], blocks: Sequence[ColumnBlock]
    ) -> "DistRelation":
        """Construct columnar-first; the row view materializes lazily."""
        rel = cls.__new__(cls)
        rel.name = name
        rel.attrs = tuple(attrs)
        rel._parts = None
        rel._cols = list(blocks)
        rel._substrate = {}
        rel._attr_pos = None
        arity = len(rel.attrs)
        for b in rel._cols:
            if b.arity != arity:
                raise SchemaError(
                    f"column part arity {b.arity} != {arity} attrs in {name!r}"
                )
        return rel

    # ------------------------------------------------------------------
    @property
    def parts(self) -> list[list[Row]]:
        """Row-tuple view of every part (lazily decoded from columns)."""
        parts = self._parts
        if parts is None:
            cols = self._cols
            assert cols is not None
            parts = self._parts = [b.rows() for b in cols]
        return parts

    @property
    def column_parts(self) -> list[ColumnBlock] | None:
        """Columnar view, or ``None`` if this relation is row-backed."""
        return self._cols

    def column_values(self, part_idx: int, col: int) -> list:
        """One part's values in one column (no row materialization needed)."""
        cols = self._cols
        if cols is not None:
            return cols[part_idx].column_values(col)
        return [row[col] for row in self.parts[part_idx]]

    def compact(self) -> "DistRelation":
        """Switch to columnar-only storage (drops the cached row view).

        Used by result caches: the columnar form is the compact resident
        representation; ``.parts`` re-materializes rows on demand.  Content
        is unchanged, so identity-keyed substrate caches stay valid.
        """
        if self._cols is None:
            arity = len(self.attrs)
            self._cols = [
                ColumnBlock.from_rows(p, arity) for p in self.parts
            ]
        self._parts = None
        return self

    def wire_blob(self, i: int) -> bytes:
        """Part ``i``'s canonical wire encoding (cached; see ``columns.pack_blob``)."""
        cache: dict[int, bytes] = self._substrate.setdefault("wire", {})
        blob = cache.get(i)
        if blob is None:
            cols = self._cols
            block = cols[i] if cols is not None else None
            blob = pack_blob(self.parts[i] if block is None else (), block)
            cache[i] = blob
        return blob

    @property
    def num_parts(self) -> int:
        cols = self._cols
        if self._parts is None and cols is not None:
            return len(cols)
        return len(self.parts)

    def total_size(self) -> int:
        cols = self._cols
        if self._parts is None and cols is not None:
            return sum(b.n for b in cols)
        return sum(len(p) for p in self.parts)

    def positions(self, attrs: Sequence[str]) -> tuple[int, ...]:
        index = self._attr_pos
        if index is None:
            index = self._attr_pos = {a: i for i, a in enumerate(self.attrs)}
        try:
            return tuple(index[a] for a in attrs)
        except KeyError as exc:
            raise SchemaError(
                f"attributes {attrs} not all present in {self.name!r}{self.attrs}"
            ) from exc

    def all_rows(self) -> list[Row]:
        """Flatten all parts (simulation-side convenience, no load)."""
        out: list[Row] = []
        for p in self.parts:
            out.extend(p)
        return out

    def to_relation(self) -> Relation:
        """Materialize as a (deduplicated) RAM relation."""
        return Relation(self.name, self.attrs, self.all_rows())

    def map_parts(self, fn: Callable[[list[Row]], list[Row]], name: str | None = None) -> "DistRelation":
        """Apply a local (free) transformation to every part."""
        return DistRelation(
            name or self.name, self.attrs, [fn(p) for p in self.parts], owned=True
        )

    def filter_local(self, predicate: Callable[[Row], bool], name: str | None = None) -> "DistRelation":
        """Local filter (no communication)."""
        return DistRelation(
            name or self.name,
            self.attrs,
            [[r for r in p if predicate(r)] for p in self.parts],
            owned=True,
        )

    def rehash(self, group: Group, key_attrs: Sequence[str], label: str, salt: int = 0) -> "DistRelation":
        """Hash-partition by the given attributes (counts as communication)."""
        if self.num_parts != group.size:
            raise MPCError(
                f"relation has {self.num_parts} parts but group size is {group.size}"
            )
        pos = self.positions(key_attrs)
        parts = group.hash_route(
            self.parts, lambda row: project_row(row, pos), label, salt=salt
        )
        return DistRelation(self.name, self.attrs, parts, owned=True)

    def with_parts(
        self,
        parts: Sequence[list[Row]],
        name: str | None = None,
        *,
        owned: bool = False,
    ) -> "DistRelation":
        return DistRelation(name or self.name, self.attrs, parts, owned=owned)

    def empty_like(self, num_parts: int | None = None) -> "DistRelation":
        n = num_parts if num_parts is not None else self.num_parts
        return DistRelation(
            self.name, self.attrs, [[] for _ in range(n)], owned=True
        )

    def __repr__(self) -> str:
        return (
            f"DistRelation<{self.name}({','.join(self.attrs)}), "
            f"{self.total_size()} rows over {self.num_parts} parts>"
        )


def distribute_relation(rel: Relation, group: Group, annotate: bool = False) -> DistRelation:
    """Spread a relation evenly over a group (initial placement is free).

    Slices the base relation's columnar backing directly — part ``i``
    takes rows ``i, i+p, i+2p, ...`` (the model's "evenly distributed"
    initial state, identical to the historical round-robin deal) — so no
    row tuples are built until an algorithm first reads ``.parts``.

    Args:
        rel: The RAM relation.
        group: Target group.
        annotate: If True and ``rel`` is annotated, append the annotation as
            a trailing pseudo-attribute column named ``#w:<name>``.
    """
    if annotate and rel.annotated:
        attrs = rel.attrs + (f"#w:{rel.name}",)
        block = ColumnBlock(
            len(rel),
            rel.columns.columns + (encode_column(list(rel.annotations or ())),),
        )
    else:
        attrs = rel.attrs
        block = rel.columns
    p = group.size
    blocks = [block.take_stride(i, p) for i in range(p)]
    return DistRelation.from_column_parts(rel.name, attrs, blocks)


def distribute_instance(instance, group: Group, annotate: bool = False) -> dict[str, DistRelation]:
    """Distribute every relation of an instance over the group."""
    return {
        name: distribute_relation(rel, group, annotate=annotate)
        for name, rel in instance.relations.items()
    }
