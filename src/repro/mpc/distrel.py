"""Distributed relations: schema-carrying data partitioned over a group.

A :class:`DistRelation` is the MPC-side counterpart of
:class:`~repro.data.relation.Relation`: the same rows, split into one part
per local server of the group that owns it.  Rows are plain value tuples
aligned with ``attrs``; annotated executions (Section 6) thread annotations
through as extra pseudo-attribute columns, so all join machinery stays
oblivious to them.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.data.relation import Relation, Row, project_row
from repro.errors import MPCError, SchemaError
from repro.mpc.group import Group

__all__ = ["DistRelation", "distribute_instance", "distribute_relation"]


class DistRelation:
    """Rows of one relation, partitioned across a group's local servers.

    Parts are treated as immutable after construction: every transforming
    operation returns a fresh ``DistRelation``.  The performance substrate
    (:mod:`repro.mpc.substrate`) relies on that to cache per-relation
    derived state — column kinds, encoded keys, sorted runs — in
    ``_substrate``, keyed by object identity, with no invalidation needed.

    Attributes:
        name: Relation name.
        attrs: Attribute names in column order.
        parts: ``parts[i]`` holds local server ``i``'s rows.
    """

    def __init__(self, name: str, attrs: Sequence[str], parts: Sequence[list[Row]]) -> None:
        self.name = name
        self.attrs: tuple[str, ...] = tuple(attrs)
        self.parts: list[list[Row]] = [list(p) for p in parts]
        self._substrate: dict = {}
        self._attr_pos: dict[str, int] | None = None

    # ------------------------------------------------------------------
    @property
    def num_parts(self) -> int:
        return len(self.parts)

    def total_size(self) -> int:
        return sum(len(p) for p in self.parts)

    def positions(self, attrs: Sequence[str]) -> tuple[int, ...]:
        index = self._attr_pos
        if index is None:
            index = self._attr_pos = {a: i for i, a in enumerate(self.attrs)}
        try:
            return tuple(index[a] for a in attrs)
        except KeyError as exc:
            raise SchemaError(
                f"attributes {attrs} not all present in {self.name!r}{self.attrs}"
            ) from exc

    def all_rows(self) -> list[Row]:
        """Flatten all parts (simulation-side convenience, no load)."""
        out: list[Row] = []
        for p in self.parts:
            out.extend(p)
        return out

    def to_relation(self) -> Relation:
        """Materialize as a (deduplicated) RAM relation."""
        return Relation(self.name, self.attrs, self.all_rows())

    def map_parts(self, fn: Callable[[list[Row]], list[Row]], name: str | None = None) -> "DistRelation":
        """Apply a local (free) transformation to every part."""
        return DistRelation(name or self.name, self.attrs, [fn(p) for p in self.parts])

    def filter_local(self, predicate: Callable[[Row], bool], name: str | None = None) -> "DistRelation":
        """Local filter (no communication)."""
        return DistRelation(
            name or self.name,
            self.attrs,
            [[r for r in p if predicate(r)] for p in self.parts],
        )

    def rehash(self, group: Group, key_attrs: Sequence[str], label: str, salt: int = 0) -> "DistRelation":
        """Hash-partition by the given attributes (counts as communication)."""
        if len(self.parts) != group.size:
            raise MPCError(
                f"relation has {len(self.parts)} parts but group size is {group.size}"
            )
        pos = self.positions(key_attrs)
        parts = group.hash_route(
            self.parts, lambda row: project_row(row, pos), label, salt=salt
        )
        return DistRelation(self.name, self.attrs, parts)

    def with_parts(self, parts: Sequence[list[Row]], name: str | None = None) -> "DistRelation":
        return DistRelation(name or self.name, self.attrs, parts)

    def empty_like(self, num_parts: int | None = None) -> "DistRelation":
        n = num_parts if num_parts is not None else len(self.parts)
        return DistRelation(self.name, self.attrs, [[] for _ in range(n)])

    def __repr__(self) -> str:
        return (
            f"DistRelation<{self.name}({','.join(self.attrs)}), "
            f"{self.total_size()} rows over {len(self.parts)} parts>"
        )


def distribute_relation(rel: Relation, group: Group, annotate: bool = False) -> DistRelation:
    """Spread a relation evenly over a group (initial placement is free).

    Args:
        rel: The RAM relation.
        group: Target group; rows are dealt round-robin (the model's "evenly
            distributed" initial state).
        annotate: If True and ``rel`` is annotated, append the annotation as
            a trailing pseudo-attribute column named ``#w:<name>``.
    """
    if annotate and rel.annotated:
        attrs = rel.attrs + (f"#w:{rel.name}",)
        anns = rel.annotations or ()
        rows: Iterable[Row] = (r + (w,) for r, w in zip(rel.rows, anns))
    else:
        attrs = rel.attrs
        rows = rel.rows
    parts: list[list[Row]] = [[] for _ in range(group.size)]
    for i, row in enumerate(rows):
        parts[i % group.size].append(row)
    return DistRelation(rel.name, attrs, parts)


def distribute_instance(instance, group: Group, annotate: bool = False) -> dict[str, DistRelation]:
    """Distribute every relation of an instance over the group."""
    return {
        name: distribute_relation(rel, group, annotate=annotate)
        for name, rel in instance.relations.items()
    }
