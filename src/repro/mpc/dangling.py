"""Dangling-tuple removal: the distributed full reducer.

A constant number of semi-joins along a join tree removes every tuple that
does not participate in any join result (Yannakakis [34]; paper Section 2).
Linear load per semi-join, O(1) rounds total — this is the preprocessing
step of every multi-round algorithm in the paper.

Substrate interplay (see :mod:`repro.mpc.substrate` and DESIGN.md): every
semi-join returns a *fresh* ``DistRelation``, so sweeps never see a stale
sorted run, while the filter side of the down sweep — one parent filtering
all of its children — keeps its cached projected keys and sorted runs warm
across consecutive semi-joins.
"""

from __future__ import annotations

from repro.mpc.distrel import DistRelation
from repro.mpc.group import Group
from repro.mpc.primitives import semi_join
from repro.query.hypergraph import Hypergraph, join_tree

__all__ = ["remove_dangling", "reduce_instance"]


def remove_dangling(
    group: Group,
    query: Hypergraph,
    rels: dict[str, DistRelation],
    label: str = "dangling",
) -> dict[str, DistRelation]:
    """Two semi-join sweeps over a join tree (leaf-up, then root-down).

    Returns a new relation mapping in which every remaining tuple extends to
    at least one full join result.
    """
    tree = join_tree(query)
    out = dict(rels)
    for node in tree.bottom_up():
        par = tree.parent[node]
        if par is not None:
            out[par] = semi_join(group, out[par], out[node], f"{label}/up")
    for node in tree.top_down():
        for child in tree.children[node]:
            out[child] = semi_join(group, out[child], out[node], f"{label}/down")
    return out


def reduce_instance(
    group: Group,
    query: Hypergraph,
    rels: dict[str, DistRelation],
    label: str = "reduce",
) -> tuple[Hypergraph, dict[str, DistRelation]]:
    """Apply the reduce procedure to a dangling-free distributed instance.

    Once dangling tuples are gone, a relation whose edge is contained in
    another edge no longer constrains the join (its tuples are exactly the
    projections of the containing relation), so it can be dropped — paper
    Section 3.2, footnote 7.  A defensive semi-join keeps the containing
    relation consistent even if the caller skipped dangling removal.

    Returns:
        ``(reduced_query, reduced_relations)``.
    """
    reduced_query, witness = query.reduce()
    out = dict(rels)
    for removed, survivor in witness.items():
        out[survivor] = semi_join(group, out[survivor], out[removed], f"{label}/fold")
        del out[removed]
    return reduced_query, out
