"""The MPC simulator: cluster ledger, server groups, and Section 2 primitives."""

from repro.mpc.cluster import Cluster, LoadReport
from repro.mpc.dangling import reduce_instance, remove_dangling
from repro.mpc.distrel import DistRelation, distribute_instance, distribute_relation
from repro.mpc.group import Group
from repro.mpc.hashing import stable_hash
from repro.mpc.packing import parallel_packing, server_allocation
from repro.mpc.primitives import (
    attach_degrees,
    distinct_keys,
    multi_numbering,
    multi_search,
    sample_sort,
    semi_join,
    sum_by_key,
)

__all__ = [
    "Cluster",
    "LoadReport",
    "Group",
    "DistRelation",
    "distribute_instance",
    "distribute_relation",
    "stable_hash",
    "sample_sort",
    "sum_by_key",
    "multi_numbering",
    "multi_search",
    "semi_join",
    "attach_degrees",
    "distinct_keys",
    "parallel_packing",
    "server_allocation",
    "remove_dangling",
    "reduce_instance",
]
