"""The MPC simulator: cluster ledger, server groups, and Section 2 primitives."""

from repro.mpc.backends import (
    Backend,
    MultiprocessBackend,
    SerialBackend,
    available_backends,
    get_backend,
    register_backend,
    shutdown_backends,
)
from repro.mpc.cluster import Cluster, LoadReport
from repro.mpc.dangling import reduce_instance, remove_dangling
from repro.mpc.distrel import DistRelation, distribute_instance, distribute_relation
from repro.mpc.group import Group
from repro.mpc.hashing import stable_hash
from repro.mpc.packing import parallel_packing, server_allocation
from repro.mpc.primitives import (
    attach_degrees,
    count_by_key,
    distinct_keys,
    fold_by_key,
    multi_numbering,
    multi_search,
    number_rows,
    sample_sort,
    search_rows,
    semi_join,
    sum_by_key,
)
from repro.mpc.substrate import (
    cache_disabled,
    caching_enabled,
    set_caching,
    sorted_run,
)

__all__ = [
    "Cluster",
    "LoadReport",
    "Group",
    "Backend",
    "SerialBackend",
    "MultiprocessBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "shutdown_backends",
    "DistRelation",
    "distribute_instance",
    "distribute_relation",
    "stable_hash",
    "sample_sort",
    "sum_by_key",
    "fold_by_key",
    "count_by_key",
    "multi_numbering",
    "number_rows",
    "multi_search",
    "search_rows",
    "semi_join",
    "attach_degrees",
    "distinct_keys",
    "parallel_packing",
    "server_allocation",
    "remove_dangling",
    "reduce_instance",
    "sorted_run",
    "caching_enabled",
    "set_caching",
    "cache_disabled",
]
