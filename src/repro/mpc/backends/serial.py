"""The serial in-process backend: the conformance reference.

Runs every per-server loop inline in the calling process — exactly the
execution the simulator had before the backend seam existed.  All other
backends are differentially tested against this one.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.mpc.backends.base import Backend, deliver_local

__all__ = ["SerialBackend"]


class SerialBackend(Backend):
    """Single-process execution; the reference for every other backend."""

    name = "serial"

    def exchange(
        self,
        outboxes: Sequence[Iterable[tuple[int, Any]]],
        size: int,
        count_self: bool,
    ) -> tuple[list[list[Any]], list[int]]:
        return deliver_local(outboxes, size, count_self)

    def map_parts(
        self,
        fn: Callable[[list, Any, int], Any],
        parts: Sequence[list],
        common: Any = None,
        owner: Any = None,
    ) -> list[Any]:
        return [fn(part, common, i) for i, part in enumerate(parts)]
