"""The serial in-process backend: the conformance reference.

Runs every per-server loop inline in the calling process — exactly the
execution the simulator had before the backend seam existed.  All other
backends are differentially tested against this one.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.mpc.backends.base import Backend, deliver_local

__all__ = ["SerialBackend"]


class SerialBackend(Backend):
    """Single-process execution; the reference for every other backend."""

    name = "serial"

    def exchange(
        self,
        outboxes: Sequence[Iterable[tuple[int, Any]]],
        size: int,
        count_self: bool,
    ) -> tuple[list[list[Any]], list[int]]:
        return deliver_local(outboxes, size, count_self)

    def map_parts(
        self,
        fn: Callable[[list, Any, int], Any],
        parts: Sequence[list],
        common: Any = None,
        owner: Any = None,
    ) -> list[Any]:
        self.requests += 1
        return [fn(part, common, i) for i, part in enumerate(parts)]

    def run_ops(
        self,
        ops: Sequence[tuple[Callable, Sequence[list], Any, Any]],
        collect: bool = True,
        meter: Any = None,
        span: Any = None,
    ) -> list[Any]:
        """The trivial loop, counted as one request round.

        With ``collect=False`` nothing executes: serial holds no
        worker-side state (memos live on the relations' substrate, not
        here), so a discarded re-execution would have no observable
        effect on any future call.  ``meter``/``span`` are accepted for
        interface parity and ignored: nothing crosses a process boundary,
        so there is no wire traffic to attribute and no worker round to
        trace.
        """
        self.requests += 1
        if not collect:
            return [None] * len(ops)
        return [
            [fn(part, common, i) for i, part in enumerate(parts)]
            for fn, parts, common, _owner in ops
        ]
