"""Zero-copy shared-memory transport over the multiprocess worker pool.

:class:`SharedMemoryBackend` keeps the supervised pool, the worker memo
protocol, and the recovery ladder of
:class:`~repro.mpc.backends.multiprocess.MultiprocessBackend` — it changes
only *how part bytes reach workers*.  Instead of riding the request pipe
every time a worker needs them, part payloads are interned once into a
coordinator-owned **arena** of ``multiprocessing.shared_memory`` segments,
content-addressed by the same blake2b fingerprints the base backend
already computes, and requests carry only tiny
``("shm", segment, offset, length, fmt)`` descriptors:

* **Write once per content, ever.**  The base backend re-ships a part
  whenever the worker memo key ``(fn, common, fp, idx)`` is cold — a new
  function or a new ``common`` over the *same* part pays the bytes again,
  and a respawned worker pays them for everything it had.  The arena is
  keyed by content fingerprint alone, so every one of those re-sends
  collapses to a descriptor; a respawned worker re-seeds its memo from
  the segments it re-attaches, shipping nothing.
* **Zero-copy decode.**  Interned parts use the *frame* format
  (:func:`repro.data.columns.pack_frame`): workers map the segment
  read-only and rebuild each :class:`~repro.data.columns.ColumnBlock`
  as ``memoryview`` casts straight into it — no bytes are copied until a
  cache miss actually materializes rows for the compute.
* **Large commons ride the arena too.**  The base backend re-pickles and
  re-ships a step's ``common`` payload in every round's request; here
  anything above a small threshold is interned (keyed by the fingerprint
  of its pickled bytes) and replaced by a descriptor, which also serves
  as the stable worker cache-key component.

Lifecycle: segments are created lazily by the coordinator, grow as an
append-only bump allocator (content-addressed entries are immutable, so
there is nothing to mutate or evict — the arena is bounded by the volume
of *distinct* part content a session touches, and unused segments cost
address space, not RAM, until pages are touched), and are unlinked in
:meth:`SharedMemoryBackend.close`.  POSIX keeps an unlinked segment alive
until the last mapper closes it, so close order vs. worker shutdown is a
non-issue; if the coordinator dies without closing, the stdlib resource
tracker unlinks its registrations at interpreter exit.  Workers attaching
under a ``spawn`` start method immediately *unregister* the attachment
from their own resource tracker — otherwise a dying worker's tracker
would unlink segments the rest of the pool still reads (the well-known
``SharedMemory`` attach-side tracker hazard; under ``fork`` the tracker
process is shared with the coordinator and the registration is an
idempotent set-add, so unregistering there would be wrong).

Fault interaction is inherited unchanged: a killed or hung worker is
respawned and its slice resubmitted (descriptors, not bytes), inline
degradation recomputes from coordinator-held parts, and the chaos wrapper
holds the whole stack to the bit-identical conformance contract.
"""

from __future__ import annotations

import os
import pickle
import threading
from hashlib import blake2b
from typing import Any, Callable, Sequence

from repro.data.columns import pack_frame, unpack_frame
from repro.mpc.backends.multiprocess import _PROTO, MultiprocessBackend

__all__ = [
    "SharedMemoryBackend",
    "read_descriptor",
    "read_descriptor_part",
    "shm_supported",
]

#: Arena segment granularity.  Payloads larger than this get a segment of
#: their own; smaller ones pack together.  4 MiB keeps segment counts low
#: without reserving silly amounts per small session.
_SEGMENT_BYTES = 1 << 22

#: ``common`` payloads below this many pickled bytes ship inline — a
#: descriptor plus a worker-side segment lookup isn't worth it.
_COMMON_INLINE_MAX = 1024


def shm_supported() -> bool:
    """Probe: can this platform create/attach/unlink a shm segment?

    Used by the registry to decide whether to expose the ``"shm"`` name at
    all, so CI matrix cells on platforms without a usable ``/dev/shm``
    (or the Windows section-object equivalent) skip cleanly instead of
    failing at first use.  The result is cached per process.
    """
    global _SUPPORTED
    if _SUPPORTED is None:
        try:
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(create=True, size=16)
            seg.buf[0] = 1
            seg.close()
            seg.unlink()
            _SUPPORTED = True
        except Exception:  # noqa: BLE001 - any failure means "not here"
            _SUPPORTED = False
    return _SUPPORTED


_SUPPORTED: bool | None = None


# ----------------------------------------------------------------------
# Worker side: attach-and-read descriptor resolution
# ----------------------------------------------------------------------

_attached: dict[str, Any] = {}
_attached_lock = threading.Lock()

#: Process-wide segment name sequence.  Shared across arenas: several
#: backends can coexist in one process (the registry's ``shm`` instance
#: plus chaos wrappers' private inners), and per-arena counters would
#: hand them colliding segment names.
_name_seq = iter(range(1 << 62)).__next__


def _spawn_start_method() -> bool:
    import multiprocessing as mp

    return "fork" not in mp.get_all_start_methods()


def _segment(name: str):
    """Attach (once per process) to a named arena segment."""
    seg = _attached.get(name)
    if seg is None:
        with _attached_lock:
            seg = _attached.get(name)
            if seg is None:
                from multiprocessing import shared_memory

                seg = shared_memory.SharedMemory(name=name)
                if _spawn_start_method():
                    # Attaching registered the segment with THIS process's
                    # resource tracker, which would unlink it when this
                    # worker dies — under the coordinator's feet.  The
                    # coordinator owns cleanup; forget the registration.
                    from multiprocessing import resource_tracker

                    try:
                        resource_tracker.unregister(
                            seg._name, "shared_memory"  # noqa: SLF001
                        )
                    except Exception:  # noqa: BLE001 - best-effort
                        pass
                _attached[name] = seg
    return seg


def read_descriptor(desc: tuple) -> memoryview:
    """Resolve a descriptor to a zero-copy view of its payload bytes."""
    _tag, name, offset, length, _fmt = desc
    return _segment(name).buf[offset:offset + length]


def read_descriptor_part(desc: tuple) -> list:
    """Resolve a part descriptor to its row list.

    Frame-format payloads decode through
    :func:`~repro.data.columns.unpack_frame_block` — the
    :class:`~repro.data.columns.ColumnBlock` is rebuilt as memoryview
    casts into the mapped segment (zero-copy); rows materialize from it
    only because the compute functions take row lists.  ``"bytes"``
    payloads (non-columnar fallback) unpickle as usual.
    """
    view = read_descriptor(desc)
    if desc[4] == "frame":
        return unpack_frame(view)
    return pickle.loads(view)


def _reset_worker_state() -> None:
    """Drop cached attachments (tests; harmless data races aside)."""
    with _attached_lock:
        for seg in _attached.values():
            try:
                seg.close()
            except Exception:  # noqa: BLE001
                pass
        _attached.clear()


# ----------------------------------------------------------------------
# Coordinator side: the arena and the backend
# ----------------------------------------------------------------------


class _ShmArena:
    """Append-only, content-addressed store over shared-memory segments.

    ``intern(fp, payload, fmt)`` writes ``payload`` at most once per
    ``(fp, fmt)`` and returns the stable descriptor tuple; entries are
    immutable and never move, so descriptors handed to workers stay valid
    for the arena's lifetime.  Writes bump-allocate within the newest
    segment (16-byte aligned so frame-internal offsets keep their
    alignment) and open a fresh segment when the payload doesn't fit.
    All mutation happens under the owning backend's I/O lock.
    """

    def __init__(self, segment_bytes: int = _SEGMENT_BYTES) -> None:
        self.segment_bytes = segment_bytes
        self._segments: list[Any] = []
        self._cursor = 0
        self._index: dict[tuple[bytes, str], tuple] = {}
        self.bytes_interned = 0

    def lookup(self, fp: bytes, fmt: str) -> tuple | None:
        return self._index.get((fp, fmt))

    def intern(self, fp: bytes, payload: bytes, fmt: str) -> tuple:
        desc = self._index.get((fp, fmt))
        if desc is None:
            name, offset = self._write(payload)
            desc = ("shm", name, offset, len(payload), fmt)
            self._index[(fp, fmt)] = desc
        return desc

    def _write(self, payload: bytes) -> tuple[str, int]:
        from multiprocessing import shared_memory

        n = len(payload)
        if not self._segments or self._cursor + n > self._segments[-1].size:
            # PID-tagged names make stale segments attributable (and
            # sweepable) if a coordinator is SIGKILLed mid-session.
            name = f"repro-{os.getpid()}-{_name_seq()}"
            seg = shared_memory.SharedMemory(
                name=name, create=True, size=max(self.segment_bytes, n)
            )
            self._segments.append(seg)
            self._cursor = 0
        seg = self._segments[-1]
        offset = self._cursor
        seg.buf[offset:offset + n] = payload
        self._cursor = (offset + n + 15) // 16 * 16
        self.bytes_interned += n
        return seg.name, offset

    @property
    def segments(self) -> int:
        return len(self._segments)

    @property
    def entries(self) -> int:
        return len(self._index)

    def destroy(self) -> None:
        """Close and unlink every segment; forget the index.  Idempotent."""
        segments, self._segments = self._segments, []
        self._index = {}
        self._cursor = 0
        for seg in segments:
            try:
                seg.close()
            except Exception:  # noqa: BLE001 - already closed
                pass
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


class SharedMemoryBackend(MultiprocessBackend):
    """Worker-pool backend shipping parts as shared-memory descriptors.

    Same constructor knobs, supervision policy, and worker protocol as
    :class:`MultiprocessBackend`; see the module docstring for what the
    arena changes.  Extra :meth:`wire_stats` keys:

    ``shm_segments`` / ``shm_entries`` / ``shm_bytes_interned``
        Arena shape: live segments, distinct interned payloads, and the
        cumulative bytes written into shared memory (each distinct
        content counted once — this is the "ship once" half of the
        ledger; ``bytes_shipped`` inherits that one-time charge).
    ``descriptor_ships``
        Jobs whose payload crossed the pipe as a descriptor instead of
        bytes — re-sends that the base backend would have paid for in
        full.
    """

    name = "shm"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._arena = _ShmArena()
        self._descriptor_ships = 0

    # -- transport overrides -------------------------------------------
    def _pack_common(self, common_bytes: bytes) -> Any:
        if len(common_bytes) <= _COMMON_INLINE_MAX:
            return common_bytes
        fp = blake2b(common_bytes, digest_size=16).digest()
        return self._arena.intern(fp, common_bytes, "bytes")

    def _blob_getter(
        self, parts: Sequence[list], owner: Any, blobs: list[bytes] | None,
        meter: Any = None,
    ) -> Callable[[int], Any]:
        """Descriptor supplier: intern once per content, then refer.

        Falls back to the base pipe-shipping getter when parts have no
        fingerprints (no owner / unpicklable rows) — the arena is
        content-addressed, so nameless content has nowhere to live.
        ``meter`` mirrors the base semantics: it is charged only when
        content is actually interned (the one-time boundary crossing),
        not for descriptor re-sends — so a fully warm query meters zero
        part bytes on this backend, exactly like ``bytes_shipped``.
        """
        store = getattr(owner, "_substrate", None) if owner is not None else None
        fps = store.get("backend_fp") if store is not None else None
        base_get = super()._blob_getter(parts, owner, blobs, meter)
        if fps is None:
            return base_get
        column_parts = getattr(owner, "column_parts", None)
        if getattr(owner, "parts", None) is not parts:
            column_parts = None

        def get(idx: int) -> Any:
            fp = fps[idx]
            desc = self._arena.lookup(fp, "frame")
            if desc is None:
                desc = self._arena.lookup(fp, "bytes")
            if desc is None:
                block = column_parts[idx] if column_parts is not None else None
                try:
                    payload = pack_frame(
                        parts[idx] if block is None else (), block
                    )
                    fmt = "frame"
                except Exception:  # noqa: BLE001 - unframeable: pickle rows
                    payload = pickle.dumps(parts[idx], _PROTO)
                    fmt = "bytes"
                desc = self._arena.intern(fp, payload, fmt)
                # The content crossed a process boundary exactly once;
                # charge it like a ship so bytes_shipped stays comparable
                # across backends.
                baseline = 0
                if self._track_baseline:
                    try:
                        baseline = len(pickle.dumps(parts[idx], _PROTO))
                    except Exception:  # noqa: BLE001 - best-effort
                        pass
                with self._stats_lock:
                    self._wire_parts += 1
                    self._wire_bytes += len(payload)
                    self._wire_baseline += baseline
                if meter is not None:
                    meter.add(len(payload))
            else:
                with self._stats_lock:
                    self._descriptor_ships += 1
            return desc

        return get

    # -- observability / lifecycle -------------------------------------
    def wire_stats(self) -> dict:
        stats = super().wire_stats()
        with self._stats_lock:
            stats["shm_segments"] = self._arena.segments
            stats["shm_entries"] = self._arena.entries
            stats["shm_bytes_interned"] = self._arena.bytes_interned
            stats["descriptor_ships"] = self._descriptor_ships
        return stats

    def close(self) -> None:
        super().close()
        self._arena.destroy()
