"""Shared-nothing worker-process backend with worker supervision.

Runs the pluggable per-server compute stages (:meth:`Backend.map_parts`,
:meth:`Backend.run_ops`) on a pool of long-lived worker processes.
Design points:

* **Shared-nothing workers.**  Workers receive pure work items as pickled
  batches — one request per worker per round — and hold no simulator
  state beyond their local caches.  All coordination (exchange routing,
  splitters, the load ledger) stays in the coordinator process, so the
  ledger and every routing decision are byte-identical to the serial
  reference by construction.
* **Batched op rounds.**  One request carries a whole *chain* of
  map-parts-shaped steps (``("ops", collect, [(fn_ref, common_bytes,
  jobs), ...], trace_ctx)``), so a fused physical-plan group executes in a single
  IPC round-trip instead of one per primitive step; a plain
  ``map_parts`` call is the one-step special case of the same protocol.
  The cumulative round count is observable as :attr:`Backend.requests`.
* **Worker supervision.**  Every round is bounded by a configurable
  ``round_timeout``: the coordinator polls worker pipes instead of
  blocking, so a worker that died (broken pipe, EOF) or hangs past the
  timeout is detected, killed if needed, and **respawned alone** — the
  rest of the pool keeps its processes and caches.  Replies already
  received in the failed round are kept; only the failed worker's
  unacknowledged slice is resubmitted, bounded by ``retry_budget``
  resubmission rounds with exponential backoff.  When the budget is
  spent the remaining slice degrades to inline (serial) execution in
  the coordinator rather than failing the query — every step of the
  ladder recomputes the same pure function on the same immutable parts,
  so outputs and ledgers are bit-identical to the fault-free run (the
  conformance grid enforces this under the ``chaos`` backend).
  Recovery events are observable via :meth:`fault_stats`.
* **Deterministic part affinity.**  Part ``i`` always goes to worker
  ``i mod W``, so repeated computations over the same immutable parts hit
  the same worker.
* **Worker-local content-addressed caches.**  When the caller identifies
  the owning relation (``owner=``), parts are fingerprinted by content and
  each worker memoizes ``(fn, common, fingerprint, index) -> pickled
  result``.  A part is shipped to its worker at most once per content; a
  repeated computation — including one on a *fresh* ``DistRelation``
  carrying the same rows, which the coordinator-side substrate caches
  (keyed by object identity) cannot catch — costs one tiny request plus the
  result bytes.  This is the cross-request analogue of the substrate's
  sorted-run cache, kept worker-local exactly so no shared mutable state
  exists between processes.  The coordinator mirrors each worker's LRU
  bookkeeping, so cache handshakes never need an extra round trip; a
  respawned worker's mirror is cleared, so its memo re-seeds lazily as
  parts are next used.
  With ``collect=False`` (plan replay: the caller's outputs are pinned by
  a recording) cached hits are answered with a tiny ack instead of the
  result bytes, and misses recompute-and-cache without shipping the
  result back — the round refreshes worker state at near-zero wire cost.
* **Columnar wire format.**  Parts cross the process boundary as the
  compact blobs of :func:`repro.data.columns.pack_blob` — per-column
  minimal-width arrays with shared dictionaries and optional zlib —
  instead of pickled tuple lists.  Owners that are columnar-backed
  (:class:`~repro.mpc.distrel.DistRelation`) supply pre-encoded, cached
  blobs directly; everything else is packed at ship time, with a pickle
  fallback inside the blob for rows the columnar form cannot represent.
  Decoding is an exact round-trip, so workers compute on *identical* row
  lists and results cannot differ from the serial reference.  The
  cumulative cost of shipped parts is observable via :meth:`wire_stats`
  (set ``REPRO_WIRE_BASELINE=1`` to also track what pickled tuple lists
  would have cost — benchmarks use this for the compression gate).
* **Message delivery stays in the coordinator.**  ``exchange`` outboxes
  are built by coordinator-side algorithm code against coordinator-held
  parts; routing them through workers would serialize every payload twice
  for zero compute gain.  The seam still flows through the backend so a
  future distributed backend can override it.

Anything unpicklable (closures, exotic row values) falls back to inline
execution, keeping behaviour identical at the cost of the speedup.
"""

from __future__ import annotations

import atexit
import os
import pickle
import sys
import threading
import time
from collections import OrderedDict
from hashlib import blake2b
from typing import Any, Callable, Iterable, Sequence

from repro.data.columns import pack_blob, unpack_blob
from repro.errors import MPCError, RetryExhausted, RoundTimeout, WorkerDied
from repro.mpc.backends.base import Backend, deliver_local

__all__ = ["MultiprocessBackend"]

_PROTO = pickle.HIGHEST_PROTOCOL

#: Max memoized results per worker (LRU).  Mirrored by the coordinator.
_CACHE_ENTRIES = 256

#: Environment overrides for the supervision knobs (constructor wins).
ROUND_TIMEOUT_ENV = "REPRO_ROUND_TIMEOUT"
RETRY_BUDGET_ENV = "REPRO_RETRY_BUDGET"


def _resolve_fn(ref: str) -> Callable:
    """Import ``"module:qualname"`` (worker-side function lookup)."""
    import importlib

    mod_name, _, qual = ref.partition(":")
    obj: Any = importlib.import_module(mod_name)
    for attr in qual.split("."):
        obj = getattr(obj, attr)
    return obj


#: Sentinel for "this step's common has not been decoded yet" — decoding
#: is deferred until a job actually computes, so an all-hit (ack) round
#: never unpickles the common at all.
_UNSET = object()


def _decode_common(spec: Any) -> Any:
    """Decode a step's ``common``: pickled bytes, or a shm descriptor."""
    if isinstance(spec, tuple):
        from repro.mpc.backends.shm import read_descriptor

        return pickle.loads(read_descriptor(spec))
    return pickle.loads(spec)


def _decode_part(blob: Any) -> list:
    """Decode a job's part: a wire blob, or a shm descriptor (zero-copy)."""
    if isinstance(blob, tuple):
        from repro.mpc.backends.shm import read_descriptor_part

        return read_descriptor_part(blob)
    return unpack_blob(blob)


def _worker_main(conn, sys_path: list[str], cache_entries: int) -> None:
    """Worker loop: batched op requests in, per-job pickled replies out.

    A request is ``("ops", collect, steps, ctx)``; each step is ``(fn_ref,
    common_spec, jobs)`` and each job ``(idx, fingerprint, part_blob)``
    where ``part_blob`` is the part's wire blob
    (:func:`repro.data.columns.pack_blob` — columnar when possible,
    pickled rows otherwise; ``None`` for a key-only job the coordinator
    believes is cached).  ``common_spec`` is the pickled ``common`` —
    either the bytes themselves or, under the shared-memory backend, a
    descriptor tuple naming where the bytes live in a mapped segment
    (same for ``part_blob``, which then decodes zero-copy via
    :func:`repro.data.columns.unpack_frame_block`).  The cache maps
    ``(fn_ref, common_spec, fingerprint, idx)`` to the *pickled* reply,
    so a warm hit performs no (de)serialization at all — the cached
    bytes are sent as-is, and neither ``fn`` nor ``common`` is even
    resolved unless some job in the step actually computes.  With
    ``collect`` False the caller discards results: hits and computed
    misses alike are answered with a tiny ``"ack"`` (the computation is
    still cached), which keeps fused plan-replay rounds cheap on the
    wire.  A key-only job that misses the cache (the coordinator's mirror
    is best-effort) is answered with a ``"miss"`` reply, never an error;
    the coordinator re-sends the part.

    ``ctx`` is the coordinator's trace context — ``(trace_id, span_id)``
    when the calling query is being traced, else ``None``.  The worker
    never opens spans of its own (it has no sink and must stay
    shared-nothing): it measures its decode and compute time with
    ``perf_counter``, aggregates per step, and echoes both back in the
    success header ``("ok", n_replies, step_timings, ctx)`` where
    ``step_timings[s]`` is ``(decode_seconds, compute_seconds,
    jobs_computed, cache_hits)`` for step ``s``.  The coordinator owns
    the ``worker.round`` span and attaches these numbers to it — which
    is also how timings survive worker respawns: the parent span lives
    in the coordinator, and a respawned worker just contributes a fresh
    child.  Timings are measured unconditionally (two clock reads per
    computed job, noise next to a pickle decode) so the protocol has a
    single shape; with ``ctx`` None the coordinator discards them.

    A ``("sleep", seconds)`` request stalls the loop — the fault-injection
    hook the ``chaos`` backend uses to emulate a hung worker.  A request
    that fails to decode (corrupted bytes) terminates the worker quietly:
    the broken pipe is the coordinator's death signal, and the supervisor
    respawns.  Likewise a send on a pipe the supervisor already replaced
    (the worker was declared hung) exits quietly instead of tracebacking.
    """
    for path in sys_path:
        if path not in sys.path:
            sys.path.append(path)
    fns: dict[str, Callable] = {}
    cache: OrderedDict[tuple, bytes] = OrderedDict()
    while True:
        try:
            req = pickle.loads(conn.recv_bytes())
        except (EOFError, OSError):
            return
        except Exception:  # noqa: BLE001 - corrupt request: die, be respawned
            return
        if req[0] == "stop":
            conn.close()
            return
        if req[0] == "sleep":
            time.sleep(req[1])
            continue
        _kind, collect, steps, ctx = req
        replies: list[bytes] = []
        step_timings: list[tuple[float, float, int, int]] = []
        try:
            for fn_ref, common_spec, jobs in steps:
                fn: Callable | None = None
                common: Any = _UNSET
                decode_s = compute_s = 0.0
                computed = hits = 0
                for idx, fingerprint, part_blob in jobs:
                    key = None
                    if fingerprint is not None:
                        key = (fn_ref, common_spec, fingerprint, idx)
                        hit = cache.get(key)
                        if hit is not None:
                            cache.move_to_end(key)
                            hits += 1
                            replies.append(
                                hit if collect
                                else pickle.dumps((idx, "ack", None), _PROTO)
                            )
                            continue
                        if part_blob is None:
                            replies.append(
                                pickle.dumps((idx, "miss", None), _PROTO)
                            )
                            continue
                    if fn is None:
                        fn = fns.get(fn_ref)
                        if fn is None:
                            fn = fns[fn_ref] = _resolve_fn(fn_ref)
                    t0 = time.perf_counter()
                    if common is _UNSET:
                        common = _decode_common(common_spec)
                    part = _decode_part(part_blob)
                    t1 = time.perf_counter()
                    value = fn(part, common, idx)
                    t2 = time.perf_counter()
                    decode_s += t1 - t0
                    compute_s += t2 - t1
                    computed += 1
                    blob = pickle.dumps((idx, "ok", value), _PROTO)
                    if key is not None:
                        cache[key] = blob
                        if len(cache) > cache_entries:
                            cache.popitem(last=False)
                    replies.append(
                        blob if collect
                        else pickle.dumps((idx, "ack", None), _PROTO)
                    )
                step_timings.append((decode_s, compute_s, computed, hits))
        except BaseException as exc:  # noqa: BLE001 - forwarded to coordinator
            try:
                conn.send_bytes(pickle.dumps(("err", repr(exc)), _PROTO))
            except OSError:
                return
            continue
        try:
            conn.send_bytes(
                pickle.dumps(("ok", len(replies), step_timings, ctx), _PROTO)
            )
            for blob in replies:
                conn.send_bytes(blob)
        except OSError:
            return


class _WorkerGone(Exception):
    """Internal: one worker left a round (dead pipe or hung past timeout)."""

    def __init__(self, fault: "WorkerDied | RoundTimeout") -> None:
        self.fault = fault


class MultiprocessBackend(Backend):
    """Execute per-server compute on a supervised pool of worker processes.

    Args:
        workers: Pool size; defaults to ``min(cpu_count, 8)``.  Workers are
            started lazily on the first shipped computation and shut down
            via :meth:`close` (also registered with :mod:`atexit`).
        round_timeout: Seconds the coordinator waits on a worker's round
            replies before declaring it hung (killed + respawned, slice
            resubmitted).  ``None`` disables the watchdog.  Defaults to
            the ``REPRO_ROUND_TIMEOUT`` env var, else 60s.
        retry_budget: Resubmission rounds allowed after worker faults
            before the remaining slice degrades.  Defaults to the
            ``REPRO_RETRY_BUDGET`` env var, else 3.
        backoff_base: First-retry backoff in seconds; doubles per fault
            round (capped at 2s).  0 disables sleeping.
        degrade_to_inline: After the retry budget is spent, run the
            unrecovered slice inline in the coordinator (the default —
            a degraded round, never a failed query).  ``False`` raises
            :class:`~repro.errors.RetryExhausted` instead, for callers
            that own a higher rung of the degradation ladder.
    """

    name = "multiprocess"

    def __init__(
        self,
        workers: int | None = None,
        round_timeout: float | None = None,
        retry_budget: int | None = None,
        backoff_base: float = 0.05,
        degrade_to_inline: bool = True,
    ) -> None:
        if workers is not None and workers < 1:
            raise MPCError(f"need at least one worker, got {workers}")
        self.workers = workers or max(1, min(os.cpu_count() or 1, 8))
        if round_timeout is None:
            round_timeout = float(os.environ.get(ROUND_TIMEOUT_ENV, 60.0))
        self.round_timeout = round_timeout if round_timeout > 0 else None
        if retry_budget is None:
            retry_budget = int(os.environ.get(RETRY_BUDGET_ENV, 3))
        self.retry_budget = max(0, retry_budget)
        self.backoff_base = backoff_base
        self.degrade_to_inline = degrade_to_inline
        self._conns: list[Any] | None = None
        self._procs: list[Any] = []
        self._ctx: Any = None
        self._src_paths: list[str] = []
        # Serializes whole rounds: the pipelined executor dispatches
        # run_ops from a backend-owned thread while callers may still hit
        # the cold path directly, and the worker pipes + mirrors are not
        # otherwise thread-safe.  Reentrant so subclasses can nest.
        self._io_lock = threading.RLock()
        # Guards the cumulative wire/fault counters and their snapshot
        # copies.  Distinct from _io_lock: stats are read by observers
        # (engine views, `repro stats`) while a round holds the I/O lock,
        # and must never block on — or observe a torn state of — it.
        self._stats_lock = threading.Lock()
        # Coordinator-side mirror of each worker's LRU key set.
        self._mirrors: list[OrderedDict[tuple, None]] = []
        # Cumulative wire counters (see wire_stats()).
        self._wire_parts = 0
        self._wire_bytes = 0
        self._wire_baseline = 0
        self._track_baseline = bool(os.environ.get("REPRO_WIRE_BASELINE"))
        self.requests = 0
        # Cumulative recovery counters (see fault_stats()).
        self._fault_stats = {
            "worker_deaths": 0,
            "round_timeouts": 0,
            "respawns": 0,
            "resubmitted_jobs": 0,
            "inline_degradations": 0,
        }
        self._last_fault: WorkerDied | RoundTimeout | None = None

    # ------------------------------------------------------------------
    def wire_stats(self) -> dict:
        """Cumulative part-shipping counters since construction/reset.

        ``parts_shipped`` / ``bytes_shipped`` count every part blob that
        crossed the process boundary (cache-hit key-only jobs ship no
        part).  ``baseline_bytes`` is what ``pickle.dumps`` of the same
        row lists would have cost — tracked only under
        ``REPRO_WIRE_BASELINE=1`` because it performs the pickling being
        avoided.

        The returned dict is one lock-protected copy: all three counters
        are read under the stats lock that also guards their increments,
        so a snapshot taken mid-round is internally consistent rather
        than a field-by-field read of a mutating dict.
        """
        with self._stats_lock:
            return {
                "parts_shipped": self._wire_parts,
                "bytes_shipped": self._wire_bytes,
                "baseline_bytes": self._wire_baseline,
            }

    def fault_stats(self) -> dict:
        """Cumulative supervision counters since construction.

        ``worker_deaths`` (broken pipes / EOF), ``round_timeouts`` (hung
        workers killed by the watchdog), ``respawns`` (single-worker
        restarts), ``resubmitted_jobs`` (jobs re-sent after a fault), and
        ``inline_degradations`` (jobs that ran inline after the retry
        budget was spent).  All zero on a fault-free session.  Like
        :meth:`wire_stats`, the copy is taken under the stats lock, so
        observers mid-recovery see a consistent snapshot.
        """
        with self._stats_lock:
            return dict(self._fault_stats)

    def _count_fault(self, key: str, n: int = 1) -> None:
        with self._stats_lock:
            self._fault_stats[key] += n

    # ------------------------------------------------------------------
    def exchange(
        self,
        outboxes: Sequence[Iterable[tuple[int, Any]]],
        size: int,
        count_self: bool,
    ) -> tuple[list[list[Any]], list[int]]:
        return deliver_local(outboxes, size, count_self)

    # ------------------------------------------------------------------
    def _spawn_worker(self) -> tuple[Any, Any]:
        parent, child = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child, self._src_paths, _CACHE_ENTRIES),
            daemon=True,
        )
        proc.start()
        child.close()
        return parent, proc

    def _start(self) -> None:
        import multiprocessing as mp

        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self._ctx = mp.get_context(method)
        self._src_paths = [p for p in sys.path if p]
        self._conns = []
        self._procs = []
        self._mirrors = []
        for _ in range(self.workers):
            parent, proc = self._spawn_worker()
            self._conns.append(parent)
            self._procs.append(proc)
            self._mirrors.append(OrderedDict())
        atexit.register(self.close)

    def _respawn(self, wi: int) -> None:
        """Replace one dead/hung worker; the rest of the pool is untouched.

        The fresh worker's memo starts empty, so its coordinator mirror is
        cleared too — the content-addressed cache re-seeds lazily as parts
        are next shipped (exactly the cold-start protocol, scoped to one
        worker).
        """
        conns = self._conns
        assert conns is not None
        try:
            conns[wi].close()
        except OSError:  # pragma: no cover - close on a broken pipe
            pass
        proc = self._procs[wi]
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=1)
            if proc.is_alive():  # pragma: no cover - terminate unstoppable
                proc.kill()
                proc.join(timeout=1)
        else:
            proc.join(timeout=1)  # reap promptly; never leave a zombie
        conns[wi], self._procs[wi] = self._spawn_worker()
        self._mirrors[wi] = OrderedDict()
        self._count_fault("respawns")

    def close(self) -> None:
        """Stop the pool.  Idempotent, bounded, and zombie-free.

        Escalates per worker: cooperative stop + ``join(1)``, then
        ``terminate()`` + ``join(1)``, then ``kill()`` — a hung worker can
        delay shutdown by at most a few seconds and never outlives it.
        The :mod:`atexit` callback registered at pool start is dropped
        here too, so short-lived instances (engine restarts, chaos
        wrappers, tests) do not pile up interpreter-exit callbacks that
        would double-close respawned pools.
        """
        atexit.unregister(self.close)
        conns, procs = self._conns, self._procs
        self._conns = None
        self._procs = []
        self._mirrors = []
        if conns is None:
            return
        for conn in conns:
            try:
                conn.send_bytes(pickle.dumps(("stop",), _PROTO))
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - already broken
                pass
        for proc in procs:
            proc.join(timeout=1)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1)
            if proc.is_alive():  # pragma: no cover - terminate unstoppable
                proc.kill()
                proc.join(timeout=1)

    # ------------------------------------------------------------------
    def _fingerprints(
        self, parts: Sequence[list], owner: Any
    ) -> tuple[list[bytes] | None, list[bytes] | None]:
        """Content fingerprints per part, memoized on the owner when possible.

        Returns ``(fingerprints, part_blobs)``.  Fingerprints hash the
        *wire blobs* (columnar form), so a columnar-backed owner pays no
        row pickling at all — its cached :meth:`~repro.mpc.distrel.
        DistRelation.wire_blob` encodings are hashed and reused for any
        cold ship.  A memoized-fingerprint hit returns ``(fps, None)``
        (on the warm path parts rarely ship; blobs are rebuilt on demand).
        ``(None, None)`` disables worker memoization (unpicklable rows),
        never correctness.
        """
        store = getattr(owner, "_substrate", None) if owner is not None else None
        if store is not None:
            cached = store.get("backend_fp")
            if cached is not None:
                return cached, None
        try:
            wire = getattr(owner, "wire_blob", None)
            if wire is not None and getattr(owner, "parts", None) is parts:
                blobs = [wire(i) for i in range(len(parts))]
            else:
                blobs = [pack_blob(part) for part in parts]
        except Exception:  # noqa: BLE001 - unpicklable rows
            return None, None
        fps = [blake2b(blob, digest_size=16).digest() for blob in blobs]
        if store is not None:
            store["backend_fp"] = fps
        return fps, blobs

    def _blob_getter(
        self, parts: Sequence[list], owner: Any, blobs: list[bytes] | None,
        meter: Any = None,
    ) -> Callable[[int], bytes]:
        """Per-op wire-blob supplier, charging the wire counters per ship.

        ``meter`` (a :class:`~repro.obs.metrics.WireMeter` or None) is the
        calling query's private tally, bumped alongside the backend-wide
        cumulative counters at the one place a part actually ships.
        """
        wire = getattr(owner, "wire_blob", None) if owner is not None else None
        if wire is not None and getattr(owner, "parts", None) is not parts:
            wire = None

        def get(idx: int) -> bytes:
            if blobs is not None:
                blob = blobs[idx]
            elif wire is not None:
                blob = wire(idx)
            else:
                blob = pack_blob(parts[idx])
            baseline = 0
            if self._track_baseline:
                try:
                    baseline = len(pickle.dumps(parts[idx], _PROTO))
                except Exception:  # noqa: BLE001 - baseline is best-effort
                    pass
            with self._stats_lock:
                self._wire_parts += 1
                self._wire_bytes += len(blob)
                self._wire_baseline += baseline
            if meter is not None:
                meter.add(len(blob))
            return blob

        return get

    def _pack_common(self, common_bytes: bytes) -> Any:
        """Hook: transform a step's pickled ``common`` before it ships.

        The base backend sends the bytes verbatim in every round's
        request.  The shared-memory subclass interns large payloads in
        the arena and returns a small descriptor tuple instead, so a
        common re-used across rounds and workers crosses the pipe once as
        bytes and thereafter as a few dozen descriptor bytes.  Whatever
        this returns becomes part of the worker cache key, so it must be
        stable per content.
        """
        return common_bytes

    # ------------------------------------------------------------------
    def map_parts(
        self,
        fn: Callable[[list, Any, int], Any],
        parts: Sequence[list],
        common: Any = None,
        owner: Any = None,
    ) -> list[Any]:
        return self.run_ops([(fn, parts, common, owner)], collect=True)[0]

    def run_ops(
        self,
        ops: Sequence[tuple[Callable, Sequence[list], Any, Any]],
        collect: bool = True,
        meter: Any = None,
        span: Any = None,
    ) -> list[Any]:
        """Execute a whole op chain in one worker round-trip, plus recovery
        rounds when the cache mirror was stale or a worker faulted.

        Per-op fallbacks mirror ``map_parts``: unpicklable ``common`` or
        parts run that op inline; a non-module-level function is an error.
        Worker deaths and hung rounds are recovered per the supervision
        policy (respawn → resubmit → inline; see the class docstring).
        Rounds are serialized under the backend's I/O lock, so one
        backend instance may be driven from several threads (the
        pipelined executor and cold-path callers) concurrently.

        When ``span`` is a recording span, one ``backend.round`` child
        covers this whole call — lock wait, dispatch, recovery retries —
        with per-worker ``worker.round`` children beneath it (including
        fresh children for resubmission rounds after a respawn, which is
        how a trace stays complete across chaos-injected deaths).
        ``meter`` receives every payload this call ships (see
        :meth:`_blob_getter`).
        """
        rspan = None
        if span is not None and getattr(span, "recording", False):
            rspan = span.child(
                "backend.round", backend=self.name,
                ops=len(ops), collect=collect,
            )
        try:
            with self._io_lock:
                return self._run_ops(ops, collect, meter, rspan)
        except BaseException as exc:
            if rspan is not None:
                rspan.set(error=type(exc).__name__)
            raise
        finally:
            if rspan is not None:
                rspan.end()

    def _run_ops(
        self,
        ops: Sequence[tuple[Callable, Sequence[list], Any, Any]],
        collect: bool,
        meter: Any = None,
        span: Any = None,
    ) -> list[Any]:
        results: list[Any] = [None] * len(ops)
        # Per shipped op k: (fn_ref, common_bytes, fps, blob getter,
        # fn, parts, common) — the last three feed the inline rungs.
        shipped: dict[int, tuple] = {}
        for k, (fn, parts, common, owner) in enumerate(ops):
            fn_ref = f"{fn.__module__}:{fn.__qualname__}"
            if "<locals>" in fn_ref or "<lambda>" in fn_ref:
                raise MPCError(
                    f"map_parts functions must be module-level, got {fn_ref}"
                )
            try:
                common_spec = self._pack_common(pickle.dumps(common, _PROTO))
            except Exception:  # noqa: BLE001 - unpicklable common: run inline
                results[k] = [fn(part, common, i) for i, part in enumerate(parts)]
                continue
            if owner is not None:
                fps, blobs = self._fingerprints(parts, owner)
            else:
                fps = blobs = None
            shipped[k] = (
                fn_ref, common_spec, fps,
                self._blob_getter(parts, owner, blobs, meter), fn, parts, common,
            )
        if not shipped:
            return results

        if self._conns is None:
            self._start()
        conns = self._conns
        assert conns is not None
        w = len(conns)

        # Build one batched request per worker (deterministic affinity).
        # The mirror of each worker's LRU is best-effort: a key sent
        # key-only that the worker no longer holds comes back as a "miss"
        # and is re-sent with its part below — never an error.
        steps_by_worker: list[list[tuple]] = [[] for _ in range(w)]
        order: list[list[tuple[int, int]]] = [[] for _ in range(w)]
        for k in sorted(shipped):
            fn_ref, common_spec, fps, get_blob, fn, parts, common = shipped[k]
            jobs: list[list[tuple]] = [[] for _ in range(w)]
            try:
                for idx in range(len(parts)):
                    wi = idx % w
                    fp = fps[idx] if fps is not None else None
                    if fp is None:
                        jobs[wi].append((idx, None, get_blob(idx)))
                        continue
                    key = (fn_ref, common_spec, fp, idx)
                    mirror = self._mirrors[wi]
                    if key in mirror:
                        mirror.move_to_end(key)
                        jobs[wi].append((idx, fp, None))
                    else:
                        jobs[wi].append((idx, fp, get_blob(idx)))
                        mirror[key] = None
                        if len(mirror) > _CACHE_ENTRIES:
                            mirror.popitem(last=False)
            except Exception:  # noqa: BLE001 - unpicklable parts: run inline
                results[k] = [fn(part, common, i) for i, part in enumerate(parts)]
                del shipped[k]
                continue
            results[k] = [None] * len(parts)
            for wi in range(w):
                if jobs[wi]:
                    steps_by_worker[wi].append((fn_ref, common_spec, jobs[wi]))
                    order[wi].extend((k, job[0]) for job in jobs[wi])

        missed, failed = self._ops_round(
            steps_by_worker, order, collect, results, span=span
        )
        fault_rounds = 0
        miss_rounds = 0
        while missed or failed:
            pending = sorted(set(missed) | set(failed))
            if failed:
                self._count_fault("resubmitted_jobs", len(failed))
                fault_rounds += 1
                if fault_rounds > self.retry_budget:
                    self._degrade_inline(pending, shipped, results)
                    break
                if self.backoff_base:
                    time.sleep(
                        min(self.backoff_base * (2 ** (fault_rounds - 1)), 2.0)
                    )
            else:
                # Pure mirror-miss retry: one round resolves it unless the
                # protocol is broken — degrade instead of looping forever.
                miss_rounds += 1
                if miss_rounds > 2:  # pragma: no cover - protocol invariant
                    self._degrade_inline(pending, shipped, results)
                    break
            steps2: list[list[tuple]] = [[] for _ in range(w)]
            order2: list[list[tuple[int, int]]] = [[] for _ in range(w)]
            grouped: dict[tuple[int, int], list[int]] = {}
            for k, idx in pending:
                grouped.setdefault((idx % w, k), []).append(idx)
            for (wi, k), idxs in sorted(grouped.items()):
                fn_ref, common_spec, fps, get_blob = shipped[k][:4]
                idxs.sort()
                jobs2 = [
                    (idx, fps[idx] if fps is not None else None, get_blob(idx))
                    for idx in idxs
                ]
                steps2[wi].append((fn_ref, common_spec, jobs2))
                order2[wi].extend((k, idx) for idx in idxs)
            missed, failed = self._ops_round(
                steps2, order2, collect, results, span=span, retry=True
            )
        return results

    def _degrade_inline(
        self,
        jobs: Sequence[tuple[int, int]],
        shipped: dict[int, tuple],
        results: list[Any],
    ) -> None:
        """Last backend rung: run unrecovered jobs inline in the coordinator.

        The functions are pure and the parts immutable, so the inline
        results are identical to what a healthy worker would have
        returned — a degraded round, never a wrong one.  With
        ``degrade_to_inline=False`` the caller owns the next rung and
        gets :class:`~repro.errors.RetryExhausted` instead.
        """
        if not self.degrade_to_inline:
            raise RetryExhausted(
                f"{len(jobs)} jobs unrecovered after {self.retry_budget} "
                f"resubmission rounds"
            ) from self._last_fault
        self._count_fault("inline_degradations", len(jobs))
        for k, idx in jobs:
            fn, parts, common = shipped[k][4:]
            results[k][idx] = fn(parts[idx], common, idx)

    # ------------------------------------------------------------------
    def _recv(self, conn: Any, deadline: float | None) -> Any:
        """One framed reply, bounded by the round deadline."""
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not conn.poll(remaining):
                fault = RoundTimeout(
                    f"worker reply not received within {self.round_timeout}s"
                )
                self._last_fault = fault
                self._count_fault("round_timeouts")
                raise _WorkerGone(fault)
        try:
            return pickle.loads(conn.recv_bytes())
        except (EOFError, OSError) as exc:
            fault = WorkerDied(f"worker pipe broke mid-round: {exc!r}")
            self._last_fault = fault
            self._count_fault("worker_deaths")
            raise _WorkerGone(fault) from exc

    def _ops_round(
        self,
        steps_by_worker: Sequence[list],
        order: Sequence[list[tuple[int, int]]],
        collect: bool,
        results: list[Any],
        span: Any = None,
        retry: bool = False,
    ) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
        """One supervised request/reply round; fills ``results``.

        Returns ``(missed, failed)``: cache-mirror misses to re-send with
        parts attached, and jobs lost to dead or hung workers (those
        workers are already respawned on return).  Replies received
        before a worker fault are kept — only the unacknowledged tail of
        the faulted worker's slice comes back in ``failed``.  Replies
        from every *healthy* worker are always drained, even when one of
        them reports an error — a shared backend must never leave stale
        responses in a pipe for the next call to misread (a faulted
        worker's pipe is replaced wholesale by the respawn, which
        restores the same invariant).  Counts as one backend request
        round when anything ships.

        ``span`` is the enclosing ``backend.round`` span (or None when
        tracing is off): each dispatched worker gets a ``worker.round``
        child carrying the worker-reported decode/compute seconds from
        the reply header, or fault/error attributes when the worker
        leaves the round.  ``retry`` marks resubmission rounds so a
        trace distinguishes first-try children from post-respawn ones.
        """
        conns = self._conns
        assert conns is not None
        tracing = span is not None and getattr(span, "recording", False)
        ctx = (span.trace_id, span.span_id) if tracing else None
        wspans: dict[int, Any] = {}
        sent: list[int] = []
        failed: list[tuple[int, int]] = []
        dead: list[int] = []
        for wi, steps in enumerate(steps_by_worker):
            if not steps:
                continue
            try:
                conns[wi].send_bytes(
                    pickle.dumps(("ops", collect, steps, ctx), _PROTO)
                )
                sent.append(wi)
                if tracing:
                    wspans[wi] = span.child(
                        "worker.round", worker=wi,
                        steps=len(steps), jobs=len(order[wi]), retry=retry,
                    )
            except OSError as exc:
                # Dead before dispatch: this round's whole slice is lost
                # (nothing was acknowledged), but the pool and every other
                # worker's round proceed untouched.
                self._last_fault = WorkerDied(
                    f"worker {wi} dead at dispatch: {exc!r}", worker=wi
                )
                self._count_fault("worker_deaths")
                if tracing:
                    span.child(
                        "worker.round", worker=wi,
                        steps=len(steps), jobs=len(order[wi]), retry=retry,
                    ).end(fault="WorkerDied", phase="dispatch")
                failed.extend(order[wi])
                dead.append(wi)
        if sent:
            self.requests += 1

        deadline = (
            time.monotonic() + self.round_timeout
            if self.round_timeout is not None
            else None
        )
        missed: list[tuple[int, int]] = []
        errors: list[str] = []
        for wi in sent:
            expected = order[wi]
            wspan = wspans.get(wi)
            done = 0
            try:
                header = self._recv(conns[wi], deadline)
                if header[0] == "err":
                    errors.append(f"worker {wi}: {header[1]}")
                    if wspan is not None:
                        wspan.end(error=header[1])
                    continue
                for j in range(header[1]):
                    idx, status, value = self._recv(conns[wi], deadline)
                    k = expected[j][0]
                    if status == "miss":
                        missed.append((k, idx))
                    elif status == "ok":
                        results[k][idx] = value
                    # "ack": worker-side cache refreshed; nothing to store.
                    done = j + 1
                if wspan is not None:
                    timings = header[2] if len(header) > 2 else []
                    wspan.end(
                        decode_seconds=sum(t[0] for t in timings),
                        compute_seconds=sum(t[1] for t in timings),
                        computed=sum(t[2] for t in timings),
                        cache_hits=sum(t[3] for t in timings),
                    )
            except _WorkerGone as exc:
                exc.fault.worker = wi
                if wspan is not None:
                    wspan.end(
                        fault=type(exc.fault).__name__, jobs_done=done
                    )
                # Keep everything drained so far; resubmit only the tail.
                failed.extend(expected[done:])
                dead.append(wi)
        for wi in dead:
            self._respawn(wi)
        if errors:
            raise MPCError(f"map_parts failed in {'; '.join(errors)}")
        return missed, failed
