"""Execution-backend registry.

Backends resolve in three ways, in priority order:

1. A :class:`Backend` *instance* is used as-is (caller owns its lifetime).
2. A registered *name* (``"serial"``, ``"multiprocess"``, ...) resolves to
   a process-wide shared instance, created on first use — worker pools are
   expensive, so name lookups deliberately share one.
3. ``None`` falls back to the ``REPRO_BACKEND`` environment variable, then
   to ``"serial"``.  The environment hook is how CI runs the entire tier-1
   suite under a non-default backend without touching a single test.

New backends call :func:`register_backend`; the differential conformance
harness (``tests/conformance/``) picks up every registered name
automatically and holds it to the serial reference.
"""

from __future__ import annotations

import os
from typing import Callable

from repro.errors import MPCError
from repro.mpc.backends.base import Backend, deliver_local
from repro.mpc.backends.chaos import FaultInjectingBackend
from repro.mpc.backends.multiprocess import MultiprocessBackend
from repro.mpc.backends.serial import SerialBackend
from repro.mpc.backends.shm import SharedMemoryBackend, shm_supported

__all__ = [
    "Backend",
    "SerialBackend",
    "MultiprocessBackend",
    "SharedMemoryBackend",
    "FaultInjectingBackend",
    "shm_supported",
    "deliver_local",
    "register_backend",
    "available_backends",
    "create_backend",
    "get_backend",
    "default_backend_name",
    "shutdown_backends",
]

#: Environment variable selecting the default backend for ``backend=None``.
BACKEND_ENV = "REPRO_BACKEND"

_FACTORIES: dict[str, Callable[[], Backend]] = {}
_SHARED: dict[str, Backend] = {}


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    """Register a backend factory under ``name`` (overwrites quietly).

    The factory is called at most once per process for name-based lookups;
    the resulting instance is shared.
    """
    _FACTORIES[name] = factory
    _SHARED.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """Registered backend names, serial (the reference) first."""
    names = sorted(_FACTORIES)
    if "serial" in names:
        names.remove("serial")
        names.insert(0, "serial")
    return tuple(names)


def default_backend_name() -> str:
    """The name ``backend=None`` resolves to (env override or serial)."""
    return os.environ.get(BACKEND_ENV, "serial")


def get_backend(spec: "Backend | str | None" = None) -> Backend:
    """Resolve a backend instance from an instance, name, or ``None``."""
    if isinstance(spec, Backend):
        return spec
    name = spec if spec is not None else default_backend_name()
    inst = _SHARED.get(name)
    if inst is None:
        factory = _FACTORIES.get(name)
        if factory is None:
            raise MPCError(
                f"unknown backend {name!r}; registered: {available_backends()}"
            )
        inst = _SHARED[name] = factory()
    return inst


def create_backend(spec: "Backend | str | None" = None) -> Backend:
    """A *fresh* backend instance the caller owns (and must close).

    The serving front door (:mod:`repro.serve`) gives each engine replica
    its own backend so replicas execute on disjoint worker pools — the
    whole point of running replicas is overlapping their backend I/O,
    which the process-wide shared instances of :func:`get_backend` would
    serialize.  An explicit :class:`Backend` instance is passed through
    as-is (the caller already owns its lifetime and has chosen to share
    it).
    """
    if isinstance(spec, Backend):
        return spec
    name = spec if spec is not None else default_backend_name()
    factory = _FACTORIES.get(name)
    if factory is None:
        raise MPCError(
            f"unknown backend {name!r}; registered: {available_backends()}"
        )
    return factory()


def shutdown_backends() -> None:
    """Close and forget every shared backend instance (tests, atexit)."""
    for inst in _SHARED.values():
        inst.close()
    _SHARED.clear()


register_backend("serial", SerialBackend)
register_backend("multiprocess", MultiprocessBackend)
register_backend("chaos", FaultInjectingBackend)
if shm_supported():
    # Platforms without a usable shared-memory facility (no /dev/shm or
    # equivalent) simply never expose the name — CLI choices, conformance
    # enrollment, and CI matrix cells all skip cleanly.
    register_backend("shm", SharedMemoryBackend)
