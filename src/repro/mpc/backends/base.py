"""The execution-backend contract behind :class:`~repro.mpc.cluster.Cluster`.

The paper's model (Section 1.1) fixes *what* an algorithm communicates —
``p`` servers exchanging tuples in rounds — but not *how* a simulation
executes the per-server work.  A :class:`Backend` is that "how": it owns

* **message delivery** (:meth:`Backend.exchange`) — materializing inboxes
  from outboxes for one exchange step, and
* **per-server local compute** (:meth:`Backend.map_parts`) — applying a
  pure function to every server's part, which a backend may run anywhere
  (inline, in worker processes, eventually on remote executors).

Everything a backend is *not* allowed to change is pinned down by the
conformance contract (see DESIGN.md and ``tests/conformance/``): for any
query and instance, every backend must produce

1. bit-identical outputs,
2. a bit-identical load ledger — ``load``, ``max_step_load``, ``steps``,
   per-server ``totals``, and the ``by_label`` breakdown, and
3. the same results when replayed (determinism: no wall-clock, PID, or
   scheduling dependence may leak into routing, ordering, or contents).

The ledger itself (:class:`~repro.mpc.cluster.Cluster`) never moves into a
backend — backends return the per-destination received counts from
:meth:`exchange` and the cluster tallies them, so load accounting is
shared, auditable code no backend can get subtly wrong.
"""

from __future__ import annotations

import queue
import threading
from abc import ABC, abstractmethod
from concurrent.futures import Future
from typing import Any, Callable, Iterable, Sequence

__all__ = ["Backend", "deliver_local"]


def deliver_local(
    outboxes: Sequence[Iterable[tuple[int, Any]]],
    size: int,
    count_self: bool,
) -> tuple[list[list[Any]], list[int]]:
    """Reference message delivery: sender-order inboxes + received counts.

    Shared by the in-process backends so the delivery semantics (ordering,
    destination validation, self-message accounting) are defined exactly
    once.  Raises :class:`~repro.errors.MPCError` on an out-of-range
    destination.
    """
    from repro.errors import MPCError

    inboxes: list[list[Any]] = [[] for _ in range(size)]
    appends = [box.append for box in inboxes]
    counts = [0] * size
    for src, box in enumerate(outboxes):
        for dst, payload in box:
            if dst < 0 or dst >= size:
                raise MPCError(f"destination {dst} out of range [0, {size})")
            appends[dst](payload)
            if dst != src or count_self:
                counts[dst] += 1
    return inboxes, counts


class Backend(ABC):
    """One way of executing a cluster's per-server compute and exchanges.

    Subclasses must be registered with
    :func:`repro.mpc.backends.register_backend` to participate in the
    differential conformance harness; the harness replays a query grid on
    every registered backend and diffs outputs and ledgers against the
    serial reference.
    """

    #: Registry name (set by subclasses).
    name: str = "?"

    #: Cumulative backend *request rounds* issued by the coordinator —
    #: one ``map_parts``/``run_ops`` dispatch for in-process backends,
    #: one synchronized send/receive across the worker pool for
    #: process-backed ones.  Callers (engine metrics, the plan-fusion
    #: benchmark) read deltas of this counter; it never resets.
    requests: int = 0

    @abstractmethod
    def exchange(
        self,
        outboxes: Sequence[Iterable[tuple[int, Any]]],
        size: int,
        count_self: bool,
    ) -> tuple[list[list[Any]], list[int]]:
        """Deliver one exchange step.

        Args:
            outboxes: ``outboxes[i]`` holds ``(dst, payload)`` messages sent
                by local server ``i``.
            size: Number of local servers.
            count_self: Whether self-messages cost a unit.

        Returns:
            ``(inboxes, counts)``: received payloads per server in sender
            order, and the units received per server for the ledger.
        """

    @abstractmethod
    def map_parts(
        self,
        fn: Callable[[list, Any, int], Any],
        parts: Sequence[list],
        common: Any = None,
        owner: Any = None,
    ) -> list[Any]:
        """Apply ``fn(part, common, index)`` to every part; return the results.

        ``fn`` must be a *pure*, module-level function (process-shippable by
        qualified name) whose result depends only on ``(part, common,
        index)``.  ``common`` must be picklable and hashable.  ``owner`` is
        the object (usually a :class:`~repro.mpc.distrel.DistRelation`)
        whose immutable ``parts`` these are; backends may use it to key
        worker-local caches and must treat it as opaque.
        """

    def run_ops(
        self,
        ops: Sequence[tuple[Callable, Sequence[list], Any, Any]],
        collect: bool = True,
        meter: Any = None,
        span: Any = None,
    ) -> list[Any]:
        """Execute a batch of worker-local steps (the plan executor's seam).

        Each op is the argument tuple of one :meth:`map_parts` call —
        ``(fn, parts, common, owner)`` — and the batch executes in plan
        order.  A backend should dispatch the whole batch in as few
        request round-trips as its transport allows (the multiprocess
        backend uses one); the base implementation is the trivial loop,
        one ``map_parts`` request per op.

        Args:
            ops: The fused chain of worker-local steps.
            collect: When False, the caller will discard the results (a
                plan replay: the query's outputs are pinned by a
                recording, and re-execution exists to keep worker-side
                state warm).  A backend may then skip shipping result
                payloads — or skip execution entirely when it holds no
                worker-side state — as long as the ops' observable
                effects on *future* calls are preserved.
            meter: Optional :class:`~repro.obs.metrics.WireMeter` bumped
                for every payload this batch actually ships, attributing
                wire traffic to the calling query (the backend's
                cumulative ``wire_stats()`` counters are shared by all
                concurrent callers and cannot be).  In-process backends
                ship nothing and ignore it.
            span: Optional :class:`~repro.obs.tracing.Span` (or the null
                sentinel) under which a process-backed backend parents
                its per-round/per-worker spans.  Backends must treat a
                span with ``recording`` False — or ``None`` — as "emit
                nothing".

        Returns:
            Per-op results (``map_parts`` return values); entries may be
            ``None`` when ``collect`` is False.
        """
        out: list[Any] = []
        for fn, parts, common, owner in ops:
            res = self.map_parts(fn, parts, common, owner)
            out.append(res if collect else None)
        return out

    # ------------------------------------------------------------------
    # Asynchronous dispatch (the pipelined executor's seam)
    # ------------------------------------------------------------------
    _dispatcher: "threading.Thread | None" = None
    _dispatch_queue: "queue.SimpleQueue | None" = None
    #: Guards lazy dispatcher creation only (class-level: init is rare).
    _dispatch_init_lock = threading.Lock()

    def submit_ops(
        self,
        ops: Sequence[tuple[Callable, Sequence[list], Any, Any]],
        collect: bool = True,
        meter: Any = None,
        span: Any = None,
    ) -> "Future[list[Any]]":
        """Dispatch a :meth:`run_ops` batch asynchronously.

        Returns a :class:`~concurrent.futures.Future` resolving to the
        batch's results (or its exception).  Batches are executed by a
        single backend-owned daemon thread in submission order, so
        callers get the same sequential round semantics as :meth:`run_ops`
        — the point is *overlap*: while a round is in flight on the
        worker pool, the caller can post ledger charges or build the next
        batch.  Thread-safe; multiple threads may submit concurrently and
        their batches interleave at round granularity (backends guard
        their transport with their own I/O lock for the cold path that
        still calls :meth:`run_ops` directly).

        The dispatcher thread is started lazily on first use and is a
        daemon — it holds no resources of its own and dies with the
        process; :meth:`close` does not need to join it.

        ``meter``/``span`` travel with the batch (not with the thread):
        pipelined rounds execute on the dispatcher thread, so per-query
        attribution must ride the queue entry rather than thread-local
        state.  Semantics match :meth:`run_ops`.
        """
        fut: Future = Future()
        q = self._dispatch_queue
        if q is None:
            with Backend._dispatch_init_lock:
                q = self._dispatch_queue
                if q is None:
                    q = self._dispatch_queue = queue.SimpleQueue()
                    self._dispatcher = threading.Thread(
                        target=self._dispatch_loop,
                        name=f"{self.name}-dispatch", daemon=True,
                    )
                    self._dispatcher.start()
        q.put((fut, ops, collect, meter, span))
        return fut

    def _dispatch_loop(self) -> None:
        q = self._dispatch_queue
        assert q is not None
        while True:
            fut, ops, collect, meter, span = q.get()
            if not fut.set_running_or_notify_cancel():
                continue  # pragma: no cover - cancelled before dispatch
            try:
                fut.set_result(self.run_ops(ops, collect, meter=meter, span=span))
            except BaseException as exc:  # noqa: BLE001 - routed to caller
                fut.set_exception(exc)

    def close(self) -> None:
        """Release any resources (worker processes, pools).  Idempotent."""

    def wire_stats(self) -> dict:
        """Cumulative wire-level counters (bytes shipped across processes).

        In-process backends ship nothing and return ``{}``.  Backends that
        serialize parts report at least ``parts_shipped`` and
        ``bytes_shipped`` so callers (the engine's per-query metrics, the
        columnar benchmark) can observe the wire cost of a computation.
        """
        return {}

    def fault_stats(self) -> dict:
        """Cumulative fault and recovery counters.

        In-process backends cannot fault and return ``{}``.  Supervised
        backends report at least ``worker_deaths``, ``round_timeouts``,
        ``respawns``, ``resubmitted_jobs``, and ``inline_degradations``;
        fault-injecting wrappers add ``injected_*`` counters.  Like
        :attr:`requests`, these are monotone — callers read deltas.
        Whatever a backend counts here, its *results* must stay inside the
        conformance contract: recovery may change wall-clock and request
        counts, never outputs or ledgers.
        """
        return {}

    # ------------------------------------------------------------------
    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}<{self.name}>"
