"""Deterministic fault injection: the ``chaos`` backend wrapper.

:class:`FaultInjectingBackend` wraps a real backend and sabotages it with
seed-driven faults so the recovery machinery — the multiprocess backend's
worker supervision (respawn/resubmit/inline), the engine's degradation
ladder — runs under test on every conformance cell instead of living in
``pragma: no cover`` branches.  The wrapper is a *pure* perturbation of
the execution environment:

* **Delivery and the ledger are never touched.**  ``exchange`` passes
  straight through, and all tallying stays in the coordinator, so a
  fault can change wall-clock, request counts, and worker lifetimes —
  never outputs or a single :class:`~repro.mpc.cluster.LoadReport`
  field.  The conformance grid enforces exactly that: every cell run
  under ``chaos`` must be bit-identical to the fault-free serial
  reference.  Determinism is what makes the oracle this cheap — the
  fault-free run *is* the expected output of every faulted run.
* **Faults are deterministic.**  An injection is drawn per dispatched
  round from ``random.Random(seed)``, so a given seed and call sequence
  replays the same fault schedule (``fault_log`` records it).  Fault
  kinds:

  - ``kill``         — SIGKILL a worker before the round is dispatched
    (detected at dispatch: send fails, or at drain: EOF);
  - ``kill_after``   — SIGKILL a worker after its replies are drained
    (detected at the *next* round's dispatch);
  - ``hang``         — stall a worker past the supervisor's round
    timeout (detected by the watchdog, killed + respawned);
  - ``corrupt``      — write garbage bytes into a worker's request pipe
    (transient pickle corruption: the worker dies decoding and is
    respawned);
  - ``drop``         — lose the whole round before dispatch and re-drive
    it (the wrapper's own retry rung; bounded, then the round is forced
    through).

  Process-level faults need a process-backed inner backend; against an
  in-process inner (serial) they are recorded as ``skipped`` and the
  round proceeds — ``drop`` is the only fault every inner supports.

Registered as ``"chaos"``: ``REPRO_BACKEND=chaos`` runs any suite under
injection.  The registry factory builds a **private** supervised
:class:`~repro.mpc.backends.multiprocess.MultiprocessBackend` (short
round timeout, small backoff) rather than sharing the registry's
``multiprocess`` instance, so injected kills never perturb other
sessions' pools.  Env knobs: ``REPRO_CHAOS_SEED``, ``REPRO_CHAOS_RATE``,
``REPRO_CHAOS_INNER``.
"""

from __future__ import annotations

import os
import pickle
import random
import signal
import threading
from typing import Any, Callable, Iterable, Sequence

from repro.errors import MPCError, RetryExhausted
from repro.mpc.backends.base import Backend
from repro.mpc.backends.multiprocess import MultiprocessBackend

__all__ = ["FaultInjectingBackend"]

CHAOS_SEED_ENV = "REPRO_CHAOS_SEED"
CHAOS_RATE_ENV = "REPRO_CHAOS_RATE"
CHAOS_INNER_ENV = "REPRO_CHAOS_INNER"

#: Injection mix: mostly cheap process kills; hangs are rare because each
#: one costs a full round timeout of wall-clock.
_WEIGHTED_KINDS = (
    ("kill", 0.40),
    ("kill_after", 0.15),
    ("corrupt", 0.20),
    ("hang", 0.10),
    ("drop", 0.15),
)

#: Consecutive dropped rounds before the drop rung gives up.
_MAX_DROPS = 3


def _default_inner() -> MultiprocessBackend:
    """A private supervised pool tuned for fast fault turnaround."""
    return MultiprocessBackend(
        round_timeout=1.0, retry_budget=3, backoff_base=0.01
    )


class FaultInjectingBackend(Backend):
    """Wrap a real backend and inject deterministic, seed-driven faults.

    Args:
        inner: The backend to sabotage — an instance, a registered name,
            or ``None`` for the ``REPRO_CHAOS_INNER`` env var (default: a
            private supervised multiprocess pool).  The wrapper owns the
            inner backend's lifetime (:meth:`close` closes it).
        seed: Fault-schedule seed (``REPRO_CHAOS_SEED`` env, default 1).
        rate: Probability a dispatched round draws a fault
            (``REPRO_CHAOS_RATE`` env, default 0.15).
        kinds: Restrict injection to these fault kinds (default: the
            weighted built-in mix) — benchmarks use ``("kill",)`` to
            sweep pure worker-kill rates.
    """

    name = "chaos"

    def __init__(
        self,
        inner: Backend | str | None = None,
        seed: int | None = None,
        rate: float | None = None,
        kinds: Sequence[str] | None = None,
    ) -> None:
        if seed is None:
            seed = int(os.environ.get(CHAOS_SEED_ENV, 1))
        if rate is None:
            rate = float(os.environ.get(CHAOS_RATE_ENV, 0.15))
        if inner is None:
            inner = os.environ.get(CHAOS_INNER_ENV) or _default_inner()
        if isinstance(inner, str):
            if inner == self.name:
                raise MPCError("chaos cannot wrap itself")
            if inner == "multiprocess":
                inner = _default_inner()
            elif inner == "shm":
                # Like "multiprocess": a *private* pool, never the
                # registry's shared instance — injected kills (and the
                # arena they could orphan mid-write) must not perturb
                # other sessions using the shared shm backend.
                from repro.mpc.backends.shm import SharedMemoryBackend

                inner = SharedMemoryBackend(
                    round_timeout=1.0, retry_budget=3, backoff_base=0.01
                )
            else:
                from repro.mpc.backends import get_backend

                inner = get_backend(inner)
        if isinstance(inner, FaultInjectingBackend):
            raise MPCError("chaos cannot wrap itself")
        self.inner: Backend = inner
        self.seed = seed
        self.rate = rate
        known = {k for k, _w in _WEIGHTED_KINDS}
        if kinds is not None and not set(kinds) <= known:
            raise MPCError(
                f"unknown fault kinds {sorted(set(kinds) - known)}; "
                f"pick from {sorted(known)}"
            )
        self.kinds = tuple(kinds) if kinds is not None else None
        self._rng = random.Random(seed)
        #: The injected schedule: ``(fault_kind, worker_index | None)``
        #: per sabotage, in order — replayable from the same seed.
        self.fault_log: list[tuple[str, int | None]] = []
        self._injected = {
            "kill": 0, "kill_after": 0, "corrupt": 0, "hang": 0,
            "drop": 0, "skipped": 0,
        }
        # Guards _injected and its fault_stats() copy (the engine's
        # registry views snapshot stats while rounds are mid-flight).
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Pass-throughs: everything observable delegates to the inner backend.
    # ------------------------------------------------------------------
    @property
    def requests(self) -> int:  # type: ignore[override]
        return self.inner.requests

    def exchange(
        self,
        outboxes: Sequence[Iterable[tuple[int, Any]]],
        size: int,
        count_self: bool,
    ) -> tuple[list[list[Any]], list[int]]:
        # Delivery feeds the ledger; a fault here could corrupt what the
        # conformance oracle checks, so chaos never touches it.
        return self.inner.exchange(outboxes, size, count_self)

    def wire_stats(self) -> dict:
        return self.inner.wire_stats()

    def fault_stats(self) -> dict:
        """Inner recovery counters plus ``injected_*`` injection counters.

        The inner snapshot is already a lock-protected copy; the
        injection counters are copied under this wrapper's own stats
        lock, so the merged dict is consistent even mid-sabotage.
        """
        stats = dict(self.inner.fault_stats())
        with self._stats_lock:
            for kind, count in self._injected.items():
                stats[f"injected_{kind}"] = count
        return stats

    def _count_injected(self, kind: str) -> None:
        with self._stats_lock:
            self._injected[kind] += 1

    def close(self) -> None:
        self.inner.close()

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------
    def _draw(self) -> str | None:
        if self._rng.random() >= self.rate:
            return None
        if self.kinds is not None:
            return self._rng.choice(self.kinds)
        roll = self._rng.random() * sum(w for _k, w in _WEIGHTED_KINDS)
        for kind, weight in _WEIGHTED_KINDS:
            roll -= weight
            if roll <= 0:
                return kind
        return _WEIGHTED_KINDS[-1][0]  # pragma: no cover - float dust

    def _sabotage(self, kind: str) -> bool:
        """Apply one process-level fault to the inner backend's pool.

        Returns False (recorded as ``skipped``) when the inner backend
        has no worker processes to sabotage — an in-process inner, or a
        pool that has not started yet.
        """
        inner = self.inner
        conns = getattr(inner, "_conns", None)
        if conns is None and isinstance(inner, MultiprocessBackend):
            inner._start()  # start eagerly so round one is already chaotic
            conns = inner._conns
        procs = getattr(inner, "_procs", None)
        if not conns or not procs:
            self._count_injected("skipped")
            self.fault_log.append(("skipped", None))
            return False
        wi = self._rng.randrange(len(procs))
        if kind in ("kill", "kill_after"):
            os.kill(procs[wi].pid, signal.SIGKILL)
        elif kind == "corrupt":
            try:
                conns[wi].send_bytes(b"\xde\xad\xbe\xef")
            except OSError:  # pragma: no cover - already dead: same effect
                pass
        elif kind == "hang":
            timeout = getattr(inner, "round_timeout", None) or 1.0
            try:
                conns[wi].send_bytes(
                    pickle.dumps(("sleep", 3.0 * timeout),
                                 pickle.HIGHEST_PROTOCOL)
                )
            except OSError:  # pragma: no cover - already dead: same effect
                pass
        self._count_injected(kind)
        self.fault_log.append((kind, wi))
        return True

    # ------------------------------------------------------------------
    def map_parts(
        self,
        fn: Callable[[list, Any, int], Any],
        parts: Sequence[list],
        common: Any = None,
        owner: Any = None,
    ) -> list[Any]:
        return self.run_ops([(fn, parts, common, owner)], collect=True)[0]

    def run_ops(
        self,
        ops: Sequence[tuple[Callable, Sequence[list], Any, Any]],
        collect: bool = True,
        meter: Any = None,
        span: Any = None,
    ) -> list[Any]:
        """Dispatch through the inner backend, possibly under sabotage.

        At most one fault is drawn per dispatched round.  ``drop`` loses
        the round before dispatch and re-drives it (re-execution of pure
        ops on immutable parts is idempotent — worker memos make it
        nearly free); the other kinds sabotage worker processes and let
        the inner backend's supervision recover mid-round.

        ``meter``/``span`` pass straight through to the inner backend:
        the inner pool emits the ``backend.round``/``worker.round`` spans
        (including the post-respawn retry children a sabotage provokes)
        and charges the meter, so a traced query looks the same whether
        or not chaos sits in the middle.
        """
        drops = 0
        while True:
            fault = self._draw()
            if fault == "drop":
                self._count_injected("drop")
                self.fault_log.append(("drop", None))
                drops += 1
                if drops > _MAX_DROPS:  # pragma: no cover - needs rate=1
                    raise RetryExhausted(
                        f"chaos: {drops} consecutive rounds dropped"
                    )
                continue
            if fault is not None:
                self._sabotage(fault)
            result = self.inner.run_ops(ops, collect, meter=meter, span=span)
            if fault == "kill_after":
                # The round itself succeeded; the *next* dispatch finds
                # the corpse.  (_sabotage already logged the kill; logged
                # kind distinguishes the detection path under test.)
                pass
            return result
