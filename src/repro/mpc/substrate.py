"""Cross-primitive performance substrate: key encoding + sorted-run caching.

Every Section-2 primitive funnels through the same PSRS pass: encode each
row's key with :func:`orderable`, sort locally, sample, route, sort again.
The core algorithms invoke the primitives dozens of times per join — often
on the *same* relation with the *same* key attributes (``attach_degrees``
is ``sum_by_key`` + ``multi_search`` on identical keys; the acyclic solver
semi-joins and splits one relation per heavy/light pattern).  This module
makes the repeated work cheap without changing a single ledger number:

* **Key-encoding cache** — ``orderable(project_row(row, pos))`` is computed
  once per ``(DistRelation, positions)`` and reused.  When a column is
  statically homogeneous (int/float-only or str-only, detected once per
  relation and cached), the recursive :func:`orderable` dispatch collapses
  into a tuple-build with a constant type tag; the fast encoder emits
  *bit-for-bit identical* keys, so sort orders, splitters, and routing are
  unchanged.
* **Sorted-run cache** — :func:`sorted_run` performs the PSRS pass for a
  ``(relation, key)`` pair once and caches the routed, sorted parts on the
  relation.  A repeat call *replays* the exact communication of the
  original pass (sample gather, splitter broadcast, shuffle exchange) so
  the ledger — loads, step-max, step count — is charged in full; only the
  Python-side encoding and sorting are skipped.  The cache can never go
  stale: :class:`~repro.mpc.distrel.DistRelation` parts are immutable
  after construction, every relation-producing operation returns a fresh
  object, and entries are keyed by the owning cluster/group identity so a
  relation reused under a different group re-sorts from scratch.

``set_caching(False)`` / :func:`cache_disabled` bypass both caches; the
bypass path recomputes everything and is the reference the correctness
tests compare against (identical outputs *and* identical ledgers).
See DESIGN.md for the full argument.
"""

from __future__ import annotations

from bisect import bisect_right
from contextlib import contextmanager
from functools import lru_cache
from typing import Any, Callable, Iterator, Sequence

from repro.data.relation import Row
from repro.mpc.distrel import DistRelation
from repro.mpc.group import Group
from repro.mpc.hashing import stable_hash
from repro.plan.trace import prim_span

__all__ = [
    "orderable",
    "coordinator_for",
    "caching_enabled",
    "set_caching",
    "cache_disabled",
    "column_kind",
    "projection_encoder",
    "projection_encoder_from_tags",
    "scalar_encoder",
    "scalar_encoder_from_tag",
    "key_encoder",
    "projected_keys",
    "sample_indices",
    "pick_splitters",
    "SortedRun",
    "sorted_run",
]

_ENABLED = True


def caching_enabled() -> bool:
    """Whether the substrate caches (encoders + sorted runs) are active."""
    return _ENABLED


def set_caching(enabled: bool) -> None:
    """Globally enable/disable the substrate caches (used by tests/benches)."""
    global _ENABLED
    _ENABLED = bool(enabled)


@contextmanager
def cache_disabled() -> Iterator[None]:
    """Run a block with every substrate cache bypassed (the reference path)."""
    global _ENABLED
    prev = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = prev


# ----------------------------------------------------------------------
# Key encoding
# ----------------------------------------------------------------------

def orderable(value: Any) -> tuple:
    """Map a value to a type-tagged key so mixed types sort deterministically."""
    if value is None:
        return (0,)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, str):
        return (3, value)
    if isinstance(value, bytes):
        return (4, value)
    if isinstance(value, tuple):
        return (5, tuple(orderable(v) for v in value))
    raise TypeError(f"cannot order value of type {type(value).__name__}")


# The orderable() type tags of the two homogeneity fast paths.
_TAG_NUM = 2
_TAG_STR = 3


def column_kind(rel: DistRelation, col: int) -> int | None:
    """Statically detect a homogeneous column; cached once per relation.

    Returns the :func:`orderable` type tag (``2`` for int/float, ``3`` for
    str) when *every* value in the column has exactly that Python type
    (``bool`` — an ``int`` subclass with a different tag — disqualifies),
    else ``None``.  With caching disabled no scan happens and ``None`` is
    returned, which routes every encoder through plain :func:`orderable`.

    Columnar-backed relations answer from the encoding's per-column kind
    tags in O(parts) instead of scanning every row.  Dictionary columns
    report homogeneity of their *dictionary* — a superset of the part's
    values after slicing — so the tag can only be conservative (``None``
    where a scan might find homogeneity), never falsely homogeneous; every
    encoder fast path emits bit-identical keys either way.
    """
    if not _ENABLED:
        return None
    kinds: dict[int, int | None] = rel._substrate.setdefault("kinds", {})
    if col in kinds:
        return kinds[col]
    blocks = rel.column_parts
    state = 0  # 0 = unseen, _TAG_NUM / _TAG_STR, -1 = heterogeneous
    if blocks is not None:
        for block in blocks:
            c = block.columns[col]
            if not len(c):
                continue
            t = c.order_tag
            if t is None:
                state = -1
                break
            if state == 0:
                state = t
            elif state != t:
                state = -1
                break
    else:
        for part in rel.parts:
            for row in part:
                v = row[col]
                tv = type(v)
                if tv is int or tv is float:
                    t = _TAG_NUM
                elif tv is str:
                    t = _TAG_STR
                else:
                    state = -1
                    break
                if state == 0:
                    state = t
                elif state != t:
                    state = -1
                    break
            if state == -1:
                break
    kind = state if state in (_TAG_NUM, _TAG_STR) else None
    kinds[col] = kind
    return kind


def _column_lut(rel: DistRelation, col: int) -> dict | None:
    """``(type, value) -> orderable(value)`` read from column dictionaries.

    For a dictionary-encoded column the :func:`orderable` form of each
    *distinct* value is computed once (per relation, cached) and key
    encoding becomes a lookup — the recursion never re-runs per row.  The
    ``(type, value)`` key mirrors the dictionary encoder's own key, so
    ``1``/``True``/``1.0`` resolve to their distinct orderable forms.
    Returns ``None`` when the relation is row-backed, the column has no
    dictionary, or a dictionary value defies :func:`orderable` (the
    per-row fallback then raises at the same site the reference would).
    """
    if not _ENABLED:
        return None
    blocks = rel.column_parts
    if blocks is None:
        return None
    store: dict[int, dict | None] = rel._substrate.setdefault("luts", {})
    if col in store:
        return store[col]
    lut: dict | None = {}
    for block in blocks:
        c = block.columns[col]
        if c.kind != "d":
            continue
        try:
            for v in c.dictionary or ():
                lut[(v.__class__, v)] = orderable(v)  # type: ignore[index]
        except TypeError:
            lut = None
            break
    if not lut:
        lut = None
    store[col] = lut
    return lut


def _value_encoder(tag: int | None, lut: dict | None) -> Callable[[Any], tuple]:
    """Single-value ``orderable`` equivalent: tag fast path, LUT, recursion."""
    if tag is not None:
        return lambda v: (tag, v)
    if lut is not None:
        get = lut.get

        def enc(v: Any) -> tuple:
            ok = get((v.__class__, v))
            return orderable(v) if ok is None else ok

        return enc
    return orderable


def projection_encoder_from_tags(
    pos: tuple[int, ...], tags: Sequence[int | None]
) -> Callable[[Row], tuple]:
    """Build the row encoder from a plain ``(positions, tags)`` descriptor.

    The descriptor is picklable, so execution backends can rebuild the
    exact encoder inside a worker process (:func:`_decorate_sort_part`).
    """
    if all(t is not None for t in tags):
        if len(pos) == 1:
            i0, t0 = pos[0], tags[0]
            return lambda row: (5, ((t0, row[i0]),))
        if len(pos) == 2:
            (i0, i1), (t0, t1) = pos, tags
            return lambda row: (5, ((t0, row[i0]), (t1, row[i1])))
        pairs = tuple(zip(pos, tags))
        return lambda row: (5, tuple((t, row[i]) for i, t in pairs))
    return lambda row: (5, tuple(orderable(row[i]) for i in pos))


def projection_encoder(
    rel: DistRelation, pos: Sequence[int]
) -> Callable[[Row], tuple]:
    """``row -> orderable(project_row(row, pos))``, specialized when possible.

    The fast paths produce *identical* tuples to the generic recursion, so
    anything downstream (splitters, run equality, routing) is unchanged.
    Heterogeneous columns of a columnar-backed relation resolve through
    their dictionary LUTs (:func:`_column_lut`) instead of re-running the
    :func:`orderable` recursion per row.
    """
    pos = tuple(pos)
    tags = [column_kind(rel, i) for i in pos]
    if all(t is not None for t in tags):
        return projection_encoder_from_tags(pos, tags)
    encs = [
        (i, _value_encoder(t, _column_lut(rel, i) if t is None else None))
        for i, t in zip(pos, tags)
    ]
    if len(encs) == 1:
        i0, e0 = encs[0]
        return lambda row: (5, (e0(row[i0]),))
    return lambda row: (5, tuple(e(row[i]) for i, e in encs))


def scalar_encoder_from_tag(col: int, tag: int | None) -> Callable[[Row], tuple]:
    """Picklable-descriptor form of :func:`scalar_encoder`."""
    if tag is not None:
        return lambda row: (tag, row[col])
    return lambda row: orderable(row[col])


def scalar_encoder(rel: DistRelation, col: int) -> Callable[[Row], tuple]:
    """``row -> orderable(row[col])``, specialized when the column allows."""
    tag = column_kind(rel, col)
    if tag is None:
        lut = _column_lut(rel, col)
        if lut is not None:
            enc = _value_encoder(None, lut)
            return lambda row: enc(row[col])
    return scalar_encoder_from_tag(col, tag)


def key_encoder(rel: DistRelation, pos: Sequence[int]) -> Callable[[Row], tuple]:
    """``key -> orderable(key)`` for keys projected from ``rel`` at ``pos``.

    For callers that already hold projected key tuples (the generic
    primitives) but know which relation/columns they came from.  Columns
    without a homogeneity tag resolve through their dictionary LUTs.
    """
    pos = tuple(pos)
    tags = [column_kind(rel, i) for i in pos]
    if all(t is not None for t in tags):
        tags_t = tuple(tags)
        return lambda key: (5, tuple(zip(tags_t, key)))
    luts = [_column_lut(rel, i) if t is None else None for i, t in zip(pos, tags)]
    if not any(luts):
        return orderable
    encs = [_value_encoder(t, lut) for t, lut in zip(tags, luts)]
    if len(encs) == 1:
        e0 = encs[0]
        return lambda key: (5, (e0(key[0]),))
    return lambda key: (5, tuple(e(v) for e, v in zip(encs, key)))


def pair_key_encoder(
    rel1: DistRelation,
    pos1: Sequence[int],
    rel2: DistRelation,
    pos2: Sequence[int],
) -> Callable[[Row], tuple] | None:
    """A shared fast key encoder for keys projected from *two* relations.

    When both projections are homogeneous with matching type tags, one
    tag-stamping encoder serves keys from either side.  Otherwise each
    position merges the two relations' dictionary LUTs — an encoder built
    from them is valid for values of *either* side (values absent from
    both dictionaries fall back to :func:`orderable`, bit-identically).
    Returns ``None`` only when no fast path exists at any position, so
    callers can use plain :func:`orderable` without wrapper overhead.
    """
    pos1 = tuple(pos1)
    pos2 = tuple(pos2)
    tags1 = [column_kind(rel1, i) for i in pos1]
    tags2 = [column_kind(rel2, i) for i in pos2]
    if tags1 == tags2 and all(t is not None for t in tags1):
        tags_t = tuple(tags1)
        return lambda key: (5, tuple(zip(tags_t, key)))
    encs: list[Callable[[Any], tuple]] = []
    useful = False
    for j in range(len(pos1)):
        t1, t2 = tags1[j], tags2[j]
        if t1 is not None and t1 == t2:
            encs.append(_value_encoder(t1, None))
            useful = True
            continue
        lut1 = _column_lut(rel1, pos1[j]) if t1 is None else None
        lut2 = _column_lut(rel2, pos2[j]) if t2 is None else None
        merged: dict | None = None
        if lut1 or lut2:
            merged = dict(lut1 or ())
            merged.update(lut2 or ())
            useful = True
        encs.append(_value_encoder(None, merged))
    if not useful:
        return None
    if len(encs) == 1:
        e0 = encs[0]
        return lambda key: (5, (e0(key[0]),))
    return lambda key: (5, tuple(e(v) for e, v in zip(encs, key)))


def projected_keys(rel: DistRelation, pos: Sequence[int]) -> list[list[Row]]:
    """Per-part projected key tuples, cached per ``(relation, positions)``.

    Columnar-backed relations build the key tuples straight from decoded
    column value lists — no row tuples are touched (or materialized).
    """
    pos = tuple(pos)
    if _ENABLED:
        cache: dict[tuple, list] = rel._substrate.setdefault("keys", {})
        got = cache.get(pos)
        if got is not None:
            return got
    blocks = rel.column_parts
    if blocks is not None:
        if len(pos) == 1:
            i0 = pos[0]
            keys = [[(v,) for v in b.column_values(i0)] for b in blocks]
        else:
            keys = [
                list(zip(*[b.column_values(i) for i in pos])) for b in blocks
            ]
    elif len(pos) == 1:
        i0 = pos[0]
        keys = [[(row[i0],) for row in part] for part in rel.parts]
    else:
        keys = [
            [tuple(row[i] for i in pos) for row in part] for part in rel.parts
        ]
    if _ENABLED:
        cache[pos] = keys
    return keys


# ----------------------------------------------------------------------
# Coordinator selection (memoized: labels repeat across primitive calls)
# ----------------------------------------------------------------------

@lru_cache(maxsize=4096)
def _coordinator(size: int, label: str) -> int:
    return stable_hash(label, salt=0x5EED) % size


def coordinator_for(group: Group, label: str) -> int:
    """Pick the coordinator server for a primitive step.

    Rotating the coordinator by a hash of the step label spreads the O(p)
    boundary-stitching traffic evenly instead of hot-spotting one server —
    the simulation analogue of the aggregation trees of [14, 18].  Labels
    repeat across primitive calls, so the choice is memoized (bounded:
    recursive algorithms mint depth-specific labels).
    """
    return _coordinator(group.size, label)


# ----------------------------------------------------------------------
# PSRS regular sampling (shared by the generic and run-fused sort paths —
# both must pick samples/splitters identically or the two primitive
# families would charge structurally different ledgers for the same sort)
# ----------------------------------------------------------------------

def sample_indices(n: int, p: int) -> list[int]:
    """The ``p`` evenly spaced local sample positions of a part of size n."""
    return sorted({min(n - 1, (k * n) // p) for k in range(p)})


def pick_splitters(flat: Sequence, p: int) -> list:
    """The ``p - 1`` range splitters from the gathered, sorted samples."""
    if not flat:
        return []
    m = len(flat)
    return [flat[min(m - 1, (k * m) // p)] for k in range(1, p)]


# ----------------------------------------------------------------------
# Sorted runs
# ----------------------------------------------------------------------

class SortedRun:
    """One PSRS pass over a relation's rows, keyed by one projection.

    Attributes:
        pos: Column positions of the sort key.
        scalar: Whether keys are bare column values (True) or 1+-tuples.
        splitters: The ``p - 1`` global ``(okey, uid)`` range splitters.
        parts: ``parts[d]`` holds destination server ``d``'s items as
            ``(okey, uid, key, row)`` quadruples in global sorted order;
            ``uid = (src_part, src_index)`` ties equal keys apart (heavy
            keys spread over servers) and indexes caller-side payloads.

    The private fields record the pass's communication profile —
    per-source sample counts and the shuffle's per-destination received
    counts — so a cache hit can re-charge the ledger exactly without
    re-materializing the exchanges.
    """

    __slots__ = (
        "pos", "scalar", "splitters", "parts", "_sample_sizes", "_shuffle_counts"
    )

    def __init__(
        self,
        pos: tuple[int, ...],
        scalar: bool,
        splitters: list[tuple],
        parts: list[list[tuple]],
        sample_sizes: list[int] | None,
        shuffle_counts: list[int] | None,
    ) -> None:
        self.pos = pos
        self.scalar = scalar
        self.splitters = splitters
        self.parts = parts
        self._sample_sizes = sample_sizes
        self._shuffle_counts = shuffle_counts


def sorted_run(
    group: Group,
    rel: DistRelation,
    key_attrs: Sequence[str],
    label: str,
    scalar: bool = False,
) -> SortedRun:
    """Sort ``rel``'s rows globally by their key projection (cached).

    On a cache hit the exact communication of the original pass is
    *replayed* — the sample gather, the splitter broadcast, and the full
    shuffle exchange are re-issued with identical message counts — so the
    ledger never under-charges; only local encoding/sorting is skipped.
    """
    with prim_span(
        group.cluster, "SampleSort",
        f"run {rel.name}[{','.join(key_attrs)}] {label}",
    ):
        return _sorted_run(group, rel, key_attrs, label, scalar)


def _sorted_run(
    group: Group,
    rel: DistRelation,
    key_attrs: Sequence[str],
    label: str,
    scalar: bool,
) -> SortedRun:
    pos = rel.positions(key_attrs)
    if _ENABLED:
        runs: dict[tuple, SortedRun] = rel._substrate.setdefault("runs", {})
        cache_key = (id(group.cluster), group.members, pos, bool(scalar))
        run = runs.get(cache_key)
        if run is not None:
            _replay_charges(group, run, label)
            return run
        run = _build_run(group, rel, pos, label, scalar)
        runs[cache_key] = run
        return run
    return _build_run(group, rel, pos, label, scalar)


def _replay_charges(group: Group, run: SortedRun, label: str) -> None:
    """Re-charge the cached pass's exact communication to the ledger.

    Posts the same three steps a fresh pass performs — sample gather,
    splitter broadcast, shuffle — with identical per-server counts,
    through the same ledger entry point :meth:`Cluster.tally_members`
    that :meth:`Group.exchange` uses.  Only the O(n) Python-side message
    materialization is skipped; the charged units are bit-for-bit equal.
    """
    if group.size == 1:
        return
    p = group.size
    coord = coordinator_for(group, label)
    tally = group.cluster.tally_members
    sizes = run._sample_sizes or [0] * p
    counts = [0] * p
    counts[coord] = sum(sizes) - sizes[coord]
    tally(group.members, counts, f"{label}/sample")
    n_spl = len(run.splitters)
    counts = [n_spl] * p
    counts[coord] = 0
    tally(group.members, counts, f"{label}/splitters")
    tally(group.members, run._shuffle_counts or [0] * p, f"{label}/shuffle")


def _decorate_sort_part(part: list, common: tuple, idx: int) -> list[tuple]:
    """Per-server decorate + local sort of one part (backend-shippable).

    ``common = (pos, tags, scalar)`` is a pure-data descriptor of the key
    encoding, so any :class:`~repro.mpc.backends.Backend` can run this in a
    worker process and produce bit-identical ``(okey, uid, key, row)``
    quadruples; ``uid = (idx, j)`` is globally unique, so the plain tuple
    sort never compares rows.
    """
    pos, tags, scalar = common
    if scalar:
        enc = scalar_encoder_from_tag(pos[0], tags[0])
        i0 = pos[0]
        d = [(enc(row), (idx, j), row[i0], row) for j, row in enumerate(part)]
    else:
        enc = projection_encoder_from_tags(pos, tags)
        if len(pos) == 1:
            i0 = pos[0]
            d = [
                (enc(row), (idx, j), (row[i0],), row)
                for j, row in enumerate(part)
            ]
        else:
            d = [
                (enc(row), (idx, j), tuple(row[i] for i in pos), row)
                for j, row in enumerate(part)
            ]
    d.sort()
    return d


def _build_run(
    group: Group,
    rel: DistRelation,
    pos: tuple[int, ...],
    label: str,
    scalar: bool,
) -> SortedRun:
    p = group.size
    tags = tuple(column_kind(rel, i) for i in pos)
    # With caching disabled this is the reference path: pass no owner so
    # backends also skip their worker-local memoization and recompute.
    decorated = group.map_parts(
        _decorate_sort_part,
        rel.parts,
        (pos, tags, bool(scalar)),
        owner=rel if _ENABLED else None,
    )

    if p == 1:
        return SortedRun(pos, scalar, [], decorated, None, None)

    sample_parts: list[list[tuple]] = []
    for d in decorated:
        if not d:
            sample_parts.append([])
            continue
        idxs = sample_indices(len(d), p)
        sample_parts.append([(d[i][0], d[i][1]) for i in idxs])

    coord = coordinator_for(group, label)
    flat = sorted(group.gather(sample_parts, f"{label}/sample", dst=coord))
    splitters: list[tuple] = pick_splitters(flat, p)
    group.broadcast(splitters, f"{label}/splitters", src=coord)

    outboxes = [
        [(bisect_right(splitters, (item[0], item[1])), item) for item in d]
        for d in decorated
    ]
    shuffle_counts = [0] * p
    for src, box in enumerate(outboxes):
        for dst, _item in box:
            if dst != src:
                shuffle_counts[dst] += 1
    inboxes = group.exchange(outboxes, f"{label}/shuffle")
    for box in inboxes:
        box.sort()
    sample_sizes = [len(sp) for sp in sample_parts]
    return SortedRun(pos, scalar, splitters, inboxes, sample_sizes, shuffle_counts)
