"""Server groups: the routing surface of the simulator.

A :class:`Group` is a *family* of equally-sized server tuples over one
:class:`~repro.mpc.cluster.Cluster`.  Most groups have a single member; the
family generalization exists for the paper's Section 3.2 Case 2, where a
``p1 x p2 x ... x pk`` hypercube of servers runs the *same* sub-join along
every grid line of a dimension.  Simulating one representative line and
charging the identical load to every member keeps the simulation cost at
``sum p_i`` instead of ``prod p_i`` while preserving the exact ledger the
real execution would produce (the replicas are deterministic copies).

All data movement funnels through :meth:`Group.exchange`; higher-level
helpers (hash routing, broadcast, gather) and the Section 2 primitives in
:mod:`repro.mpc.primitives` build on it.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.errors import MPCError
from repro.mpc.cluster import Cluster
from repro.mpc.hashing import stable_hash

__all__ = ["Group"]


class Group:
    """A family of equally-sized server tuples on a cluster.

    Args:
        cluster: The owning cluster.
        members: Non-empty list of tuples of global server ids; all tuples
            must have the same length (the group *size*).  ``members[0]`` is
            the representative on which data physically lives in the
            simulation; the others are deterministic replicas whose load is
            tallied identically.
    """

    def __init__(self, cluster: Cluster, members: Sequence[tuple[int, ...]]) -> None:
        if not members:
            raise MPCError("group needs at least one member")
        size = len(members[0])
        if size == 0:
            raise MPCError("group members must be non-empty")
        for m in members:
            if len(m) != size:
                raise MPCError("all group members must have equal size")
        self.cluster = cluster
        self.members: tuple[tuple[int, ...], ...] = tuple(tuple(m) for m in members)
        self.size = size

    # ------------------------------------------------------------------
    @property
    def representative(self) -> tuple[int, ...]:
        return self.members[0]

    def empty_parts(self) -> list[list[Any]]:
        """One empty inbox per local server."""
        return [[] for _ in range(self.size)]

    def subgroup(self, local_indices: Sequence[int]) -> "Group":
        """Group over a subset of local indices (across every member)."""
        if not local_indices:
            raise MPCError("subgroup needs at least one server")
        for i in local_indices:
            if not 0 <= i < self.size:
                raise MPCError(f"local index {i} out of range [0, {self.size})")
        rec = self.cluster.recorder
        if rec is not None:
            rec.record_structural(
                "Subgroup", f"{len(local_indices)} of {self.size} servers"
            )
        return Group(
            self.cluster,
            [tuple(m[i] for i in local_indices) for m in self.members],
        )

    def slice(self, start: int, stop: int) -> "Group":
        """Contiguous subgroup ``[start, stop)``."""
        return self.subgroup(list(range(start, stop)))

    def grid_line_groups(self, dims: Sequence[int]) -> list["Group"]:
        """Families of grid lines for a ``dims[0] x ... x dims[k-1]`` hypercube.

        Requires ``prod(dims) <= size``; uses the first ``prod(dims)`` local
        servers, linearized row-major.  Returns one :class:`Group` per
        dimension ``i`` whose members are all lines along that dimension
        (across all existing members), i.e. the server groups that jointly
        compute sub-join ``i`` in paper Section 3.2 Case 2.
        """
        total = 1
        for d in dims:
            total *= d
        if total > self.size:
            raise MPCError(f"grid {dims} needs {total} servers, group has {self.size}")
        rec = self.cluster.recorder
        if rec is not None:
            rec.record_structural("GridLines", f"dims={list(dims)}")
        k = len(dims)
        strides = [0] * k
        acc = 1
        for i in reversed(range(k)):
            strides[i] = acc
            acc *= dims[i]

        def lin(coords: Sequence[int]) -> int:
            return sum(c * s for c, s in zip(coords, strides))

        groups: list[Group] = []
        for i in range(k):
            other_dims = [dims[j] for j in range(k) if j != i]
            members: list[tuple[int, ...]] = []
            for base in self.members:
                # Iterate over all coordinate combinations of the other dims.
                combos: list[list[int]] = [[]]
                for d in other_dims:
                    combos = [c + [v] for c in combos for v in range(d)]
                for combo in combos:
                    coords = list(combo)
                    line: list[int] = []
                    for v in range(dims[i]):
                        full = coords[:i] + [v] + coords[i:]
                        line.append(base[lin(full)])
                    members.append(tuple(line))
            groups.append(Group(self.cluster, members))
        return groups

    # ------------------------------------------------------------------
    # The one true data-movement operation.
    # ------------------------------------------------------------------
    def exchange(
        self,
        outboxes: Sequence[Iterable[tuple[int, Any]]],
        label: str,
        count_self: bool = False,
    ) -> list[list[Any]]:
        """Deliver messages and tally the received units on every member.

        Args:
            outboxes: ``outboxes[i]`` holds the messages sent by local
                server ``i`` as ``(dst_local_index, payload)`` pairs.  One
                payload is one unit of communication (the model charges a
                tuple or a machine word each as one unit).
            label: Ledger label (phase name).
            count_self: Whether a message from a server to itself costs a
                unit.  Defaults to False — data a server already holds does
                not traverse the network.

        Returns:
            ``inboxes[j]``: payloads received by local server ``j``, in
            sender order.
        """
        size = self.size
        if len(outboxes) != size:
            raise MPCError(
                f"expected {size} outboxes, got {len(outboxes)}"
            )
        # Delivery is the backend's job; counting received units is not —
        # the backend reports per-destination counts and the shared ledger
        # tallies them on every member of the family (one batched call).
        inboxes, counts = self.cluster.backend.exchange(outboxes, size, count_self)
        self.cluster.tally_members(self.members, counts, label)
        return inboxes

    def map_parts(
        self,
        fn: Callable[[list, Any, int], Any],
        parts: Sequence[list],
        common: Any = None,
        owner: Any = None,
    ) -> list[Any]:
        """Run a pure per-server computation through the cluster's backend.

        ``fn(part, common, index)`` must be a module-level pure function of
        its arguments (so a backend may execute it in another process);
        ``common`` must be picklable.  Local computation is free in the MPC
        model — nothing is tallied.  ``owner`` (typically the
        :class:`~repro.mpc.distrel.DistRelation` the parts belong to) lets
        backends memoize per-part results across calls; pass it whenever
        the parts are immutable.
        """
        if len(parts) != self.size:
            raise MPCError(
                f"expected {self.size} parts, got {len(parts)}"
            )
        cluster = self.cluster
        rec = cluster.recorder
        if rec is not None:
            rec.record_map_parts(fn, parts, common, owner)
        # Routed through run_ops (map_parts is its one-op special case on
        # every backend) so the cluster's per-query wire meter and trace
        # span ride along; both are None outside an engine execution.
        return cluster.backend.run_ops(
            [(fn, parts, common, owner)],
            meter=cluster.wire_meter,
            span=cluster.obs_span,
        )[0]

    # ------------------------------------------------------------------
    # Convenience routings built on exchange.
    # ------------------------------------------------------------------
    def route(
        self,
        parts: Sequence[Iterable[Any]],
        dest_fn: Callable[[Any], int],
        label: str,
    ) -> list[list[Any]]:
        """Route each item of each part to ``dest_fn(item)``."""
        outboxes = [
            [(dest_fn(item), item) for item in part] for part in parts
        ]
        return self.exchange(outboxes, label)

    def hash_route(
        self,
        parts: Sequence[Iterable[Any]],
        key_fn: Callable[[Any], Any],
        label: str,
        salt: int = 0,
    ) -> list[list[Any]]:
        """Route items by a stable hash of their key.

        No per-key memoization: dict equality would collapse keys that
        ``stable_hash`` deliberately distinguishes (``1``/``True``/``1.0``),
        making placement depend on arrival order.
        """
        size = self.size
        return self.route(
            parts, lambda item: stable_hash(key_fn(item), salt) % size, label
        )

    def broadcast(self, items: Sequence[Any], label: str, src: int = 0) -> None:
        """Replicate ``items`` (held by local server ``src``) to every server.

        Every server (except the sender) receives ``len(items)`` units.  The
        caller keeps using the same Python objects; only the ledger moves.
        """
        outbox: list[tuple[int, Any]] = []
        for dst in range(self.size):
            for item in items:
                outbox.append((dst, item))
        outboxes: list[list[tuple[int, Any]]] = [[] for _ in range(self.size)]
        outboxes[src] = outbox
        rec = self.cluster.recorder
        if rec is not None:
            rec.mark_broadcast()
        self.exchange(outboxes, label)

    def gather(
        self, parts: Sequence[Iterable[Any]], label: str, dst: int = 0
    ) -> list[Any]:
        """Collect all items on local server ``dst`` (the coordinator)."""
        outboxes = [[(dst, item) for item in part] for part in parts]
        inboxes = self.exchange(outboxes, label)
        return inboxes[dst]

    def scatter_even(self, items: Sequence[Any], label: str, src: int = 0) -> list[list[Any]]:
        """Deal items from one server round-robin across the group."""
        outboxes: list[list[tuple[int, Any]]] = [[] for _ in range(self.size)]
        outboxes[src] = [(i % self.size, item) for i, item in enumerate(items)]
        return self.exchange(outboxes, label)

    def __repr__(self) -> str:
        fam = f" x{len(self.members)}" if len(self.members) > 1 else ""
        return f"Group<size={self.size}{fam}>"
