"""Parallel-packing and server-allocation primitives (paper Section 2).

* :func:`parallel_packing` — group weighted items (0 < w <= 1) into bins of
  total weight <= 1 with all but one bin >= 1/2.  Used to pack light
  sub-instances onto single servers (Sections 3.2 and 4.2).
* :func:`server_allocation` — turn per-subproblem server demands into
  disjoint contiguous server ranges every tuple can learn.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.errors import AllocationError
from repro.mpc.group import Group

__all__ = ["parallel_packing", "server_allocation"]


def parallel_packing(
    group: Group,
    parts: Sequence[Iterable[tuple[Any, float]]],
    label: str = "packing",
) -> tuple[list[list[tuple[Any, int]]], int]:
    """Pack weighted items into groups of total weight <= 1.

    Args:
        group: The server group executing the primitive.
        parts: Per-server ``(item_id, weight)`` pairs with ``0 < weight <= 1``.

    Returns:
        ``(assignment_parts, n_groups)`` where assignments are
        ``(item_id, group_id)`` pairs (same distribution as the input) and
        group ids run ``0..n_groups-1``.  Guarantees: every group's total
        weight is <= 1, and all but at most one group have weight >= 1/2,
        so ``n_groups <= 1 + 2 * total_weight`` (paper Section 2).

    Note:
        The paper recurses on the p leftover partial bins; with
        ``IN >= p^2`` a single O(p)-unit coordinator pass packs them
        directly, which is what we do (see DESIGN.md).
    """
    parts = [list(p) for p in parts]
    for part in parts:
        for item_id, w in part:
            if not 0 < w <= 1 + 1e-12:
                raise AllocationError(f"weight {w} of item {item_id!r} not in (0, 1]")

    # Local grouping: items of weight >= 1/2 each take their own bin; small
    # items accumulate until the next one would overflow 1, so every closed
    # small bin holds > 1 - 1/2 = 1/2.  At most one partial (< 1/2) bin per
    # server remains.
    local_bins_per_server: list[list[list[tuple[Any, float]]]] = []
    leftovers: list[tuple[int, float, list[Any]] | None] = []
    full_counts: list[int] = []
    for server_idx, part in enumerate(parts):
        full: list[list[tuple[Any, float]]] = []
        cur: list[tuple[Any, float]] = []
        cur_w = 0.0
        for item_id, w in part:
            if w >= 0.5:
                full.append([(item_id, w)])
                continue
            if cur_w + w > 1.0 + 1e-12:
                full.append(cur)
                cur, cur_w = [], 0.0
            cur.append((item_id, w))
            cur_w += w
        partial: list[tuple[Any, float]] = []
        if cur:
            if cur_w >= 0.5:
                full.append(cur)
            else:
                partial = cur
        local_bins_per_server.append(full)
        full_counts.append(len(full))
        if partial:
            leftovers.append(
                (server_idx, sum(w for _i, w in partial), [i for i, _w in partial])
            )
        else:
            leftovers.append(None)

    # Prefix sums over full-bin counts (O(p) coordinator traffic), plus
    # packing of the <= p leftover partial bins into final groups.
    from repro.mpc.primitives import coordinator_for

    size = group.size
    coord = coordinator_for(group, label)
    outboxes: list[list[tuple[int, Any]]] = [[] for _ in range(size)]
    for i in range(size):
        outboxes[i].append((coord, (i, full_counts[i], leftovers[i])))
    inbox = group.exchange(outboxes, f"{label}/gather")[coord]
    inbox.sort(key=lambda t: t[0])

    offsets = []
    acc = 0
    for _i, cnt, _leftover in inbox:
        offsets.append(acc)
        acc += cnt
    n_full = acc

    # First-fit the leftover partial bins (each < 1/2) into shared groups.
    leftover_group_of_server: dict[int, int] = {}
    cur_gid = n_full
    cur_w = 0.0
    started = False
    for i, _cnt, leftover in inbox:
        if leftover is None:
            continue
        _srv, w, _ids = leftover
        if not started:
            started = True
            cur_w = w
        elif cur_w + w <= 1.0 + 1e-12:
            cur_w += w
        else:
            cur_gid += 1
            cur_w = w
        leftover_group_of_server[i] = cur_gid
    n_groups = cur_gid + 1 if started else n_full

    replies: list[tuple[int, int | None]] = [
        (offsets[idx], leftover_group_of_server.get(inbox[idx][0]))
        for idx in range(len(inbox))
    ]
    outboxes2: list[list[tuple[int, Any]]] = [[] for _ in range(size)]
    for idx, (i, _cnt, _l) in enumerate(inbox):
        outboxes2[coord].append((i, replies[idx]))
    reply_boxes = group.exchange(outboxes2, f"{label}/reply")

    assignment_parts: list[list[tuple[Any, int]]] = []
    for server_idx in range(size):
        reply = reply_boxes[server_idx][0] if reply_boxes[server_idx] else (0, None)
        offset, leftover_gid = reply
        out: list[tuple[Any, int]] = []
        for local_gid, bin_items in enumerate(local_bins_per_server[server_idx]):
            for item_id, _w in bin_items:
                out.append((item_id, offset + local_gid))
        if leftovers[server_idx] is not None and leftover_gid is not None:
            for item_id in leftovers[server_idx][2]:
                out.append((item_id, leftover_gid))
        assignment_parts.append(out)
    return assignment_parts, n_groups


def server_allocation(
    group: Group,
    demand_parts: Sequence[Iterable[tuple[Any, int]]],
    label: str = "allocation",
) -> dict[Any, tuple[int, int]]:
    """Assign disjoint contiguous local-server ranges to subproblems.

    Args:
        demand_parts: Per-server ``(subproblem_id, p_j)`` pairs; each
            subproblem id must appear exactly once globally.

    Returns:
        ``{subproblem_id: (start, end)}`` with ``end`` exclusive and
        ``max end <= sum p_j`` (paper Section 2).  The mapping is broadcast
        so every server can route its tuples; the broadcast cost (number of
        subproblems, <= O(p) by construction in all callers) is tallied.

    Raises:
        AllocationError: On duplicate subproblem ids or non-positive demands.
    """
    from repro.mpc.primitives import coordinator_for

    coord = coordinator_for(group, label)
    gathered = group.gather(
        [list(p) for p in demand_parts], f"{label}/gather", dst=coord
    )
    seen: dict[Any, int] = {}
    for sub_id, pj in gathered:
        if pj <= 0:
            raise AllocationError(f"subproblem {sub_id!r} demands {pj} servers")
        if sub_id in seen:
            raise AllocationError(f"duplicate subproblem id {sub_id!r}")
        seen[sub_id] = pj
    ranges: dict[Any, tuple[int, int]] = {}
    acc = 0
    for sub_id in sorted(seen, key=lambda s: (str(type(s)), str(s))):
        ranges[sub_id] = (acc, acc + seen[sub_id])
        acc += seen[sub_id]
    group.broadcast(list(ranges.items()), f"{label}/broadcast", src=coord)
    return ranges
