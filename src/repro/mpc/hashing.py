"""Deterministic hashing for routing decisions.

Python's built-in ``hash`` is salted per process for strings, which would
make simulated runs non-reproducible.  All routing in the simulator goes
through :func:`stable_hash` instead.
"""

from __future__ import annotations

import zlib
from functools import lru_cache
from typing import Any

__all__ = ["stable_hash"]

_MASK = 0xFFFFFFFFFFFFFFFF


def _mix(h: int, v: int) -> int:
    """splitmix64-style mixing step."""
    h = (h + 0x9E3779B97F4A7C15 + v) & _MASK
    h = ((h ^ (h >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    h = ((h ^ (h >> 27)) * 0x94D049BB133111EB) & _MASK
    return h ^ (h >> 31)


@lru_cache(maxsize=256)
def _salt_state(salt: int) -> int:
    """Initial mixing state per salt (salts repeat across routing steps)."""
    return _mix(0x243F6A8885A308D3, salt & _MASK)


def stable_hash(obj: Any, salt: int = 0) -> int:
    """A process-independent 64-bit hash of ints, strings, and tuples.

    Args:
        obj: An int, string, bytes, None, bool, float, or (nested) tuple of
            those.
        salt: Optional salt so independent routing decisions decorrelate.

    Raises:
        TypeError: For unsupported types (lists, dicts, sets are not hashable
            routing keys).
    """
    h = _salt_state(salt)
    stack = [obj]
    while stack:
        cur = stack.pop()
        if cur is None:
            h = _mix(h, 0x5BF03635)
        elif isinstance(cur, bool):
            h = _mix(h, 0x9E3779B9 + int(cur))
        elif isinstance(cur, int):
            h = _mix(h, cur & _MASK)
            h = _mix(h, (cur >> 64) & _MASK)
        elif isinstance(cur, float):
            h = _mix(h, hash(cur) & _MASK)
        elif isinstance(cur, str):
            h = _mix(h, zlib.crc32(cur.encode("utf-8")))
            h = _mix(h, len(cur))
        elif isinstance(cur, bytes):
            h = _mix(h, zlib.crc32(cur))
        elif isinstance(cur, tuple):
            h = _mix(h, 0xABCD1234 + len(cur))
            stack.extend(reversed(cur))
        else:
            raise TypeError(f"unhashable routing key type: {type(cur).__name__}")
    return h
