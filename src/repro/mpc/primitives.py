"""The paper's Section 2 MPC primitives, all with linear load, O(1) rounds.

Implemented sort-first (the [14, 18] recipe): a deterministic
regular-sampling sort (PSRS) range-partitions items so that equal keys are
contiguous *across* servers, then per-key logic runs locally with an O(p)
boundary round-trip through a coordinator to stitch runs that span server
boundaries.  The coordinator traffic is O(p) units per primitive, which is
within the linear-load budget whenever ``IN >= p^2`` (documented in
DESIGN.md; the paper assumes ``IN >= p^{1+eps}`` and uses aggregation trees
instead — same interface, same asymptotics for our experiment range).

Two layers of primitives:

*Generic* (item-level, as in the paper's exposition):

* :func:`sample_sort` — global sort (the substrate).
* :func:`sum_by_key` — per-key aggregation with any associative operator.
* :func:`multi_numbering` — consecutive numbering 1,2,3,... per key.
* :func:`multi_search` — predecessor search of X elements in Y.

*Relation-aware* (fused onto a cached sorted run of the relation — see
:mod:`repro.mpc.substrate` and DESIGN.md; identical semantics, one PSRS
pass shared across primitives on the same ``(relation, key)``):

* :func:`count_by_key` / :func:`fold_by_key` — per-key aggregation of a
  relation's rows.
* :func:`search_rows` — predecessor search of a relation's rows in a table.
* :func:`number_rows` — per-key numbering of a relation's rows.
* :func:`semi_join` — ``R1 semijoin R2`` via predecessor search.
* :func:`attach_degrees` — annotate rows with their key's global degree
  (the sum-by-key + multi-search combo used by every heavy/light split,
  fused into a single sort pass plus one boundary round-trip).
* :func:`distinct_keys` — globally distinct key projections.
"""

from __future__ import annotations

from bisect import bisect_right
from operator import itemgetter
from typing import Any, Callable, Iterable, Sequence

from repro.data.relation import Row
from repro.errors import MPCError
from repro.mpc.distrel import DistRelation
from repro.mpc.group import Group
from repro.plan.trace import prim_span
from repro.mpc.substrate import (
    coordinator_for,
    orderable,
    pair_key_encoder,
    pick_splitters,
    projected_keys,
    sample_indices,
    sorted_run,
)

__all__ = [
    "orderable",
    "coordinator_for",
    "sample_sort",
    "sum_by_key",
    "multi_numbering",
    "multi_search",
    "count_by_key",
    "fold_by_key",
    "search_rows",
    "number_rows",
    "semi_join",
    "attach_degrees",
    "distinct_keys",
    "global_sum",
]

_key0 = itemgetter(0)


def _coordinator_roundtrip(
    group: Group,
    summaries: Sequence[Any],
    compute: Callable[[list[Any]], list[Any]],
    label: str,
) -> list[Any]:
    """Send one summary per server to a coordinator, compute, reply one each.

    The O(p)-unit coordinator step shared by all boundary-stitching logic.
    """
    coord = coordinator_for(group, label)
    outboxes = [[(coord, (i, s))] for i, s in enumerate(summaries)]
    inboxes = group.exchange(outboxes, f"{label}/gather")
    received = sorted(inboxes[coord], key=_key0)
    replies = compute([s for _, s in received])
    if len(replies) != group.size:
        raise MPCError("coordinator must reply to every server")
    outboxes2: list[list[tuple[int, Any]]] = [[] for _ in range(group.size)]
    outboxes2[coord] = [(i, r) for i, r in enumerate(replies)]
    inboxes2 = group.exchange(outboxes2, f"{label}/reply")
    return [box[0] for box in inboxes2]


def sample_sort(
    group: Group,
    parts: Sequence[Iterable[Any]],
    key_fn: Callable[[Any], Any],
    label: str,
    encoder: Callable[[Any], tuple] | None = None,
) -> list[list[tuple[tuple, tuple[int, int], Any]]]:
    """Globally sort items by ``(key, origin-uid)`` via regular sampling.

    Returns per-server lists of ``(orderable_key, uid, item)`` triples in
    global sorted order (server 0's part precedes server 1's, etc.).  Equal
    keys are tie-broken by uid, so heavy keys spread across servers — the
    property that makes the downstream primitives skew-proof.

    ``encoder`` maps ``key_fn``'s output to its orderable form; it must
    agree with :func:`orderable` bit-for-bit (the substrate's specialized
    encoders do) and exists purely to skip the recursive dispatch.

    Load: ~``n/p`` per server (PSRS guarantees < 2n/p) plus O(p) sampling
    traffic at the coordinator.
    """
    with prim_span(group.cluster, "SampleSort", label):
        return _sample_sort_impl(group, parts, key_fn, label, encoder)


def _sample_sort_impl(
    group: Group,
    parts: Sequence[Iterable[Any]],
    key_fn: Callable[[Any], Any],
    label: str,
    encoder: Callable[[Any], tuple] | None,
) -> list[list[tuple[tuple, tuple[int, int], Any]]]:
    p = group.size
    enc = encoder or orderable
    decorated: list[list[tuple[tuple, tuple[int, int], Any]]] = []
    for i, part in enumerate(parts):
        d = [(enc(key_fn(item)), (i, j), item) for j, item in enumerate(part)]
        d.sort(key=_decorated_key)
        decorated.append(d)
    if p == 1:
        return decorated

    # Regular sampling: p evenly spaced (key, uid) pivots per server, each
    # counted as one unit of communication at the coordinator.
    sample_parts: list[list[tuple[tuple, tuple[int, int]]]] = []
    for d in decorated:
        if not d:
            sample_parts.append([])
            continue
        idxs = sample_indices(len(d), p)
        sample_parts.append([(d[i][0], d[i][1]) for i in idxs])

    coord = coordinator_for(group, label)
    flat = sorted(group.gather(sample_parts, f"{label}/sample", dst=coord))
    splitters: list[tuple] = pick_splitters(flat, p)
    group.broadcast(splitters, f"{label}/splitters", src=coord)

    outboxes = [
        [(bisect_right(splitters, (t[0], t[1])), t) for t in d]
        for d in decorated
    ]
    routed = group.exchange(outboxes, f"{label}/shuffle")
    for part in routed:
        part.sort(key=_decorated_key)
    return routed


def _decorated_key(t: tuple) -> tuple:
    return (t[0], t[1])


# ----------------------------------------------------------------------
# Boundary-stitching helpers shared by the sum/fold family
# ----------------------------------------------------------------------

def _run_summaries(
    runs_per_server: Sequence[Sequence[tuple]],
) -> list[Any]:
    """Per-server ``((first_ok, first_acc), (last_ok, last_acc), n_runs)``."""
    summaries: list[Any] = []
    for runs in runs_per_server:
        if not runs:
            summaries.append(None)
        else:
            first = (runs[0][0], runs[0][2])
            last = (runs[-1][0], runs[-1][2])
            summaries.append((first, last, len(runs)))
    return summaries


def _stitch_fn(plus: Callable[[Any, Any], Any]) -> Callable[[list[Any]], list[Any]]:
    """Coordinator logic deciding what happens to boundary runs.

    Reply per server: ``(first_action, last_action)`` where an action is
    ``None`` (no such run), ``("emit", total)`` or ``("drop",)``.  For a
    single-run server the two actions collapse into ``first_action``.
    """

    def stitch(summaries_list: list[Any]) -> list[Any]:
        replies: list[list[Any]] = [[None, None] for _ in summaries_list]
        chain: tuple[int, int, tuple, Any] | None = None  # (server, slot, okey, acc)

        def flush() -> None:
            nonlocal chain
            if chain is not None:
                srv, slot, _okey, acc = chain
                replies[srv][slot] = ("emit", acc)
                chain = None

        for i, s in enumerate(summaries_list):
            if s is None:
                continue
            (first_ok, first_sum), (last_ok, last_sum), n_runs = s
            if chain is not None and chain[2] == first_ok:
                chain = (chain[0], chain[1], chain[2], plus(chain[3], first_sum))
                replies[i][0] = ("drop",)
            else:
                flush()
                chain = (i, 0, first_ok, first_sum)
            if n_runs > 1:
                # The last run starts a fresh chain: with several runs the
                # last key necessarily differs from the first.
                flush()
                chain = (i, 1, last_ok, last_sum)
        flush()
        return [tuple(r) for r in replies]

    return stitch


def _emit_stitched(
    runs_per_server: Sequence[Sequence[tuple]], replies: Sequence[Any]
) -> list[list[tuple[Any, Any]]]:
    """Apply stitch replies: emit owned runs as ``(key, total)`` pairs."""
    out_parts: list[list[tuple[Any, Any]]] = []
    for runs, reply in zip(runs_per_server, replies):
        first_action, last_action = reply
        out: list[tuple[Any, Any]] = []
        last_idx = len(runs) - 1
        for idx, (_okey, key, partial) in enumerate(runs):
            if idx == 0 and first_action is not None:
                if first_action[0] == "emit":
                    out.append((key, first_action[1]))
                # drop: owned upstream
            elif idx == last_idx and last_action is not None:
                if last_action[0] == "emit":
                    out.append((key, last_action[1]))
            else:
                out.append((key, partial))
        out_parts.append(out)
    return out_parts


def sum_by_key(
    group: Group,
    parts: Sequence[Iterable[tuple[Any, Any]]],
    plus: Callable[[Any, Any], Any] = lambda a, b: a + b,
    label: str = "sum_by_key",
    encoder: Callable[[Any], tuple] | None = None,
) -> list[list[tuple[Any, Any]]]:
    """Aggregate ``(key, value)`` pairs per key with an associative operator.

    Returns per-server lists of ``(key, total)``; each key appears exactly
    once globally (on the first server of its sorted span).
    """
    sorted_parts = sample_sort(group, parts, _key0, label, encoder=encoder)

    # Local runs: (okey, key, partial_sum).
    runs_per_server: list[list[tuple[tuple, Any, Any]]] = []
    for part in sorted_parts:
        runs: list[tuple[tuple, Any, Any]] = []
        for okey, _uid, (key, value) in part:
            if runs and runs[-1][0] == okey:
                prev = runs[-1]
                runs[-1] = (prev[0], prev[1], plus(prev[2], value))
            else:
                runs.append((okey, key, value))
        runs_per_server.append(runs)

    # Boundary stitching: only each server's first and last run can span.
    replies = _coordinator_roundtrip(
        group, _run_summaries(runs_per_server), _stitch_fn(plus), f"{label}/stitch"
    )
    return _emit_stitched(runs_per_server, replies)


def fold_by_key(
    group: Group,
    rel: DistRelation,
    key_attrs: Sequence[str],
    plus: Callable[[Any, Any], Any] | None = None,
    label: str = "fold_by_key",
    values: Sequence[Sequence[Any]] | None = None,
    scalar: bool = False,
) -> list[list[tuple[Any, Any]]]:
    """Per-key aggregation of a relation's rows, fused onto its sorted run.

    Equivalent to ``sum_by_key`` over ``(project_row(row, pos), value)``
    pairs — same outputs, same ledger — but the PSRS pass is shared with
    (and cached for) every other primitive keyed the same way.

    Args:
        values: ``values[i][j]`` is row ``j`` of part ``i``'s value
            (aligned with ``rel.parts``); defaults to 1 per row (counting).
        scalar: Key rows by the bare column value instead of a 1-tuple.
    """
    with prim_span(
        group.cluster, "FoldByKey", f"{rel.name}[{','.join(key_attrs)}] {label}"
    ):
        return _fold_by_key_impl(group, rel, key_attrs, plus, label, values, scalar)


def _fold_by_key_impl(
    group: Group,
    rel: DistRelation,
    key_attrs: Sequence[str],
    plus: Callable[[Any, Any], Any] | None,
    label: str,
    values: Sequence[Sequence[Any]] | None,
    scalar: bool,
) -> list[list[tuple[Any, Any]]]:
    run = sorted_run(group, rel, key_attrs, label, scalar=scalar)
    add = plus if plus is not None else lambda a, b: a + b
    runs_per_server: list[list[tuple[tuple, Any, Any]]] = []
    for part in run.parts:
        runs: list[tuple[tuple, Any, Any]] = []
        for okey, uid, key, _row in part:
            v = 1 if values is None else values[uid[0]][uid[1]]
            if runs and runs[-1][0] == okey:
                prev = runs[-1]
                runs[-1] = (okey, prev[1], add(prev[2], v))
            else:
                runs.append((okey, key, v))
        runs_per_server.append(runs)
    replies = _coordinator_roundtrip(
        group, _run_summaries(runs_per_server), _stitch_fn(add), f"{label}/stitch"
    )
    return _emit_stitched(runs_per_server, replies)


def count_by_key(
    group: Group,
    rel: DistRelation,
    key_attrs: Sequence[str],
    label: str = "count_by_key",
    scalar: bool = False,
) -> list[list[tuple[Any, int]]]:
    """Global degree table of ``rel`` on ``key_attrs`` (one sort pass)."""
    return fold_by_key(group, rel, key_attrs, label=label, scalar=scalar)


def multi_numbering(
    group: Group,
    parts: Sequence[Iterable[tuple[Any, Any]]],
    label: str = "multi_numbering",
) -> list[list[tuple[Any, Any, int]]]:
    """Assign consecutive numbers 1, 2, 3, ... per key to ``(key, payload)`` pairs.

    Returns per-server lists of ``(key, payload, number)``.
    """
    sorted_parts = sample_sort(group, parts, _key0, label)

    summaries = []
    for part in sorted_parts:
        if not part:
            summaries.append(None)
            continue
        first_ok = part[0][0]
        last_ok = part[-1][0]
        first_count = sum(1 for okey, _u, _it in part if okey == first_ok)
        last_count = sum(1 for okey, _u, _it in part if okey == last_ok)
        summaries.append((first_ok, first_count, last_ok, last_count))

    replies = _coordinator_roundtrip(
        group, summaries, _numbering_offsets, f"{label}/stitch"
    )

    out_parts: list[list[tuple[Any, Any, int]]] = []
    for part, offset in zip(sorted_parts, replies):
        out: list[tuple[Any, Any, int]] = []
        pos = 0
        prev_ok: tuple | None = None
        for okey, _uid, (key, payload) in part:
            if okey != prev_ok:
                # Only the part's very first run continues an upstream span.
                pos = offset if prev_ok is None else 0
                prev_ok = okey
            pos += 1
            out.append((key, payload, pos))
        out_parts.append(out)
    return out_parts


def _numbering_offsets(summaries_list: list[Any]) -> list[Any]:
    """Per-server offset for its first run (count of that key upstream)."""
    replies = [0] * len(summaries_list)
    acc_key: tuple | None = None
    acc = 0
    for i, s in enumerate(summaries_list):
        if s is None:
            continue
        first_ok, first_count, last_ok, last_count = s
        if acc_key is not None and acc_key == first_ok:
            replies[i] = acc
        else:
            replies[i] = 0
        if first_ok == last_ok:
            base = replies[i]
            acc = base + first_count
        else:
            acc = last_count
        acc_key = last_ok
    return replies


def number_rows(
    group: Group,
    rel: DistRelation,
    key_attrs: Sequence[str],
    label: str = "numbering",
    only_keys: Any | None = None,
    scalar: bool = False,
) -> list[list[tuple[Any, Row, int]]]:
    """Consecutive numbers 1, 2, ... per key over a relation's rows.

    Fused onto the relation's (cached) sorted run; when ``only_keys`` is
    given (any container supporting ``in``), only rows whose key is a
    member are numbered and returned — the numbering is consecutive within
    the restricted set, as the heavy-rectangle chunking of
    :func:`repro.core.binary_join.binary_join` requires.
    """
    with prim_span(
        group.cluster, "NumberRows", f"{rel.name}[{','.join(key_attrs)}] {label}"
    ):
        return _number_rows_impl(group, rel, key_attrs, label, only_keys, scalar)


def _number_rows_impl(
    group: Group,
    rel: DistRelation,
    key_attrs: Sequence[str],
    label: str,
    only_keys: Any | None,
    scalar: bool,
) -> list[list[tuple[Any, Row, int]]]:
    run = sorted_run(group, rel, key_attrs, label, scalar=scalar)
    if only_keys is None:
        member = None
    else:
        member = only_keys.__contains__

    summaries: list[Any] = []
    for part in run.parts:
        if not part:
            summaries.append(None)
            continue
        first_ok = part[0][0]
        last_ok = part[-1][0]
        fc = lc = 0
        for okey, _uid, key, _row in part:
            if member is not None and not member(key):
                continue
            if okey == first_ok:
                fc += 1
            if okey == last_ok:
                lc += 1
        summaries.append((first_ok, fc, last_ok, lc))

    replies = _coordinator_roundtrip(
        group, summaries, _numbering_offsets, f"{label}/stitch"
    )

    out_parts: list[list[tuple[Any, Row, int]]] = []
    for part, offset in zip(run.parts, replies):
        out: list[tuple[Any, Row, int]] = []
        pos = 0
        prev_ok: Any = _SENTINEL
        for okey, _uid, key, row in part:
            if okey != prev_ok:
                pos = offset if prev_ok is _SENTINEL else 0
                prev_ok = okey
            if member is None or member(key):
                pos += 1
                out.append((key, row, pos))
        out_parts.append(out)
    return out_parts


_SENTINEL = object()


def multi_search(
    group: Group,
    x_parts: Sequence[Iterable[tuple[Any, Any]]],
    y_parts: Sequence[Iterable[tuple[Any, Any]]],
    label: str = "multi_search",
    encoder: Callable[[Any], tuple] | None = None,
) -> list[list[tuple[Any, Any, Any, Any]]]:
    """For each X element, find its predecessor in Y (largest key <= x's key).

    Args:
        x_parts / y_parts: Per-server ``(key, payload)`` pairs.
        encoder: Optional orderable-equivalent encoder for the *keys*
            (tags are handled internally).

    Returns:
        Per-server lists of ``(x_key, x_payload, pred_key, pred_payload)``;
        the predecessor fields are ``None`` when no Y key <= x exists.
        Ties (equal keys) resolve to the Y element, enabling equality tests.
    """
    tagged: list[list[tuple[int, Any, Any]]] = []
    for xp, yp in zip(x_parts, y_parts):
        part = [(0, k, v) for k, v in yp] + [(1, k, v) for k, v in xp]
        tagged.append(part)
    pair_encoder = None
    if encoder is not None:
        enc = encoder
        pair_encoder = lambda kt: (5, (enc(kt[0]), (2, kt[1])))  # noqa: E731
    sorted_parts = sample_sort(
        group, tagged, lambda t: (t[1], t[0]), label, encoder=pair_encoder
    )

    # Per-server trailing Y element.
    summaries: list[Any] = []
    for part in sorted_parts:
        carry = None
        for _okey, _uid, (tag, key, payload) in part:
            if tag == 0:
                carry = (key, payload)
        summaries.append(carry)

    incoming = _coordinator_roundtrip(group, summaries, _carries, f"{label}/carry")

    out_parts: list[list[tuple[Any, Any, Any, Any]]] = []
    for part, carry_in in zip(sorted_parts, incoming):
        out: list[tuple[Any, Any, Any, Any]] = []
        carry = carry_in
        for _okey, _uid, (tag, key, payload) in part:
            if tag == 0:
                carry = (key, payload)
            else:
                if carry is None:
                    out.append((key, payload, None, None))
                else:
                    out.append((key, payload, carry[0], carry[1]))
        out_parts.append(out)
    return out_parts


def _carries(summaries_list: list[Any]) -> list[Any]:
    """Prefix carry: each server receives the last Y element to its left."""
    replies: list[Any] = []
    run: Any = None
    for s in summaries_list:
        replies.append(run)
        if s is not None:
            run = s
    return replies


# A uid lower bound: real uids are (i, j) with i >= 0, so (-1,) sorts first.
_UID_LO = (-1,)


def search_rows(
    group: Group,
    rel: DistRelation,
    key_attrs: Sequence[str],
    table_parts: Sequence[Iterable[tuple[Any, Any]]],
    label: str,
    payloads: Sequence[Sequence[Any]] | None = None,
    scalar: bool = False,
) -> list[list[tuple[Any, Any, Any, Any]]]:
    """Predecessor-search every row of ``rel`` against a ``(key, value)`` table.

    The relation side rides its (cached) sorted run; table entries are
    routed to the run's range partitions by the already-broadcast
    splitters and merged locally, with the usual O(p) carry round-trip for
    partitions whose predecessor lives to their left.  Semantics match
    :func:`multi_search` (ties resolve to the table).

    Load precondition: the table must be *globally distinct per key* with
    keys (essentially) drawn from ``rel``'s own key values — the degree
    table / packing-assignment / reduced-separator pattern of every caller.
    Then each run partition receives at most its own row count in table
    entries and the pass stays linear-load.  For arbitrary duplicated
    filters (plain semi-joins on unreduced inputs) use :func:`multi_search`
    on the union, whose sampling balances the table side too.

    Args:
        payloads: Optional ``payloads[i][j]`` returned instead of the row
            itself (aligned with ``rel.parts``).

    Returns:
        Per-server ``(key, payload, pred_key, pred_value)`` quadruples in
        the run's arrangement.
    """
    with prim_span(
        group.cluster, "SearchRows", f"{rel.name}[{','.join(key_attrs)}] {label}"
    ):
        return _search_rows_impl(
            group, rel, key_attrs, table_parts, label, payloads, scalar
        )


def _search_rows_impl(
    group: Group,
    rel: DistRelation,
    key_attrs: Sequence[str],
    table_parts: Sequence[Iterable[tuple[Any, Any]]],
    label: str,
    payloads: Sequence[Sequence[Any]] | None,
    scalar: bool,
) -> list[list[tuple[Any, Any, Any, Any]]]:
    run = sorted_run(group, rel, key_attrs, label, scalar=scalar)
    p = group.size

    if p > 1:
        splitters = run.splitters
        outboxes = []
        for part in table_parts:
            box = []
            for k, v in part:
                ok = orderable(k)
                box.append((bisect_right(splitters, (ok, _UID_LO)), (ok, k, v)))
            outboxes.append(box)
        inboxes = group.exchange(outboxes, f"{label}/table")
        tables = []
        for box in inboxes:
            box.sort(key=_key0)
            tables.append(box)
    else:
        table0 = [(orderable(k), k, v) for k, v in table_parts[0]]
        table0.sort(key=_key0)
        tables = [table0]

    summaries = [
        ((t[-1][1], t[-1][2]) if t else None) for t in tables
    ]
    incoming = _coordinator_roundtrip(group, summaries, _carries, f"{label}/carry")

    out_parts: list[list[tuple[Any, Any, Any, Any]]] = []
    for part, table, carry_in in zip(run.parts, tables, incoming):
        carry = carry_in
        ti = 0
        n_t = len(table)
        out: list[tuple[Any, Any, Any, Any]] = []
        for okey, uid, key, row in part:
            while ti < n_t and table[ti][0] <= okey:
                entry = table[ti]
                carry = (entry[1], entry[2])
                ti += 1
            payload = row if payloads is None else payloads[uid[0]][uid[1]]
            if carry is None:
                out.append((key, payload, None, None))
            else:
                out.append((key, payload, carry[0], carry[1]))
        out_parts.append(out)
    return out_parts


def semi_join(
    group: Group,
    rel: DistRelation,
    filter_rel: DistRelation,
    label: str = "semi_join",
) -> DistRelation:
    """``rel semijoin filter_rel`` on their shared attributes (linear load).

    Reduction to multi-search exactly as in paper Section 2: a row survives
    iff its predecessor among the filter keys equals its own key.  The
    union sort is kept (rather than :func:`search_rows`) because the filter
    side is arbitrary — duplicated, possibly disjoint from ``rel``'s keys —
    and only union sampling keeps it balanced; the substrate still supplies
    cached projected keys and a specialized encoder.
    """
    with prim_span(
        group.cluster, "SemiJoin", f"{rel.name} ⋉ {filter_rel.name} {label}"
    ):
        return _semi_join_impl(group, rel, filter_rel, label)


def _semi_join_impl(
    group: Group,
    rel: DistRelation,
    filter_rel: DistRelation,
    label: str,
) -> DistRelation:
    shared = tuple(sorted(set(rel.attrs) & set(filter_rel.attrs)))
    if not shared:
        # Degenerate: an empty filter kills everything, else no-op.
        if filter_rel.total_size() == 0:
            return rel.empty_like()
        return rel
    pos_r = rel.positions(shared)
    pos_f = filter_rel.positions(shared)
    rel_keys = projected_keys(rel, pos_r)
    filter_keys = projected_keys(filter_rel, pos_f)
    x_parts = [
        list(zip(keys, part)) for keys, part in zip(rel_keys, rel.parts)
    ]
    y_parts = [[(k, None) for k in part] for part in filter_keys]
    found = multi_search(
        group, x_parts, y_parts, label,
        encoder=pair_key_encoder(rel, pos_r, filter_rel, pos_f),
    )
    parts = [
        [payload for key, payload, pk, _pv in part if pk == key] for part in found
    ]
    return DistRelation(rel.name, rel.attrs, parts, owned=True)


def attach_degrees(
    group: Group,
    rel: DistRelation,
    key_attrs: Sequence[str],
    label: str = "degrees",
    degree_parts: Sequence[Iterable[tuple[Any, int]]] | None = None,
    scalar: bool = False,
) -> list[list[tuple[Row, int]]]:
    """Annotate each row with the global degree of its key in ``rel``.

    The sum-by-key + multi-search combination behind every heavy/light
    decision in the paper's algorithms, fused into one sort pass: counting
    runs and attaching the totals happen on the same sorted arrangement,
    with a single O(p) boundary round-trip resolving keys that span
    servers.  If ``degree_parts`` is given (pre-computed ``(key, count)``
    pairs, e.g. degrees in a *different* relation), it is looked up with
    :func:`search_rows` instead.

    Returns:
        Per-server ``(row, degree)`` pairs (degree 0 if the key is absent
        from the degree table).
    """
    with prim_span(
        group.cluster, "AttachDegrees",
        f"{rel.name}[{','.join(key_attrs)}] {label}",
    ):
        return _attach_degrees_impl(
            group, rel, key_attrs, label, degree_parts, scalar
        )


def _attach_degrees_impl(
    group: Group,
    rel: DistRelation,
    key_attrs: Sequence[str],
    label: str,
    degree_parts: Sequence[Iterable[tuple[Any, int]]] | None,
    scalar: bool,
) -> list[list[tuple[Row, int]]]:
    if degree_parts is not None:
        found = search_rows(
            group, rel, key_attrs, list(degree_parts), f"{label}/lookup",
            scalar=scalar,
        )
        return [
            [(payload, pv if pk == key else 0) for key, payload, pk, pv in part]
            for part in found
        ]

    run = sorted_run(group, rel, key_attrs, f"{label}/count", scalar=scalar)

    # Local run-length counts: [(okey, count)] per server.
    counts_per_server: list[list[list[Any]]] = []
    for part in run.parts:
        runs: list[list[Any]] = []
        for item in part:
            okey = item[0]
            if runs and runs[-1][0] == okey:
                runs[-1][1] += 1
            else:
                runs.append([okey, 1])
        counts_per_server.append(runs)

    summaries: list[Any] = []
    for runs in counts_per_server:
        if not runs:
            summaries.append(None)
        else:
            summaries.append(
                ((runs[0][0], runs[0][1]), (runs[-1][0], runs[-1][1]), len(runs))
            )

    replies = _coordinator_roundtrip(
        group, summaries, _span_totals, f"{label}/stitch"
    )

    out_parts: list[list[tuple[Row, int]]] = []
    for part, runs, reply in zip(run.parts, counts_per_server, replies):
        first_total, last_total = reply
        n_runs = len(runs)
        out: list[tuple[Row, int]] = []
        ri = -1
        prev_ok: Any = _SENTINEL
        for okey, _uid, _key, row in part:
            if okey != prev_ok:
                ri += 1
                prev_ok = okey
            if ri == 0 and first_total is not None:
                deg = first_total
            elif ri == n_runs - 1 and last_total is not None:
                deg = last_total
            else:
                deg = runs[ri][1]
            out.append((row, deg))
        out_parts.append(out)
    return out_parts


def _span_totals(summaries_list: list[Any]) -> list[Any]:
    """Global totals for each server's first and last (possibly spanning) run."""
    replies: list[list[Any]] = [[None, None] for _ in summaries_list]
    chain: list[Any] | None = None  # [okey, acc, [(server, slot), ...]]

    def flush() -> None:
        nonlocal chain
        if chain is not None:
            for srv, slot in chain[2]:
                replies[srv][slot] = chain[1]
            chain = None

    for i, s in enumerate(summaries_list):
        if s is None:
            continue
        (first_ok, first_cnt), (last_ok, last_cnt), n_runs = s
        if chain is not None and chain[0] == first_ok:
            chain[1] += first_cnt
            chain[2].append((i, 0))
        else:
            flush()
            chain = [first_ok, first_cnt, [(i, 0)]]
        if n_runs > 1:
            flush()
            chain = [last_ok, last_cnt, [(i, 1)]]
        else:
            chain[2].append((i, 1))
    flush()
    return [tuple(r) for r in replies]


def global_sum(
    group: Group,
    values: Sequence[int | float],
    label: str = "global_sum",
) -> int | float:
    """Sum one value per server and make the total known everywhere.

    O(p) units at the coordinator plus a broadcast of one unit per server.
    """
    if len(values) != group.size:
        raise MPCError("need exactly one value per local server")
    coord = coordinator_for(group, label)
    gathered = group.gather([[v] for v in values], f"{label}/gather", dst=coord)
    total = sum(gathered)
    group.broadcast([total], f"{label}/bcast", src=coord)
    return total


def distinct_keys(
    group: Group,
    rel: DistRelation,
    key_attrs: Sequence[str],
    label: str = "distinct",
) -> list[list[Any]]:
    """Globally distinct projections of ``rel`` onto ``key_attrs``."""
    counted = count_by_key(group, rel, key_attrs, label=label)
    return [[key for key, _c in part] for part in counted]
