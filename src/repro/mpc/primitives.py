"""The paper's Section 2 MPC primitives, all with linear load, O(1) rounds.

Implemented sort-first (the [14, 18] recipe): a deterministic
regular-sampling sort (PSRS) range-partitions items so that equal keys are
contiguous *across* servers, then per-key logic runs locally with an O(p)
boundary round-trip through a coordinator to stitch runs that span server
boundaries.  The coordinator traffic is O(p) units per primitive, which is
within the linear-load budget whenever ``IN >= p^2`` (documented in
DESIGN.md; the paper assumes ``IN >= p^{1+eps}`` and uses aggregation trees
instead — same interface, same asymptotics for our experiment range).

Primitives:

* :func:`sample_sort` — global sort (the substrate).
* :func:`sum_by_key` — per-key aggregation with any associative operator.
* :func:`multi_numbering` — consecutive numbering 1,2,3,... per key.
* :func:`multi_search` — predecessor search of X elements in Y.
* :func:`semi_join` — ``R1 semijoin R2`` via multi-search.
* :func:`attach_degrees` — annotate rows with their key's global degree
  (the sum-by-key + multi-search combo used by every heavy/light split).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Callable, Iterable, Sequence

from repro.data.relation import Row, project_row
from repro.errors import MPCError
from repro.mpc.distrel import DistRelation
from repro.mpc.group import Group

__all__ = [
    "orderable",
    "sample_sort",
    "sum_by_key",
    "multi_numbering",
    "multi_search",
    "semi_join",
    "attach_degrees",
    "distinct_keys",
]


def orderable(value: Any) -> tuple:
    """Map a value to a type-tagged key so mixed types sort deterministically."""
    if value is None:
        return (0,)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, str):
        return (3, value)
    if isinstance(value, bytes):
        return (4, value)
    if isinstance(value, tuple):
        return (5, tuple(orderable(v) for v in value))
    raise TypeError(f"cannot order value of type {type(value).__name__}")


def coordinator_for(group: Group, label: str) -> int:
    """Pick the coordinator server for a primitive step.

    Rotating the coordinator by a hash of the step label spreads the O(p)
    boundary-stitching traffic evenly instead of hot-spotting one server —
    the simulation analogue of the aggregation trees of [14, 18].
    """
    from repro.mpc.hashing import stable_hash

    return stable_hash(label, salt=0x5EED) % group.size


def _coordinator_roundtrip(
    group: Group,
    summaries: Sequence[Any],
    compute: Callable[[list[Any]], list[Any]],
    label: str,
) -> list[Any]:
    """Send one summary per server to a coordinator, compute, reply one each.

    The O(p)-unit coordinator step shared by all boundary-stitching logic.
    """
    coord = coordinator_for(group, label)
    outboxes = [[(coord, (i, s))] for i, s in enumerate(summaries)]
    inboxes = group.exchange(outboxes, f"{label}/gather")
    received = sorted(inboxes[coord], key=lambda t: t[0])
    replies = compute([s for _, s in received])
    if len(replies) != group.size:
        raise MPCError("coordinator must reply to every server")
    outboxes2: list[list[tuple[int, Any]]] = [[] for _ in range(group.size)]
    outboxes2[coord] = [(i, r) for i, r in enumerate(replies)]
    inboxes2 = group.exchange(outboxes2, f"{label}/reply")
    return [box[0] for box in inboxes2]


def sample_sort(
    group: Group,
    parts: Sequence[Iterable[Any]],
    key_fn: Callable[[Any], Any],
    label: str,
) -> list[list[tuple[tuple, tuple[int, int], Any]]]:
    """Globally sort items by ``(key, origin-uid)`` via regular sampling.

    Returns per-server lists of ``(orderable_key, uid, item)`` triples in
    global sorted order (server 0's part precedes server 1's, etc.).  Equal
    keys are tie-broken by uid, so heavy keys spread across servers — the
    property that makes the downstream primitives skew-proof.

    Load: ~``n/p`` per server (PSRS guarantees < 2n/p) plus O(p) sampling
    traffic at the coordinator.
    """
    p = group.size
    decorated: list[list[tuple[tuple, tuple[int, int], Any]]] = []
    for i, part in enumerate(parts):
        d = [(orderable(key_fn(item)), (i, j), item) for j, item in enumerate(part)]
        d.sort(key=lambda t: (t[0], t[1]))
        decorated.append(d)
    if p == 1:
        return decorated

    # Regular sampling: p evenly spaced (key, uid) pivots per server, each
    # counted as one unit of communication at the coordinator.
    sample_parts: list[list[tuple[tuple, tuple[int, int]]]] = []
    for d in decorated:
        if not d:
            sample_parts.append([])
            continue
        n = len(d)
        idxs = sorted({min(n - 1, (k * n) // p) for k in range(p)})
        sample_parts.append([(d[i][0], d[i][1]) for i in idxs])

    coord = coordinator_for(group, label)
    flat = sorted(group.gather(sample_parts, f"{label}/sample", dst=coord))
    splitters: list[tuple] = []
    if flat:
        splitters = [
            flat[min(len(flat) - 1, (k * len(flat)) // p)] for k in range(1, p)
        ]
    group.broadcast(splitters, f"{label}/splitters", src=coord)

    def dest(item: tuple[tuple, tuple[int, int], Any]) -> int:
        return bisect_right(splitters, (item[0], item[1]))

    routed = group.route(decorated, dest, f"{label}/shuffle")
    for part in routed:
        part.sort(key=lambda t: (t[0], t[1]))
    return routed


def sum_by_key(
    group: Group,
    parts: Sequence[Iterable[tuple[Any, Any]]],
    plus: Callable[[Any, Any], Any] = lambda a, b: a + b,
    label: str = "sum_by_key",
) -> list[list[tuple[Any, Any]]]:
    """Aggregate ``(key, value)`` pairs per key with an associative operator.

    Returns per-server lists of ``(key, total)``; each key appears exactly
    once globally (on the first server of its sorted span).
    """
    sorted_parts = sample_sort(group, parts, lambda kv: kv[0], label)

    # Local runs: (okey, key, partial_sum).
    runs_per_server: list[list[tuple[tuple, Any, Any]]] = []
    for part in sorted_parts:
        runs: list[tuple[tuple, Any, Any]] = []
        for okey, _uid, (key, value) in part:
            if runs and runs[-1][0] == okey:
                prev = runs[-1]
                runs[-1] = (prev[0], prev[1], plus(prev[2], value))
            else:
                runs.append((okey, key, value))
        runs_per_server.append(runs)

    # Boundary stitching: only each server's first and last run can span.
    summaries = []
    for runs in runs_per_server:
        if not runs:
            summaries.append(None)
        else:
            first = (runs[0][0], runs[0][2])
            last = (runs[-1][0], runs[-1][2])
            summaries.append((first, last, len(runs)))

    def stitch(summaries_list: list[Any]) -> list[Any]:
        """Decide, per server, what happens to its boundary runs.

        Reply per server: ``(first_action, last_action)`` where an action is
        ``None`` (no such run), ``("emit", total)`` or ``("drop",)``.  For a
        single-run server the two actions collapse into ``first_action``.
        """
        replies: list[list[Any]] = [[None, None] for _ in summaries_list]
        chain: tuple[int, int, tuple, Any] | None = None  # (server, slot, okey, acc)

        def flush() -> None:
            nonlocal chain
            if chain is not None:
                srv, slot, _okey, acc = chain
                replies[srv][slot] = ("emit", acc)
                chain = None

        for i, s in enumerate(summaries_list):
            if s is None:
                continue
            (first_ok, first_sum), (last_ok, last_sum), n_runs = s
            if chain is not None and chain[2] == first_ok:
                chain = (chain[0], chain[1], chain[2], plus(chain[3], first_sum))
                replies[i][0] = ("drop",)
            else:
                flush()
                chain = (i, 0, first_ok, first_sum)
            if n_runs > 1:
                # The last run starts a fresh chain: with several runs the
                # last key necessarily differs from the first.
                flush()
                chain = (i, 1, last_ok, last_sum)
        flush()
        return [tuple(r) for r in replies]

    replies = _coordinator_roundtrip(group, summaries, stitch, f"{label}/stitch")

    out_parts: list[list[tuple[Any, Any]]] = []
    for runs, reply in zip(runs_per_server, replies):
        first_action, last_action = reply
        out: list[tuple[Any, Any]] = []
        for idx, (_okey, key, partial) in enumerate(runs):
            if idx == 0 and first_action is not None:
                if first_action[0] == "emit":
                    out.append((key, first_action[1]))
                # drop: owned upstream
            elif idx == len(runs) - 1 and last_action is not None:
                if last_action[0] == "emit":
                    out.append((key, last_action[1]))
            else:
                out.append((key, partial))
        out_parts.append(out)
    return out_parts


def multi_numbering(
    group: Group,
    parts: Sequence[Iterable[tuple[Any, Any]]],
    label: str = "multi_numbering",
) -> list[list[tuple[Any, Any, int]]]:
    """Assign consecutive numbers 1, 2, 3, ... per key to ``(key, payload)`` pairs.

    Returns per-server lists of ``(key, payload, number)``.
    """
    sorted_parts = sample_sort(group, parts, lambda kv: kv[0], label)

    summaries = []
    for part in sorted_parts:
        if not part:
            summaries.append(None)
            continue
        first_ok = part[0][0]
        last_ok = part[-1][0]
        first_count = sum(1 for okey, _u, _it in part if okey == first_ok)
        last_count = sum(1 for okey, _u, _it in part if okey == last_ok)
        summaries.append((first_ok, first_count, last_ok, last_count))

    def offsets(summaries_list: list[Any]) -> list[Any]:
        """Per-server offset for its first run (count of that key upstream)."""
        replies = [0] * len(summaries_list)
        acc_key: tuple | None = None
        acc = 0
        for i, s in enumerate(summaries_list):
            if s is None:
                continue
            first_ok, first_count, last_ok, last_count = s
            if acc_key is not None and acc_key == first_ok:
                replies[i] = acc
            else:
                replies[i] = 0
            if first_ok == last_ok:
                base = replies[i]
                acc = base + first_count
            else:
                acc = last_count
            acc_key = last_ok
        return replies

    replies = _coordinator_roundtrip(group, summaries, offsets, f"{label}/stitch")

    out_parts: list[list[tuple[Any, Any, int]]] = []
    for part, offset in zip(sorted_parts, replies):
        out: list[tuple[Any, Any, int]] = []
        pos = 0
        prev_ok: tuple | None = None
        for okey, _uid, (key, payload) in part:
            if okey != prev_ok:
                # Only the part's very first run continues an upstream span.
                pos = offset if prev_ok is None else 0
                prev_ok = okey
            pos += 1
            out.append((key, payload, pos))
        out_parts.append(out)
    return out_parts


def multi_search(
    group: Group,
    x_parts: Sequence[Iterable[tuple[Any, Any]]],
    y_parts: Sequence[Iterable[tuple[Any, Any]]],
    label: str = "multi_search",
) -> list[list[tuple[Any, Any, Any, Any]]]:
    """For each X element, find its predecessor in Y (largest key <= x's key).

    Args:
        x_parts / y_parts: Per-server ``(key, payload)`` pairs.

    Returns:
        Per-server lists of ``(x_key, x_payload, pred_key, pred_payload)``;
        the predecessor fields are ``None`` when no Y key <= x exists.
        Ties (equal keys) resolve to the Y element, enabling equality tests.
    """
    tagged: list[list[tuple[int, Any, Any]]] = []
    for xp, yp in zip(x_parts, y_parts):
        part = [(0, k, v) for k, v in yp] + [(1, k, v) for k, v in xp]
        tagged.append(part)
    sorted_parts = sample_sort(
        group, tagged, lambda t: (t[1], t[0]), label
    )

    # Per-server trailing Y element.
    summaries: list[Any] = []
    for part in sorted_parts:
        carry = None
        for _okey, _uid, (tag, key, payload) in part:
            if tag == 0:
                carry = (key, payload)
        summaries.append(carry)

    def carries(summaries_list: list[Any]) -> list[Any]:
        replies: list[Any] = []
        run: Any = None
        for s in summaries_list:
            replies.append(run)
            if s is not None:
                run = s
        return replies

    incoming = _coordinator_roundtrip(group, summaries, carries, f"{label}/carry")

    out_parts: list[list[tuple[Any, Any, Any, Any]]] = []
    for part, carry_in in zip(sorted_parts, incoming):
        out: list[tuple[Any, Any, Any, Any]] = []
        carry = carry_in
        for _okey, _uid, (tag, key, payload) in part:
            if tag == 0:
                carry = (key, payload)
            else:
                if carry is None:
                    out.append((key, payload, None, None))
                else:
                    out.append((key, payload, carry[0], carry[1]))
        out_parts.append(out)
    return out_parts


def semi_join(
    group: Group,
    rel: DistRelation,
    filter_rel: DistRelation,
    label: str = "semi_join",
) -> DistRelation:
    """``rel semijoin filter_rel`` on their shared attributes (linear load).

    Reduction to multi-search exactly as in paper Section 2: a row survives
    iff its predecessor among the filter keys equals its own key.
    """
    shared = tuple(sorted(set(rel.attrs) & set(filter_rel.attrs)))
    if not shared:
        # Degenerate: an empty filter kills everything, else no-op.
        if filter_rel.total_size() == 0:
            return rel.empty_like()
        return rel
    pos_r = rel.positions(shared)
    pos_f = filter_rel.positions(shared)
    x_parts = [
        [(project_row(row, pos_r), row) for row in part] for part in rel.parts
    ]
    y_parts = [
        [(project_row(row, pos_f), None) for row in part] for part in filter_rel.parts
    ]
    found = multi_search(group, x_parts, y_parts, label)
    parts = [
        [payload for key, payload, pk, _pv in part if pk == key] for part in found
    ]
    return DistRelation(rel.name, rel.attrs, parts)


def attach_degrees(
    group: Group,
    rel: DistRelation,
    key_attrs: Sequence[str],
    label: str = "degrees",
    degree_parts: Sequence[Iterable[tuple[Any, int]]] | None = None,
) -> list[list[tuple[Row, int]]]:
    """Annotate each row with the global degree of its key in ``rel``.

    The sum-by-key + multi-search combination behind every heavy/light
    decision in the paper's algorithms.  If ``degree_parts`` is given
    (pre-computed ``(key, count)`` pairs, e.g. degrees in a *different*
    relation), it is used instead of counting within ``rel``.

    Returns:
        Per-server ``(row, degree)`` pairs (degree 0 if the key is absent
        from the degree table).
    """
    pos = rel.positions(key_attrs)
    if degree_parts is None:
        pair_parts = [
            [(project_row(row, pos), 1) for row in part] for part in rel.parts
        ]
        degree_parts = sum_by_key(group, pair_parts, label=f"{label}/count")
    x_parts = [
        [(project_row(row, pos), row) for row in part] for part in rel.parts
    ]
    found = multi_search(group, x_parts, list(degree_parts), f"{label}/lookup")
    return [
        [
            (payload, pv if pk == key else 0)
            for key, payload, pk, pv in part
        ]
        for part in found
    ]


def global_sum(
    group: Group,
    values: Sequence[int | float],
    label: str = "global_sum",
) -> int | float:
    """Sum one value per server and make the total known everywhere.

    O(p) units at the coordinator plus a broadcast of one unit per server.
    """
    if len(values) != group.size:
        raise MPCError("need exactly one value per local server")
    coord = coordinator_for(group, label)
    gathered = group.gather([[v] for v in values], f"{label}/gather", dst=coord)
    total = sum(gathered)
    group.broadcast([total], f"{label}/bcast", src=coord)
    return total


def distinct_keys(
    group: Group,
    rel: DistRelation,
    key_attrs: Sequence[str],
    label: str = "distinct",
) -> list[list[Any]]:
    """Globally distinct projections of ``rel`` onto ``key_attrs``."""
    pos = rel.positions(key_attrs)
    pair_parts = [
        [(project_row(row, pos), 1) for row in part] for part in rel.parts
    ]
    counted = sum_by_key(group, pair_parts, label=label)
    return [[key for key, _c in part] for part in counted]
