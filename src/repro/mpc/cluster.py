"""The MPC cost ledger: servers, exchanges, and load accounting.

The paper's model (Section 1.1): ``p`` servers, data initially distributed
evenly, computation in rounds; the cost of an algorithm is its *load* ``L``,
the maximum number of tuples received by any server in any round (a tuple
and an O(log IN)-bit integer both count as one unit).

:class:`Cluster` implements exactly that ledger.  Every communication step
(:meth:`Cluster.tally`) records how many units each server received.  Two
load statistics are exposed:

* :attr:`LoadReport.load` — the maximum over servers of *total* units
  received across the whole algorithm.  For O(1)-round algorithms this is
  within a constant factor of the paper's per-round ``L`` and is robust to
  how a simulation slices rounds, so it is the headline metric.
* :attr:`LoadReport.max_step_load` — the maximum units received by any
  server in any single exchange step (a lower bound on the per-round ``L``).

Initial data placement is free, matching the model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import DeadlineExceeded, MPCError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mpc.backends import Backend

__all__ = ["Cluster", "LoadReport"]


@dataclass
class LoadReport:
    """Summary of communication observed by a :class:`Cluster`.

    Attributes:
        p: Number of servers.
        totals: Per-server total units received (length ``p``).
        load: ``max(totals)`` — the headline load metric.
        max_step_load: Max units received by one server in one exchange.
        steps: Number of exchange steps performed.
        by_label: Total units received per step label (algorithm phase).
    """

    p: int
    totals: tuple[int, ...]
    load: int
    max_step_load: int
    steps: int
    by_label: dict[str, int]

    @property
    def average(self) -> float:
        """Mean units received per server."""
        return sum(self.totals) / self.p if self.p else 0.0

    @property
    def total(self) -> int:
        """Total units communicated."""
        return int(sum(self.totals))

    def summary(self) -> str:
        top = sorted(self.by_label.items(), key=lambda kv: -kv[1])[:6]
        labels = ", ".join(f"{k}={v}" for k, v in top)
        return (
            f"load={self.load} (avg {self.average:.1f}, step-max "
            f"{self.max_step_load}, {self.steps} steps) [{labels}]"
        )

    def as_dict(self) -> dict:
        """Every ledger field as plain JSON-able data.

        The conformance harness diffs two of these dicts, so a backend
        divergence shows up as a readable field-by-field delta rather than
        an opaque dataclass inequality.
        """
        return {
            "p": self.p,
            "load": self.load,
            "max_step_load": self.max_step_load,
            "steps": self.steps,
            "total": self.total,
            "average": self.average,
            "totals": list(self.totals),
            "by_label": dict(sorted(self.by_label.items())),
        }

    def __str__(self) -> str:
        return self.summary()


class Cluster:
    """A simulated MPC cluster of ``p`` servers with a load ledger.

    Args:
        p: Number of servers (>= 1).
        backend: Execution backend — a :class:`~repro.mpc.backends.Backend`
            instance, a registered name (``"serial"``, ``"multiprocess"``),
            or ``None`` for the process default (``REPRO_BACKEND`` env var,
            else serial).  The backend decides *where* per-server compute
            and message delivery run; the ledger semantics never change
            (see ``tests/conformance/``).

    The cluster itself holds no data — distributed relations live in
    :class:`~repro.mpc.distrel.DistRelation` parts — it only records who
    received how much.  :class:`~repro.mpc.group.Group` objects route data
    over subsets of this cluster and report received counts here.
    """

    def __init__(self, p: int, backend: "Backend | str | None" = None) -> None:
        from repro.mpc.backends import get_backend

        if p < 1:
            raise MPCError(f"cluster needs p >= 1, got {p}")
        self.p = p
        self.backend = get_backend(backend)
        #: Optional :class:`~repro.plan.trace.TraceRecorder` observing the
        #: ledger (duck-typed; installed by the engine/explain for the
        #: duration of one traced execution, ``None`` otherwise).
        self.recorder = None
        #: Optional absolute ``time.monotonic()`` cutoff.  Checked at every
        #: ledger post — i.e. between simulated communication rounds, the
        #: natural cancellation points of the MPC model — so a caller's
        #: deadline cancels a query *mid-execution* without backends or
        #: algorithms knowing deadlines exist.  The engine sets and clears
        #: it around each query.
        self.deadline: float | None = None
        #: Optional :class:`~repro.obs.metrics.WireMeter` attributing this
        #: execution's shipped wire bytes to its query.  Set (with
        #: ``obs_span``) by the engine around one cold execution and
        #: cleared in a ``finally``; :meth:`Group.map_parts` forwards both
        #: into every ``Backend.run_ops`` call.  Telemetry only — the
        #: load ledger below never reads either.
        self.wire_meter = None
        #: Optional :class:`~repro.obs.tracing.Span` under which backend
        #: rounds of this execution parent their spans (None = untraced).
        self.obs_span = None
        self._totals: list[int] = [0] * p
        self._step_max: int = 0
        self._steps: int = 0
        self._by_label: dict[str, int] = {}

    # ------------------------------------------------------------------
    def tally(self, server_ids: Sequence[int], counts: Sequence[int], label: str) -> None:
        """Record one exchange step: ``counts[i]`` units arrive at ``server_ids[i]``.

        Args:
            server_ids: Global server indices (may repeat across calls but
                not within one call).
            counts: Units received per listed server.
            label: Phase label for the report breakdown.
        """
        self.check_deadline()
        if len(server_ids) != len(counts):
            raise MPCError("server_ids and counts length mismatch")
        step_total = 0
        totals = self._totals
        p = self.p
        step_max = self._step_max
        for sid, c in zip(server_ids, counts):
            if sid < 0 or sid >= p:
                raise MPCError(f"server id {sid} out of range [0, {p})")
            if c < 0:
                raise MPCError("negative message count")
            totals[sid] += c
            step_total += c
            if c > step_max:
                step_max = c
        self._step_max = step_max
        self._steps += 1
        self._by_label[label] = self._by_label.get(label, 0) + step_total
        rec = self.recorder
        if rec is not None:
            rec.record_charge((tuple(server_ids),), counts, label)

    def tally_members(
        self,
        members: Sequence[Sequence[int]],
        counts: Sequence[int],
        label: str,
    ) -> None:
        """Tally the same received counts on every member of a group family.

        Equivalent to calling :meth:`tally` once per member (each member is
        its own ledger step) but hoists the per-step aggregates out of the
        member loop — the replicas are deterministic copies, so their step
        total and step max are identical by construction.
        """
        self.check_deadline()
        step_total = 0
        step_max = self._step_max
        for c in counts:
            if c < 0:
                raise MPCError("negative message count")
            step_total += c
            if c > step_max:
                step_max = c
        totals = self._totals
        p = self.p
        for member in members:
            if len(member) != len(counts):
                raise MPCError("server_ids and counts length mismatch")
            for sid, c in zip(member, counts):
                if sid < 0 or sid >= p:
                    raise MPCError(f"server id {sid} out of range [0, {p})")
                totals[sid] += c
        n = len(members)
        self._step_max = step_max
        self._steps += n
        self._by_label[label] = self._by_label.get(label, 0) + step_total * n
        rec = self.recorder
        if rec is not None:
            rec.record_charge(members, counts, label)

    def check_deadline(self) -> None:
        """Raise :class:`~repro.errors.DeadlineExceeded` past the cutoff."""
        dl = self.deadline
        if dl is not None and time.monotonic() > dl:
            raise DeadlineExceeded(
                f"query exceeded its deadline ({self._steps} ledger steps in)"
            )

    def snapshot(self) -> LoadReport:
        """Current ledger as an immutable report."""
        return LoadReport(
            p=self.p,
            totals=tuple(self._totals),
            load=max(self._totals) if self.p else 0,
            max_step_load=self._step_max,
            steps=self._steps,
            by_label=dict(self._by_label),
        )

    def reset(self) -> None:
        """Clear the ledger (data placement is unaffected)."""
        self._totals = [0] * self.p
        self._step_max = 0
        self._steps = 0
        self._by_label.clear()

    # ------------------------------------------------------------------
    def root_group(self):
        """The group spanning all ``p`` servers (single member)."""
        from repro.mpc.group import Group

        return Group(self, [tuple(range(self.p))])

    def __repr__(self) -> str:
        return f"Cluster<p={self.p}, load={max(self._totals) if self.p else 0}>"
