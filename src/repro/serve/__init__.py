"""The sharded serving tier: a multi-replica front door over engines.

One :class:`~repro.engine.session.Engine` holds one warm cluster; the
ROADMAP's serving story needs many.  This package puts a
:class:`Frontdoor` in front of N engine replicas (each with its *own*
backend worker pool over a replicated or partitioned catalog) and gives
it the three serving-tier mechanisms:

* **admission** — a bounded per-replica backlog with typed load-shed
  (:class:`~repro.errors.AdmissionRejected`), so overload fails fast at
  the door instead of queueing without bound;
* **routing** — canonical-form-affine (one query's canonical form always
  lands on the same replica, keeping its result/plan caches hot) with
  least-loaded spill on hot keys;
* **micro-batching** — a small gather window per replica coalescing
  queued requests into one :meth:`Engine.submit_batch` call;
* **plan shipping** — when a replica traces a plan cold, the front door
  exports it (:mod:`repro.plan.ship`) and installs it into every other
  replica that holds the touched relations, so one cold trace warms the
  whole tier (zero re-traces on the receivers).

See DESIGN.md section 11 for the contracts.
"""

from repro.serve.frontdoor import Frontdoor, FrontdoorStats

__all__ = ["Frontdoor", "FrontdoorStats"]
