"""The multi-replica front door: admission, routing, batching, shipping.

Structure: the :class:`Frontdoor` owns N :class:`Engine` replicas, each
with its own backend instance (fresh worker pools via
:func:`~repro.mpc.backends.create_backend` — overlapping replica backend
I/O is the point of running replicas), one unbounded queue per replica,
and one worker thread per replica draining that queue in micro-batches.

Life of a request (:meth:`Frontdoor.submit`):

1. **Parse + eligibility.**  The query text parses once (memoized); the
   eligible replicas are those whose catalog holds *every* relation the
   query binds (`register` tracks placement, supporting partitioned
   catalogs where different replicas hold different shards under one
   name).
2. **Routing.**  The query's canonical form + bindings hash to a *home*
   replica among the eligible — the same query always lands on the same
   replica, so its result cache, plan cache, and backend worker memos
   stay hot.  When the home's backlog reaches ``spill_after``, the
   request spills to the least-loaded eligible replica (hot-key relief);
   affinity is a performance hint, never a correctness requirement,
   because every eligible replica serves bit-identical results.
3. **Admission.**  If the chosen replica's backlog has reached
   ``shed_after``, the submit raises
   :class:`~repro.errors.AdmissionRejected` synchronously — nothing is
   enqueued.  Otherwise the request joins the replica queue and the
   caller gets a :class:`~concurrent.futures.Future`.
4. **Micro-batching.**  The replica worker gathers queued requests for
   ``batch_window`` seconds (up to ``batch_max``) and executes them as
   one :meth:`Engine.submit_batch` — per-query failures stay embedded in
   their results, so one poisoned request cannot fail its batch-mates.
5. **Plan shipping.**  After a batch, any query that executed *cold*
   (traced a fresh plan) is exported once and installed into every other
   eligible replica that does not already hold the current digest.  A
   replica whose data differs (partitioned shards) rejects the install
   via the content-digest check and simply traces its own plan cold —
   shipping is an optimization with a correctness gate, not a trust
   relationship.  The plan index drops a query's entry whenever one of
   its relations is re-registered, so a stale plan is never re-shipped.

Thread-safety: one front-door lock guards admission state (pending
counts, placement, plan index, stats); engine locks are only ever taken
*after* it (register) or without it (workers), never the other way
around, so the lock order is acyclic.
"""

from __future__ import annotations

import hashlib
import queue as queue_mod
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.data.relation import Relation
from repro.engine.parser import ParsedQuery, parse_query
from repro.engine.session import Engine, ExecutionResult
from repro.errors import (
    AdmissionRejected,
    EngineError,
    PlanShipError,
    ReproError,
)
from repro.mpc.backends import Backend, create_backend
from repro.obs import MetricsRegistry
from repro.plan.ship import plan_digest

__all__ = ["Frontdoor", "FrontdoorStats"]

#: Queue sentinel asking a replica worker to exit after the current batch.
_STOP = object()


@dataclass
class _Request:
    """One admitted request riding a replica queue."""

    parsed: ParsedQuery
    algorithm: str
    future: Future
    key: tuple
    replica: int
    submitted: float


@dataclass
class FrontdoorStats:
    """Front-door counters (admission, batching, plan shipping).

    Registered as a registry *view* (the repo's idiom for counter
    families with their own locking), so ``repro_frontdoor_*`` gauges
    appear in every scrape of the shared registry.
    """

    replicas: int
    admitted: int = 0
    shed: int = 0
    spilled: int = 0
    batches: int = 0
    #: Requests that rode a batch beyond its first member — the requests
    #: whose dispatch the window actually coalesced.
    coalesced: int = 0
    plans_shipped: int = 0
    plans_rejected: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "replicas": self.replicas,
            "admitted": self.admitted,
            "shed": self.shed,
            "spilled": self.spilled,
            "batches": self.batches,
            "coalesced": self.coalesced,
            "plans_shipped": self.plans_shipped,
            "plans_rejected": self.plans_rejected,
        }


class Frontdoor:
    """N engine replicas behind one admission/routing/batching door.

    Args:
        p: Simulated cluster size of every replica (plans only ship
            between equal-``p`` engines).
        replicas: Number of engine replicas.
        backend: Backend *name* (or ``None`` for the process default) —
            each replica gets a fresh instance, closed with the front
            door.  Passing a :class:`Backend` instance shares that one
            instance across all replicas (caller owns its lifetime).
        shed_after: Per-replica backlog bound; admission beyond it raises
            :class:`~repro.errors.AdmissionRejected`.
        spill_after: Home-replica backlog at which routing spills to the
            least-loaded eligible replica (defaults to ``batch_max`` — a
            backlog one full batch deep means the affinity win is
            already being paid for in queueing delay).
        batch_window: Seconds a replica worker waits to coalesce queued
            requests after the first (0 dispatches singles immediately).
        batch_max: Max requests per coalesced ``submit_batch`` call.
        ship_plans: Ship cold-traced plans to the other eligible
            replicas (the cross-replica plan index).  Off, every replica
            traces every query cold once.
        registry: Shared :class:`~repro.obs.MetricsRegistry` (``None``
            creates one).  All replicas instrument into it — its view
            merge sums their EngineStats/backend counters — and the
            front door adds its own counters and per-replica latency
            histograms.
        tracer: Passed through to every replica engine.
        autostart: Start the replica workers immediately.  ``False``
            leaves the queues undrained until :meth:`start` — the
            deterministic setup for admission tests (fill to
            ``shed_after``, observe the shed) and staged deployments.
        **engine_kwargs: Forwarded to every :class:`Engine` (e.g.
            ``result_cache=False``, ``plan_replay``, ``fusion``).
    """

    def __init__(
        self,
        p: int = 8,
        replicas: int = 2,
        backend: "Backend | str | None" = None,
        shed_after: int = 64,
        spill_after: "int | None" = None,
        batch_window: float = 0.002,
        batch_max: int = 16,
        ship_plans: bool = True,
        registry: "MetricsRegistry | None" = None,
        tracer: Any = None,
        autostart: bool = True,
        **engine_kwargs: Any,
    ) -> None:
        if replicas < 1:
            raise EngineError("a front door needs at least one replica")
        if shed_after < 1:
            raise EngineError("shed_after must be at least 1")
        self.p = p
        self.replicas = replicas
        self.shed_after = shed_after
        self.batch_window = max(0.0, batch_window)
        self.batch_max = max(1, batch_max)
        self.spill_after = (
            spill_after if spill_after is not None else self.batch_max
        )
        self.ship_plans = ship_plans
        self.registry = registry if registry is not None else MetricsRegistry()
        self._owned_backends: list[Backend] = []
        self.engines: list[Engine] = []
        for _ in range(replicas):
            be = create_backend(backend)
            if not isinstance(backend, Backend):
                self._owned_backends.append(be)
            self.engines.append(
                Engine(
                    p=p, backend=be, registry=self.registry, tracer=tracer,
                    **engine_kwargs,
                )
            )
        self._lock = threading.Lock()
        self._queues: list[queue_mod.Queue] = [
            queue_mod.Queue() for _ in range(replicas)
        ]
        self._pending = [0] * replicas
        #: relation name -> replica indices whose catalog holds it.
        self._placement: dict[str, set[int]] = {}
        #: (route key, algorithm) -> {digest, relations, installed set}.
        self._plan_index: dict[tuple, dict[str, Any]] = {}
        self._parse_cache: dict[str, ParsedQuery] = {}
        self._stats = FrontdoorStats(replicas=replicas)
        self._threads: list[threading.Thread] = []
        self._started = False
        self._closed = False
        self.registry.register_view(self._frontdoor_view)
        if autostart:
            self.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the replica workers (idempotent)."""
        with self._lock:
            if self._started or self._closed:
                return
            self._started = True
        self._threads = [
            threading.Thread(
                target=self._worker, args=(i,),
                name=f"frontdoor-replica-{i}", daemon=True,
            )
            for i in range(self.replicas)
        ]
        for t in self._threads:
            t.start()

    def close(self) -> None:
        """Drain the queues, stop the workers, close owned backends.

        Admitted requests still queued are served before the workers
        exit (the stop sentinel is FIFO-ordered behind them); with the
        workers never started, queued futures fail with
        :class:`~repro.errors.EngineError` instead of hanging forever.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            started = self._started
        if started:
            for q in self._queues:
                q.put(_STOP)
            for t in self._threads:
                t.join()
        else:
            for q in self._queues:
                while True:
                    try:
                        req = q.get_nowait()
                    except queue_mod.Empty:
                        break
                    if req is not _STOP:
                        req.future.set_exception(
                            EngineError(
                                "front door closed before its workers "
                                "started"
                            )
                        )
        for be in self._owned_backends:
            be.close()

    def __enter__(self) -> "Frontdoor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Catalog
    # ------------------------------------------------------------------
    def register(
        self,
        relation: Relation,
        name: "str | None" = None,
        replicas: "Iterable[int] | None" = None,
    ) -> None:
        """Register a relation on all replicas (default) or a subset.

        Passing ``replicas`` builds partitioned catalogs: each replica
        can hold its own shard under the same name, and routing then
        only considers replicas holding *all* of a query's relations.
        Re-registering invalidates the plan index for every query that
        touches the name — engines already drop their own stale state
        per their version contract.
        """
        name = name or relation.name
        targets = (
            list(range(self.replicas)) if replicas is None
            else sorted(set(replicas))
        )
        bad = [j for j in targets if not 0 <= j < self.replicas]
        if bad:
            raise EngineError(
                f"no such replica {bad} (have 0..{self.replicas - 1})"
            )
        with self._lock:
            if self._closed:
                raise EngineError("front door is closed")
            for j in targets:
                self.engines[j].register(relation, name)
            self._placement.setdefault(name, set()).update(targets)
            stale = [
                k for k, v in self._plan_index.items()
                if name in v["relations"]
            ]
            for k in stale:
                del self._plan_index[k]

    def placement(self) -> dict[str, tuple[int, ...]]:
        """Relation name -> replica indices holding it (snapshot)."""
        with self._lock:
            return {n: tuple(sorted(r)) for n, r in self._placement.items()}

    # ------------------------------------------------------------------
    # Admission + routing
    # ------------------------------------------------------------------
    def _parse(self, query: "str | ParsedQuery") -> ParsedQuery:
        if isinstance(query, ParsedQuery):
            return query
        parsed = self._parse_cache.get(query)
        if parsed is None:
            parsed = parse_query(query)
            if len(self._parse_cache) < 4096:
                self._parse_cache[parsed.text] = parsed
                if query != parsed.text:
                    self._parse_cache[query] = parsed
        return parsed

    def _route_key(self, parsed: ParsedQuery) -> tuple:
        # Same identity the engine plan cache uses (minus algorithm):
        # canonical form + order-insensitive bindings, so `Q(A,B) :- ...`
        # under any atom order routes to one replica.
        return (
            parsed.canonical(),
            tuple(sorted(parsed.bindings, key=lambda b: b.edge)),
        )

    def _eligible_locked(self, parsed: ParsedQuery) -> list[int]:
        eligible = set(range(self.replicas))
        for b in parsed.bindings:
            eligible &= self._placement.get(b.relation, set())
            if not eligible:
                break
        return sorted(eligible)

    def submit(
        self, query: "str | ParsedQuery", algorithm: str = "auto"
    ) -> Future:
        """Admit one request; returns a Future of its ExecutionResult.

        The future resolves to an :class:`ExecutionResult` (check
        ``.ok``/``.error`` — engine-side failures are embedded, batch
        style) or raises the prepare-time error for malformed algorithm
        requests.

        Raises:
            AdmissionRejected: The routed replica's backlog is at
                ``shed_after`` (nothing was enqueued).
            EngineError: No replica holds all of the query's relations,
                or the front door is closed.
            ParseError: The query text does not parse.
        """
        with self._lock:
            if self._closed:
                raise EngineError("front door is closed")
            parsed = self._parse(query)
            eligible = self._eligible_locked(parsed)
            if not eligible:
                names = sorted({b.relation for b in parsed.bindings})
                raise EngineError(
                    f"no replica holds all relations {names} "
                    f"(placement: { {n: sorted(r) for n, r in self._placement.items()} })"
                )
            key = self._route_key(parsed)
            digest = hashlib.blake2b(
                repr(key).encode(), digest_size=8
            ).digest()
            home = eligible[int.from_bytes(digest, "big") % len(eligible)]
            target = home
            if self._pending[home] >= self.spill_after and len(eligible) > 1:
                least = min(eligible, key=lambda j: self._pending[j])
                if self._pending[least] < self._pending[home]:
                    target = least
                    self._stats.spilled += 1
            if self._pending[target] >= self.shed_after:
                self._stats.shed += 1
                raise AdmissionRejected(
                    f"replica {target} backlog at shed_after="
                    f"{self.shed_after}; retry later"
                )
            self._pending[target] += 1
            self._stats.admitted += 1
            fut: Future = Future()
            self._queues[target].put(
                _Request(
                    parsed=parsed, algorithm=algorithm, future=fut,
                    key=key, replica=target, submitted=time.monotonic(),
                )
            )
            return fut

    def submit_many(
        self,
        queries: Sequence["str | ParsedQuery"],
        algorithm: str = "auto",
        best_effort: bool = False,
    ) -> list[Future]:
        """Admit many requests; returns one Future per query, in order.

        With ``best_effort`` a shed (or ineligible) request yields a
        Future already failed with its admission error instead of
        aborting the remaining submissions — the heavy-traffic benchmark
        shape, where shed load is a data point, not an exception.
        """
        futures: list[Future] = []
        for q in queries:
            try:
                futures.append(self.submit(q, algorithm))
            except (AdmissionRejected, EngineError) as exc:
                if not best_effort:
                    raise
                fut: Future = Future()
                fut.set_exception(exc)
                futures.append(fut)
        return futures

    def execute(
        self, query: "str | ParsedQuery", algorithm: str = "auto"
    ) -> ExecutionResult:
        """Submit and wait; raises the embedded error on failure."""
        res = self.submit(query, algorithm).result()
        if res.error is not None:
            raise res.error
        return res

    # ------------------------------------------------------------------
    # Replica workers
    # ------------------------------------------------------------------
    def _worker(self, i: int) -> None:
        q = self._queues[i]
        engine = self.engines[i]
        while True:
            item = q.get()
            if item is _STOP:
                return
            batch = [item]
            stop = False
            if self.batch_window > 0 and self.batch_max > 1:
                horizon = time.monotonic() + self.batch_window
                while len(batch) < self.batch_max:
                    remaining = horizon - time.monotonic()
                    if remaining <= 0:
                        break
                    try:
                        nxt = q.get(timeout=remaining)
                    except queue_mod.Empty:
                        break
                    if nxt is _STOP:
                        stop = True
                        break
                    batch.append(nxt)
            self._run_batch(i, engine, batch)
            if stop:
                return

    def _run_batch(
        self, i: int, engine: Engine, batch: "list[_Request]"
    ) -> None:
        entries: list[Any] = []
        ready: list[_Request] = []
        for req in batch:
            try:
                entries.append(
                    req.parsed if req.algorithm == "auto"
                    else engine.prepare(req.parsed, req.algorithm)
                )
            except ReproError as exc:
                # Prepare-time failure (unknown algorithm, missing
                # relation): the future carries the exception itself.
                self._finish(i, req)
                req.future.set_exception(exc)
                continue
            ready.append(req)
        results: list[ExecutionResult] = []
        if entries:
            report = engine.submit_batch(entries, threads=1)
            results = report.results
        hist = self.registry.histogram(
            "repro_frontdoor_replica_seconds",
            help="Front-door request latency (admission to completion).",
            replica=str(i),
        )
        now = time.monotonic()
        for req, res in zip(ready, results):
            self._finish(i, req)
            hist.observe(now - req.submitted)
            req.future.set_result(res)
        with self._lock:
            self._stats.batches += 1
            self._stats.coalesced += len(batch) - 1
        if self.ship_plans:
            self._ship_cold_plans(i, engine, ready, results)

    def _finish(self, i: int, req: _Request) -> None:
        with self._lock:
            self._pending[i] -= 1

    # ------------------------------------------------------------------
    # Cross-replica plan index
    # ------------------------------------------------------------------
    def _ship_cold_plans(
        self,
        i: int,
        engine: Engine,
        ready: "list[_Request]",
        results: "list[ExecutionResult]",
    ) -> None:
        """Export each cold-traced plan of the batch to its peers.

        Runs after the batch's futures resolve (shipping never adds
        request latency) on the replica worker, so installs into peer
        engines take one engine lock at a time — no nesting, no
        deadlock.  The index dedups by digest: a plan is installed at
        most once per (query, algorithm, data-version) generation.
        """
        shipped: set[tuple] = set()
        for req, res in zip(ready, results):
            m = res.metrics
            if not (
                res.ok
                and not m.result_cached
                and not m.plan_replayed
                and not m.degraded_serial
            ):
                continue
            index_key = (req.key, req.algorithm)
            if index_key in shipped:
                continue
            shipped.add(index_key)
            try:
                blob = engine.export_plan(req.parsed, req.algorithm)
            except ReproError:
                # Unservable for shipping (recording evicted, oversized,
                # unpicklable payload): peers trace cold — correct,
                # just not warmed.
                continue
            digest = plan_digest(blob)
            relations = frozenset(b.relation for b in req.parsed.bindings)
            with self._lock:
                eligible = self._eligible_locked(req.parsed)
                entry = self._plan_index.get(index_key)
                if entry is None or entry["digest"] != digest:
                    entry = self._plan_index[index_key] = {
                        "digest": digest,
                        "relations": relations,
                        "installed": {i},
                    }
                entry["installed"].add(i)
                targets = [
                    j for j in eligible
                    if j != i and j not in entry["installed"]
                ]
            for j in targets:
                try:
                    self.engines[j].install_plan(blob)
                except PlanShipError:
                    # Fingerprint/digest mismatch (partitioned shard) or
                    # an unresolvable fn: the peer stays cold, which is
                    # always safe.
                    with self._lock:
                        self._stats.plans_rejected += 1
                else:
                    with self._lock:
                        entry["installed"].add(j)
                        self._stats.plans_shipped += 1

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _frontdoor_view(self) -> dict[str, float]:
        with self._lock:
            s = self._stats
            return {
                "repro_frontdoor_replicas": s.replicas,
                "repro_frontdoor_admitted": s.admitted,
                "repro_frontdoor_shed": s.shed,
                "repro_frontdoor_spilled": s.spilled,
                "repro_frontdoor_batches": s.batches,
                "repro_frontdoor_coalesced": s.coalesced,
                "repro_frontdoor_plans_shipped": s.plans_shipped,
                "repro_frontdoor_plans_rejected": s.plans_rejected,
                "repro_frontdoor_pending": float(sum(self._pending)),
            }

    def stats(self) -> FrontdoorStats:
        """A snapshot copy of the front-door counters."""
        with self._lock:
            return FrontdoorStats(**self._stats.as_dict())

    def pending(self) -> tuple[int, ...]:
        """Per-replica backlog snapshot (admitted, not yet completed)."""
        with self._lock:
            return tuple(self._pending)

    def metrics_text(self) -> str:
        """The shared registry in Prometheus text exposition format."""
        return self.registry.render_prometheus()

    def __repr__(self) -> str:
        return (
            f"Frontdoor<replicas={self.replicas}, p={self.p}, "
            f"shed_after={self.shed_after}, batch_max={self.batch_max}>"
        )
