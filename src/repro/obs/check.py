"""Schema checkers for observability artifacts (trace JSONL, Prometheus text).

CI's observability smoke job runs ``serve --trace``/``--metrics-out`` on
the example workload and then validates both artifacts here::

    PYTHONPATH=src python -m repro.obs.check trace.jsonl metrics.prom

Tests import :func:`validate_trace_lines` / :func:`validate_prometheus_text`
directly, so the checker and the test suite agree on the schema by
construction.  Both validators return a list of human-readable error
strings (empty means valid) rather than raising, so one pass reports
every problem.
"""

from __future__ import annotations

import json
import re
import sys
from typing import Iterable

__all__ = ["validate_trace_lines", "validate_prometheus_text", "main"]

_SCALAR = (str, int, float, bool, type(None))

# Sample line: name{labels} value   (timestamps are not emitted by us)
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|[+-]Inf|NaN)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def validate_trace_lines(lines: Iterable[str]) -> list[str]:
    """Validate JSONL span records: field schema plus tree well-formedness.

    Per line: a JSON object with exactly the contract fields (``trace``,
    ``span``, ``parent``, ``name``, ``ts``, ``dur``, ``attrs``), correct
    types, scalar attr values.  Per trace: span ids unique, exactly one
    root (``parent: null``), and every parent id resolving to a span of
    the same trace — i.e. each trace is one well-formed tree.
    """
    errors: list[str] = []
    spans_by_trace: dict[str, dict[str, str | None]] = {}
    for lineno, raw in enumerate(lines, 1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            rec = json.loads(raw)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: not valid JSON ({exc})")
            continue
        if not isinstance(rec, dict):
            errors.append(f"line {lineno}: record is not an object")
            continue
        missing = {"trace", "span", "parent", "name", "ts", "dur", "attrs"} - set(rec)
        extra = set(rec) - {"trace", "span", "parent", "name", "ts", "dur", "attrs"}
        if missing:
            errors.append(f"line {lineno}: missing fields {sorted(missing)}")
            continue
        if extra:
            errors.append(f"line {lineno}: unexpected fields {sorted(extra)}")
        if not isinstance(rec["trace"], str) or not rec["trace"]:
            errors.append(f"line {lineno}: 'trace' must be a non-empty string")
            continue
        if not isinstance(rec["span"], str) or not rec["span"]:
            errors.append(f"line {lineno}: 'span' must be a non-empty string")
            continue
        if rec["parent"] is not None and not isinstance(rec["parent"], str):
            errors.append(f"line {lineno}: 'parent' must be a string or null")
        if not isinstance(rec["name"], str) or not rec["name"]:
            errors.append(f"line {lineno}: 'name' must be a non-empty string")
        for field in ("ts", "dur"):
            if isinstance(rec[field], bool) or not isinstance(rec[field], (int, float)):
                errors.append(f"line {lineno}: {field!r} must be a number")
        if isinstance(rec.get("dur"), (int, float)) and rec["dur"] < 0:
            errors.append(f"line {lineno}: negative duration {rec['dur']}")
        if not isinstance(rec["attrs"], dict):
            errors.append(f"line {lineno}: 'attrs' must be an object")
        else:
            for k, v in rec["attrs"].items():
                if not isinstance(v, _SCALAR):
                    errors.append(
                        f"line {lineno}: attr {k!r} is not a scalar "
                        f"({type(v).__name__})"
                    )
        spans = spans_by_trace.setdefault(rec["trace"], {})
        if rec["span"] in spans:
            errors.append(f"line {lineno}: duplicate span id {rec['span']!r}")
        spans[rec["span"]] = rec["parent"]
    for trace_id, spans in spans_by_trace.items():
        roots = [sid for sid, parent in spans.items() if parent is None]
        if len(roots) != 1:
            errors.append(
                f"trace {trace_id!r}: expected exactly one root span, "
                f"found {len(roots)}"
            )
        for sid, parent in spans.items():
            if parent is not None and parent not in spans:
                errors.append(
                    f"trace {trace_id!r}: span {sid!r} has unknown parent "
                    f"{parent!r}"
                )
    if not spans_by_trace and not errors:
        errors.append("no span records found")
    return errors


def validate_prometheus_text(text: str) -> list[str]:
    """Validate the text exposition format structurally.

    Checks line grammar (``# HELP``/``# TYPE`` comments, ``name{labels}
    value`` samples), that every sample's base name was declared by a
    ``# TYPE`` line, and histogram integrity: per label-set, cumulative
    ``_bucket`` counts are non-decreasing, a ``+Inf`` bucket exists, and
    it equals the ``_count`` sample.
    """
    errors: list[str] = []
    types: dict[str, str] = {}
    # (hist name, labels-without-le) -> list of (le, cumulative count)
    buckets: dict[tuple[str, tuple], list[tuple[float, float]]] = {}
    counts: dict[tuple[str, tuple], float] = {}
    saw_sample = False
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                kind = parts[3] if len(parts) > 3 else ""
                if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    errors.append(f"line {lineno}: unknown metric type {kind!r}")
                types[parts[2]] = kind
            elif len(parts) >= 2 and parts[1] not in ("HELP", "TYPE"):
                errors.append(f"line {lineno}: malformed comment {line!r}")
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: malformed sample line {line!r}")
            continue
        saw_sample = True
        name, label_blob, value_s = m.group(1), m.group(2) or "", m.group(3)
        labels = dict(_LABEL_RE.findall(label_blob[1:-1])) if label_blob else {}
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            stripped = name[: -len(suffix)] if name.endswith(suffix) else None
            if stripped and types.get(stripped) == "histogram":
                base = stripped
                break
        if base not in types:
            errors.append(f"line {lineno}: sample {name!r} has no # TYPE declaration")
            continue
        if types[base] == "histogram":
            key_labels = tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le"
            ))
            if name.endswith("_bucket"):
                le_s = labels.get("le")
                if le_s is None:
                    errors.append(f"line {lineno}: histogram bucket without 'le'")
                    continue
                le = float("inf") if le_s == "+Inf" else float(le_s)
                buckets.setdefault((base, key_labels), []).append(
                    (le, float(value_s))
                )
            elif name.endswith("_count"):
                counts[(base, key_labels)] = float(value_s)
    for (base, key_labels), series in buckets.items():
        series.sort(key=lambda p: p[0])
        label_txt = dict(key_labels) or ""
        prev = -1.0
        for le, cum in series:
            if cum < prev:
                errors.append(
                    f"histogram {base}{label_txt}: bucket counts decrease at le={le}"
                )
            prev = cum
        if not series or series[-1][0] != float("inf"):
            errors.append(f"histogram {base}{label_txt}: missing +Inf bucket")
        else:
            total = counts.get((base, key_labels))
            if total is not None and total != series[-1][1]:
                errors.append(
                    f"histogram {base}{label_txt}: _count {total} != +Inf "
                    f"bucket {series[-1][1]}"
                )
    if not saw_sample and not errors:
        errors.append("no samples found")
    return errors


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 2:
        print("usage: python -m repro.obs.check TRACE_JSONL METRICS_PROM",
              file=sys.stderr)
        return 2
    trace_path, prom_path = argv
    failed = False
    with open(trace_path, encoding="utf-8") as fh:
        trace_errors = validate_trace_lines(fh)
    lines = sum(1 for line in open(trace_path, encoding="utf-8") if line.strip())
    if trace_errors:
        failed = True
        print(f"FAIL {trace_path}: {len(trace_errors)} error(s)")
        for err in trace_errors[:50]:
            print(f"  - {err}")
    else:
        print(f"ok {trace_path}: {lines} span(s), schema valid")
    with open(prom_path, encoding="utf-8") as fh:
        prom_errors = validate_prometheus_text(fh.read())
    if prom_errors:
        failed = True
        print(f"FAIL {prom_path}: {len(prom_errors)} error(s)")
        for err in prom_errors[:50]:
            print(f"  - {err}")
    else:
        print(f"ok {prom_path}: exposition valid")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
