"""Metrics registry: counters, gauges, histograms, and stat views.

One process-local :class:`MetricsRegistry` absorbs the repo's scattered
counters.  Three primitive instruments exist — :class:`Counter` (monotone),
:class:`Gauge` (set/inc), and :class:`Histogram` (fixed-bucket with
p50/p95/p99 estimation) — all label-aware and thread-safe under one shared
registry lock (instrument updates are per-query, never per-tuple, so a
single lock is cheap and keeps snapshots trivially consistent).

Existing counter families (``EngineStats``, ``Backend.wire_stats()``,
``Backend.fault_stats()``) do not migrate their storage: they register as
**views** — callables returning ``{metric_name: number}`` — and the
registry renders them as gauges in both output formats.  That keeps each
subsystem's counters where its locking discipline already lives, while
every exposition surface (``repro stats``, ``serve --metrics-out``) shows
one merged picture.

Two output formats: :meth:`MetricsRegistry.snapshot` (plain JSON-able
dicts) and :meth:`MetricsRegistry.render_prometheus` (the text exposition
format: ``# HELP``/``# TYPE`` comments, cumulative ``_bucket`` series with
``le`` labels, ``_sum``/``_count`` per histogram).

:class:`WireMeter` also lives here: the per-query attribution object for
shipped wire bytes (see its docstring for why deltas of the backend's
cumulative counters are wrong under concurrency).

None of this ever touches the :class:`~repro.mpc.cluster.LoadReport`
ledger — telemetry observes wall-clock and bytes; the ledger stays the
bit-identical correctness oracle (DESIGN.md section 10).
"""

from __future__ import annotations

import re
import threading
from typing import Any, Callable, Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "WireMeter",
    "DEFAULT_LATENCY_BUCKETS",
    "percentiles",
]

#: Default histogram bucket upper bounds (seconds): 100us .. 10s, roughly
#: logarithmic — wide enough for cold multiprocess queries, fine enough
#: to resolve warm sub-millisecond replays.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def percentiles(
    samples: Iterable[float], qs: Sequence[float] = (50.0, 95.0, 99.0)
) -> dict[str, float]:
    """Exact sample percentiles, linearly interpolated between order stats.

    Returns ``{"p50": ..., "p95": ..., "p99": ...}`` (keys follow ``qs``);
    all zero when ``samples`` is empty.  Shared by
    :meth:`EngineStats.latency_percentiles` and the benchmark schema so
    every percentile the repo reports is computed one way.
    """
    values = sorted(samples)
    n = len(values)
    out = {f"p{q:g}": 0.0 for q in qs}
    if not n:
        return out
    for q in qs:
        pos = (n - 1) * (q / 100.0)
        lo = int(pos)
        hi = min(lo + 1, n - 1)
        frac = pos - lo
        out[f"p{q:g}"] = values[lo] * (1.0 - frac) + values[hi] * frac
    return out


class WireMeter:
    """Per-query attribution of wire traffic shipped by a backend.

    The backend's cumulative ``wire_stats()`` counters are shared by every
    query flowing through it, so concurrent callers computing
    before/after deltas double-count each other's bytes (the
    ``submit_batch(threads=N)`` bug).  A meter instead travels *with* the
    call — ``Cluster.wire_meter`` on the cold path,
    ``Executor(meter=...)`` on replays, the ``meter=`` argument of
    :meth:`Backend.run_ops` — and is bumped exactly where a payload
    crosses the process boundary, so its totals are per-query by
    construction, whatever else the backend is serving concurrently.

    Not locked: one query's rounds execute sequentially (the backend's
    dispatcher runs submitted batches in order), so a single meter is
    only ever bumped by one thread at a time.
    """

    __slots__ = ("parts", "bytes")

    def __init__(self) -> None:
        self.parts = 0
        self.bytes = 0

    def add(self, nbytes: int) -> None:
        self.parts += 1
        self.bytes += nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WireMeter<parts={self.parts}, bytes={self.bytes}>"


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    name = _NAME_RE.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _fmt_value(value: float) -> str:
    f = float(value)
    return str(int(f)) if f.is_integer() else repr(f)


def _fmt_labels(labels: Mapping[str, Any], extra: str = "") -> str:
    parts = [
        f'{_sanitize(str(k))}="{str(v).replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
        for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Instrument:
    """Base of all instruments: a name, a label set, the shared lock."""

    kind = "?"

    def __init__(
        self, name: str, labels: Mapping[str, Any], help: str,
        lock: threading.RLock,
    ) -> None:
        self.name = name
        self.labels = dict(labels)
        self.help = help
        self._lock = lock


class Counter(_Instrument):
    """A monotone counter.  ``inc`` only; decreasing is a bug."""

    kind = "counter"

    def __init__(self, *args: Any) -> None:
        super().__init__(*args)
        self._value = 0.0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Instrument):
    """A value that can go anywhere: set absolutely or adjusted."""

    kind = "gauge"

    def __init__(self, *args: Any) -> None:
        super().__init__(*args)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram(_Instrument):
    """Fixed-bucket histogram with interpolated percentile estimation.

    Buckets are cumulative upper bounds (Prometheus ``le`` semantics) with
    an implicit ``+Inf`` overflow bucket.  :meth:`percentile` walks the
    cumulative counts to the target rank and interpolates linearly within
    the landing bucket (the overflow bucket reports the observed max) —
    the standard fixed-bucket estimator, exact at bucket edges and within
    one bucket's width elsewhere.
    """

    kind = "histogram"

    def __init__(
        self, name: str, labels: Mapping[str, Any], help: str,
        lock: threading.RLock, buckets: Sequence[float] | None = None,
    ) -> None:
        super().__init__(name, labels, help, lock)
        bounds = tuple(sorted(buckets if buckets else DEFAULT_LATENCY_BUCKETS))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._min = 0.0
        self._max = 0.0

    def observe(self, value: float) -> None:
        v = float(value)
        with self._lock:
            i = 0
            bounds = self.buckets
            while i < len(bounds) and v > bounds[i]:
                i += 1
            self._counts[i] += 1
            self._sum += v
            if self._count == 0:
                self._min = self._max = v
            else:
                self._min = min(self._min, v)
                self._max = max(self._max, v)
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (``q`` in [0, 100])."""
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = (q / 100.0) * self._count
            cum = 0
            for i, c in enumerate(self._counts):
                prev = cum
                cum += c
                if cum >= rank and c:
                    if i >= len(self.buckets):  # overflow bucket
                        return self._max
                    lo = self.buckets[i - 1] if i else min(self._min, self.buckets[i])
                    hi = self.buckets[i]
                    frac = (rank - prev) / c
                    est = lo + frac * (hi - lo)
                    return min(max(est, self._min), self._max)
            return self._max  # pragma: no cover - rank beyond counts

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            cum = 0
            buckets = []
            for bound, c in zip(self.buckets, self._counts):
                cum += c
                buckets.append([bound, cum])
            buckets.append(["+Inf", cum + self._counts[-1]])
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "buckets": buckets,
                "p50": self.percentile(50),
                "p95": self.percentile(95),
                "p99": self.percentile(99),
            }


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class MetricsRegistry:
    """Create/fetch instruments by ``(name, labels)``; render snapshots.

    ``counter``/``gauge``/``histogram`` return the existing instrument for
    a key or create it (types must not conflict).  ``register_view``
    attaches a callable returning ``{metric_name: number}`` — rendered as
    gauges — so legacy counter families join the exposition without
    moving their storage.  All methods are thread-safe.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._instruments: dict[tuple, _Instrument] = {}
        self._views: list[Callable[[], Mapping[str, float]]] = []

    # -- instruments ----------------------------------------------------
    def _get(
        self, cls: type, name: str, help: str, labels: Mapping[str, Any],
        **extra: Any,
    ) -> Any:
        key = (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                inst = cls(name, labels, help, self._lock, **extra)
                self._instruments[key] = inst
            elif type(inst) is not cls:
                raise TypeError(
                    f"metric {name!r} already registered as {inst.kind}, "
                    f"not {cls.kind}"
                )
            return inst

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self, name: str, help: str = "",
        buckets: Sequence[float] | None = None, **labels: Any,
    ) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    def register_view(self, fn: Callable[[], Mapping[str, float]]) -> None:
        with self._lock:
            self._views.append(fn)

    def reset(self) -> None:
        """Drop every instrument; registered views stay.

        A long-lived process serving several rounds (CLI ``serve
        --repeat``, test loops) resets between rounds so per-round
        percentiles come from per-round histograms instead of an
        ever-growing one.  Views survive because they are *windows onto
        external storage* (EngineStats, backend counters) — resetting the
        registry must not silently disconnect them; callers who want
        those at zero reset the owning objects.  Existing instrument
        handles held by callers keep working but stop being scraped; the
        next ``counter()``/``histogram()`` call re-creates a fresh one
        under the same key.
        """
        with self._lock:
            self._instruments.clear()

    # -- output ---------------------------------------------------------
    def _view_values(self) -> dict[str, float]:
        with self._lock:
            views = list(self._views)
        out: dict[str, float] = {}
        for fn in views:
            try:
                values = fn()
            except Exception:  # noqa: BLE001 - a broken view never breaks scrape
                continue
            for k, v in values.items():
                if isinstance(v, bool) or not isinstance(v, (int, float)):
                    continue
                out[_sanitize(str(k))] = out.get(_sanitize(str(k)), 0) + v
        return out

    def snapshot(self) -> dict[str, Any]:
        """Everything as plain JSON-able data (``repro stats --format json``)."""
        with self._lock:
            instruments = list(self._instruments.values())
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, Any] = {}
        for inst in instruments:
            key = _sanitize(inst.name) + _fmt_labels(inst.labels)
            if isinstance(inst, Counter):
                counters[key] = inst.value
            elif isinstance(inst, Gauge):
                gauges[key] = inst.value
            elif isinstance(inst, Histogram):
                histograms[key] = inst.snapshot()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "views": dict(sorted(self._view_values().items())),
        }

    def render_prometheus(self) -> str:
        """The text exposition format (``serve --metrics-out``)."""
        with self._lock:
            instruments = list(self._instruments.values())
        by_name: dict[str, list[_Instrument]] = {}
        for inst in instruments:
            by_name.setdefault(_sanitize(inst.name), []).append(inst)
        lines: list[str] = []
        for name in sorted(by_name):
            group = by_name[name]
            help_text = next((i.help for i in group if i.help), "")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {group[0].kind}")
            for inst in group:
                if isinstance(inst, Histogram):
                    snap = inst.snapshot()
                    for bound, cum in snap["buckets"]:
                        le = bound if bound == "+Inf" else _fmt_value(bound)
                        labels = _fmt_labels(inst.labels, f'le="{le}"')
                        lines.append(f"{name}_bucket{labels} {cum}")
                    labels = _fmt_labels(inst.labels)
                    lines.append(f"{name}_sum{labels} {_fmt_value(snap['sum'])}")
                    lines.append(f"{name}_count{labels} {snap['count']}")
                else:
                    labels = _fmt_labels(inst.labels)
                    lines.append(f"{name}{labels} {_fmt_value(inst.value)}")
        for key, value in sorted(self._view_values().items()):
            lines.append(f"# TYPE {key} gauge")
            lines.append(f"{key} {_fmt_value(value)}")
        return "\n".join(lines) + "\n"
