"""Unified telemetry: metrics registry, span tracing, schema checkers.

See DESIGN.md section 10.  The package is dependency-free (stdlib only)
and import-cheap: every other layer (engine, plan, backends, CLI,
benchmarks) imports from here, never the other way around.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    WireMeter,
    percentiles,
)
from repro.obs.tracing import NULL_SPAN, NULL_TRACER, Span, SpanSink, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "WireMeter",
    "DEFAULT_LATENCY_BUCKETS",
    "percentiles",
    "Span",
    "SpanSink",
    "Tracer",
    "NULL_SPAN",
    "NULL_TRACER",
]
