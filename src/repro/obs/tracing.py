"""Span-based tracing with a zero-cost disabled path.

A :class:`Tracer` mints root spans; a :class:`Span` times one operation
and emits a flat JSONL record into a :class:`SpanSink` when ended.  The
span tree for one traced query looks like::

    query                           (engine, Engine.execute)
      cold_execute | replay         (engine path taken)
        backend.round               (one Backend.run_ops/submit_ops call)
          worker.round              (one worker's slice of that round;
                                     carries worker-reported decode/compute
                                     seconds shipped back over the IPC pipe)
      degrade_serial                (only if the fault ladder bottomed out)

Worker processes never write spans themselves: the coordinator sends
``(trace_id, span_id)`` alongside each ops request, workers measure their
own decode/compute time with ``perf_counter`` and return the timings in
the reply header, and the coordinator attaches them to the
``worker.round`` span it already holds.  A respawned worker simply
produces a fresh ``worker.round`` child under the same ``backend.round``
parent — trace continuity across chaos-injected deaths falls out of the
parenting, not of any worker-side state.

Disabled tracing is the default and must stay near-free: ``NULL_TRACER``
returns the singleton ``NULL_SPAN`` whose every method is a no-op and
whose ``recording`` flag is ``False`` — hot paths check ``span.recording``
once and skip all attribute assembly (``benchmarks/bench_obs.py`` gates
the overhead at <= 3%).

JSONL record schema (one object per line, validated by
``repro.obs.check``)::

    {"trace": str, "span": str, "parent": str|null, "name": str,
     "ts": float (unix epoch, span start), "dur": float (seconds),
     "attrs": {str: scalar}}
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from typing import Any

__all__ = ["Span", "SpanSink", "Tracer", "NULL_SPAN", "NULL_TRACER"]

#: The JSONL record fields, in emission order (schema contract).
SPAN_FIELDS = ("trace", "span", "parent", "name", "ts", "dur", "attrs")

_ids = itertools.count(1)


def _new_id(prefix: str) -> str:
    return f"{prefix}{next(_ids):x}"


class SpanSink:
    """Bounded buffer of finished span records, optionally JSONL-backed.

    ``emit`` is thread-safe and never blocks on I/O unless the buffer is
    full.  With a ``path``, a full buffer flushes (appends) to the file;
    without one the sink is purely in-memory and drops its *oldest*
    records past ``capacity`` (``dropped`` counts the casualties) — a
    trace consumer that cares about completeness supplies a path.
    """

    def __init__(self, path: str | None = None, capacity: int = 8192) -> None:
        self.path = path
        self.capacity = max(1, int(capacity))
        self._lock = threading.Lock()
        self._buf: deque[dict] = deque()
        self.emitted = 0
        self.dropped = 0

    def emit(self, record: dict) -> None:
        with self._lock:
            self._buf.append(record)
            self.emitted += 1
            if len(self._buf) >= self.capacity:
                if self.path is not None:
                    self._flush_locked()
                else:
                    self._buf.popleft()
                    self.dropped += 1

    def _flush_locked(self) -> None:
        if self.path is None or not self._buf:
            return
        with open(self.path, "a", encoding="utf-8") as fh:
            while self._buf:
                fh.write(json.dumps(self._buf.popleft(), default=str))
                fh.write("\n")

    def flush(self) -> None:
        with self._lock:
            self._flush_locked()

    def records(self) -> list[dict]:
        """The currently buffered (not yet flushed-to-file) records."""
        with self._lock:
            return list(self._buf)

    def close(self) -> None:
        self.flush()


class Span:
    """One timed operation.  End exactly once; usable as a context manager.

    ``recording`` is the hot-path gate: code handed a span checks it
    before assembling attributes, so the disabled sentinel costs one
    attribute read.  ``ts`` is wall-clock (epoch) for cross-run
    correlation; ``dur`` is measured with ``perf_counter`` for precision.
    """

    __slots__ = (
        "_sink", "trace_id", "span_id", "parent_id", "name",
        "ts", "_t0", "attrs", "_ended",
    )

    recording = True

    def __init__(
        self, sink: SpanSink, name: str, trace_id: str,
        parent_id: str | None = None, attrs: dict | None = None,
    ) -> None:
        self._sink = sink
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id("s")
        self.parent_id = parent_id
        self.attrs = dict(attrs) if attrs else {}
        self._ended = False
        self.ts = time.time()
        self._t0 = time.perf_counter()

    def child(self, name: str, **attrs: Any) -> "Span":
        return Span(self._sink, name, self.trace_id, self.span_id, attrs)

    def set(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def end(self, **attrs: Any) -> None:
        if self._ended:
            return
        self._ended = True
        dur = time.perf_counter() - self._t0
        if attrs:
            self.attrs.update(attrs)
        self._sink.emit({
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "ts": self.ts,
            "dur": dur,
            "attrs": self.attrs,
        })

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is not None and "error" not in self.attrs:
            self.attrs["error"] = exc_type.__name__
        self.end()


class _NullSpan:
    """The disabled-tracing sentinel: every operation is a no-op.

    A singleton (``NULL_SPAN``) so identity checks and ``recording``
    reads are all a disabled hot path ever pays.  ``trace_id`` is None,
    which keeps ``QueryMetrics.trace_id = span.trace_id`` uniform across
    enabled/disabled engines.
    """

    __slots__ = ()

    recording = False
    trace_id = None
    span_id = None
    parent_id = None
    name = ""
    attrs: dict = {}

    def child(self, name: str, **attrs: Any) -> "_NullSpan":
        return self

    def set(self, **attrs: Any) -> None:
        pass

    def end(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


NULL_SPAN = _NullSpan()

# Trace ids carry the coordinator pid so JSONL from concurrent processes
# appended to one file can never collide.
_TOKEN = f"{os.getpid():x}"


class Tracer:
    """Mints root spans into one :class:`SpanSink`."""

    enabled = True

    def __init__(self, sink: SpanSink | None = None) -> None:
        self.sink = sink if sink is not None else SpanSink()

    def span(self, name: str, **attrs: Any) -> Span:
        return Span(self.sink, name, _new_id(f"t{_TOKEN}-"), None, attrs)

    def flush(self) -> None:
        self.sink.flush()

    def close(self) -> None:
        self.sink.close()


class _NullTracer:
    """Disabled tracer: hands out ``NULL_SPAN``, never allocates."""

    enabled = False
    sink = None

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACER = _NullTracer()
