"""Shared plumbing for the core MPC join algorithms.

Conventions used by every algorithm in :mod:`repro.core`:

* Distributed relations may carry *payload columns* beyond their edge's
  attributes (annotation pseudo-columns from Section 6 executions).  Join
  logic keys on edge attributes; payload columns ride along.
* Join results are returned as a :class:`~repro.mpc.distrel.DistRelation`
  whose schema is the *canonical* ordering: sorted real attributes followed
  by sorted payload columns.  Emission is local (the model's zero-cost
  ``emit``); only subsequent shuffles of results cost load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.data.relation import Row, project_row
from repro.errors import MPCError
from repro.mpc.cluster import LoadReport
from repro.mpc.distrel import DistRelation
from repro.mpc.group import Group
from repro.query.hypergraph import Hypergraph, JoinTree, join_tree

__all__ = [
    "JoinResult",
    "canonical_attrs",
    "align_to_schema",
    "local_hash_join",
    "local_tree_join",
    "merge_result_parts",
    "concat_distrels",
]


@dataclass
class JoinResult:
    """Outcome of one simulated MPC join execution.

    Attributes:
        relation: The emitted results, distributed as produced.
        report: The cluster's load ledger at completion.
        meta: Algorithm-specific facts (OUT, thresholds, rounds, ...).
    """

    relation: DistRelation
    report: LoadReport
    meta: dict[str, Any] = field(default_factory=dict)

    def rows(self) -> list[Row]:
        return self.relation.all_rows()

    def row_set(self) -> set[Row]:
        return set(self.relation.all_rows())

    @property
    def output_size(self) -> int:
        return self.relation.total_size()


def canonical_attrs(attr_sets: Sequence[Sequence[str]]) -> tuple[str, ...]:
    """Canonical result schema: sorted real attrs, then sorted payload cols."""
    all_attrs = set()
    for attrs in attr_sets:
        all_attrs.update(attrs)
    real = sorted(a for a in all_attrs if not a.startswith("#"))
    payload = sorted(a for a in all_attrs if a.startswith("#"))
    return tuple(real + payload)


def align_to_schema(rows: list[Row], attrs: Sequence[str], target: Sequence[str]) -> list[Row]:
    """Reorder row columns from ``attrs`` order to ``target`` order."""
    if tuple(attrs) == tuple(target):
        return rows
    idx = [list(attrs).index(a) for a in target]
    return [tuple(r[i] for i in idx) for r in rows]


def local_hash_join(
    attrs1: Sequence[str],
    rows1: list[Row],
    attrs2: Sequence[str],
    rows2: list[Row],
) -> tuple[tuple[str, ...], list[Row]]:
    """In-memory natural join on shared attributes (free local computation)."""
    set1 = set(attrs1)
    shared = tuple(a for a in attrs1 if a in set(attrs2))
    extra2 = tuple(a for a in attrs2 if a not in set1)
    out_attrs = tuple(attrs1) + extra2
    pos1 = tuple(list(attrs1).index(a) for a in shared)
    pos2 = tuple(list(attrs2).index(a) for a in shared)
    pos2_extra = tuple(list(attrs2).index(a) for a in extra2)
    index: dict[Row, list[Row]] = {}
    for r in rows2:
        index.setdefault(project_row(r, pos2), []).append(project_row(r, pos2_extra))
    out: list[Row] = []
    for r in rows1:
        for extra in index.get(project_row(r, pos1), ()):
            out.append(r + extra)
    return out_attrs, out


def local_tree_join(
    query: Hypergraph,
    schemas: dict[str, tuple[str, ...]],
    rows: dict[str, list[Row]],
    tree: JoinTree | None = None,
) -> tuple[tuple[str, ...], list[Row]]:
    """Join one sub-instance entirely locally, folding along a join tree.

    Used when a whole (light) sub-instance has been shipped to one server:
    the join happens there for free.  Relations may carry payload columns.

    Returns:
        ``(attrs, rows)`` in canonical schema order.
    """
    tree = tree or join_tree(query)
    cur_attrs = dict(schemas)
    cur_rows = {n: list(r) for n, r in rows.items()}
    for node in tree.bottom_up():
        par = tree.parent[node]
        if par is None:
            continue
        a, r = local_hash_join(
            cur_attrs[par], cur_rows[par], cur_attrs[node], cur_rows[node]
        )
        cur_attrs[par], cur_rows[par] = a, r
    root = tree.root
    target = canonical_attrs(list(schemas.values()))
    return target, align_to_schema(cur_rows[root], cur_attrs[root], target)


def merge_result_parts(
    group_size: int,
    placements: Sequence[tuple[int, list[Row]]],
) -> list[list[Row]]:
    """Assemble per-server result parts from (local_server, rows) pieces."""
    parts: list[list[Row]] = [[] for _ in range(group_size)]
    for idx, rows in placements:
        if not 0 <= idx < group_size:
            raise MPCError(f"result placement {idx} out of range")
        parts[idx].extend(rows)
    return parts


def concat_distrels(
    name: str,
    group: Group,
    pieces: Sequence[DistRelation],
) -> DistRelation:
    """Concatenate result relations that share a schema and distribution."""
    if not pieces:
        raise MPCError("nothing to concatenate")
    schema = pieces[0].attrs
    parts: list[list[Row]] = [[] for _ in range(group.size)]
    for piece in pieces:
        if len(piece.parts) != group.size:
            raise MPCError("result piece has mismatched part count")
        rows_parts = piece.parts
        if piece.attrs != schema:
            rows_parts = [
                align_to_schema(p, piece.attrs, schema) for p in piece.parts
            ]
        for i, p in enumerate(rows_parts):
            parts[i].extend(p)
    return DistRelation(name, schema, parts, owned=True)
