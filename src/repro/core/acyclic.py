"""Output-optimal algorithm for arbitrary acyclic joins (paper Section 5.1).

Load O(IN/p + sqrt(IN * OUT)/p) — Theorem 7, an O(sqrt(OUT/IN))-factor
improvement over Yannakakis, matched by the Theorem 8 lower bound for
OUT <= p*IN.

Sketch: pick an internal join-tree node ``e0`` whose children
``e1, ..., ek`` are all leaves, and a threshold ``tau = sqrt(OUT/Nbeta)``.
Each child relation splits into heavy/light by the degree of its join
assignment ``s_i = e0 & e_i``; the join decomposes into ``2^k`` sub-joins:

* patterns containing a heavy child ``e_i*``: semi-join ``e0`` by the heavy
  side, fold everything else "by any order" (every intermediate stays below
  ``OUT/tau`` because each of its tuples extends through >= tau heavy
  partners), then one final output-optimal binary join;
* the all-light pattern further splits ``e0`` by the *product* of its
  children degrees: heavy ``e0`` tuples form a tall-flat join solved by the
  Section 3.2 instance-optimal algorithm; light ``e0`` tuples produce an
  intermediate of size <= Nbeta * tau that replaces ``e0`` in a recursion
  on the rest of the join tree.
"""

from __future__ import annotations

import math
from itertools import product as iter_product
from typing import Any, Sequence

from repro.core.aggregates import mpc_count
from repro.core.binary_join import binary_join
from repro.core.common import align_to_schema, canonical_attrs, concat_distrels
from repro.core.rhierarchical import rhierarchical_join
from repro.data.relation import Row, project_row
from repro.errors import QueryError
from repro.mpc.dangling import reduce_instance, remove_dangling
from repro.mpc.distrel import DistRelation
from repro.mpc.group import Group
from repro.mpc.primitives import (
    attach_degrees,
    count_by_key,
    multi_search,
    search_rows,
    semi_join,
)
from repro.mpc.substrate import key_encoder
from repro.query.hypergraph import Hypergraph, join_tree

__all__ = ["acyclic_join"]


def acyclic_join(
    group: Group,
    query: Hypergraph,
    rels: dict[str, DistRelation],
    label: str = "acyclic",
    out_size: int | None = None,
) -> DistRelation:
    """Compute an acyclic join with output-optimal load (Theorem 7).

    Args:
        group: Server group (size p).
        query: An acyclic hypergraph.
        rels: Distributed relations (payload columns allowed).
        out_size: Skip the OUT computation if the caller already knows it.

    Returns:
        Join results in canonical schema order.
    """
    if not query.is_acyclic():
        raise QueryError(f"{query.name} is cyclic")
    working = remove_dangling(group, query, rels, f"{label}/dangling")
    wq, working = reduce_instance(group, query, working, f"{label}/reduce")
    if out_size is None:
        out_size = mpc_count(group, wq, working, f"{label}/out")
    schema = canonical_attrs([working[n].attrs for n in wq.edge_names])
    if out_size == 0:
        return DistRelation("result", schema, [[] for _ in range(group.size)])
    return _solve(group, wq, working, out_size, label, depth=0)


# ----------------------------------------------------------------------
def _solve(
    group: Group,
    query: Hypergraph,
    rels: dict[str, DistRelation],
    out_size: int,
    label: str,
    depth: int,
) -> DistRelation:
    schema = canonical_attrs([rels[n].attrs for n in query.edge_names])
    names = list(query.edge_names)
    if len(names) == 1:
        only = rels[names[0]]
        parts = [align_to_schema(p, only.attrs, schema) for p in only.parts]
        return DistRelation("result", schema, parts)
    if len(names) == 2:
        joined = binary_join(
            group, rels[names[0]], rels[names[1]], f"{label}/d{depth}/bin"
        )
        parts = [align_to_schema(p, joined.attrs, schema) for p in joined.parts]
        return DistRelation("result", schema, parts)

    tree = join_tree(query)
    candidates = tree.internal_nodes_with_leaf_children()
    if not candidates:  # pragma: no cover - every tree with >= 2 nodes has one
        raise QueryError("no internal node with all-leaf children")
    # Prefer a non-root candidate (keeps E_bar non-trivial less often).
    e0 = sorted(candidates, key=lambda n: (-tree.depth(n), n))[0]
    children = tree.children[e0]
    e_bar = [n for n in names if n != e0 and n not in children]

    in_size = sum(rels[n].total_size() for n in names)
    n_alpha = sum(rels[n].total_size() for n in children)
    n_beta = max(1, in_size - n_alpha)
    tau = max(1.0, math.sqrt(out_size / n_beta))

    seps = {
        ei: tuple(sorted(query.attrs_of(e0) & query.attrs_of(ei)))
        for ei in children
    }

    # ---- Step 1: heavy/light split of every child relation. ------------
    # attach_degrees fuses the count + lookup into one sort pass; its run
    # is typically already cached from the OUT computation's fold over the
    # same separator.
    heavy: dict[str, DistRelation] = {}
    light: dict[str, DistRelation] = {}
    light_deg_tables: dict[str, list[list[tuple[Any, int]]]] = {}
    for ei in children:
        rel = rels[ei]
        withdeg = attach_degrees(
            group, rel, seps[ei], f"{label}/d{depth}/deg-{ei}"
        )
        h_parts, l_parts = [], []
        for part in withdeg:
            hp, lp = [], []
            for row, deg in part:
                if deg >= tau:
                    hp.append(row)
                else:
                    lp.append(row)
            h_parts.append(hp)
            l_parts.append(lp)
        heavy[ei] = DistRelation(ei, rel.attrs, h_parts, owned=True)
        light[ei] = DistRelation(ei, rel.attrs, l_parts, owned=True)
        light_deg_tables[ei] = count_by_key(
            group, light[ei], seps[ei], label=f"{label}/d{depth}/ldeg-{ei}"
        )

    fold_order = _fold_order(tree, e0, e_bar)
    pieces: list[DistRelation] = []

    # ---- Step 2: every pattern with at least one heavy child. ----------
    for pattern in iter_product(("H", "L"), repeat=len(children)):
        if "H" not in pattern:
            continue
        chosen = {
            ei: (heavy[ei] if tag == "H" else light[ei])
            for ei, tag in zip(children, pattern)
        }
        istar = children[pattern.index("H")]
        plabel = f"{label}/d{depth}/p{''.join(pattern)}"
        if any(chosen[ei].total_size() == 0 for ei in children):
            continue
        r0 = semi_join(group, rels[e0], chosen[istar], f"{plabel}/semi")
        acc = r0
        for ei in children:
            if ei != istar:
                acc = binary_join(group, acc, chosen[ei], f"{plabel}/fold-{ei}")
        for nb in fold_order:
            acc = binary_join(group, acc, rels[nb], f"{plabel}/bar-{nb}")
        final = binary_join(group, acc, chosen[istar], f"{plabel}/final")
        pieces.append(_align(final, schema))

    # ---- Step 3: the all-light pattern. ---------------------------------
    # Split R(e0) by the product of its children's light degrees.  The
    # first lookup rides r0's cached sorted run; the later ones thread the
    # rearranged intermediates through the generic multi-search (with r0's
    # fast key encoder — the keys are still r0 projections).
    r0 = rels[e0]
    prod_parts: list[list[tuple[Row, float]]] = [
        [(row, 1.0) for row in part] for part in r0.parts
    ]
    for idx, ei in enumerate(children):
        pos_sep = r0.positions(seps[ei])
        if idx == 0:
            found = search_rows(
                group, r0, seps[ei], light_deg_tables[ei],
                f"{label}/d{depth}/prod-{ei}", payloads=prod_parts,
            )
        else:
            x_parts = [
                [(project_row(row, pos_sep), (row, pr)) for row, pr in part]
                for part in prod_parts
            ]
            found = multi_search(
                group, x_parts, light_deg_tables[ei],
                f"{label}/d{depth}/prod-{ei}",
                encoder=key_encoder(r0, pos_sep),
            )
        prod_parts = [
            [
                (row, pr * (d if pk == key else 0))
                for key, (row, pr), pk, d in part
            ]
            for part in found
        ]
    h0_parts = [[r for r, pr in part if pr >= tau] for part in prod_parts]
    l0_parts = [[r for r, pr in part if pr < tau] for part in prod_parts]
    rh0 = DistRelation(e0, r0.attrs, h0_parts, owned=True)
    rl0 = DistRelation(e0, r0.attrs, l0_parts, owned=True)

    # (3.1) Heavy e0 tuples: a tall-flat join, solved instance-optimally.
    if rh0.total_size() > 0:
        plabel = f"{label}/d{depth}/H0"
        acc = rh0
        for nb in fold_order:
            acc = binary_join(group, acc, rels[nb], f"{plabel}/bar-{nb}")
        tf_rels: dict[str, DistRelation] = {"__r0": acc}
        for ei in children:
            tf_rels[ei] = binary_join(
                group, rh0, light[ei], f"{plabel}/wing-{ei}", name=ei
            )
        if all(r.total_size() > 0 for r in tf_rels.values()):
            tf_query = Hypergraph(
                {
                    n: [a for a in r.attrs if not a.startswith("#")]
                    for n, r in tf_rels.items()
                },
                name="tallflat",
            )
            tf_result = rhierarchical_join(
                group, tf_query, tf_rels, f"{plabel}/tf"
            )
            pieces.append(_align(tf_result, schema))

    # (3.2) Light e0 tuples: fold the light wings, recurse on the rest.
    if rl0.total_size() > 0:
        plabel = f"{label}/d{depth}/L0"
        acc = rl0
        for ei in children:
            acc = binary_join(group, acc, light[ei], f"{plabel}/fold-{ei}")
        if acc.total_size() > 0:
            if not e_bar:
                pieces.append(_align(acc, schema))
            else:
                res_edges = {
                    n: query.attrs_of(n) for n in e_bar
                }
                res_edges[e0] = frozenset(
                    a for a in acc.attrs if not a.startswith("#")
                )
                res_query = Hypergraph(res_edges, name=f"{query.name}-res")
                res_rels = {n: rels[n] for n in e_bar}
                res_rels[e0] = acc
                res_rels = remove_dangling(
                    group, res_query, res_rels, f"{plabel}/dangling"
                )
                sub = _solve(
                    group, res_query, res_rels, out_size,
                    f"{plabel}/rec", depth + 1,
                )
                pieces.append(_align(sub, schema))

    if not pieces:
        return DistRelation("result", schema, [[] for _ in range(group.size)])
    return concat_distrels("result", group, pieces)


def _align(rel: DistRelation, schema: tuple[str, ...]) -> DistRelation:
    parts = [align_to_schema(p, rel.attrs, schema) for p in rel.parts]
    return DistRelation("result", schema, parts)


def _fold_order(tree, e0: str, e_bar: Sequence[str]) -> list[str]:
    """BFS order over the remaining tree so each fold shares a separator."""
    remaining = set(e_bar)
    order: list[str] = []
    frontier = [e0]
    while frontier:
        nxt: list[str] = []
        for node in frontier:
            neighbors = list(tree.children[node])
            par = tree.parent[node]
            if par is not None:
                neighbors.append(par)
            for nb in neighbors:
                if nb in remaining:
                    remaining.remove(nb)
                    order.append(nb)
                    nxt.append(nb)
        frontier = nxt
    if remaining:  # pragma: no cover - tree connectivity guarantees coverage
        order.extend(sorted(remaining))
    return order
