"""Join-aggregate queries over annotated relations (paper Section 6).

* :func:`mpc_count` — ``|Q(R)|`` with linear load (Corollary 4): the
  primitive every output-sensitive algorithm calls first.
* :func:`mpc_group_by_count` — ``COUNT(*) GROUP BY`` for group attributes
  contained in one relation (the statistic behind Section 3.2's per-value
  subset sizes).
* :func:`aggregate_out` — ``LinearAggroYannakakis`` (Algorithm 1): removes
  all non-output attributes of a free-connex query with linear load,
  leaving an acyclic query over output attributes only (Lemma 3).
* :func:`annotated_reduce` — the reduce procedure that folds a contained
  relation's annotations into its container (Section 6 preprocessing).

Annotated distributed relations carry their annotation as a trailing
payload column named ``#w:<relation>``; all join machinery treats payload
columns as inert cargo, so Theorem 9 reduces to running the plain
output-optimal join on the residual query (see
:func:`repro.core.runner.mpc_join_aggregate`).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.data.relation import Row, project_row
from repro.errors import QueryError
from repro.mpc.distrel import DistRelation
from repro.mpc.group import Group
from repro.mpc.primitives import (
    coordinator_for,
    fold_by_key,
    global_sum,
    multi_search,
    sum_by_key,
)
from repro.mpc.substrate import key_encoder, pair_key_encoder
from repro.query.ghd import OUTPUT_EDGE, OutputJoinTree
from repro.query.hypergraph import Hypergraph, join_tree
from repro.semiring import Semiring

__all__ = [
    "mpc_count",
    "mpc_group_by_count",
    "mpc_subset_sizes",
    "aggregate_out",
    "aggregate_total",
    "annotated_reduce",
    "weight_column",
]


def weight_column(rel: DistRelation) -> str:
    """The (unique) annotation column of an annotated distributed relation."""
    cols = [a for a in rel.attrs if a.startswith("#w:")]
    if len(cols) != 1:
        raise QueryError(
            f"relation {rel.name!r} has {len(cols)} annotation columns; expected 1"
        )
    return cols[0]


def _fold_to_root(
    group: Group,
    query: Hypergraph,
    rels: dict[str, DistRelation],
    weights: dict[str, list[list[tuple[Row, Any]]]],
    plus: Callable[[Any, Any], Any],
    times: Callable[[Any, Any], Any],
    label: str,
    root: str | None = None,
) -> tuple[str, list[list[tuple[Row, Any]]]]:
    """Shared bottom-up fold: every tuple accumulates its subtree aggregate.

    ``weights[name]`` holds per-server ``(row, w)`` pairs.  Children are
    aggregated by their separator key (sum-by-key with ``plus``) and folded
    into their parent's weights with ``times``; parent rows with no match
    are dropped (they extend to nothing).  Returns the root's pairs.
    """
    tree = join_tree(query, root=root)
    working = {n: weights[n] for n in weights}
    modified: set[str] = set()
    for node in tree.bottom_up():
        par = tree.parent[node]
        if par is None:
            continue
        shared = tuple(sorted(query.attrs_of(node) & query.attrs_of(par)))
        child_rel = rels[node]
        if shared:
            pos_c = child_rel.positions(shared)
            if node not in modified:
                # Pristine leaf: its pairs still align with the relation's
                # parts, so the aggregation fuses onto the (cached) run.
                agg = fold_by_key(
                    group, child_rel, shared, plus=plus,
                    label=f"{label}/agg-{node}",
                    values=[[w for _row, w in part] for part in working[node]],
                )
            else:
                agg = sum_by_key(
                    group,
                    [
                        [(project_row(row, pos_c), w) for row, w in part]
                        for part in working[node]
                    ],
                    plus=plus,
                    label=f"{label}/agg-{node}",
                    encoder=key_encoder(child_rel, pos_c),
                )
            par_rel = rels[par]
            pos_p = par_rel.positions(shared)
            found = multi_search(
                group,
                [
                    [(project_row(row, pos_p), (row, w)) for row, w in part]
                    for part in working[par]
                ],
                agg,
                f"{label}/fold-{node}",
                encoder=pair_key_encoder(par_rel, pos_p, child_rel, pos_c),
            )
            working[par] = [
                [
                    (row, times(w, total))
                    for key, (row, w), pk, total in part
                    if pk == key
                ]
                for part in found
            ]
            modified.add(par)
        else:
            # Disconnected glue edge: the child contributes a scalar factor.
            partials = []
            for part in working[node]:
                acc = None
                for _row, w in part:
                    acc = w if acc is None else plus(acc, w)
                partials.append(acc)
            non_empty = [w for w in partials if w is not None]
            if not non_empty:
                working[par] = [[] for _ in range(group.size)]
                modified.add(par)
                continue
            total = non_empty[0]
            for w in non_empty[1:]:
                total = plus(total, w)
            group.broadcast([total], f"{label}/scalar-{node}")
            # Scaling in place keeps the pairs aligned with the relation's
            # parts, so the parent still counts as pristine for fusing.
            working[par] = [
                [(row, times(w, total)) for row, w in part]
                for part in working[par]
            ]
    return tree.root, working[tree.root]


def mpc_count(
    group: Group,
    query: Hypergraph,
    rels: dict[str, DistRelation],
    label: str = "count",
) -> int:
    """``|Q(R)|`` in O(1) rounds with linear load (paper Corollary 4)."""
    weights = {
        n: [[(row, 1) for row in part] for part in rels[n].parts] for n in rels
    }
    _root, pairs = _fold_to_root(
        group, query, rels, weights,
        plus=lambda a, b: a + b, times=lambda a, b: a * b,
        label=label,
    )
    return int(
        global_sum(group, [sum(w for _r, w in part) for part in pairs], f"{label}/total")
    )


def mpc_group_by_count(
    group: Group,
    query: Hypergraph,
    rels: dict[str, DistRelation],
    group_attrs: tuple[str, ...],
    label: str = "groupby",
) -> list[list[tuple[Row, int]]]:
    """``COUNT(*) GROUP BY group_attrs`` with linear load.

    Requires some relation to contain all the grouping attributes (true for
    every use in the paper's algorithms: grouping by a root attribute that
    all edges share).  Returns per-server ``(key, count)`` pairs, each key
    exactly once, counting only keys with a positive count.
    """
    root = None
    for n in query.edge_names:
        if set(group_attrs) <= query.attrs_of(n):
            root = n
            break
    if root is None:
        raise QueryError(
            f"no relation contains all group attributes {group_attrs}"
        )
    weights = {
        n: [[(row, 1) for row in part] for part in rels[n].parts] for n in rels
    }
    _root, pairs = _fold_to_root(
        group, query, rels, weights,
        plus=lambda a, b: a + b, times=lambda a, b: a * b,
        label=label, root=root,
    )
    pos = rels[root].positions(group_attrs)
    return sum_by_key(
        group,
        [
            [(project_row(row, pos), w) for row, w in part]
            for part in pairs
        ],
        label=f"{label}/final",
    )


def mpc_subset_sizes(
    group: Group,
    query: Hypergraph,
    rels: dict[str, DistRelation],
    label: str = "subsets",
) -> dict[frozenset[str], int]:
    """``|join of S|`` for every non-empty subset S of the edges.

    On dangling-free *reduced hierarchical* instances this equals
    ``|Q(R, S)|``: the Theorem 2 proof shows every combination in the
    S-join extends to a full result (tuples fix nested root paths in the
    attribute forest, and each unfixed subtree completes independently).
    That is exactly the statistic the Section 3.2 algorithm needs for the
    per-instance lower bound (eq. 2).  For non-hierarchical queries the
    S-join can overcount ``Q(R, S)`` (e.g. disconnected subsets of the
    line-3 join), which is fine for upper-bound budgets but not for
    evaluating eq. 2 exactly — use :func:`repro.theory.bounds.l_instance`
    for that.  ``2^m`` linear-load count queries; m is constant.
    """
    from itertools import combinations

    names = list(query.edge_names)
    sizes: dict[frozenset[str], int] = {}
    for k in range(1, len(names) + 1):
        for combo in combinations(names, k):
            sub_query = Hypergraph(
                {n: query.attrs_of(n) for n in combo}, name=f"{query.name}-S"
            )
            sizes[frozenset(combo)] = mpc_count(
                group, sub_query, {n: rels[n] for n in combo},
                f"{label}/{'+'.join(combo)}",
            )
    return sizes


def aggregate_total(
    group: Group,
    query: Hypergraph,
    rels: dict[str, DistRelation],
    semiring: Semiring,
    label: str = "agg_total",
) -> Any:
    """Total aggregation (``y = {}``): the semiring-valued scalar result."""
    weights = {}
    for n in rels:
        wcol = weight_column(rels[n])
        wpos = rels[n].positions((wcol,))[0]
        weights[n] = [
            [(row, row[wpos]) for row in part] for part in rels[n].parts
        ]
    _root, pairs = _fold_to_root(
        group, query, rels, weights,
        plus=semiring.plus, times=semiring.times, label=label,
    )
    partials = []
    for part in pairs:
        acc = semiring.zero
        for _row, w in part:
            acc = semiring.plus(acc, w)
        partials.append(acc)
    coord = coordinator_for(group, f"{label}/gather")
    gathered = group.gather([[w] for w in partials], f"{label}/gather", dst=coord)
    total = semiring.zero
    for w in gathered:
        total = semiring.plus(total, w)
    return total


def annotated_reduce(
    group: Group,
    query: Hypergraph,
    rels: dict[str, DistRelation],
    semiring: Semiring,
    label: str = "a_reduce",
) -> tuple[Hypergraph, dict[str, DistRelation]]:
    """Reduce procedure with annotation folding (Section 6 preprocessing).

    When edge ``e`` is contained in ``e'``, every tuple of ``R(e')`` matches
    exactly one tuple of ``R(e)`` (dangling-free, set semantics); the
    container's annotation is multiplied by the matched annotation and the
    contained relation is dropped.
    """
    reduced_query, witness = query.reduce()
    out = dict(rels)
    for removed, survivor in witness.items():
        child = out[removed]
        parent = out[survivor]
        key_attrs = tuple(sorted(query.attrs_of(removed)))
        c_wcol = weight_column(child)
        p_wcol = weight_column(parent)
        c_pos = child.positions(key_attrs)
        c_wpos = child.positions((c_wcol,))[0]
        p_pos = parent.positions(key_attrs)
        p_wpos = parent.positions((p_wcol,))[0]
        y_parts = [
            [(project_row(row, c_pos), row[c_wpos]) for row in part]
            for part in child.parts
        ]
        x_parts = [
            [(project_row(row, p_pos), row) for row in part]
            for part in parent.parts
        ]
        found = multi_search(
            group, x_parts, y_parts, f"{label}/{removed}",
            encoder=pair_key_encoder(parent, p_pos, child, c_pos),
        )
        new_parts = []
        for part in found:
            rows = []
            for key, row, pk, w in part:
                if pk == key:
                    row = list(row)
                    row[p_wpos] = semiring.times(row[p_wpos], w)
                    rows.append(tuple(row))
            new_parts.append(rows)
        out[survivor] = parent.with_parts(new_parts, owned=True)
        del out[removed]
    return reduced_query, out


def aggregate_out(
    group: Group,
    scaffold: OutputJoinTree,
    rels: dict[str, DistRelation],
    semiring: Semiring,
    label: str = "aggro",
) -> dict[str, DistRelation]:
    """``LinearAggroYannakakis`` (paper Algorithm 1 / Lemma 3).

    Walks the join tree of ``E + {y}`` bottom-up.  At each real node it
    aggregates away the non-output attributes topping out there
    (sum-by-key with the semiring's ``plus``) and folds the aggregate into
    its parent's annotations (multi-search + ``times``).  Nodes whose
    parent is the virtual output root become the residual relations.

    Returns:
        Residual relations keyed by edge name, each with schema
        ``sorted(e & y) + (weight column,)`` — the input of the downstream
        output-optimal join (Theorem 9).
    """
    query = scaffold.query
    y = scaffold.output_attrs
    tree = scaffold.tree
    if not y:
        raise QueryError("use aggregate_total for y = {}")

    working = dict(rels)
    schema_attrs: dict[str, tuple[str, ...]] = {
        n: tuple(sorted(query.attrs_of(n))) for n in query.edge_names
    }
    residual: dict[str, DistRelation] = {}
    # Scalar contributed by components sharing no output attribute
    # (disconnected children of the virtual root); None means "kills the
    # whole result" (an empty component), absent key means no factor.
    scalar_factor: list[Any] = []

    for node in [n for n in tree.bottom_up() if n != OUTPUT_EDGE]:
        rel = working[node]
        wcol = weight_column(rel)
        wpos = rel.positions((wcol,))[0]
        real_attrs = schema_attrs[node]
        to_agg = tuple(
            x for x in real_attrs
            if x not in y and scaffold.top_attr_node(x) == node
        )
        keep = tuple(a for a in real_attrs if a not in to_agg)
        parent = tree.parent[node]

        if keep:
            keep_pos = rel.positions(keep)
            agg = fold_by_key(
                group, rel, keep, plus=semiring.plus,
                label=f"{label}/agg-{node}",
                values=[
                    rel.column_values(i, wpos) for i in range(rel.num_parts)
                ],
            )
            agg_rel = DistRelation(
                node, keep + (wcol,), [[k + (w,) for k, w in part] for part in agg],
                owned=True,
            )
            if parent == OUTPUT_EDGE or parent is None:
                residual[node] = agg_rel
            else:
                prel = working[parent]
                p_wcol = weight_column(prel)
                p_wpos = prel.positions((p_wcol,))[0]
                p_pos = prel.positions(keep)
                found = multi_search(
                    group,
                    [
                        [(project_row(row, p_pos), row) for row in part]
                        for part in prel.parts
                    ],
                    agg,
                    f"{label}/fold-{node}",
                    encoder=pair_key_encoder(prel, p_pos, rel, keep_pos),
                )
                new_parts = []
                for part in found:
                    rows = []
                    for key, row, pk, w in part:
                        if pk == key:
                            row = list(row)
                            row[p_wpos] = semiring.times(row[p_wpos], w)
                            rows.append(tuple(row))
                    new_parts.append(rows)
                working[parent] = prel.with_parts(new_parts, owned=True)
        else:
            # Everything aggregated away: the node contributes a scalar.
            partials = []
            for part in rel.parts:
                acc = None
                for row in part:
                    w = row[wpos]
                    acc = w if acc is None else semiring.plus(acc, w)
                partials.append(acc)
            non_empty = [w for w in partials if w is not None]
            total = None
            if non_empty:
                total = non_empty[0]
                for w in non_empty[1:]:
                    total = semiring.plus(total, w)
            group.broadcast([total], f"{label}/scalar-{node}")
            if parent == OUTPUT_EDGE or parent is None:
                # Disconnected component with no output attributes: it
                # contributes a global scalar multiplier to every result.
                scalar_factor.append(total)
                continue
            prel = working[parent]
            p_wcol = weight_column(prel)
            p_wpos = prel.positions((p_wcol,))[0]
            if total is None:
                working[parent] = prel.with_parts(
                    [[] for _ in range(group.size)], owned=True
                )
            else:
                new_parts = []
                for part in prel.parts:
                    rows = []
                    for row in part:
                        row = list(row)
                        row[p_wpos] = semiring.times(row[p_wpos], total)
                        rows.append(tuple(row))
                    new_parts.append(rows)
                working[parent] = prel.with_parts(new_parts, owned=True)
    if not residual:
        raise QueryError("no residual relations produced; is y empty?")
    if scalar_factor:
        # Fold global scalars into one residual relation's annotations (an
        # empty component zeroes everything out).
        target = sorted(residual)[0]
        rel = residual[target]
        wcol = weight_column(rel)
        wpos = rel.positions((wcol,))[0]
        if any(w is None for w in scalar_factor):
            residual[target] = rel.with_parts(
                [[] for _ in range(group.size)], owned=True
            )
        else:
            factor = scalar_factor[0]
            for w in scalar_factor[1:]:
                factor = semiring.times(factor, w)
            new_parts = []
            for part in rel.parts:
                rows = []
                for row in part:
                    row = list(row)
                    row[wpos] = semiring.times(row[wpos], factor)
                    rows.append(tuple(row))
                new_parts.append(rows)
            residual[target] = rel.with_parts(new_parts, owned=True)
    return residual
