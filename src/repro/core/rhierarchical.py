"""The instance-optimal algorithm for r-hierarchical joins (Section 3.2).

Achieves load O(IN/p + L_instance(p, R)) — optimality ratio O(1), improving
BinHC's polylog ratio (Theorem 3).  Structure:

* Preprocessing: dangling-tuple removal + reduce, leaving a *hierarchical*
  dangling-free instance; then all ``2^m`` subset join sizes ``|Q(R, S)|``
  are computed with linear load (Corollary 4) to evaluate the per-instance
  lower bound (eq. 2) and fix the budget ``L``.
* Case 1 (attribute forest is a single tree, root ``x``): split
  ``dom(x)`` into light values (sub-instance fits one server; grouped by
  parallel-packing) and heavy values (each gets
  ``p_a = max_S |Q_x(R_a, S)| / L^{|S|}`` servers and recurses on the
  residual query).
* Case 2 (forest with k trees = Cartesian product of k sub-joins): a
  ``p_1 x ... x p_k`` hypercube; each grid line along dimension ``i``
  computes sub-join ``i`` (recursively), every grid cell emits the product
  of its k line results.  Redundant computation, zero redundant output —
  the trick that avoids materializing intermediate Cartesian factors.

Grid lines are simulated once per dimension via group *families*
(:class:`~repro.mpc.group.Group` with multiple members): the replicas are
deterministic copies, so their load is tallied without re-execution.
"""

from __future__ import annotations

import math
from typing import Any

from repro.core.aggregates import mpc_group_by_count, mpc_subset_sizes
from repro.core.common import (
    align_to_schema,
    canonical_attrs,
    local_tree_join,
)
from repro.data.relation import Row
from repro.errors import QueryError
from repro.mpc.dangling import reduce_instance, remove_dangling
from repro.mpc.distrel import DistRelation
from repro.mpc.group import Group
from repro.mpc.hashing import stable_hash
from repro.mpc.packing import parallel_packing
from repro.mpc.primitives import coordinator_for, multi_search, sum_by_key
from repro.query.classify import is_hierarchical
from repro.query.forests import AttributeForest, attribute_forest
from repro.query.hypergraph import Hypergraph

__all__ = ["rhierarchical_join", "instance_lower_bound_from_sizes"]


def instance_lower_bound_from_sizes(
    subset_sizes: dict[frozenset[str], int], p: int
) -> float:
    """``L_instance(p, R)`` (eq. 2) from the subset join sizes."""
    best = 0.0
    for s, cnt in subset_sizes.items():
        if cnt > 0:
            best = max(best, (cnt / p) ** (1.0 / len(s)))
    return best


def rhierarchical_join(
    group: Group,
    query: Hypergraph,
    rels: dict[str, DistRelation],
    label: str = "rhier",
    budget: float | None = None,
    preprocess: bool = True,
) -> DistRelation:
    """Compute an r-hierarchical join with instance-optimal load.

    Args:
        group: The server group (size p).
        query: An r-hierarchical hypergraph.
        rels: Distributed relations (payload columns allowed).
        budget: Override the load budget L (defaults to
            ``IN/p + L_instance(p, R)`` computed on the fly).
        preprocess: Run dangling removal + reduce first.  Callers that
            already preprocessed (e.g. the acyclic solver's tall-flat
            sub-join) can skip it.

    Returns:
        Join results in canonical schema order over the *reduced* relations'
        columns (reduced-away relations contribute no private columns —
        they have none, being contained in survivors).
    """
    working = dict(rels)
    wq = query
    if preprocess:
        working = remove_dangling(group, wq, working, f"{label}/dangling")
        wq, working = reduce_instance(group, wq, working, f"{label}/reduce")
    else:
        wq, working_map = wq.reduce()
        if working_map:
            raise QueryError(
                "preprocess=False requires an already-reduced query"
            )
    if not is_hierarchical(wq):
        raise QueryError(f"{query.name} is not r-hierarchical")

    if budget is None:
        in_size = sum(working[n].total_size() for n in working)
        sizes = mpc_subset_sizes(group, wq, working, f"{label}/stats")
        budget = max(
            1.0,
            in_size / group.size,
            instance_lower_bound_from_sizes(sizes, group.size),
        )
    return _solve(group, wq, working, float(budget), label, depth=0)


# ----------------------------------------------------------------------
# Recursion
# ----------------------------------------------------------------------

def _solve(
    group: Group,
    query: Hypergraph,
    rels: dict[str, DistRelation],
    budget: float,
    label: str,
    depth: int,
) -> DistRelation:
    schema = canonical_attrs([rels[n].attrs for n in query.edge_names])
    if len(query.edge_names) == 1:
        only = rels[query.edge_names[0]]
        parts = [align_to_schema(p, only.attrs, schema) for p in only.parts]
        return DistRelation("result", schema, parts)
    forest = attribute_forest(query)
    if len(forest.roots) == 1:
        return _case_tree(group, query, rels, forest, budget, label, depth, schema)
    return _case_forest(group, query, rels, forest, budget, label, depth, schema)


def _case_tree(
    group: Group,
    query: Hypergraph,
    rels: dict[str, DistRelation],
    forest: AttributeForest,
    budget: float,
    label: str,
    depth: int,
    schema: tuple[str, ...],
) -> DistRelation:
    """Case 1: single attribute tree rooted at ``x`` shared by every edge."""
    x = forest.roots[0]
    g = group.size
    names = list(query.edge_names)

    # IN_a for every root value a (one sum-by-key over all relations).
    combined: list[list[tuple[Any, int]]] = [[] for _ in range(g)]
    xpos = {n: rels[n].positions((x,))[0] for n in names}
    for n in names:
        for i, part in enumerate(rels[n].parts):
            combined[i].extend((row[xpos[n]], 1) for row in part)
    ina_parts = sum_by_key(group, combined, label=f"{label}/d{depth}/ina")

    light_parts: list[list[tuple[Any, float]]] = []
    heavy_parts: list[list[tuple[Any, int]]] = []
    for part in ina_parts:
        lp, hp = [], []
        for a, cnt in part:
            if cnt <= budget:
                lp.append((a, max(cnt / budget, 1e-9)))
            else:
                hp.append((a, cnt))
        light_parts.append(lp)
        heavy_parts.append(hp)

    assignments, _ = parallel_packing(group, light_parts, f"{label}/d{depth}/pack")

    # Heavy values: subset join sizes per value via COUNT GROUP BY x.
    coord = coordinator_for(group, f"{label}/d{depth}")
    heavy_list = group.gather(
        heavy_parts, f"{label}/d{depth}/heavy-gather", dst=coord
    )
    heavy_values = {a for a, _cnt in heavy_list}
    group.broadcast(
        sorted(heavy_values, key=repr), f"{label}/d{depth}/heavy-bcast", src=coord
    )

    heavy_counts: dict[Any, float] = {a: 1.0 for a in heavy_values}
    if heavy_values:
        from itertools import combinations

        for k in range(1, len(names) + 1):
            for combo in combinations(names, k):
                sub_query = Hypergraph(
                    {n: query.attrs_of(n) for n in combo}, name="S"
                )
                counts = mpc_group_by_count(
                    group, sub_query, {n: rels[n] for n in combo}, (x,),
                    f"{label}/d{depth}/gb",
                )
                entries = group.gather(
                    [
                        [(key[0], cnt) for key, cnt in part if key[0] in heavy_values]
                        for part in counts
                    ],
                    f"{label}/d{depth}/gb-gather",
                    dst=coord,
                )
                # The count for S restricted to value a is |Q_x(R_a, S)|:
                # the per-value residual-subset size of the recursion target.
                for a, cnt in entries:
                    demand = cnt / (budget ** k)
                    if demand > heavy_counts[a]:
                        heavy_counts[a] = demand

    heavy_desc: dict[Any, tuple[int, int]] = {}
    cursor = 0
    for a in sorted(heavy_values, key=repr):
        p_a = max(1, min(g, math.ceil(heavy_counts[a])))
        heavy_desc[a] = (cursor, p_a)
        cursor += p_a
    group.broadcast(list(heavy_desc.items()), f"{label}/d{depth}/alloc", src=coord)

    # Route every tuple: light to its pack group's server, heavy to its
    # value's subgroup (even by row hash).
    outboxes: list[list[tuple[int, Any]]] = [[] for _ in range(g)]
    for n in names:
        pos = xpos[n]
        x_parts = [
            [(row[pos], row) for row in part] for part in rels[n].parts
        ]
        found = multi_search(
            group, x_parts, assignments, f"{label}/d{depth}/route-{n}"
        )
        for src, part in enumerate(found):
            for a, row, pk, gid in part:
                if pk == a:
                    outboxes[src].append((gid % g, (("L", gid), n, row)))
                elif a in heavy_desc:
                    start, p_a = heavy_desc[a]
                    idx = stable_hash(row, salt=depth) % p_a
                    outboxes[src].append(
                        (((start + idx) % g), (("H", a), n, row))
                    )
                # Neither light nor heavy cannot happen: every value of x
                # present in the (dangling-free) instance has IN_a >= 1.
    inboxes = group.exchange(outboxes, f"{label}/d{depth}/shuffle")

    result_parts: list[list[Row]] = [[] for _ in range(g)]

    # Light sub-instances: solve locally on each pack server.
    schemas = {n: rels[n].attrs for n in names}
    for server, inbox in enumerate(inboxes):
        by_gid: dict[Any, dict[str, list[Row]]] = {}
        for tag, n, row in inbox:
            if tag[0] != "L":
                continue
            by_gid.setdefault(tag[1], {m: [] for m in names})[n].append(row)
        for gid, rows in by_gid.items():
            if any(not rows[n] for n in names):
                continue
            _attrs, joined = local_tree_join(query, schemas, rows)
            result_parts[server].extend(align_to_schema(joined, _attrs, schema))

    # Heavy values: recurse on the residual query with allocated servers.
    if heavy_desc:
        residual_query = Hypergraph(
            {n: query.attrs_of(n) - {x} for n in names},
            name=f"{query.name}-res",
        )
        for a, (start, p_a) in heavy_desc.items():
            indices = [(start + i) % g for i in range(p_a)]
            subgroup = group.subgroup(indices)
            sub_rels = {}
            for n in names:
                parts = [
                    [
                        row
                        for tag, m, row in inboxes[indices[i]]
                        if tag == ("H", a) and m == n
                    ]
                    for i in range(p_a)
                ]
                sub_rels[n] = DistRelation(n, rels[n].attrs, parts, owned=True)
            sub_result = _solve(
                subgroup, residual_query, sub_rels, budget,
                f"{label}/d{depth}/h", depth + 1,
            )
            aligned = [
                align_to_schema(p, sub_result.attrs, schema)
                for p in sub_result.parts
            ]
            for i, rows in enumerate(aligned):
                result_parts[indices[i]].extend(rows)

    return DistRelation("result", schema, result_parts, owned=True)


def _case_forest(
    group: Group,
    query: Hypergraph,
    rels: dict[str, DistRelation],
    forest: AttributeForest,
    budget: float,
    label: str,
    depth: int,
    schema: tuple[str, ...],
) -> DistRelation:
    """Case 2: k trees — a Cartesian product over a server hypercube."""
    from repro.core.aggregates import mpc_count

    g = group.size
    roots = forest.roots
    k = len(roots)
    tree_edges = [sorted(forest.tree_edges(r)) for r in roots]

    # Per-tree server shares p_i.
    dims: list[int] = []
    for edges in tree_edges:
        in_i = sum(rels[n].total_size() for n in edges)
        if in_i <= budget:
            dims.append(1)
            continue
        from itertools import combinations

        demand = 1.0
        for kk in range(1, len(edges) + 1):
            for combo in combinations(edges, kk):
                sub_query = Hypergraph(
                    {n: query.attrs_of(n) for n in combo}, name="S"
                )
                cnt = mpc_count(
                    group, sub_query, {n: rels[n] for n in combo},
                    f"{label}/d{depth}/cnt",
                )
                demand = max(demand, cnt / (budget ** kk))
        dims.append(max(1, math.ceil(demand)))

    # Clamp the grid into the group.
    while math.prod(dims) > g:
        i = max(range(k), key=lambda j: dims[j])
        if dims[i] == 1:
            break
        dims[i] -= 1
    total = math.prod(dims)

    strides = [0] * k
    acc = 1
    for i in reversed(range(k)):
        strides[i] = acc
        acc *= dims[i]

    # Route each tree's relations into the grid with replication along the
    # other dimensions (the HyperCube input distribution).
    grid = group.subgroup(list(range(total)))
    outboxes: list[list[tuple[int, Any]]] = [[] for _ in range(g)]

    def cells_with_coord(i: int, v: int) -> list[int]:
        combos = [[]]
        for j in range(k):
            if j == i:
                combos = [c + [v] for c in combos]
            else:
                combos = [c + [w] for c in combos for w in range(dims[j])]
        return [sum(c * s for c, s in zip(combo, strides)) for combo in combos]

    cell_cache: dict[tuple[int, int], list[int]] = {}
    for i, edges in enumerate(tree_edges):
        for n in edges:
            for src, part in enumerate(rels[n].parts):
                for row in part:
                    chunk = stable_hash(row, salt=depth * 31 + i) % dims[i]
                    key = (i, chunk)
                    if key not in cell_cache:
                        cell_cache[key] = cells_with_coord(i, chunk)
                    for cell in cell_cache[key]:
                        outboxes[src].append((cell, (i, n, row)))
    # Deliver on the full group (grid cells are the first `total` locals).
    inboxes = group.exchange(outboxes, f"{label}/d{depth}/grid")

    # Solve each tree once on its line family.
    families = group.grid_line_groups(dims)
    results: list[DistRelation] = []
    for i, edges in enumerate(tree_edges):
        sub_query = Hypergraph(
            {n: query.attrs_of(n) for n in edges}, name=f"{query.name}-t{i}"
        )
        parts_per_line: dict[str, list[list[Row]]] = {n: [] for n in edges}
        for v in range(dims[i]):
            cell = v * strides[i]  # representative line: other coords 0
            for n in edges:
                parts_per_line[n].append(
                    [row for ti, m, row in inboxes[cell] if ti == i and m == n]
                )
        sub_rels = {
            n: DistRelation(n, rels[n].attrs, parts_per_line[n], owned=True)
            for n in edges
        }
        results.append(
            _solve(
                families[i], sub_query, sub_rels, budget,
                f"{label}/d{depth}/t{i}", depth + 1,
            )
        )

    # Each grid cell emits the product of its line results.
    result_parts: list[list[Row]] = [[] for _ in range(g)]
    for cell in range(total):
        coords = []
        rem = cell
        for i in range(k):
            coords.append(rem // strides[i])
            rem %= strides[i]
        pieces = [results[i].parts[coords[i]] for i in range(k)]
        if any(not piece for piece in pieces):
            continue
        acc_rows: list[Row] = [()]
        for i, piece in enumerate(pieces):
            acc_rows = [base + r for base in acc_rows for r in piece]
        joined_attrs = tuple(
            a for i in range(k) for a in results[i].attrs
        )
        result_parts[cell].extend(align_to_schema(acc_rows, joined_attrs, schema))
    return DistRelation("result", schema, result_parts)
