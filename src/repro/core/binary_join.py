"""The output-optimal binary join: load O(IN/p + sqrt(OUT/p)).

The optimal equi-join of [8, 18] that the paper uses as its pairwise-join
subroutine everywhere (Sections 1.3, 4, 5).  Strategy:

1. Compute per-key degrees on both sides (sum-by-key) and merge them
   (multi-search), giving ``OUT_v = d1(v) * d2(v)`` per join value.
2. A key is *light* if it fits one server's budget
   (``d1+d2 <= IN/p`` and ``OUT_v <= OUT/p``): light keys are grouped with
   parallel-packing so each server receives O(IN/p) input and produces
   O(OUT/p) output.
3. A *heavy* key gets its own rectangle of ``a x b`` servers with
   ``a*b ~ p * OUT_v / OUT``: its R1 tuples split into ``a`` balanced chunks
   (multi-numbering), its R2 tuples into ``b``, chunk ``i`` of R1 meets
   chunk ``j`` of R2 on exactly one server, so each server receives
   ``d1/a + d2/b = O(sqrt(OUT_v / p_v)) = O(sqrt(OUT/p))`` tuples.

Each result pair is produced on exactly one server (no duplicate emission).
"""

from __future__ import annotations

import math
from typing import Any

from repro.data.relation import Row, project_row
from repro.mpc.distrel import DistRelation
from repro.mpc.group import Group
from repro.mpc.primitives import (
    coordinator_for,
    count_by_key,
    global_sum,
    multi_search,
    number_rows,
    search_rows,
)

__all__ = ["binary_join"]


def binary_join(
    group: Group,
    r1: DistRelation,
    r2: DistRelation,
    label: str = "binjoin",
    name: str | None = None,
) -> DistRelation:
    """Natural join of two distributed relations, output-optimally.

    The output schema is ``r1.attrs`` followed by ``r2``'s remaining
    attributes.  Payload (annotation) columns never collide, so they ride
    along untouched.

    Falls back to the two-relation HyperCube when the schemas share no
    attributes (a Cartesian product).
    """
    out_name = name or f"{r1.name}*{r2.name}"
    shared = tuple(sorted(set(r1.attrs) & set(r2.attrs)))
    if not shared:
        from repro.core.hypercube import hypercube_cartesian

        return hypercube_cartesian(group, [r1, r2], label=f"{label}/cart", name=out_name)

    p = group.size
    extra2 = tuple(a for a in r2.attrs if a not in set(r1.attrs))
    out_attrs = r1.attrs + extra2
    pos1 = r1.positions(shared)
    pos2 = r2.positions(shared)
    pos2_extra = r2.positions(extra2)

    # --- Step 1: per-key degrees and output statistics. -----------------
    # One sorted run per relation (cached on it) backs the degree count
    # here, the light lookup, and the heavy numbering below.
    d1 = count_by_key(group, r1, shared, f"{label}/deg1")
    d2 = count_by_key(group, r2, shared, f"{label}/deg2")
    merged = multi_search(
        group,
        [[(k, c) for k, c in part] for part in d1],
        [[(k, c) for k, c in part] for part in d2],
        f"{label}/degmerge",
    )
    # Keys present in both sides: (key, d1, d2).
    stats_parts: list[list[tuple[Any, int, int]]] = [
        [(k, c1, c2) for k, c1, pk, c2 in part if pk == k] for part in merged
    ]
    out_total = global_sum(
        group,
        [sum(c1 * c2 for _k, c1, c2 in part) for part in stats_parts],
        f"{label}/out",
    )
    in_total = r1.total_size() + r2.total_size()
    if out_total == 0:
        return DistRelation(out_name, out_attrs, [[] for _ in range(p)])

    l_in = max(1.0, 2.0 * in_total / p)
    l_out = max(1.0, out_total / p)

    # --- Step 2: classify keys; plan heavy rectangles. -------------------
    def weight(c1: int, c2: int) -> float:
        return max((c1 + c2) / l_in, (c1 * c2) / l_out)

    light_parts: list[list[tuple[Any, float]]] = []
    heavy_parts: list[list[tuple[Any, int, int]]] = []
    for part in stats_parts:
        lp: list[tuple[Any, float]] = []
        hp: list[tuple[Any, int, int]] = []
        for k, c1, c2 in part:
            w = weight(c1, c2)
            if w <= 1.0:
                lp.append((k, max(w, 1e-9)))
            else:
                hp.append((k, c1, c2))
        light_parts.append(lp)
        heavy_parts.append(hp)

    from repro.mpc.packing import parallel_packing

    assignments, _n_groups = parallel_packing(group, light_parts, f"{label}/pack")

    # Heavy rectangles: key -> (start, a, b); start indexes a virtual server
    # span mapped onto physical servers modulo p.
    coord = coordinator_for(group, label)
    heavy_all = group.gather(
        [list(hp) for hp in heavy_parts], f"{label}/heavy-gather", dst=coord
    )
    heavy_desc: dict[Any, tuple[int, int, int]] = {}
    cursor = 0
    for k, c1, c2 in sorted(heavy_all, key=lambda t: repr(t[0])):
        p_v = max(1, math.ceil((c1 * c2) / l_out))
        a = max(1, min(p_v, round(math.sqrt(p_v * c1 / max(1, c2)))))
        b = max(1, math.ceil(p_v / a))
        # Input-side guarantee: chunks no bigger than the input budget.
        a = max(a, math.ceil(c1 / l_in))
        b = max(b, math.ceil(c2 / l_in))
        heavy_desc[k] = (cursor, a, b)
        cursor += a * b
    group.broadcast(list(heavy_desc.items()), f"{label}/heavy-bcast", src=coord)

    # --- Step 3: route tuples to cells. ----------------------------------
    # Light: key -> group id (predecessor search against the assignments,
    # riding the relation's cached sorted run).
    def lookup_light(rel: DistRelation) -> list[list[tuple[Row, int]]]:
        found = search_rows(
            group, rel, shared, assignments, f"{label}/light-lookup"
        )
        return [
            [(row, gid) for key, row, pk, gid in part if pk == key]
            for part in found
        ]

    light1 = lookup_light(r1)
    light2 = lookup_light(r2)

    # Heavy: chunk indices via per-key numbering restricted to heavy keys
    # (fused onto the same run; numbering is consecutive within the subset).
    def heavy_rows(rel: DistRelation) -> list[list[tuple[Any, Row, int]]]:
        return number_rows(
            group, rel, shared, f"{label}/heavy-number", only_keys=heavy_desc
        )

    heavy1 = heavy_rows(r1)
    heavy2 = heavy_rows(r2)

    # One physical routing step delivers every cell message.
    outboxes: list[list[tuple[int, Any]]] = [[] for _ in range(p)]
    for src in range(p):
        for row, gid in light1[src]:
            outboxes[src].append((gid % p, (("L", gid), 1, row)))
        for row, gid in light2[src]:
            outboxes[src].append((gid % p, (("L", gid), 2, row)))
        for k, row, num in heavy1[src]:
            start, a, b = heavy_desc[k]
            i = (num - 1) % a
            for j in range(b):
                cell = start + i * b + j
                outboxes[src].append((cell % p, (("H", k, i, j), 1, row)))
        for k, row, num in heavy2[src]:
            start, a, b = heavy_desc[k]
            j = (num - 1) % b
            for i in range(a):
                cell = start + i * b + j
                outboxes[src].append((cell % p, (("H", k, i, j), 2, row)))
    inboxes = group.exchange(outboxes, f"{label}/shuffle")

    # --- Step 4: local cell joins (emission is free). --------------------
    parts: list[list[Row]] = []
    for inbox in inboxes:
        cells: dict[Any, tuple[list[Row], list[Row]]] = {}
        for cell_id, side, row in inbox:
            sides = cells.setdefault(cell_id, ([], []))
            sides[side - 1].append(row)
        out: list[Row] = []
        for rows1, rows2 in cells.values():
            if not rows1 or not rows2:
                continue
            index: dict[Row, list[Row]] = {}
            for row2 in rows2:
                index.setdefault(project_row(row2, pos2), []).append(
                    project_row(row2, pos2_extra)
                )
            for row1 in rows1:
                for extra in index.get(project_row(row1, pos1), ()):
                    out.append(row1 + extra)
        parts.append(out)
    return DistRelation(out_name, out_attrs, parts, owned=True)
