"""The paper's algorithms: instance/output-optimal MPC joins.

Modules map to paper sections: :mod:`~repro.core.binhc` (3.1),
:mod:`~repro.core.rhierarchical` (3.2), :mod:`~repro.core.line3` (4.2),
:mod:`~repro.core.acyclic` (5.1), :mod:`~repro.core.aggregates` (6),
with the baselines :mod:`~repro.core.yannakakis` (4.1),
:mod:`~repro.core.binary_join`, :mod:`~repro.core.hypercube`, and
:mod:`~repro.core.wcoj` ([19, 24] comparators).
"""

from repro.core.acyclic import acyclic_join
from repro.core.aggregates import (
    aggregate_out,
    aggregate_total,
    annotated_reduce,
    mpc_count,
    mpc_group_by_count,
    mpc_subset_sizes,
)
from repro.core.binary_join import binary_join
from repro.core.binhc import binhc_join
from repro.core.common import JoinResult
from repro.core.hypercube import (
    hypercube_cartesian,
    hypercube_join,
    optimal_cartesian_shares,
    optimal_join_shares,
)
from repro.core.line3 import is_line3, line3_join
from repro.core.planner import (
    PlanChoice,
    best_yannakakis_plan,
    enumerate_fold_orders,
    plan_quality,
    price_fold_orders,
)
from repro.core.rhierarchical import rhierarchical_join
from repro.core.runner import (
    ALGORITHMS,
    AggregateResult,
    auto_algorithm,
    mpc_join,
    mpc_join_aggregate,
    mpc_join_project,
    mpc_output_size,
    run_aggregate_algorithm,
    run_join_algorithm,
)
from repro.core.wcoj import line3_worst_case, triangle_worst_case
from repro.core.yannakakis import default_plan, left_deep_plan, yannakakis_mpc

__all__ = [
    "JoinResult",
    "AggregateResult",
    "ALGORITHMS",
    "mpc_join",
    "mpc_join_aggregate",
    "mpc_join_project",
    "mpc_output_size",
    "auto_algorithm",
    "run_join_algorithm",
    "run_aggregate_algorithm",
    "binary_join",
    "hypercube_cartesian",
    "hypercube_join",
    "optimal_cartesian_shares",
    "optimal_join_shares",
    "binhc_join",
    "yannakakis_mpc",
    "default_plan",
    "left_deep_plan",
    "rhierarchical_join",
    "is_line3",
    "line3_join",
    "acyclic_join",
    "line3_worst_case",
    "triangle_worst_case",
    "mpc_count",
    "mpc_group_by_count",
    "mpc_subset_sizes",
    "aggregate_out",
    "aggregate_total",
    "annotated_reduce",
    "PlanChoice",
    "best_yannakakis_plan",
    "enumerate_fold_orders",
    "plan_quality",
    "price_fold_orders",
]
