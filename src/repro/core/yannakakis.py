"""The MPC Yannakakis algorithm: load O(IN/p + OUT/p) (paper Section 4.1).

Full reducer (dangling-tuple removal) followed by pairwise output-optimal
binary joins.  In the RAM model the join order is irrelevant; in MPC it is
not — intermediate results are *shuffled* into the next join, so an
OUT-sized intermediate costs OUT/p load.  The plan parameter exposes that
choice, which the Figure 3 experiment exploits.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.core.binary_join import binary_join
from repro.core.common import canonical_attrs, align_to_schema
from repro.errors import QueryError
from repro.mpc.dangling import remove_dangling
from repro.mpc.distrel import DistRelation
from repro.mpc.group import Group
from repro.query.hypergraph import Hypergraph, join_tree

__all__ = ["yannakakis_mpc", "Plan", "default_plan", "left_deep_plan"]

#: A join plan: either a relation name (leaf) or a pair of sub-plans.
Plan = Union[str, tuple]


def default_plan(query: Hypergraph) -> Plan:
    """Fold leaves into parents along a join tree (bottom-up)."""
    tree = join_tree(query)

    def build(node: str) -> Plan:
        plan: Plan = node
        for child in tree.children[node]:
            plan = (plan, build(child))
        return plan

    return build(tree.root)


def left_deep_plan(order: Sequence[str]) -> Plan:
    """A left-deep plan joining relations in the given order."""
    if not order:
        raise QueryError("empty plan order")
    plan: Plan = order[0]
    for name in order[1:]:
        plan = (plan, name)
    return plan


def _plan_leaves(plan: Plan) -> list[str]:
    if isinstance(plan, str):
        return [plan]
    left, right = plan
    return _plan_leaves(left) + _plan_leaves(right)


def yannakakis_mpc(
    group: Group,
    query: Hypergraph,
    rels: dict[str, DistRelation],
    plan: Plan | None = None,
    label: str = "yannakakis",
    reduce_first: bool = True,
    name: str = "result",
) -> DistRelation:
    """Compute an acyclic join with the Yannakakis strategy.

    Args:
        group: Server group to run on.
        query: An acyclic hypergraph.
        rels: Distributed relations (may carry payload columns).
        plan: Pairwise join order; defaults to a join-tree fold.  The plan
            must mention every relation exactly once.
        reduce_first: Run the full reducer first (the paper's algorithm
            always does; disable only to demonstrate its necessity).

    Returns:
        The join results in canonical schema order.
    """
    if plan is None:
        plan = default_plan(query)
    leaves = _plan_leaves(plan)
    if sorted(leaves) != sorted(query.edge_names):
        raise QueryError(
            f"plan relations {sorted(leaves)} != query relations "
            f"{sorted(query.edge_names)}"
        )
    working = dict(rels)
    if reduce_first:
        working = remove_dangling(group, query, working, f"{label}/reduce")

    counter = [0]

    def run(node: Plan) -> DistRelation:
        if isinstance(node, str):
            return working[node]
        left, right = node
        lrel = run(left)
        rrel = run(right)
        counter[0] += 1
        return binary_join(
            group, lrel, rrel, label=f"{label}/join{counter[0]}"
        )

    result = run(plan)
    target = canonical_attrs([result.attrs])
    parts = [align_to_schema(p, result.attrs, target) for p in result.parts]
    return DistRelation(name, target, parts)
