"""The output-optimal line-3 join algorithm (paper Section 4.2, Theorem 5).

``R1(A,B) join R2(B,C) join R3(C,D)`` with load O(IN/p + sqrt(IN*OUT)/p):

1. Remove dangling tuples; compute OUT (both MPC primitives).
2. ``tau = sqrt(OUT/IN)``.  A value ``b in dom(B)`` is *heavy* if its degree
   in ``R1`` exceeds ``tau``; split ``R1`` and ``R2`` accordingly.
3. Two sub-joins with opposite join orders:

   * ``Q1 = R1^H join (R2^H join R3)`` — the intermediate has size
     <= OUT/tau since each of its results meets >= tau heavy R1 partners;
   * ``Q2 = (R1^L join R2^L) join R3`` — the intermediate has size
     <= IN*tau since light B values bound the fan-out.

   Balancing the two at ``tau = sqrt(OUT/IN)`` gives the theorem.

The module is a faithful specialization of Section 4.2 (the general
machinery lives in :mod:`repro.core.acyclic`); keeping it separate lets the
benchmarks reproduce the paper's exposition directly.
"""

from __future__ import annotations

import math
from repro.core.aggregates import mpc_count
from repro.core.binary_join import binary_join
from repro.core.common import align_to_schema, canonical_attrs, concat_distrels
from repro.errors import QueryError
from repro.mpc.dangling import remove_dangling
from repro.mpc.distrel import DistRelation
from repro.mpc.group import Group
from repro.mpc.primitives import attach_degrees, count_by_key
from repro.query.hypergraph import Hypergraph

__all__ = ["is_line3", "line3_join"]


def is_line3(query: Hypergraph) -> tuple[str, str, str] | None:
    """Match the line-3 shape; return edge names in path order."""
    if len(query.edge_names) != 3:
        return None
    names = list(query.edge_names)
    # The middle edge shares an attribute with both others.
    for mid in names:
        others = [n for n in names if n != mid]
        a, b = others
        sa = query.attrs_of(mid) & query.attrs_of(a)
        sb = query.attrs_of(mid) & query.attrs_of(b)
        if (
            len(query.attrs_of(mid)) == 2
            and len(sa) == 1
            and len(sb) == 1
            and sa != sb
            and not (query.attrs_of(a) & query.attrs_of(b))
        ):
            return a, mid, b
    return None


def _is_line3(query: Hypergraph) -> tuple[str, str, str] | None:
    """Deprecated alias of :func:`is_line3` (pre-1.1 private name)."""
    import warnings

    warnings.warn(
        "_is_line3 is deprecated; use repro.core.line3.is_line3",
        DeprecationWarning,
        stacklevel=2,
    )
    return is_line3(query)


def line3_join(
    group: Group,
    query: Hypergraph,
    rels: dict[str, DistRelation],
    label: str = "line3",
    out_size: int | None = None,
) -> DistRelation:
    """Compute a line-3 join with load O(IN/p + sqrt(IN*OUT)/p).

    Args:
        query: Must be shaped ``R1(A,B) join R2(B,C) join R3(C,D)`` (any
            names; the path order is auto-detected).
        out_size: Skip the OUT computation if already known.

    Raises:
        QueryError: If the query is not a line-3 join.
    """
    shape = is_line3(query)
    if shape is None:
        raise QueryError(f"{query.name} is not a line-3 join")
    n1, n2, n3 = shape

    working = remove_dangling(group, query, rels, f"{label}/dangling")
    schema = canonical_attrs([working[n].attrs for n in query.edge_names])
    if out_size is None:
        out_size = mpc_count(group, query, working, f"{label}/out")
    if out_size == 0:
        return DistRelation("result", schema, [[] for _ in range(group.size)])
    in_size = max(1, sum(working[n].total_size() for n in query.edge_names))
    tau = max(1.0, math.sqrt(out_size / in_size))

    # --- Step 1: classify B values by their degree in R1. ----------------
    # The degree table is counted on r1's sorted run, which the r1 split
    # then reuses; the r2 lookup is safe for search_rows because the
    # dangling-free instance makes r1's B values cover r2's.
    b_attr = tuple(sorted(query.attrs_of(n1) & query.attrs_of(n2)))
    r1 = working[n1]
    r2 = working[n2]
    r3 = working[n3]
    degs = count_by_key(group, r1, b_attr, label=f"{label}/deg")

    def split(rel: DistRelation) -> tuple[DistRelation, DistRelation]:
        withdeg = attach_degrees(
            group, rel, b_attr, f"{label}/split-{rel.name}", degree_parts=degs
        )
        h_parts, l_parts = [], []
        for part in withdeg:
            hp, lp = [], []
            for row, deg in part:
                if deg > tau:
                    hp.append(row)
                else:
                    lp.append(row)
            h_parts.append(hp)
            l_parts.append(lp)
        return (
            DistRelation(rel.name, rel.attrs, h_parts, owned=True),
            DistRelation(rel.name, rel.attrs, l_parts, owned=True),
        )

    r1_heavy, r1_light = split(r1)
    r2_heavy, r2_light = split(r2)

    pieces = []
    # --- Q1 = R1^H join (R2^H join R3): right-to-left order. -------------
    if r1_heavy.total_size() and r2_heavy.total_size():
        r23 = binary_join(group, r2_heavy, r3, f"{label}/q1-r23")
        q1 = binary_join(group, r1_heavy, r23, f"{label}/q1-final")
        pieces.append(q1)
    # --- Q2 = (R1^L join R2^L) join R3: left-to-right order. -------------
    if r1_light.total_size() and r2_light.total_size():
        r12 = binary_join(group, r1_light, r2_light, f"{label}/q2-r12")
        q2 = binary_join(group, r12, r3, f"{label}/q2-final")
        pieces.append(q2)

    if not pieces:
        return DistRelation("result", schema, [[] for _ in range(group.size)])
    aligned = [
        DistRelation(
            "result", schema,
            [align_to_schema(p, piece.attrs, schema) for p in piece.parts],
        )
        for piece in pieces
    ]
    return concat_distrels("result", group, aligned)
