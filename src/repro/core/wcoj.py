"""Worst-case-optimal comparators (paper references [19, 24]).

The paper's output-optimal bounds stop being optimal for very large OUT,
where worst-case-optimal HyperCube-share algorithms take over:

* :func:`line3_worst_case` — shares ``(1, sqrt(p), sqrt(p), 1)`` on
  ``(A, B, C, D)``: load O(IN/sqrt(p)).  Theorem 6 shows this is
  output-optimal for every OUT >= p * IN.
* :func:`triangle_worst_case` — shares ``p^{1/3}`` per attribute: load
  O~(IN/p^{2/3}).  Theorem 11 shows this is output-optimal for
  OUT >= IN * p^{1/3}.

Both are thin wrappers around :func:`repro.core.hypercube.hypercube_join`
with the classic share vectors; the benchmarks sweep OUT to locate the
crossover points the paper derives.
"""

from __future__ import annotations

import math

from repro.core.hypercube import hypercube_join
from repro.errors import QueryError
from repro.mpc.distrel import DistRelation
from repro.mpc.group import Group
from repro.query.hypergraph import Hypergraph

__all__ = ["line3_worst_case", "triangle_worst_case"]


def line3_worst_case(
    group: Group,
    query: Hypergraph,
    rels: dict[str, DistRelation],
    label: str = "wc-line3",
) -> DistRelation:
    """Worst-case-optimal line-3 join: load O(IN/sqrt(p)).

    Gives the two middle attributes (the ones shared between consecutive
    relations) a share of sqrt(p) each; the end attributes get share 1.
    """
    join_attrs = sorted(
        x for x in query.attributes if len(query.edges_with(x)) >= 2
    )
    if len(join_attrs) != 2:
        raise QueryError(f"{query.name} is not a line-3 join")
    side = max(1, int(math.isqrt(group.size)))
    shares = {x: 1 for x in query.attributes}
    for x in join_attrs:
        shares[x] = side
    return hypercube_join(group, query, rels, shares, label=label)


def triangle_worst_case(
    group: Group,
    query: Hypergraph,
    rels: dict[str, DistRelation],
    label: str = "wc-triangle",
) -> DistRelation:
    """Worst-case-optimal triangle join: load O~(IN/p^{2/3}).

    The classic p^{1/3} x p^{1/3} x p^{1/3} grid of [24]: each relation
    hashes on its two attributes and replicates along the third dimension.
    """
    attrs = sorted(query.attributes)
    if len(attrs) != 3 or len(query.edge_names) != 3:
        raise QueryError(f"{query.name} is not a triangle join")
    side = max(1, round(group.size ** (1.0 / 3.0)))
    while side ** 3 > group.size:
        side -= 1
    shares = {x: max(1, side) for x in attrs}
    return hypercube_join(group, query, rels, shares, label=label)
