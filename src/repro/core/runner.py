"""Public entry points: classification-driven algorithm dispatch.

* :func:`mpc_join` — run one of the paper's join algorithms on a fresh
  simulated cluster and return results + the load ledger.
* :func:`mpc_join_aggregate` — free-connex join-aggregate queries
  (Theorems 9/10), including ``COUNT GROUP BY`` and total aggregates.
* :func:`mpc_output_size` — ``|Q(R)|`` with linear load (Corollary 4).

``algorithm="auto"`` picks the strongest guarantee available:
r-hierarchical queries get the instance-optimal algorithm (Theorem 3),
other acyclic queries the output-optimal one (Theorem 7, specialized to
Section 4.2 for line-3 shapes), cyclic queries fall back to
worst-case-optimal HyperCube shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.acyclic import acyclic_join
from repro.core.aggregates import (
    aggregate_out,
    aggregate_total,
    annotated_reduce,
    mpc_count,
)
from repro.core.binhc import binhc_join
from repro.core.common import JoinResult
from repro.core.hypercube import hypercube_join
from repro.core.line3 import is_line3, line3_join
from repro.core.rhierarchical import rhierarchical_join
from repro.core.wcoj import line3_worst_case, triangle_worst_case
from repro.core.yannakakis import Plan, yannakakis_mpc
from repro.data.instance import Instance
from repro.data.relation import Relation
from repro.errors import QueryError
from repro.mpc.backends import Backend
from repro.mpc.cluster import Cluster, LoadReport
from repro.mpc.dangling import remove_dangling
from repro.mpc.distrel import DistRelation, distribute_instance
from repro.query.classify import JoinClass, classify
from repro.query.ghd import output_join_tree, residual_output_query
from repro.query.hypergraph import Hypergraph
from repro.semiring import Semiring

__all__ = [
    "ALGORITHMS",
    "AggregateResult",
    "mpc_join",
    "mpc_join_aggregate",
    "mpc_join_project",
    "mpc_output_size",
    "auto_algorithm",
    "run_join_algorithm",
    "run_aggregate_algorithm",
]

#: Names accepted by :func:`mpc_join`.
ALGORITHMS = (
    "auto",
    "yannakakis",
    "line3",
    "acyclic",
    "rhierarchical",
    "binhc",
    "binhc-multiround",
    "hypercube",
    "wc-line3",
    "wc-triangle",
)


def auto_algorithm(query: Hypergraph) -> str:
    """The strongest-guarantee algorithm for a query's class."""
    cls = classify(query)
    if cls <= JoinClass.R_HIERARCHICAL:
        return "rhierarchical"
    if cls == JoinClass.ACYCLIC:
        return "line3" if is_line3(query) else "acyclic"
    if len(query.attributes) == 3 and len(query.edge_names) == 3:
        return "wc-triangle"
    return "hypercube"


def mpc_join(
    query: Hypergraph,
    instance: Instance,
    p: int,
    algorithm: str = "auto",
    plan: Plan | None = None,
    validate: bool = False,
    backend: Backend | str | None = None,
) -> JoinResult:
    """Simulate one MPC join and report its load.

    Args:
        query: The join hypergraph.
        instance: Relations matching the query.
        p: Number of servers.
        algorithm: One of :data:`ALGORITHMS`.
        plan: Pairwise join order (Yannakakis only).
        validate: Cross-check the emitted results against the RAM oracle
            (raises on mismatch).
        backend: Execution backend (instance, registered name, or ``None``
            for the process default).  Any backend must produce the exact
            outputs and ledger of the serial reference (``tests/conformance``).

    Returns:
        :class:`~repro.core.common.JoinResult` with the emitted relation,
        the load report, and metadata (algorithm, IN, OUT, p).
    """
    if algorithm not in ALGORITHMS:
        raise QueryError(f"unknown algorithm {algorithm!r}; pick from {ALGORITHMS}")
    if algorithm == "auto":
        algorithm = auto_algorithm(query)
    cluster = Cluster(p, backend=backend)
    group = cluster.root_group()
    rels = distribute_instance(instance, group)
    wire_before = cluster.backend.wire_stats().get("bytes_shipped", 0)
    result = run_join_algorithm(group, query, rels, algorithm, plan=plan)

    out = JoinResult(
        relation=result,
        report=cluster.snapshot(),
        meta={
            "algorithm": algorithm,
            "p": p,
            "backend": cluster.backend.name,
            "in_size": instance.input_size,
            "out_size": result.total_size(),
            # Physical bytes the backend shipped across processes for this
            # join (0 for in-process backends).  Purely observational: the
            # ledger above counts logical tuples and never encoded bytes.
            "wire_bytes": (
                cluster.backend.wire_stats().get("bytes_shipped", 0) - wire_before
            ),
        },
    )
    if validate:
        from repro.ram.yannakakis import yannakakis as ram_yannakakis

        expected = set(ram_yannakakis(instance).rows)
        got = out.row_set()
        if got != expected:
            raise AssertionError(
                f"{algorithm} produced {len(got)} rows, oracle has "
                f"{len(expected)}; missing={list(expected - got)[:3]} "
                f"extra={list(got - expected)[:3]}"
            )
    return out


def run_join_algorithm(
    group,
    query: Hypergraph,
    rels: dict[str, "DistRelation"],
    algorithm: str,
    plan: Plan | None = None,
) -> "DistRelation":
    """Plan-replay seam: run a *resolved* algorithm on distributed relations.

    This is the execution body of :func:`mpc_join` factored out so that a
    long-lived session (:class:`repro.engine.Engine`) can replay a prepared
    plan against an existing cluster and already-distributed relations.
    ``algorithm`` must be a concrete name (``"auto"`` is resolved by the
    callers); ``plan`` is consulted by Yannakakis only.
    """
    if algorithm == "yannakakis":
        return yannakakis_mpc(group, query, rels, plan=plan)
    if algorithm == "line3":
        return line3_join(group, query, rels)
    if algorithm == "acyclic":
        return acyclic_join(group, query, rels)
    if algorithm == "rhierarchical":
        return rhierarchical_join(group, query, rels)
    if algorithm == "binhc":
        return binhc_join(group, query, rels)
    if algorithm == "binhc-multiround":
        return binhc_join(group, query, rels, remove_dangling_first=True)
    if algorithm == "hypercube":
        return hypercube_join(group, query, rels)
    if algorithm == "wc-line3":
        return line3_worst_case(group, query, rels)
    if algorithm == "wc-triangle":
        return triangle_worst_case(group, query, rels)
    raise QueryError(
        f"unknown resolved algorithm {algorithm!r}; pick from {ALGORITHMS[1:]}"
    )


def mpc_output_size(
    query: Hypergraph,
    instance: Instance,
    p: int,
    backend: Backend | str | None = None,
) -> tuple[int, LoadReport]:
    """``|Q(R)|`` with linear load in O(1) rounds (Corollary 4)."""
    cluster = Cluster(p, backend=backend)
    group = cluster.root_group()
    rels = distribute_instance(instance, group)
    count = mpc_count(group, query, rels)
    return count, cluster.snapshot()


@dataclass
class AggregateResult:
    """Outcome of a join-aggregate execution (Section 6).

    Attributes:
        relation: Annotated output relation over the output attributes
            (``None`` for total aggregation).
        scalar: The semiring scalar for ``y = {}`` (``None`` otherwise).
        report: Load ledger.
        meta: Algorithm metadata.
    """

    relation: Relation | None
    scalar: Any
    report: LoadReport
    meta: dict[str, Any] = field(default_factory=dict)


def mpc_join_project(
    query: Hypergraph,
    output_attrs,
    instance: Instance,
    p: int,
    algorithm: str = "auto",
    backend: Backend | str | None = None,
) -> AggregateResult:
    """Evaluate a free-connex join-project query ``pi_y Q(R)`` (Section 6).

    Join-project (conjunctive) queries are the Boolean-semiring special
    case of join-aggregates; the result relation holds the distinct
    projections with annotation ``True``.
    """
    from repro.semiring import BOOLEAN

    annotated = instance.with_uniform_annotations(BOOLEAN)
    return mpc_join_aggregate(
        query, output_attrs, annotated, BOOLEAN, p, algorithm=algorithm,
        backend=backend,
    )


def mpc_join_aggregate(
    query: Hypergraph,
    output_attrs,
    instance: Instance,
    semiring: Semiring,
    p: int,
    algorithm: str = "auto",
    backend: Backend | str | None = None,
) -> AggregateResult:
    """Evaluate a free-connex join-aggregate query (Theorems 9/10).

    The instance's relations must be annotated with ``semiring`` (use
    :meth:`~repro.data.instance.Instance.with_uniform_annotations` for
    COUNT-style queries).

    Args:
        output_attrs: The output (free) attributes ``y``.
        algorithm: ``"auto"`` (out-hierarchical queries use the
            instance-optimal join), ``"rhierarchical"``, ``"acyclic"``, or
            ``"yannakakis"`` for the downstream join on the residual query.
    """
    cluster = Cluster(p, backend=backend)
    group = cluster.root_group()
    rels = distribute_instance(instance, group, annotate=True)
    for n, rel in instance.relations.items():
        if not rel.annotated:
            raise QueryError(f"relation {n!r} is not annotated; annotate first")

    wire_before = cluster.backend.wire_stats().get("bytes_shipped", 0)
    relation, scalar, meta = run_aggregate_algorithm(
        group, query, output_attrs, rels, semiring, algorithm=algorithm
    )
    meta.update(
        {
            "p": p,
            "backend": cluster.backend.name,
            "in_size": instance.input_size,
            "wire_bytes": (
                cluster.backend.wire_stats().get("bytes_shipped", 0) - wire_before
            ),
        }
    )
    return AggregateResult(
        relation=relation,
        scalar=scalar,
        report=cluster.snapshot(),
        meta=meta,
    )


def run_aggregate_algorithm(
    group,
    query: Hypergraph,
    output_attrs,
    rels: dict[str, DistRelation],
    semiring: Semiring,
    algorithm: str = "auto",
) -> tuple[Relation | None, Any, dict[str, Any]]:
    """Plan-replay seam for join-aggregates: run on distributed relations.

    The execution body of :func:`mpc_join_aggregate`, factored out so a
    long-lived session can replay a prepared aggregate against an existing
    cluster.  ``rels`` must already be distributed *with annotation columns*
    (``distribute_instance(..., annotate=True)``).

    Returns:
        ``(relation, scalar, meta)`` — the annotated output relation (or
        ``None`` for total aggregation), the total-aggregate scalar (or
        ``None``), and algorithm metadata.
    """
    y = frozenset(output_attrs)
    rels = remove_dangling(group, query, rels, "agg/dangling")
    reduced_query, rels = annotated_reduce(group, query, rels, semiring, "agg/reduce")

    if not y:
        scalar = aggregate_total(group, reduced_query, rels, semiring, "agg/total")
        return None, scalar, {"y": ()}

    scaffold = output_join_tree(reduced_query, y)
    residual_rels = aggregate_out(group, scaffold, rels, semiring, "agg/aggro")
    residual_query = residual_output_query(scaffold)
    # Keep only edges that actually produced residual relations.
    residual_query = Hypergraph(
        {n: residual_query.attrs_of(n) for n in residual_query.edge_names
         if n in residual_rels},
        name=residual_query.name,
    )
    residual_query, residual_rels = annotated_reduce(
        group, residual_query, residual_rels, semiring, "agg/res-reduce"
    )

    if algorithm == "auto":
        from repro.query.classify import is_r_hierarchical

        algorithm = (
            "rhierarchical" if is_r_hierarchical(residual_query) else "acyclic"
        )
    if algorithm == "rhierarchical":
        result = rhierarchical_join(group, residual_query, residual_rels, "agg/join")
    elif algorithm == "acyclic":
        result = acyclic_join(group, residual_query, residual_rels, "agg/join")
    elif algorithm == "yannakakis":
        result = yannakakis_mpc(group, residual_query, residual_rels, label="agg/join")
    else:
        raise QueryError(f"unknown downstream algorithm {algorithm!r}")

    # Final local pass: multiply the annotation columns of each result row.
    y_sorted = tuple(sorted(y))
    w_positions = [i for i, a in enumerate(result.attrs) if a.startswith("#")]
    y_positions = [result.attrs.index(a) for a in y_sorted]
    rows: list[tuple] = []
    annotations: list[Any] = []
    for part in result.parts:
        for row in part:
            rows.append(tuple(row[i] for i in y_positions))
            annotations.append(
                semiring.times_all(row[i] for i in w_positions)
            )
    relation = Relation("result", y_sorted, rows, annotations, semiring)
    return relation, None, {
        "y": y_sorted,
        "downstream": algorithm,
        "out_size": len(relation),
    }
