"""The BinHC algorithm: one-round, degree-aware HyperCube (paper Section 3.1).

BinHC [8] generalizes HyperCube using full degree information.  This module
implements the standard constructive reading: bucket every join-attribute
value by the power-of-two class of its maximum degree across relations,
partition the instance into *uniform sub-instances* (one per class
combination), and run a share-optimized HyperCube for each — all in the
same communication round, so the loads add up across the (polylog-many)
sub-instances.  That reproduces the paper's analysis exactly:

* Theorem 1: on tall-flat joins the total is O~(IN/p + L_instance).
* Theorem 2: on r-hierarchical joins *without dangling tuples* likewise.
* With dangling tuples one round cannot achieve this (Koutris-Suciu [26]);
  the multi-round fix (``remove_dangling_first=True``) runs the O(1)-round
  full reducer first and then BinHC, giving the paper's
  ``(IN/p + L_instance) * polylog`` multi-round bound.
"""

from __future__ import annotations

import math
from itertools import product as iter_product
from typing import Any

from repro.core.common import align_to_schema, canonical_attrs, concat_distrels
from repro.core.hypercube import hypercube_join, optimal_join_shares
from repro.data.relation import Row
from repro.mpc.dangling import remove_dangling as run_full_reducer
from repro.mpc.distrel import DistRelation
from repro.mpc.group import Group
from repro.mpc.primitives import (
    coordinator_for,
    count_by_key,
    multi_search,
    sum_by_key,
)
from repro.query.hypergraph import Hypergraph

__all__ = ["binhc_join"]


def binhc_join(
    group: Group,
    query: Hypergraph,
    rels: dict[str, DistRelation],
    label: str = "binhc",
    remove_dangling_first: bool = False,
) -> DistRelation:
    """Compute a join with the BinHC strategy.

    Args:
        group: Server group (size p).
        query: Any join hypergraph (the optimality statements hold for
            tall-flat / dangling-free r-hierarchical inputs).
        rels: Distributed relations.
        remove_dangling_first: Prepend the O(1)-round full reducer (the
            multi-round variant for r-hierarchical joins with dangling
            tuples).

    Returns:
        Join results in canonical schema order.
    """
    working = dict(rels)
    if remove_dangling_first:
        working = run_full_reducer(group, query, working, f"{label}/dangling")

    schema = canonical_attrs([working[n].attrs for n in query.edge_names])
    join_attrs = sorted(
        x for x in query.attributes if len(query.edges_with(x)) >= 2
    )
    p = group.size

    if not join_attrs:
        # Pure Cartesian product: plain HyperCube is the whole story.
        from repro.core.hypercube import hypercube_cartesian

        ordered = [working[n] for n in query.edge_names]
        res = hypercube_cartesian(group, ordered, f"{label}/cart")
        return _align(res, schema)

    # --- Degree classes per join-attribute value. ------------------------
    # md(x=a) = max over edges containing x of |sigma_{x=a} R(e)|;
    # class(a) = floor(log2 md).  Values in the same class behave uniformly
    # up to a factor of 2, which is where the polylog optimality ratio
    # comes from.
    class_tables: dict[str, list[list[tuple[Any, int]]]] = {}
    observed_classes: dict[str, list[int]] = {}
    for x in join_attrs:
        per_edge_parts: list[list[tuple[Any, int]]] = [
            [] for _ in range(group.size)
        ]
        for e in sorted(query.edges_with(x)):
            rel = working[e]
            counted = count_by_key(
                group, rel, (x,), label=f"{label}/deg-{x}-{e}", scalar=True
            )
            for i, part in enumerate(counted):
                per_edge_parts[i].extend(part)
        maxed = sum_by_key(
            group, per_edge_parts, plus=max, label=f"{label}/maxdeg-{x}"
        )
        table = [
            [(v, int(math.log2(max(1, d)))) for v, d in part] for part in maxed
        ]
        class_tables[x] = table
        classes = sorted({c for part in table for _v, c in part})
        observed_classes[x] = classes
    # Class menus are tiny (log IN per attribute): share them globally.
    group.broadcast(
        [(x, c) for x in join_attrs for c in observed_classes[x]],
        f"{label}/classes",
    )

    # --- Attach class vectors to every tuple. -----------------------------
    # tagged[e] : per-server (row, {attr: class}) pairs.
    tagged: dict[str, list[list[tuple[Row, dict[str, int]]]]] = {}
    for e in query.edge_names:
        rel = working[e]
        attrs_here = [x for x in join_attrs if x in query.attrs_of(e)]
        current: list[list[tuple[Row, dict[str, int]]]] = [
            [(row, {}) for row in part] for part in rel.parts
        ]
        for x in attrs_here:
            pos = rel.positions((x,))[0]
            x_parts = [
                [(row[pos], (row, tags)) for row, tags in part]
                for part in current
            ]
            found = multi_search(
                group, x_parts, class_tables[x], f"{label}/tag-{e}-{x}"
            )
            current = [
                [
                    (row, {**tags, x: (c if pk == key else -1)})
                    for key, (row, tags), pk, c in part
                ]
                for part in found
            ]
        tagged[e] = current

    # --- Per-(edge, class-projection) sizes, shared globally. -------------
    size_parts: list[list[tuple[Any, int]]] = [[] for _ in range(group.size)]
    for e in query.edge_names:
        attrs_here = tuple(x for x in join_attrs if x in query.attrs_of(e))
        for i, part in enumerate(tagged[e]):
            for _row, tags in part:
                key = (e, tuple(tags[x] for x in attrs_here))
                size_parts[i].append((key, 1))
    sizes_counted = sum_by_key(group, size_parts, label=f"{label}/sizes")
    coord = coordinator_for(group, label)
    gathered = group.gather(sizes_counted, f"{label}/sizes-gather", dst=coord)
    class_sizes: dict[Any, int] = dict(gathered)
    group.broadcast(list(class_sizes.items()), f"{label}/sizes-bcast", src=coord)

    # --- One HyperCube per surviving class combination. -------------------
    pieces: list[DistRelation] = []
    combo_space = [observed_classes[x] for x in join_attrs]
    for combo_idx, combo in enumerate(iter_product(*combo_space)):
        combo_map = dict(zip(join_attrs, combo))
        sizes_c: dict[str, int] = {}
        skip = False
        for e in query.edge_names:
            attrs_here = tuple(
                x for x in join_attrs if x in query.attrs_of(e)
            )
            key = (e, tuple(combo_map[x] for x in attrs_here))
            n_e = class_sizes.get(key, 0)
            if n_e == 0:
                skip = True
                break
            sizes_c[e] = n_e
        if skip:
            continue
        sub_rels = {}
        for e in query.edge_names:
            attrs_here = [x for x in join_attrs if x in query.attrs_of(e)]
            parts = [
                [
                    row
                    for row, tags in part
                    if all(tags[x] == combo_map[x] for x in attrs_here)
                ]
                for part in tagged[e]
            ]
            sub_rels[e] = DistRelation(e, working[e].attrs, parts, owned=True)
        shares = optimal_join_shares(query, sizes_c, p)
        piece = hypercube_join(
            group, query, sub_rels, shares,
            label=f"{label}/hc{combo_idx}", salt=combo_idx * 7919,
        )
        pieces.append(_align(piece, schema))

    if not pieces:
        return DistRelation("result", schema, [[] for _ in range(group.size)])
    return concat_distrels("result", group, pieces)


def _align(rel: DistRelation, schema: tuple[str, ...]) -> DistRelation:
    parts = [align_to_schema(p, rel.attrs, schema) for p in rel.parts]
    return DistRelation("result", schema, parts)
