"""The HyperCube algorithm: share-based one-round joins.

Two variants:

* :func:`hypercube_cartesian` — Cartesian products (paper Sections 1.3 and
  3.2 Case 2).  Relations are chunked with multi-numbering (deterministic,
  perfectly balanced) and each grid cell receives one chunk combination, so
  the load matches ``L_Cartesian`` (eq. 1) up to constants — the
  instance-optimality of HyperCube on Cartesian products.
* :func:`hypercube_join` — general joins with per-attribute shares (the
  worst-case-optimal comparators of [24, 19] and the per-class runs inside
  BinHC).  Tuples hash on their attributes' coordinates and replicate over
  the rest; each potential result lands on exactly one server.

:func:`optimal_cartesian_shares` and :func:`optimal_join_shares` compute
integer share vectors (water-filling and a log-space LP, respectively).
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np
from scipy.optimize import linprog

from repro.data.relation import Row, project_row
from repro.errors import MPCError, QueryError
from repro.mpc.distrel import DistRelation
from repro.mpc.group import Group
from repro.mpc.hashing import stable_hash
from repro.mpc.primitives import multi_numbering
from repro.core.common import canonical_attrs, local_tree_join
from repro.query.hypergraph import Hypergraph

__all__ = [
    "optimal_cartesian_shares",
    "optimal_join_shares",
    "hypercube_cartesian",
    "hypercube_join",
]


def optimal_cartesian_shares(sizes: Sequence[int], budget: int) -> list[int]:
    """Integer shares minimizing ``max_i N_i / p_i`` with ``prod p_i <= budget``.

    Greedy water-filling: repeatedly grow the dimension with the largest
    per-server residual while the product fits.  Equals the fractional
    optimum within a constant factor, which suffices for the paper's
    instance-optimality statement (HyperCube is optimal up to polylog/const
    factors).
    """
    if budget < 1:
        raise MPCError("budget must be >= 1")
    shares = [1] * len(sizes)
    while True:
        prod = math.prod(shares)
        # Grow the currently worst dimension if the budget allows.
        order = sorted(
            range(len(sizes)), key=lambda i: -(sizes[i] / shares[i])
        )
        grown = False
        for i in order:
            if shares[i] < max(1, sizes[i]) and prod // shares[i] * (shares[i] + 1) <= budget:
                shares[i] += 1
                grown = True
                break
        if not grown:
            return shares


def optimal_join_shares(
    query: Hypergraph, sizes: dict[str, int], budget: int
) -> dict[str, int]:
    """Integer per-attribute shares for HyperCube on a general join.

    Solves the fractional program ``min t`` s.t.
    ``log N_e - sum_{x in e} s_x <= t`` and ``sum_x s_x <= log budget`` in
    log space, then rounds down to integers (re-normalizing so the product
    stays within budget).
    """
    attrs = sorted(query.attributes)
    edges = list(query.edge_names)
    n, m = len(attrs), len(edges)
    # Variables: s_x for each attr, then t.
    c = np.zeros(n + 1)
    c[-1] = 1.0
    a_ub = []
    b_ub = []
    for e in edges:
        row = np.zeros(n + 1)
        for x in query.attrs_of(e):
            row[attrs.index(x)] = -1.0
        row[-1] = -1.0
        a_ub.append(row)
        b_ub.append(-math.log(max(2, sizes[e])))
    cap = np.zeros(n + 1)
    cap[:n] = 1.0
    a_ub.append(cap)
    b_ub.append(math.log(max(1, budget)))
    res = linprog(
        c,
        A_ub=np.array(a_ub),
        b_ub=np.array(b_ub),
        bounds=[(0, None)] * n + [(None, None)],
        method="highs",
    )
    if not res.success:  # pragma: no cover - feasible by construction
        raise QueryError(f"share LP failed: {res.message}")
    shares = {x: max(1, int(math.floor(math.exp(res.x[i]) + 1e-9))) for i, x in enumerate(attrs)}
    # Renormalize into the budget (floor can still overshoot jointly).
    while math.prod(shares.values()) > budget:
        worst = max(shares, key=lambda x: shares[x])
        if shares[worst] == 1:
            break
        shares[worst] -= 1
    return shares


def _grid_strides(dims: Sequence[int]) -> list[int]:
    strides = [0] * len(dims)
    acc = 1
    for i in reversed(range(len(dims))):
        strides[i] = acc
        acc *= dims[i]
    return strides


def hypercube_cartesian(
    group: Group,
    rels: Sequence[DistRelation],
    label: str = "hypercube",
    name: str = "product",
) -> DistRelation:
    """Cartesian product of ``rels`` with instance-optimal load.

    Output schema: concatenation of the input schemas (must be disjoint).
    """
    attrs_all: list[str] = []
    for r in rels:
        for a in r.attrs:
            if a in attrs_all:
                raise MPCError(f"cartesian product schemas overlap on {a!r}")
            attrs_all.append(a)
    p = group.size
    sizes = [r.total_size() for r in rels]
    if any(s == 0 for s in sizes):
        return DistRelation(name, tuple(attrs_all), [[] for _ in range(p)])
    shares = optimal_cartesian_shares(sizes, p)
    strides = _grid_strides(shares)
    k = len(rels)

    # Balanced chunking via multi-numbering on a single shared key.
    chunk_of: list[list[list[tuple[Row, int]]]] = []
    for idx, rel in enumerate(rels):
        numbered = multi_numbering(
            group,
            [[(0, row) for row in part] for part in rel.parts],
            f"{label}/chunk{idx}",
        )
        chunk_of.append(
            [[(row, (num - 1) % shares[idx]) for _k, row, num in part] for part in numbered]
        )

    outboxes: list[list[tuple[int, Any]]] = [[] for _ in range(p)]
    other_dims: list[list[int]] = []
    for i in range(k):
        other_dims.append([d for j, d in enumerate(shares) if j != i])

    def combos(dims: Sequence[int]) -> list[list[int]]:
        acc: list[list[int]] = [[]]
        for d in dims:
            acc = [c + [v] for c in acc for v in range(d)]
        return acc

    for i in range(k):
        for src in range(p):
            for row, chunk in chunk_of[i][src]:
                for combo in combos(other_dims[i]):
                    coords = combo[:i] + [chunk] + combo[i:]
                    cell = sum(c * s for c, s in zip(coords, strides))
                    outboxes[src].append((cell % p, (i, row)))
    inboxes = group.exchange(outboxes, f"{label}/shuffle")

    parts: list[list[Row]] = []
    for inbox in inboxes:
        by_rel: list[list[Row]] = [[] for _ in range(k)]
        for i, row in inbox:
            by_rel[i].append(row)
        out: list[Row] = []
        if all(by_rel):
            acc: list[Row] = [()]
            for rows in by_rel:
                acc = [base + r for base in acc for r in rows]
            out = acc
        parts.append(out)
    return DistRelation(name, tuple(attrs_all), parts, owned=True)


def hypercube_join(
    group: Group,
    query: Hypergraph,
    rels: dict[str, DistRelation],
    shares: dict[str, int] | None = None,
    label: str = "hcjoin",
    name: str = "result",
    salt: int = 0,
) -> DistRelation:
    """One-round HyperCube join with per-attribute shares.

    Every tuple is sent to all grid cells consistent with the hash of its
    attribute values; each cell joins its fragments locally.  Each join
    result materializes on exactly one cell (the one addressed by all its
    attribute hashes), so no deduplication is needed.

    Args:
        shares: Share per attribute (defaults to
            :func:`optimal_join_shares` on the relation sizes).  Their
            product must be <= the group size.
    """
    p = group.size
    if shares is None:
        shares = optimal_join_shares(
            query, {n: rels[n].total_size() for n in query.edge_names}, p
        )
    attrs = sorted(query.attributes)
    dims = [max(1, shares.get(a, 1)) for a in attrs]
    if math.prod(dims) > p:
        raise MPCError(f"share product {math.prod(dims)} exceeds group size {p}")
    strides = _grid_strides(dims)
    attr_index = {a: i for i, a in enumerate(attrs)}

    def combos(free_dims: list[int]) -> list[list[int]]:
        acc: list[list[int]] = [[]]
        for d in free_dims:
            acc = [c + [v] for c in acc for v in range(d)]
        return acc

    outboxes: list[list[tuple[int, Any]]] = [[] for _ in range(p)]
    for rel_name in query.edge_names:
        rel = rels[rel_name]
        edge_attrs = [a for a in attrs if a in query.attrs_of(rel_name)]
        pos = rel.positions(tuple(edge_attrs))
        fixed_idx = [attr_index[a] for a in edge_attrs]
        free_idx = [i for i in range(len(attrs)) if i not in fixed_idx]
        free_dims = [dims[i] for i in free_idx]
        for src in range(p):
            for row in rel.parts[src]:
                vals = project_row(row, pos)
                coords = [0] * len(attrs)
                for a, v in zip(edge_attrs, vals):
                    i = attr_index[a]
                    coords[i] = stable_hash(v, salt=salt + i) % dims[i]
                for combo in combos(free_dims):
                    for i, v in zip(free_idx, combo):
                        coords[i] = v
                    cell = sum(c * s for c, s in zip(coords, strides))
                    outboxes[src].append((cell % p, (rel_name, row)))
    inboxes = group.exchange(outboxes, f"{label}/shuffle")

    out_schema = canonical_attrs([rels[n].attrs for n in query.edge_names])
    parts: list[list[Row]] = []
    for inbox in inboxes:
        by_rel: dict[str, list[Row]] = {n: [] for n in query.edge_names}
        for rel_name, row in inbox:
            by_rel[rel_name].append(row)
        if any(not v for v in by_rel.values()):
            parts.append([])
            continue
        schemas = {n: rels[n].attrs for n in query.edge_names}
        if query.is_acyclic():
            _attrs, joined = local_tree_join(query, schemas, by_rel)
        else:
            _attrs, joined = _local_generic_join(query, schemas, by_rel, out_schema)
        parts.append(joined)
    return DistRelation(name, out_schema, parts, owned=True)


def _local_generic_join(
    query: Hypergraph,
    schemas: dict[str, tuple[str, ...]],
    rows: dict[str, list[Row]],
    out_schema: tuple[str, ...],
) -> tuple[tuple[str, ...], list[Row]]:
    """Local join for cyclic queries: fold relations smallest-first."""
    from repro.core.common import align_to_schema, local_hash_join

    order = sorted(query.edge_names, key=lambda n: len(rows[n]))
    cur_attrs: tuple[str, ...] = tuple(schemas[order[0]])
    cur_rows = list(rows[order[0]])
    for n in order[1:]:
        cur_attrs, cur_rows = local_hash_join(
            cur_attrs, cur_rows, schemas[n], rows[n]
        )
    return out_schema, align_to_schema(cur_rows, cur_attrs, out_schema)
