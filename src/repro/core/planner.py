"""MPC-aware join-order planning for the Yannakakis algorithm.

Section 4.1's observation, turned into a feature: in the RAM model the
Yannakakis join order never matters asymptotically, but in MPC a plan that
shuffles a large intermediate result pays its size divided by p.  This
module enumerates the join-tree-consistent fold orders, *prices* each one
by its maximum intermediate join size (computed exactly with the
linear-load count primitive, Corollary 4 — so the planning itself is
cheap), and returns the best plan.

The paper proves no single order is good on every instance (the Figure 3
doubled trap) — :func:`plan_quality` exposes exactly that gap so callers
can decide between a planned Yannakakis run and the Section 4.2/5.1
heavy-light decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.aggregates import mpc_count
from repro.core.yannakakis import Plan
from repro.errors import QueryError
from repro.mpc.distrel import DistRelation
from repro.mpc.group import Group
from repro.query.hypergraph import Hypergraph, join_tree

__all__ = [
    "PlanChoice",
    "best_yannakakis_plan",
    "enumerate_fold_orders",
    "plan_quality",
    "price_fold_orders",
]


@dataclass(frozen=True)
class PlanChoice:
    """A priced join plan.

    Attributes:
        plan: The nested pairwise plan for
            :func:`repro.core.yannakakis.yannakakis_mpc`.
        order: The relation fold order the plan encodes.
        max_intermediate: The largest intermediate join size along the plan
            (the quantity that drives MPC load).
        intermediates: Per-prefix join sizes, aligned with ``order[1:]``.
    """

    plan: Plan
    order: tuple[str, ...]
    max_intermediate: int
    intermediates: tuple[int, ...]


def enumerate_fold_orders(query: Hypergraph, limit: int = 64) -> list[tuple[str, ...]]:
    """Join-tree-consistent left-deep orders (connected prefixes).

    Every prefix of a returned order induces a connected subtree of a join
    tree, so each pairwise join shares a separator (no accidental
    Cartesian blowups).  Enumeration is capped at ``limit`` orders —
    plenty for the constant-size queries the paper considers.
    """
    tree = join_tree(query)
    names = set(query.edge_names)
    neighbors: dict[str, set[str]] = {n: set() for n in names}
    for n in names:
        par = tree.parent[n]
        if par is not None:
            neighbors[n].add(par)
            neighbors[par].add(n)

    orders: list[tuple[str, ...]] = []

    def grow(prefix: list[str], frontier: set[str]) -> None:
        if len(orders) >= limit:
            return
        if len(prefix) == len(names):
            orders.append(tuple(prefix))
            return
        for nxt in sorted(frontier):
            new_frontier = (frontier | neighbors[nxt]) - set(prefix) - {nxt}
            grow(prefix + [nxt], new_frontier)

    for start in sorted(names):
        grow([start], set(neighbors[start]))
    return orders


def best_yannakakis_plan(
    group: Group,
    query: Hypergraph,
    rels: dict[str, DistRelation],
    label: str = "planner",
    limit: int = 64,
) -> PlanChoice:
    """Pick the fold order minimizing the largest intermediate join.

    Intermediate sizes are exact (count queries over dangling-free
    sub-joins are linear-load, Corollary 4); with m constant the whole
    planning pass is O(m * 2^m) count queries.

    Raises:
        QueryError: If the query is cyclic.
    """
    if not query.is_acyclic():
        raise QueryError(f"{query.name} is cyclic; Yannakakis does not apply")
    from repro.mpc.dangling import remove_dangling

    reduced = remove_dangling(group, query, rels, f"{label}/reduce")

    # Price each distinct prefix once (orders share prefixes heavily).
    size_cache: dict[frozenset[str], int] = {}

    def prefix_size(prefix: frozenset[str]) -> int:
        if prefix not in size_cache:
            sub_query = Hypergraph(
                {n: query.attrs_of(n) for n in prefix}, name="prefix"
            )
            size_cache[prefix] = mpc_count(
                group, sub_query, {n: reduced[n] for n in prefix},
                f"{label}/count",
            )
        return size_cache[prefix]

    best: PlanChoice | None = None
    for order in enumerate_fold_orders(query, limit=limit):
        sizes = []
        for k in range(2, len(order)):  # the final join's size is OUT for all
            sizes.append(prefix_size(frozenset(order[:k])))
        worst = max(sizes, default=0)
        if best is None or worst < best.max_intermediate:
            plan: Plan = order[0]
            for n in order[1:]:
                plan = (plan, n)
            best = PlanChoice(
                plan=plan,
                order=order,
                max_intermediate=worst,
                intermediates=tuple(sizes),
            )
    assert best is not None
    return best


def price_fold_orders(
    group: Group,
    query: Hypergraph,
    rels: dict[str, DistRelation],
    label: str = "planner",
    limit: int = 64,
) -> tuple[PlanChoice, dict[str, int]]:
    """Best plan *and* the best/worst spread from one pricing pass.

    Combines :func:`best_yannakakis_plan` and :func:`plan_quality` so a
    caller that wants both (the serving engine's ``prepare``) pays one
    dangling-removal sweep and one prefix-size cache instead of two.
    """
    if not query.is_acyclic():
        raise QueryError(f"{query.name} is cyclic; Yannakakis does not apply")
    from repro.mpc.dangling import remove_dangling

    reduced = remove_dangling(group, query, rels, f"{label}/reduce")
    size_cache: dict[frozenset[str], int] = {}

    def prefix_size(prefix: frozenset[str]) -> int:
        if prefix not in size_cache:
            sub_query = Hypergraph(
                {n: query.attrs_of(n) for n in prefix}, name="prefix"
            )
            size_cache[prefix] = mpc_count(
                group, sub_query, {n: reduced[n] for n in prefix},
                f"{label}/count",
            )
        return size_cache[prefix]

    best: PlanChoice | None = None
    worsts: list[int] = []
    for order in enumerate_fold_orders(query, limit=limit):
        sizes = []
        for k in range(2, len(order)):  # the final join's size is OUT for all
            sizes.append(prefix_size(frozenset(order[:k])))
        worst = max(sizes, default=0)
        worsts.append(worst)
        if best is None or worst < best.max_intermediate:
            plan: Plan = order[0]
            for n in order[1:]:
                plan = (plan, n)
            best = PlanChoice(
                plan=plan,
                order=order,
                max_intermediate=worst,
                intermediates=tuple(sizes),
            )
    assert best is not None
    quality = {"best": min(worsts), "worst": max(worsts), "orders": len(worsts)}
    return best, quality


def plan_quality(
    group: Group,
    query: Hypergraph,
    rels: dict[str, DistRelation],
    label: str = "planner",
) -> dict[str, int]:
    """Best/worst max-intermediate sizes over all fold orders.

    The gap between them is Section 4.1's join-order sensitivity; when
    even ``best`` is OUT-sized (the doubled-trap phenomenon), switching to
    the Section 4.2/5.1 decomposition is the right move.
    """
    from repro.mpc.dangling import remove_dangling

    reduced = remove_dangling(group, query, rels, f"{label}/reduce")
    size_cache: dict[frozenset[str], int] = {}

    def prefix_size(prefix: frozenset[str]) -> int:
        if prefix not in size_cache:
            sub_query = Hypergraph(
                {n: query.attrs_of(n) for n in prefix}, name="prefix"
            )
            size_cache[prefix] = mpc_count(
                group, sub_query, {n: reduced[n] for n in prefix},
                f"{label}/count",
            )
        return size_cache[prefix]

    worsts = []
    for order in enumerate_fold_orders(query):
        sizes = [
            prefix_size(frozenset(order[:k])) for k in range(2, len(order))
        ]
        worsts.append(max(sizes, default=0))
    return {"best": min(worsts), "worst": max(worsts), "orders": len(worsts)}
