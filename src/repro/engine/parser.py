"""A small datalog-style query parser for the serving engine.

Queries arrive as text instead of hand-built hypergraphs::

    Q(A,B,C,D) :- R1(A,B), R2(B,C), R3(C,D)   # full natural join
    Q(A,B)     :- R1(A,B), R2(B,C)            # join-project (distinct pi_y)
    Q(B; count) :- R1(A,B), R2(B,C)           # join-aggregate, GROUP BY B
    Q(; sum)   :- R1(A,B), R2(B,C)            # total aggregate (y = {})
    line3                                      # catalog lookup by name

Body atoms bind *positionally*: ``R1(A,B)`` means column 0 of the
registered base relation ``R1`` plays variable ``A``.  Repeating a relation
name is a self-join; the repeated occurrences get hypergraph edge keys
``name@2``, ``name@3``, ... (which the grammar also accepts verbatim, so
canonical forms round-trip).  A bare identifier is looked up in
:data:`repro.query.catalog.CATALOG`; unknown names get near-miss
suggestions in the error message.

The parse result is structural only — no data is touched.  Binding edge
keys to registered relations happens in :class:`repro.engine.Engine`.
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass
from functools import cached_property

from repro.errors import ParseError
from repro.query.canonical import canonical_form
from repro.query.hypergraph import Hypergraph
from repro.semiring import (
    BOOLEAN,
    COUNT,
    MAX_TROPICAL,
    MIN_TROPICAL,
    SUM_PRODUCT,
    Semiring,
)

__all__ = ["AGGREGATES", "Binding", "ParsedQuery", "parse_query"]

#: Aggregate spec names accepted after ``;`` in a rule head.
AGGREGATES: dict[str, Semiring] = {
    "count": COUNT,
    "sum": SUM_PRODUCT,
    "min": MIN_TROPICAL,
    "max": MAX_TROPICAL,
    "bool": BOOLEAN,
}

_IDENT = re.compile(r"[A-Za-z_]\w*\Z")
#: Atom relation token: an identifier, optionally ``@k`` (self-join alias).
_REL_TOKEN = re.compile(r"([A-Za-z_]\w*)(?:@(\d+))?\Z")
_ATOM = re.compile(r"([A-Za-z_]\w*(?:@\d+)?)\s*\(([^()]*)\)")
_HEAD = re.compile(r"\A\s*([A-Za-z_]\w*)\s*\((.*)\)\s*\Z", re.DOTALL)


def _suggest(
    name: str, candidates, what: str, empty: str = "the catalog is empty"
) -> str:
    """``"; did you mean X?"`` suffix from close matches, or the catalog.

    With zero candidates there is nothing to suggest and nothing to list —
    say so explicitly (``empty``) instead of rendering an empty
    enumeration (``"; available: "``), which reads like a formatting bug.
    """
    candidates = list(candidates)
    if not candidates:
        return f"; {what}: none ({empty})"
    close = difflib.get_close_matches(name, candidates, n=3, cutoff=0.5)
    if not close:
        return f"; {what}: {', '.join(sorted(candidates))}"
    return f"; did you mean {' or '.join(close)}?"


@dataclass(frozen=True)
class Binding:
    """How one hypergraph edge binds to a registered base relation.

    Attributes:
        edge: The edge key in the parsed hypergraph (``R`` or ``R@2``).
        relation: The registered base-relation name (``R`` for both).
        variables: Query variables in atom order; the base relation's
            columns are renamed to these positionally.  ``None`` means
            bind columns by attribute name (catalog lookups).
    """

    edge: str
    relation: str
    variables: tuple[str, ...] | None


@dataclass(frozen=True)
class ParsedQuery:
    """A parsed datalog-style query: structure plus binding directives.

    Attributes:
        text: The original query text.
        head_name: The rule-head predicate name (query name).
        query: The body hypergraph (edge keys may carry ``@k`` aliases).
        output_attrs: Head variables in head order; ``None`` means the full
            natural join (head listed every body variable, no aggregate).
        aggregate: Aggregate spec name from :data:`AGGREGATES`, or ``None``.
        bindings: One :class:`Binding` per hypergraph edge, in atom order.
    """

    text: str
    head_name: str
    query: Hypergraph
    output_attrs: tuple[str, ...] | None
    aggregate: str | None
    bindings: tuple[Binding, ...]

    @property
    def kind(self) -> str:
        """``"join"`` (full), ``"project"`` (pi_y), or ``"aggregate"``."""
        if self.aggregate is not None:
            return "aggregate"
        return "join" if self.output_attrs is None else "project"

    @property
    def semiring(self) -> Semiring | None:
        """The aggregate's semiring (BOOLEAN for join-project), else None."""
        if self.aggregate is not None:
            return AGGREGATES[self.aggregate]
        return BOOLEAN if self.kind == "project" else None

    @cached_property
    def _canonical(self) -> str:
        return canonical_form(self.query, self.output_attrs, self.aggregate)

    def canonical(self) -> str:
        """Normalized text form — the engine's plan-cache key."""
        return self._canonical


def _parse_attr_list(text: str, where: str) -> tuple[str, ...]:
    """Split a comma-separated variable list, validating identifiers."""
    text = text.strip()
    if not text:
        return ()
    attrs = []
    for token in text.split(","):
        token = token.strip()
        if not _IDENT.match(token):
            raise ParseError(f"bad variable {token!r} in {where}")
        attrs.append(token)
    return tuple(attrs)


def _parse_body(body_text: str) -> list[tuple[str, tuple[str, ...]]]:
    """Parse ``R1(A,B), R2(B,C)`` into ``[(token, vars), ...]``."""
    atoms: list[tuple[str, tuple[str, ...]]] = []
    pos = 0
    for match in _ATOM.finditer(body_text):
        between = body_text[pos:match.start()].strip()
        expected = "," if atoms else ""
        if between != expected:
            raise ParseError(
                f"unexpected text {between!r} between body atoms"
                if between not in ("", ",")
                else "body atoms must be comma-separated"
            )
        token = match.group(1)
        variables = _parse_attr_list(match.group(2), f"atom {token}")
        if not variables:
            raise ParseError(f"atom {token!r} has no variables")
        if len(set(variables)) != len(variables):
            raise ParseError(
                f"atom {token!r} repeats a variable; self-equality filters "
                f"are not supported"
            )
        atoms.append((token, variables))
        pos = match.end()
    trailing = body_text[pos:].strip()
    if trailing:
        raise ParseError(f"unexpected trailing text {trailing!r} in body")
    if not atoms:
        raise ParseError("rule body has no atoms")
    return atoms


def _parse_catalog_name(name: str) -> ParsedQuery:
    """Look up a bare identifier in the query catalog."""
    from repro.query.catalog import CATALOG

    query = CATALOG.get(name)
    if query is None:
        raise ParseError(
            f"unknown catalog query {name!r}"
            + _suggest(name, CATALOG, "available")
        )
    bindings = tuple(
        Binding(edge=n, relation=n, variables=None) for n in query.edge_names
    )
    return ParsedQuery(
        text=name,
        head_name=name,
        query=query,
        output_attrs=None,
        aggregate=None,
        bindings=bindings,
    )


def parse_query(text: str) -> ParsedQuery:
    """Parse datalog-style query text (or a catalog name) into structure.

    Raises:
        ParseError: On any malformed input; messages include near-miss
            suggestions for catalog and aggregate names.
    """
    if not isinstance(text, str) or not text.strip():
        raise ParseError("empty query text")
    stripped = " ".join(text.split())
    if ":-" not in stripped:
        if _IDENT.match(stripped):
            return _parse_catalog_name(stripped)
        raise ParseError(
            f"expected 'Head(...) :- Body(...)' or a catalog name, got {text!r}"
        )

    head_text, _, body_text = stripped.partition(":-")
    head_match = _HEAD.match(head_text)
    if head_match is None:
        raise ParseError(f"bad rule head {head_text.strip()!r}")
    head_name, head_inner = head_match.group(1), head_match.group(2)

    aggregate: str | None = None
    if ";" in head_inner:
        attrs_part, _, agg_part = head_inner.partition(";")
        if ";" in agg_part:
            raise ParseError("rule head has more than one ';'")
        aggregate = agg_part.strip().lower()
        if aggregate not in AGGREGATES:
            raise ParseError(
                f"unknown aggregate {aggregate!r}"
                + _suggest(aggregate, AGGREGATES, "available")
            )
        head_inner = attrs_part
    head_attrs = _parse_attr_list(head_inner, f"head {head_name}")
    if len(set(head_attrs)) != len(head_attrs):
        raise ParseError(f"head {head_name!r} repeats a variable")

    atoms = _parse_body(body_text)

    # Assign hypergraph edge keys: first occurrence keeps the bare name,
    # self-join repeats get name@2, name@3, ...; explicit @k tokens are
    # honored so canonical forms round-trip.  Bare repeats skip keys that
    # explicit aliases already claim, so the two styles can mix.
    explicit = {token for token, _vars in atoms if "@" in token}
    edges: dict[str, tuple[str, ...]] = {}
    bindings: list[Binding] = []
    occurrences: dict[str, int] = {}
    for token, variables in atoms:
        rel_match = _REL_TOKEN.match(token)
        if rel_match is None:  # pragma: no cover - _ATOM already filtered
            raise ParseError(f"bad relation token {token!r}")
        base = rel_match.group(1)
        if rel_match.group(2) is not None:
            edge = token
        else:
            k = occurrences.get(base, 0) + 1
            edge = base if k == 1 else f"{base}@{k}"
            while edge in explicit:
                k += 1
                edge = f"{base}@{k}"
            occurrences[base] = k
        if edge in edges:
            raise ParseError(f"duplicate atom key {edge!r} in body")
        edges[edge] = variables
        bindings.append(Binding(edge=edge, relation=base, variables=variables))

    query = Hypergraph(edges, name=head_name)
    body_attrs = query.attributes
    unknown = [a for a in head_attrs if a not in body_attrs]
    if unknown:
        raise ParseError(
            f"head variable(s) {unknown} do not appear in the body"
            + _suggest(
                unknown[0], body_attrs, "body variables",
                empty="the body binds no variables",
            )
        )

    output_attrs: tuple[str, ...] | None = head_attrs
    if aggregate is None and set(head_attrs) == set(body_attrs):
        output_attrs = None  # full natural join

    return ParsedQuery(
        text=text.strip(),
        head_name=head_name,
        query=query,
        output_attrs=output_attrs,
        aggregate=aggregate,
        bindings=tuple(bindings),
    )
