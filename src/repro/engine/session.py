"""A persistent serving session: warm cluster, prepared plans, batches.

Everything else in the repo is one-shot: :func:`repro.core.runner.mpc_join`
builds a fresh :class:`~repro.mpc.cluster.Cluster` per call, so the
substrate caches attached to distributed relations never amortize across
queries.  :class:`Engine` is the serving-side answer:

* **Registered base relations** — named :class:`~repro.data.relation.
  Relation` objects, versioned on every update.
* **One warm cluster/backend** held across queries.  Distributed (and
  annotated) variants of each registered relation are cached keyed by
  ``(name, version, binding)``, so the per-relation substrate caches
  (sorted runs, key encodings) and the multiprocess workers'
  content-addressed memos keep paying off query after query.
* **``prepare()``** — parse, classify, resolve the algorithm
  (:func:`~repro.core.runner.auto_algorithm`), price the Yannakakis fold
  orders (:func:`~repro.core.planner.price_fold_orders`, Section 4.1)
  once, and cache
  the compiled plan keyed by the query's canonical form + bindings.  The
  entry records a data-stats fingerprint
  (:func:`~repro.data.stats.stats_fingerprint`); when a registered
  relation changes, the plan is revalidated (same stats) or recompiled
  (stats drifted) — a stale plan never serves, and stale *data* never
  serves because the distributed-relation caches are version-keyed.
* **``execute()``** — cold executions drive the resolved algorithm
  through the same :func:`~repro.core.runner.run_join_algorithm` /
  :func:`~repro.core.runner.run_aggregate_algorithm` seams the one-shot
  entry points use, *tracing the physical op schedule as they go*
  (:mod:`repro.plan`); warm executions replay that schedule through the
  :class:`~repro.plan.executor.Executor` — ledger re-charged bit-exactly,
  worker-local compute re-issued in fused ``run_ops`` batches — instead
  of re-driving Python control flow.  Either way, outputs and the
  per-query :class:`~repro.mpc.cluster.LoadReport` are bit-identical to
  ``mpc_join`` / ``mpc_join_aggregate`` (see ``tests/test_engine_parity``).
* **``submit_batch()``** — run many queries against the shared backend,
  optionally from multiple submitter threads, aggregating per-query
  metrics into an :class:`EngineStats` report.

Thread-safety: the engine serializes cluster use behind an internal lock
(per-query ledgers require exclusive access to the shared ledger), so
``execute`` may be called concurrently from many threads; executions are
correct and metrics are per-query, but they do not overlap in time.
"""

from __future__ import annotations

import difflib
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.planner import price_fold_orders
from repro.data.columns import ColumnBlock, pack_blob, unpack_blob
from repro.core.runner import (
    ALGORITHMS,
    auto_algorithm,
    run_aggregate_algorithm,
    run_join_algorithm,
)
from repro.core.yannakakis import Plan
from repro.data.instance import Instance
from repro.data.relation import Relation, Row
from repro.data.stats import stats_fingerprint
from repro.engine.parser import Binding, ParsedQuery, parse_query
from repro.errors import (
    DeadlineExceeded,
    EngineError,
    FaultError,
    PlanShipError,
    QueryQuarantined,
    ReproError,
)
from repro.mpc.backends import Backend
from repro.mpc.cluster import Cluster, LoadReport
from repro.mpc.distrel import DistRelation, distribute_instance, distribute_relation
from repro.obs import MetricsRegistry, NULL_TRACER, WireMeter, percentiles
from repro.plan import Executor, PhysicalPlan, TraceRecorder
from repro.plan.ship import (
    decode_ops,
    decode_plan,
    encode_ops,
    encode_plan,
    plan_digest,
    relation_digest,
    resolve_fn,
)
from repro.query.classify import classify
from repro.semiring.semirings import ALL_SEMIRINGS

__all__ = [
    "BatchReport",
    "Engine",
    "EngineStats",
    "ExecutionResult",
    "PreparedQuery",
    "QueryMetrics",
]

#: Downstream algorithms accepted for aggregate/project queries.
_AGG_ALGORITHMS = ("auto", "rhierarchical", "acyclic", "yannakakis")


@dataclass
class _ColumnarPayload:
    """A distributed result recorded as shared, immutable column blocks.

    Serving constructs a *fresh* lazy :class:`DistRelation` over the same
    blocks per replay, so the resident cache stays columnar forever: a
    caller that materializes rows does so on its own copy, which dies
    with the caller instead of pinning a row view (and its per-row tuple
    objects — pure GC ballast) inside the cache.
    """

    name: str
    attrs: tuple[str, ...]
    blocks: list

    def to_relation(self) -> DistRelation:
        return DistRelation.from_column_parts(self.name, self.attrs, self.blocks)


@dataclass
class _CachedResult:
    """A recorded execution, replayable while its data versions hold.

    The simulation is deterministic: re-running an unchanged plan over
    unchanged registered relations reproduces the same outputs and the
    same ledger bit for bit, so serving the recording *is* the execution
    (the same argument behind the substrate's ledger-replaying sorted-run
    cache).  Version mismatch ⇒ the recording is unservable.
    Distributed results are held as a :class:`_ColumnarPayload`.
    """

    relation_versions: dict[str, int]
    relation: Any
    scalar: Any
    report: LoadReport
    meta: dict[str, Any]
    out_size: int
    #: Resident bytes (packed columnar blob sizes, byte-exact) — the unit
    #: the engine's recording LRU budgets against.
    stored_bytes: int = 0

    def served_relation(self) -> Any:
        rel = self.relation
        if isinstance(rel, _ColumnarPayload):
            return rel.to_relation()
        return rel


@dataclass
class PreparedQuery:
    """A compiled, cached query plan.

    Attributes:
        parsed: The parsed query structure.
        key: Plan-cache key (canonical form + bindings + algorithm request).
        kind: ``"join"`` | ``"project"`` | ``"aggregate"``.
        query_class: Figure-1 class name of the body hypergraph.
        algorithm: Resolved join algorithm (joins) or downstream algorithm
            (aggregates; ``"auto"`` resolves per the residual query).
        plan: Priced Yannakakis fold plan (acyclic joins), consulted when
            ``algorithm == "yannakakis"``.
        plan_order: The fold order the plan encodes.
        plan_quality: Section 4.1 best/worst max-intermediate sizes — the
            Figure-3 planned-vs-decomposition gap, observable per query.
        fingerprint: Data-stats fingerprint the plan was compiled against.
        relation_versions: Registered-relation versions at compile time.
        prepare_seconds: Wall time spent compiling.
        uses: Number of executions served by this entry.
        trace: The traced :class:`~repro.plan.ir.PhysicalPlan` of this
            entry's last cold execution — the op schedule warm executions
            replay through the :class:`~repro.plan.executor.Executor`
            instead of re-driving the algorithm's Python control flow.
            ``None`` until first executed; refreshed whenever versions
            move.
    """

    parsed: ParsedQuery
    key: tuple
    kind: str
    query_class: str
    algorithm: str
    plan: Plan | None
    plan_order: tuple[str, ...] | None
    plan_quality: dict[str, int] | None
    fingerprint: str
    relation_versions: dict[str, int]
    prepare_seconds: float
    uses: int = 0
    cached_result: _CachedResult | None = None
    trace: PhysicalPlan | None = None


@dataclass(frozen=True)
class QueryMetrics:
    """Per-execution serving metrics.

    ``cache_hit`` — the plan cache served this query without touching data
    statistics.  ``plan_reused`` — the compiled plan was not recompiled
    (includes fingerprint revalidation after a data update).
    ``invalidated`` — a cached plan existed but was recompiled because the
    data stats drifted.  ``result_cached`` — the recorded execution was
    replayed instead of re-simulated (identical outputs and ledger).
    ``plan_replayed`` — the traced physical plan was replayed through the
    op executor (fused backend requests, ledger re-charged bit-exactly)
    instead of re-driving Python control flow.
    """

    text: str
    kind: str
    algorithm: str
    cache_hit: bool
    plan_reused: bool
    invalidated: bool
    result_cached: bool
    load: int
    max_step_load: int
    steps: int
    out_size: int
    wall_seconds: float
    plan_quality: dict[str, int] | None
    #: Physical bytes the backend shipped across processes for this query
    #: (0 for in-process backends and replayed recordings).  Observational
    #: only — the load fields above count logical tuples, never bytes.
    wire_bytes: int = 0
    #: The traced physical plan was replayed through the Executor.
    plan_replayed: bool = False
    #: Ops in the physical plan that served (or was traced by) this query.
    plan_ops: int = 0
    #: Worker-local (MapParts) ops among them.
    map_ops: int = 0
    #: Fused backend-request groups the replay dispatched (0 off-replay).
    fused_groups: int = 0
    #: Backend request rounds this execution issued (map dispatches on the
    #: cold path; run_ops rounds on the replay path; 0 for result serves).
    backend_requests: int = 0
    #: The execution failed (its :class:`ExecutionResult`, if any, carries
    #: the error); the load fields above are zero.
    failed: bool = False
    #: ``"ErrorType: message"`` when ``failed``.
    error: str | None = None
    #: The failure was a missed per-query deadline (or batch budget).
    deadline_exceeded: bool = False
    #: The query was re-run to completion on the serial backend after the
    #: warm backend faulted (degradation ladder, second-to-last rung).
    degraded_serial: bool = False
    #: Worker faults (deaths + round timeouts) the backend absorbed while
    #: serving this query — recovered, not failures.
    fault_events: int = 0
    #: Root trace id of this execution's span tree (``None`` when tracing
    #: is disabled — the engine's default ``NULL_TRACER``).
    trace_id: str | None = None

    @property
    def fusion_ratio(self) -> float:
        """Worker-local ops per backend request on the replay path."""
        return self.map_ops / self.fused_groups if self.fused_groups else 1.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "text": self.text,
            "kind": self.kind,
            "algorithm": self.algorithm,
            "cache_hit": self.cache_hit,
            "plan_reused": self.plan_reused,
            "invalidated": self.invalidated,
            "result_cached": self.result_cached,
            "load": self.load,
            "max_step_load": self.max_step_load,
            "steps": self.steps,
            "out_size": self.out_size,
            "wall_seconds": self.wall_seconds,
            "plan_quality": self.plan_quality,
            "wire_bytes": self.wire_bytes,
            "plan_replayed": self.plan_replayed,
            "plan_ops": self.plan_ops,
            "map_ops": self.map_ops,
            "fused_groups": self.fused_groups,
            "fusion_ratio": self.fusion_ratio,
            "backend_requests": self.backend_requests,
            "failed": self.failed,
            "error": self.error,
            "deadline_exceeded": self.deadline_exceeded,
            "degraded_serial": self.degraded_serial,
            "fault_events": self.fault_events,
            "trace_id": self.trace_id,
        }


@dataclass
class EngineStats:
    """Aggregated serving metrics for a session or a batch.

    Counters aggregate over the whole lifetime; ``per_query`` keeps the
    most recent ``max_per_query`` records (unbounded when ``None``) so a
    long-lived serving session does not grow memory per request.
    """

    p: int
    backend: str
    queries: int = 0
    prepares: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    invalidations: int = 0
    result_hits: int = 0
    plan_replays: int = 0
    #: Shipped plans installed into this engine's plan cache (the serving
    #: tier's cross-replica plan index feeds this; a local cold trace does
    #: not count).
    plans_installed: int = 0
    total_load: int = 0
    max_load: int = 0
    total_wall_seconds: float = 0.0
    total_wire_bytes: int = 0
    total_backend_requests: int = 0
    failures: int = 0
    deadline_misses: int = 0
    #: Quarantine events (a query entered quarantine) and subsequent
    #: fast-fails served from it.
    quarantined: int = 0
    quarantine_fast_fails: int = 0
    degraded_serial: int = 0
    fault_events: int = 0
    per_query: list[QueryMetrics] = field(default_factory=list)
    max_per_query: int | None = None

    def record(self, metrics: QueryMetrics) -> None:
        self.queries += 1
        if metrics.failed:
            self.failures += 1
        if metrics.deadline_exceeded:
            self.deadline_misses += 1
        if metrics.degraded_serial:
            self.degraded_serial += 1
        self.fault_events += metrics.fault_events
        if metrics.plan_reused:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        if metrics.invalidated:
            self.invalidations += 1
        if metrics.result_cached:
            self.result_hits += 1
        if metrics.plan_replayed:
            self.plan_replays += 1
        self.total_load += metrics.load
        self.max_load = max(self.max_load, metrics.load)
        self.total_wall_seconds += metrics.wall_seconds
        self.total_wire_bytes += metrics.wire_bytes
        self.total_backend_requests += metrics.backend_requests
        self.per_query.append(metrics)
        if self.max_per_query is not None and len(self.per_query) > self.max_per_query:
            del self.per_query[: len(self.per_query) - self.max_per_query]

    def latency_percentiles(self) -> dict[str, float]:
        """p50/p95/p99 wall seconds over the retained per-query window.

        Exact sample percentiles (:func:`repro.obs.percentiles`) over
        ``per_query`` — bounded by ``max_per_query``, so a long session
        reports its *recent* latency distribution — failed executions
        excluded.  All zero when nothing qualifies.
        """
        return percentiles(
            m.wall_seconds for m in self.per_query if not m.failed
        )

    def plan_gaps(self) -> dict[str, dict[str, float]]:
        """Per distinct query text: the Figure-3 planned-vs-worst gap."""
        gaps: dict[str, dict[str, float]] = {}
        for m in self.per_query:
            if m.plan_quality is None or m.text in gaps:
                continue
            best = m.plan_quality["best"]
            worst = m.plan_quality["worst"]
            gaps[m.text] = {
                "best": best,
                "worst": worst,
                "orders": m.plan_quality["orders"],
                "gap": worst / best if best else 1.0,
            }
        return gaps

    def summary(self) -> str:
        lines = [
            f"{self.queries} queries on backend={self.backend} p={self.p}: "
            f"{self.cache_hits} plan hits / {self.cache_misses} misses / "
            f"{self.invalidations} invalidations / {self.result_hits} "
            f"result replays / {self.plan_replays} op replays, total load "
            f"{self.total_load} (max {self.max_load}), "
            f"{self.total_wire_bytes} wire bytes, "
            f"{self.total_backend_requests} backend requests, "
            f"{self.total_wall_seconds:.3f}s wall"
        ]
        lat = self.latency_percentiles()
        if any(lat.values()):
            lines.append(
                f"  latency: p50={lat['p50'] * 1e3:.2f}ms "
                f"p95={lat['p95'] * 1e3:.2f}ms p99={lat['p99'] * 1e3:.2f}ms"
            )
        if (
            self.failures or self.fault_events or self.quarantined
            or self.quarantine_fast_fails or self.degraded_serial
        ):
            lines.append(
                f"  faults: {self.fault_events} absorbed, {self.failures} "
                f"failures ({self.deadline_misses} deadline), "
                f"{self.degraded_serial} serial degradations, "
                f"{self.quarantined} quarantined "
                f"(+{self.quarantine_fast_fails} fast-fails)"
            )
        for text, gap in self.plan_gaps().items():
            lines.append(
                f"  plan gap {gap['gap']:.2f}x (best {gap['best']} / worst "
                f"{gap['worst']} over {gap['orders']} orders): {text}"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        return {
            "p": self.p,
            "backend": self.backend,
            "queries": self.queries,
            "prepares": self.prepares,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "invalidations": self.invalidations,
            "result_hits": self.result_hits,
            "plan_replays": self.plan_replays,
            "plans_installed": self.plans_installed,
            "total_load": self.total_load,
            "max_load": self.max_load,
            "total_wall_seconds": self.total_wall_seconds,
            "total_wire_bytes": self.total_wire_bytes,
            "total_backend_requests": self.total_backend_requests,
            "failures": self.failures,
            "deadline_misses": self.deadline_misses,
            "quarantined": self.quarantined,
            "quarantine_fast_fails": self.quarantine_fast_fails,
            "degraded_serial": self.degraded_serial,
            "fault_events": self.fault_events,
            "latency_percentiles": self.latency_percentiles(),
            "plan_gaps": self.plan_gaps(),
            "per_query": [m.as_dict() for m in self.per_query],
        }


@dataclass
class ExecutionResult:
    """Outcome of one engine execution.

    ``relation`` is a :class:`~repro.mpc.distrel.DistRelation` for full
    joins (distributed, exactly as :func:`~repro.core.runner.mpc_join`
    emits it), a :class:`~repro.data.relation.Relation` for join-project /
    group-by aggregates, or ``None`` for total aggregates (see ``scalar``).

    ``error`` is ``None`` on success.  A direct :meth:`Engine.execute`
    raises instead of returning a failed result; only
    :meth:`Engine.submit_batch` embeds failures (so batch results stay
    aligned with the submitted queries) — check :attr:`ok` before using
    the payload of a batch result.
    """

    prepared: PreparedQuery | None
    relation: DistRelation | Relation | None
    scalar: Any
    report: LoadReport
    metrics: QueryMetrics
    meta: dict[str, Any] = field(default_factory=dict)
    error: Exception | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def rows(self) -> list[Row]:
        if isinstance(self.relation, DistRelation):
            return self.relation.all_rows()
        if isinstance(self.relation, Relation):
            return list(self.relation.rows)
        return []

    @property
    def output_size(self) -> int:
        return self.metrics.out_size


@dataclass
class BatchReport:
    """Results and aggregated metrics of one :meth:`Engine.submit_batch`."""

    results: list[ExecutionResult]
    stats: EngineStats


class Engine:
    """A concurrent serving session over one warm cluster.

    Args:
        p: Number of simulated servers for every query.
        backend: Execution backend (instance, registered name, or ``None``
            for the process default) — held warm for the session lifetime.
        result_cache: Serve recorded executions while the touched
            relations' versions are unchanged (default).  The simulation
            is deterministic, so a replayed recording is bit-identical to
            a re-run — outputs and ledger alike; pass ``False`` to force
            every execution back onto the cluster (the op-replay path, or
            a full re-drive with ``plan_replay=False``).
        plan_replay: Replay the traced physical plan on warm executions
            (default): the recorded op schedule re-charges the ledger
            bit-exactly and re-issues the worker-local compute through
            fused :meth:`~repro.mpc.backends.Backend.run_ops` batches,
            instead of re-driving the algorithm's Python control flow.
            Pass ``False`` to re-drive every execution (the pre-plan
            baseline the fusion benchmark compares against).
        fusion: Batch adjacent worker-local ops of a replayed plan into
            single backend requests (default); ``False`` dispatches one
            request per op (the unfused baseline).
        pipeline: Dispatch replayed backend rounds asynchronously
            (default): the executor posts ledger charges while a round is
            in flight, and — because each warm replay runs on its own
            scratch ledger over the shared backend — concurrent
            :meth:`submit_batch` submitters overlap whole queries instead
            of serializing on the engine lock.  ``False`` awaits every
            round synchronously (the PR-5 behaviour, kept as the
            benchmark baseline).
        result_cache_entries: LRU bound on recorded executions held by
            the session (``None`` = unbounded).  Recordings back both the
            result cache and plan replay; evicting one falls the next
            warm execution back to a (re-recording) full drive.
        result_cache_bytes: Byte bound on the same LRU, measured as the
            exact packed-blob size of each recording's column blocks
            (``None`` = unbounded).
        degrade_to_serial: When the warm backend faults past its own
            recovery (a :class:`~repro.errors.FaultError` escapes), re-run
            the query to completion on a scratch serial cluster — the
            second-to-last rung of the degradation ladder — verifying the
            result against any valid cached recording (determinism is the
            oracle).  ``False`` skips straight to quarantine: the failure
            is recorded and subsequent submissions of the same query
            fast-fail with :class:`~repro.errors.QueryQuarantined` until
            its input relations change version.
        registry: :class:`~repro.obs.MetricsRegistry` to instrument into
            (``None`` = a private registry per engine).  The engine
            registers its query counters/latency histograms plus *views*
            over :class:`EngineStats` and the backend's wire/fault
            counters, so one scrape (:meth:`metrics_text`) shows the
            whole session.
        tracer: :class:`~repro.obs.Tracer` minting one root ``query``
            span per execution, threaded engine → executor → backend →
            worker rounds.  ``None`` (default) installs the no-op
            ``NULL_TRACER``: spans cost one attribute read on the hot
            path (the ≤3% overhead gate in ``benchmarks/bench_obs.py``).
        observe: Record per-query registry metrics (counters + latency
            histograms).  ``False`` skips registry updates on the query
            path entirely — the bare baseline the overhead benchmark
            compares against.  Never affects :class:`EngineStats` or the
            :class:`~repro.mpc.cluster.LoadReport` ledger.

    Example::

        engine = Engine(p=8)
        engine.register(Relation("R1", ("A", "B"), rows1))
        engine.register(Relation("R2", ("B", "C"), rows2))
        res = engine.execute("Q(A,B) :- R1(A,B), R2(B,C)")
        print(res.rows(), res.report.load, res.metrics.cache_hit)
    """

    def __init__(
        self,
        p: int = 8,
        backend: Backend | str | None = None,
        result_cache: bool = True,
        plan_replay: bool = True,
        fusion: bool = True,
        pipeline: bool = True,
        result_cache_entries: int | None = 256,
        result_cache_bytes: int | None = 128 * 1024 * 1024,
        degrade_to_serial: bool = True,
        registry: MetricsRegistry | None = None,
        tracer: Any = None,
        observe: bool = True,
    ) -> None:
        self.p = p
        self.result_cache = result_cache
        self.plan_replay = plan_replay
        self.fusion = fusion
        self.pipeline = pipeline
        self.result_cache_entries = result_cache_entries
        self.result_cache_bytes = result_cache_bytes
        self.degrade_to_serial = degrade_to_serial
        self._cluster = Cluster(p, backend=backend)
        self._group = self._cluster.root_group()
        self._lock = threading.RLock()
        self._relations: dict[str, Relation] = {}
        self._versions: dict[str, int] = {}
        self._plans: dict[tuple, PreparedQuery] = {}
        # (name, version, edge, variables) -> positionally-renamed Relation
        self._bound_cache: dict[tuple, Relation] = {}
        # (name, version, edge, variables, aggregate|None) -> DistRelation
        self._dist_cache: dict[tuple, DistRelation] = {}
        # Recording LRU: plan key -> approx bytes, least recent first.
        self._recordings: OrderedDict[tuple, int] = OrderedDict()
        self._recording_bytes = 0
        # plan key -> {"versions", "error"}: queries that exhausted the
        # degradation ladder; paroled when their input versions move.
        self._quarantine: dict[tuple, dict[str, Any]] = {}
        self._stats = EngineStats(
            p=p, backend=self._cluster.backend.name, max_per_query=1024
        )
        self.observe = observe
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # EngineStats and the backend's wire/fault counters join the
        # registry as views (no storage migration — their locking stays
        # where it lives); every scrape shows the merged picture.
        self.registry.register_view(self._engine_view)
        self.registry.register_view(self._backend_view)

    # ------------------------------------------------------------------
    # Base-relation registry
    # ------------------------------------------------------------------
    @property
    def backend_name(self) -> str:
        return self._cluster.backend.name

    def register(self, relation: Relation, name: str | None = None) -> int:
        """Register (or update) a named base relation; returns its version.

        Updating bumps the version: cached distributed variants of the old
        version are dropped, and prepared plans that touch the relation are
        revalidated against fresh statistics on their next use.
        """
        name = name or relation.name
        with self._lock:
            version = self._versions.get(name, 0) + 1
            self._versions[name] = version
            self._relations[name] = relation
            for cache in (self._bound_cache, self._dist_cache):
                stale = [k for k in cache if k[0] == name and k[1] != version]
                for k in stale:
                    del cache[k]
            # A trace or recording touching the updated relation can never
            # serve again (its versions no longer match) — drop both now
            # rather than on next execution, so traces stop pinning the
            # old-version distributed parts and dead recordings stop
            # occupying (and evicting from) the recording LRU.
            for entry in self._plans.values():
                trace = entry.trace
                if trace is not None and name in trace.relation_versions:
                    entry.trace = None
                cached = entry.cached_result
                if cached is not None and name in cached.relation_versions:
                    entry.cached_result = None
                    self._drop_recording(entry.key)
            return version

    def relation_names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._relations))

    def relation_version(self, name: str) -> int:
        with self._lock:
            return self._versions.get(name, 0)

    def _base(self, name: str) -> Relation:
        rel = self._relations.get(name)
        if rel is None:
            if not self._relations:
                # Nothing to fuzzy-match or enumerate: say what is
                # actually wrong instead of printing an empty list.
                raise EngineError(
                    f"no registered relation {name!r}; the catalog is "
                    f"empty — register relations before querying"
                )
            close = difflib.get_close_matches(name, self._relations, n=3, cutoff=0.5)
            hint = (
                f"; did you mean {' or '.join(close)}?"
                if close
                else f"; registered: {sorted(self._relations)}"
            )
            raise EngineError(f"no registered relation {name!r}{hint}")
        return rel

    def _bound(self, binding: Binding) -> Relation:
        """The base relation renamed to the binding's edge key + variables."""
        base = self._base(binding.relation)
        version = self._versions[binding.relation]
        key = (binding.relation, version, binding.edge, binding.variables)
        cached = self._bound_cache.get(key)
        if cached is None:
            # Binding is a rename: rows are already deduplicated (and
            # annotations combined) in the base relation, so the bound
            # variant shares rows *and* the columnar backing — distributed
            # variants slice the same encoded columns for every binding.
            if binding.variables is None:
                cached = (
                    base if base.name == binding.edge
                    else base.renamed(binding.edge)
                )
            else:
                if len(binding.variables) != len(base.attrs):
                    raise EngineError(
                        f"atom {binding.edge}({','.join(binding.variables)}) has "
                        f"arity {len(binding.variables)} but relation "
                        f"{binding.relation!r} has columns {base.attrs}"
                    )
                cached = base.renamed(binding.edge, binding.variables)
            self._bound_cache[key] = cached
        return cached

    def instance_for(self, parsed: ParsedQuery) -> Instance:
        """Materialize the query's instance from registered relations.

        Public so conformance/parity tests and benchmarks can hand the
        *identical* instance to the one-shot entry points.
        """
        with self._lock:
            return Instance(
                parsed.query, {b.edge: self._bound(b) for b in parsed.bindings}
            )

    def _dist_rels(
        self, parsed: ParsedQuery, aggregate: str | None = None
    ) -> dict[str, DistRelation]:
        """Cached distributed (and possibly annotated) relations per edge."""
        rels: dict[str, DistRelation] = {}
        semiring = parsed.semiring
        for b in parsed.bindings:
            version = self._versions.get(b.relation, 0)
            key = (b.relation, version, b.edge, b.variables, aggregate)
            dist = self._dist_cache.get(key)
            if dist is None:
                rel = self._bound(b)
                if aggregate is not None:
                    if not rel.annotated:
                        rel = rel.with_annotations(semiring)
                    dist = distribute_relation(rel, self._group, annotate=True)
                else:
                    dist = distribute_relation(rel, self._group)
                self._dist_cache[key] = dist
            rels[b.edge] = dist
        return rels

    # ------------------------------------------------------------------
    # Recording LRU (backs the result cache AND plan replay)
    # ------------------------------------------------------------------
    def _recording_nbytes(self, stored: Any) -> int:
        """Resident bytes of a recording's payload, byte-exact.

        Sizes are the *packed blob* lengths of the stored column blocks —
        the canonical resident encoding — not ``approx_nbytes()``
        estimates: the estimate priced dictionary columns by their code
        arrays alone, undercounting dictionary-heavy blocks (wide string
        dictionaries can dwarf their uint8 codes) badly enough for the
        ``result_cache_bytes`` cap to be blown in practice.  Blocks whose
        object columns resist pickling fall back to the estimate — better
        an approximate charge than an unrecordable execution.
        """
        def block_bytes(block: ColumnBlock) -> int:
            try:
                return len(pack_blob((), block))
            except Exception:  # noqa: BLE001 - unpicklable values
                return block.approx_nbytes()

        if isinstance(stored, _ColumnarPayload):
            return 256 + sum(block_bytes(b) for b in stored.blocks)
        if isinstance(stored, Relation):
            return 256 + block_bytes(stored.columns)
        return 256

    def _store_recording(self, entry: PreparedQuery, recording: _CachedResult) -> None:
        """Attach a recording to its plan entry under the LRU bounds.

        The LRU is keyed by plan-cache key and budgets byte-exact
        resident sizes (packed columnar blob lengths) alongside an entry
        count, so a long serving session cannot grow recording memory
        without limit.  Evicting a recording drops both the result-cache serve
        and the plan-replay fast path for that entry; the next execution
        re-drives and re-records.
        """
        key = entry.key
        old = self._recordings.pop(key, None)
        if old is not None:
            self._recording_bytes -= old
        cap_e = self.result_cache_entries
        cap_b = self.result_cache_bytes
        if cap_b is not None and recording.stored_bytes > cap_b:
            # The recording alone exceeds the byte budget: it is not
            # retained (every execution of this query re-drives) — and it
            # must not flush everyone else's recordings on its way out.
            # The trace goes with it (trace lifetime == recording
            # lifetime): unreplayable, it would only pin its inputs.
            entry.cached_result = None
            entry.trace = None
            return
        entry.cached_result = recording
        self._recordings[key] = recording.stored_bytes
        self._recording_bytes += recording.stored_bytes
        while self._recordings and (
            (cap_e is not None and len(self._recordings) > cap_e)
            or (cap_b is not None and self._recording_bytes > cap_b)
        ):
            victim, size = self._recordings.popitem(last=False)
            self._recording_bytes -= size
            ventry = self._plans.get(victim)
            if ventry is not None:
                ventry.cached_result = None
                # A trace without its recording can never replay (the
                # replay path serves outputs from the recording), so it
                # would only pin its MapParts input parts — drop it too:
                # trace lifetime is bounded by recording lifetime, and
                # the LRU's entry cap therefore bounds both.
                ventry.trace = None

    def _touch_recording(self, key: tuple) -> None:
        if key in self._recordings:
            self._recordings.move_to_end(key)

    def _drop_recording(self, key: tuple) -> None:
        size = self._recordings.pop(key, None)
        if size is not None:
            self._recording_bytes -= size

    # ------------------------------------------------------------------
    # Prepare: classify -> auto_algorithm -> priced plan, cached
    # ------------------------------------------------------------------
    def prepare(
        self, query: str | ParsedQuery, algorithm: str = "auto"
    ) -> PreparedQuery:
        """Compile (or fetch from cache) the plan for a query.

        Args:
            query: Datalog-style text, a catalog name, or a parsed query.
            algorithm: ``"auto"`` resolves via
                :func:`~repro.core.runner.auto_algorithm` for joins and the
                residual-query classification for aggregates; a concrete
                name pins the algorithm (``"yannakakis"`` replays the
                priced Section 4.1 plan).
        """
        parsed = query if isinstance(query, ParsedQuery) else parse_query(query)
        with self._lock:
            entry, _status = self._resolve(parsed, algorithm)
            return entry

    def _plan_key(self, parsed: ParsedQuery, algorithm: str) -> tuple:
        # Bindings are keyed order-insensitively (atom order is irrelevant)
        # but participate in the key: two queries with one canonical form
        # can still bind a base relation's columns to different variables
        # (``R(A,B)`` vs ``R(B,A)``), and those must not share a plan.
        return (
            parsed.canonical(),
            tuple(sorted(parsed.bindings, key=lambda b: b.edge)),
            algorithm,
        )

    def _current_versions(self, parsed: ParsedQuery) -> dict[str, int]:
        return {
            b.relation: self._versions.get(b.relation, 0)
            for b in parsed.bindings
        }

    def _resolve(
        self, parsed: ParsedQuery, algorithm: str
    ) -> tuple[PreparedQuery, str]:
        """Fetch/compile the plan; returns the entry and its cache status.

        Status is ``"hit"`` (versions unchanged — served without touching
        data statistics), ``"revalidated"`` (data changed but its stats
        fingerprint did not, so the compiled plan is kept), ``"invalidated"``
        (stats drifted — recompiled), or ``"miss"`` (first compile).
        """
        key = self._plan_key(parsed, algorithm)
        entry = self._plans.get(key)
        if entry is not None:
            versions = self._current_versions(parsed)
            if versions == entry.relation_versions:
                return entry, "hit"
            # Data changed since compile: a stale plan must never serve.
            fingerprint = stats_fingerprint(self.instance_for(parsed))
            if fingerprint == entry.fingerprint:
                # Same planning statistics: the compiled plan is still
                # optimal; revalidate it against the new versions.  Fresh
                # data is picked up regardless via the version-keyed
                # distributed-relation caches.
                entry.relation_versions = versions
                return entry, "revalidated"
            entry = self._compile(parsed, algorithm, key)
            self._plans[key] = entry
            self._drop_recording(key)
            return entry, "invalidated"
        entry = self._compile(parsed, algorithm, key)
        self._plans[key] = entry
        return entry, "miss"

    def _compile(
        self, parsed: ParsedQuery, algorithm: str, key: tuple
    ) -> PreparedQuery:
        t0 = time.perf_counter()
        kind = parsed.kind
        if kind == "join":
            if algorithm not in ALGORITHMS:
                raise EngineError(
                    f"unknown algorithm {algorithm!r}; pick from {ALGORITHMS}"
                )
            resolved = (
                auto_algorithm(parsed.query) if algorithm == "auto" else algorithm
            )
        else:
            if algorithm not in _AGG_ALGORITHMS:
                raise EngineError(
                    f"unknown downstream algorithm {algorithm!r}; pick from "
                    f"{_AGG_ALGORITHMS}"
                )
            resolved = algorithm

        instance = self.instance_for(parsed)
        fingerprint = stats_fingerprint(instance)

        plan = plan_order = quality = None
        if parsed.query.is_acyclic():
            # Planning runs on a scratch cluster (same backend) so pricing
            # load never leaks into any per-query serving ledger; one pass
            # prices the best plan and the best/worst spread together.
            scratch = Cluster(self.p, backend=self._cluster.backend)
            scratch_group = scratch.root_group()
            scratch_rels = distribute_instance(instance, scratch_group)
            choice, quality = price_fold_orders(
                scratch_group, parsed.query, scratch_rels
            )
            if kind == "join":
                plan, plan_order = choice.plan, choice.order

        entry = PreparedQuery(
            parsed=parsed,
            key=key,
            kind=kind,
            query_class=classify(parsed.query).name,
            algorithm=resolved,
            plan=plan,
            plan_order=plan_order,
            plan_quality=quality,
            fingerprint=fingerprint,
            relation_versions=self._current_versions(parsed),
            prepare_seconds=time.perf_counter() - t0,
        )
        self._stats.prepares += 1
        return entry

    # ------------------------------------------------------------------
    # Execute: replay the prepared plan on the warm cluster
    # ------------------------------------------------------------------
    def execute(
        self,
        query: str | ParsedQuery | PreparedQuery,
        algorithm: str = "auto",
        deadline: float | None = None,
    ) -> ExecutionResult:
        """Run a query, preparing (or reusing the cached plan) as needed.

        Outputs and the per-query :class:`~repro.mpc.cluster.LoadReport`
        are bit-identical to the one-shot entry points run on the same
        instance with the same resolved algorithm.

        Args:
            deadline: Seconds this call may spend executing (``None`` =
                unbounded).  Checked cooperatively at every ledger post,
                so an expired deadline cancels the query *between
                simulated communication rounds* and raises
                :class:`~repro.errors.DeadlineExceeded`; partial ledger
                state is discarded.  A deadline miss is a failure of this
                call only — it never quarantines the query.

        Raises:
            QueryQuarantined: The query previously exhausted the
                degradation ladder and its input relations are unchanged.
            DeadlineExceeded: The deadline expired mid-execution.
            FaultError: The backend faulted past recovery and
                ``degrade_to_serial`` is off (quarantines the query).
        """
        if isinstance(query, PreparedQuery):
            parsed, algorithm = query.parsed, query.key[2]
        else:
            parsed = query if isinstance(query, ParsedQuery) else parse_query(query)
        # Root of this execution's span tree and its wire-byte meter; both
        # cost ~nothing when tracing is off (NULL_TRACER hands out the
        # no-op NULL_SPAN singleton).
        span = self.tracer.span("query", query=parsed.text, algorithm=algorithm)
        meter = WireMeter()
        try:
            result = self._execute_traced(parsed, algorithm, deadline, span, meter)
        except Exception as exc:
            span.end(error=f"{type(exc).__name__}: {exc}")
            raise
        if span.recording:
            m = result.metrics
            span.set(
                path=(
                    "cached" if m.result_cached
                    else "replay" if m.plan_replayed
                    else "degraded" if m.degraded_serial
                    else "cold"
                ),
                wire_bytes=m.wire_bytes,
                load=m.load,
            )
        span.end()
        return result

    def _execute_traced(
        self,
        parsed: ParsedQuery,
        algorithm: str,
        deadline: float | None,
        span: Any,
        meter: WireMeter,
    ) -> ExecutionResult:
        """The :meth:`execute` body under one root span and wire meter.

        ``span`` parents the path-level child spans (``cold_execute`` /
        ``replay`` / ``degrade_serial``); ``meter`` travels into every
        backend round this query issues, so ``wire_bytes`` is per-query
        by construction — before the meter, concurrent submitters
        computed before/after deltas of the backend's *shared* cumulative
        counters and double-counted each other's bytes.
        """
        with self._lock:
            entry, status = self._resolve(parsed, algorithm)
            cache_hit = status == "hit"
            plan_reused = status in ("hit", "revalidated")
            invalidated = status == "invalidated"
            t0 = time.perf_counter()
            versions = self._current_versions(parsed)
            held = self._quarantine.get(entry.key)
            if held is not None:
                if held["versions"] == versions:
                    self._stats.quarantine_fast_fails += 1
                    exc: ReproError = QueryQuarantined(
                        "query is quarantined until its relations change: "
                        + held["error"]
                    )
                    self._record_failure(entry, exc, t0, span.trace_id)
                    raise exc
                # Data moved since the failure: parole and retry for real.
                del self._quarantine[entry.key]
            if deadline is not None and deadline <= 0:
                exc = DeadlineExceeded(
                    "deadline expired before execution began"
                )
                self._record_failure(entry, exc, t0, span.trace_id)
                raise exc
            cached = entry.cached_result
            if (
                self.result_cache
                and cached is not None
                and cached.relation_versions == versions
            ):
                entry.uses += 1
                self._touch_recording(entry.key)
                metrics = QueryMetrics(
                    text=entry.parsed.text,
                    kind=entry.kind,
                    algorithm=entry.algorithm,
                    cache_hit=cache_hit,
                    plan_reused=plan_reused,
                    invalidated=invalidated,
                    result_cached=True,
                    load=cached.report.load,
                    max_step_load=cached.report.max_step_load,
                    steps=cached.report.steps,
                    out_size=cached.out_size,
                    wall_seconds=time.perf_counter() - t0,
                    plan_quality=entry.plan_quality,
                    trace_id=span.trace_id,
                )
                self._record(metrics, "cached")
                return ExecutionResult(
                    prepared=entry,
                    relation=cached.served_relation(),
                    scalar=cached.scalar,
                    report=cached.report,
                    metrics=metrics,
                    meta=dict(cached.meta),
                )
            deadline_at = (
                time.monotonic() + deadline if deadline is not None else None
            )
            faults_before = self._fault_level()
            trace = entry.trace
            warm = (
                self.plan_replay
                and trace is not None
                and trace.relation_versions == versions
                and cached is not None
                and cached.relation_versions == versions
            )
            if not warm:
                # Cold (or re-drive) path: owns the serving cluster and
                # its recorder, so it runs under the engine lock end to
                # end.
                self._cluster.deadline = deadline_at
                try:
                    return self._execute_on_cluster(
                        entry, versions, t0,
                        cache_hit, plan_reused, invalidated, faults_before,
                        span, meter,
                    )
                except DeadlineExceeded as exc:
                    # Cooperative cancellation fired between rounds; the
                    # partial ledger is discarded.  A miss never
                    # quarantines — the same query with a looser deadline
                    # is fine.
                    self._cluster.recorder = None
                    self._cluster.reset()
                    self._record_failure(entry, exc, t0, span.trace_id)
                    raise
                except FaultError as exc:
                    self._cluster.recorder = None
                    self._cluster.reset()
                    return self._handle_fault(
                        entry, versions, exc, t0, deadline_at,
                        cache_hit, plan_reused, invalidated, faults_before,
                        span,
                    )
                finally:
                    self._cluster.deadline = None
        # Warm path: replay the traced schedule on a scratch ledger over
        # the shared backend, OUTSIDE the engine lock.  Charges are
        # replay-pure and outputs come from the recording, so nothing
        # per-query touches the serving cluster — concurrent submitters
        # overlap whole replays, and the backend serializes its rounds
        # internally (I/O lock + ordered dispatcher).
        try:
            return self._replay_warm(
                entry, trace, cached, t0, deadline_at,
                cache_hit, plan_reused, invalidated, faults_before,
                span, meter,
            )
        except DeadlineExceeded as exc:
            with self._lock:
                self._record_failure(entry, exc, t0, span.trace_id)
            raise
        except FaultError as exc:
            with self._lock:
                return self._handle_fault(
                    entry, versions, exc, t0, deadline_at,
                    cache_hit, plan_reused, invalidated, faults_before,
                    span,
                )

    def _handle_fault(
        self,
        entry: PreparedQuery,
        versions: dict[str, int],
        exc: Exception,
        t0: float,
        deadline_at: float | None,
        cache_hit: bool,
        plan_reused: bool,
        invalidated: bool,
        faults_before: int,
        span: Any,
    ) -> ExecutionResult:
        """The backend faulted past its own recovery: next rungs of the
        ladder — re-run on a scratch serial cluster; if that is off (or
        itself fails), quarantine the query.  Caller holds the lock.
        """
        if self.degrade_to_serial:
            try:
                return self._serial_degrade(
                    entry, versions, exc, t0, deadline_at,
                    cache_hit, plan_reused, invalidated,
                    faults_before, span,
                )
            except DeadlineExceeded as exc2:
                self._record_failure(entry, exc2, t0, span.trace_id)
                raise
            except ReproError as exc2:
                self._quarantine_entry(entry, versions, exc2)
                self._record_failure(entry, exc2, t0, span.trace_id)
                raise
        self._quarantine_entry(entry, versions, exc)
        self._record_failure(entry, exc, t0, span.trace_id)
        raise exc

    def _replay_warm(
        self,
        entry: PreparedQuery,
        trace: PhysicalPlan,
        cached: _CachedResult,
        t0: float,
        deadline_at: float | None,
        cache_hit: bool,
        plan_reused: bool,
        invalidated: bool,
        faults_before: int,
        span: Any,
        meter: WireMeter,
    ) -> ExecutionResult:
        """One warm execution: replay the traced op schedule, serve the
        recording.

        Charges re-post the recorded count vectors (ledger bit-identical
        by construction) onto a per-call scratch ledger over the shared
        backend, worker-local ops re-issue through fused (and pipelined)
        ``run_ops`` batches, and the outputs are served from the
        recording — no Python control flow of the algorithm re-runs and
        the engine lock is NOT held.  Wire bytes are attributed exactly
        per query (the meter travels with each round); the request/fault
        deltas still read shared monotone counters, so under concurrent
        submitters those two stay approximate.
        """
        backend = self._cluster.backend
        requests_before = backend.requests
        scratch = Cluster(self.p, backend=backend)
        scratch.deadline = deadline_at
        rspan = span.child(
            "replay", ops=len(trace.ops),
            fusion=self.fusion, pipeline=self.pipeline,
        )
        with rspan:
            replay_stats = Executor(
                scratch, fusion=self.fusion, pipeline=self.pipeline,
                meter=meter, span=rspan,
            ).replay(trace)
        report = scratch.snapshot()
        relation: DistRelation | Relation | None = cached.served_relation()
        wall = time.perf_counter() - t0
        wire_bytes = meter.bytes
        meta: dict[str, Any] = dict(cached.meta)
        meta["plan_replayed"] = True
        meta.update(
            {
                "algorithm": entry.algorithm,
                "p": self.p,
                "backend": self.backend_name,
                "query_class": entry.query_class,
                "wire_bytes": wire_bytes,
            }
        )
        metrics = QueryMetrics(
            text=entry.parsed.text,
            kind=entry.kind,
            algorithm=entry.algorithm,
            cache_hit=cache_hit,
            plan_reused=plan_reused,
            invalidated=invalidated,
            result_cached=False,
            load=report.load,
            max_step_load=report.max_step_load,
            steps=report.steps,
            out_size=cached.out_size,
            wall_seconds=wall,
            plan_quality=entry.plan_quality,
            wire_bytes=wire_bytes,
            plan_replayed=True,
            plan_ops=len(trace.ops),
            map_ops=len(trace.map_ops()),
            fused_groups=replay_stats["groups"],
            backend_requests=backend.requests - requests_before,
            fault_events=self._fault_level() - faults_before,
            trace_id=span.trace_id,
        )
        with self._lock:
            entry.uses += 1
            self._touch_recording(entry.key)
            self._record(metrics, "replay")
        return ExecutionResult(
            prepared=entry,
            relation=relation,
            scalar=cached.scalar,
            report=report,
            metrics=metrics,
            meta=meta,
        )

    def _execute_on_cluster(
        self,
        entry: PreparedQuery,
        versions: dict[str, int],
        t0: float,
        cache_hit: bool,
        plan_reused: bool,
        invalidated: bool,
        faults_before: int,
        span: Any,
        meter: WireMeter,
    ) -> ExecutionResult:
        """One cold (or re-drive) execution on the warm serving cluster.

        The fault/deadline/degradation policy lives in :meth:`execute`;
        this method only runs, records a trace + recording, and reports.
        Caller holds the lock and has already armed
        ``self._cluster.deadline``.
        """
        requests_before = self._cluster.backend.requests
        rec = TraceRecorder() if self.plan_replay else None
        aggregate = (
            None if entry.kind == "join"
            else (entry.parsed.aggregate or "bool")
        )
        cspan = span.child("cold_execute", algorithm=entry.algorithm)
        # Meter and span ride on the cluster from *before* relation
        # distribution: dist-cache misses ship parts to the workers, and
        # those bytes belong to this query.  Cleared in the finally no
        # matter how the execution ends — the serving cluster is shared.
        self._cluster.wire_meter = meter
        self._cluster.obs_span = cspan
        try:
            with cspan:
                rels = self._dist_rels(entry.parsed, aggregate=aggregate)
                self._cluster.reset()
                self._cluster.recorder = rec
                try:
                    if entry.kind == "join":
                        result = run_join_algorithm(
                            self._group, entry.parsed.query, rels,
                            entry.algorithm, plan=entry.plan,
                        )
                        relation: DistRelation | Relation | None = result
                        scalar = None
                        out_size = result.total_size()
                        meta: dict[str, Any] = {"out_size": out_size}
                    else:
                        relation, scalar, meta = run_aggregate_algorithm(
                            self._group, entry.parsed.query,
                            entry.parsed.output_attrs or (), rels,
                            entry.parsed.semiring, algorithm=entry.algorithm,
                        )
                        out_size = len(relation) if relation is not None else 1
                finally:
                    self._cluster.recorder = None
        finally:
            self._cluster.wire_meter = None
            self._cluster.obs_span = None
        report = self._cluster.snapshot()
        if rec is not None:
            entry.trace = rec.finish(
                query=entry.parsed.text,
                kind=entry.kind,
                algorithm=entry.algorithm,
                p=self.p,
                backend=self.backend_name,
                relation_versions=versions,
            )
        wall = time.perf_counter() - t0
        entry.uses += 1
        wire_bytes = meter.bytes
        meta.update(
            {
                "algorithm": entry.algorithm,
                "p": self.p,
                "backend": self.backend_name,
                "query_class": entry.query_class,
                "wire_bytes": wire_bytes,
            }
        )
        if self.result_cache or self.plan_replay:
            # Record the execution in columnar form: distributed
            # results are encoded once into shared column blocks, and
            # the caller keeps its row-backed relation untouched —
            # storing the compacted object itself would leave callers
            # holding BOTH representations after their first row
            # access, pure GC ballast for the rest of the session.
            # The recording backs the result cache (serve without
            # executing) AND the plan-replay path (outputs while the
            # Executor re-charges the ledger); the LRU bounds both.
            stored: Any = relation
            if isinstance(relation, DistRelation):
                blocks = relation.column_parts
                if blocks is None:
                    arity = len(relation.attrs)
                    blocks = [
                        ColumnBlock.from_rows(p, arity)
                        for p in relation.parts
                    ]
                stored = _ColumnarPayload(
                    relation.name, relation.attrs, list(blocks)
                )
            self._store_recording(
                entry,
                _CachedResult(
                    relation_versions=versions,
                    relation=stored,
                    scalar=scalar,
                    report=report,
                    meta=dict(meta),
                    out_size=out_size,
                    stored_bytes=self._recording_nbytes(stored),
                ),
            )
        plan_ops = len(entry.trace.ops) if entry.trace is not None else 0
        map_ops = (
            len(entry.trace.map_ops()) if entry.trace is not None else 0
        )
        metrics = QueryMetrics(
            text=entry.parsed.text,
            kind=entry.kind,
            algorithm=entry.algorithm,
            cache_hit=cache_hit,
            plan_reused=plan_reused,
            invalidated=invalidated,
            result_cached=False,
            load=report.load,
            max_step_load=report.max_step_load,
            steps=report.steps,
            out_size=out_size,
            wall_seconds=wall,
            plan_quality=entry.plan_quality,
            wire_bytes=wire_bytes,
            plan_replayed=False,
            plan_ops=plan_ops,
            map_ops=map_ops,
            fused_groups=0,
            backend_requests=(
                self._cluster.backend.requests - requests_before
            ),
            fault_events=self._fault_level() - faults_before,
            trace_id=span.trace_id,
        )
        self._record(metrics, "cold")
        return ExecutionResult(
            prepared=entry,
            relation=relation,
            scalar=scalar,
            report=report,
            metrics=metrics,
            meta=meta,
        )

    # ------------------------------------------------------------------
    # Failure policy: record, quarantine, degrade (DESIGN.md section 8)
    # ------------------------------------------------------------------
    def _fault_level(self) -> int:
        """Cumulative faults the backend has absorbed (deltas per query)."""
        fs = self._cluster.backend.fault_stats()
        return fs.get("worker_deaths", 0) + fs.get("round_timeouts", 0)

    def _record_failure(
        self, entry: PreparedQuery, exc: Exception, t0: float,
        trace_id: str | None = None,
    ) -> None:
        metrics = QueryMetrics(
            text=entry.parsed.text,
            kind=entry.kind,
            algorithm=entry.algorithm,
            cache_hit=False,
            plan_reused=False,
            invalidated=False,
            result_cached=False,
            load=0,
            max_step_load=0,
            steps=0,
            out_size=0,
            wall_seconds=time.perf_counter() - t0,
            plan_quality=entry.plan_quality,
            failed=True,
            error=f"{type(exc).__name__}: {exc}",
            deadline_exceeded=isinstance(exc, DeadlineExceeded),
            trace_id=trace_id,
        )
        self._record(metrics, "failed")

    def _quarantine_entry(
        self, entry: PreparedQuery, versions: dict[str, int], exc: Exception
    ) -> None:
        """Mark the query unservable until its input versions move.

        The original failure text is kept so fast-fails carry it; the
        version snapshot is the parole condition (new data genuinely
        changes the execution, so it deserves a fresh attempt).
        """
        self._quarantine[entry.key] = {
            "versions": dict(versions),
            "error": f"{type(exc).__name__}: {exc}",
        }
        self._stats.quarantined += 1

    def quarantined_queries(self) -> dict[str, str]:
        """Currently quarantined query texts and their original errors."""
        with self._lock:
            out: dict[str, str] = {}
            for key, held in self._quarantine.items():
                entry = self._plans.get(key)
                text = entry.parsed.text if entry is not None else str(key[0])
                out[text] = held["error"]
            return out

    def _serial_degrade(
        self,
        entry: PreparedQuery,
        versions: dict[str, int],
        fault: Exception,
        t0: float,
        deadline_at: float | None,
        cache_hit: bool,
        plan_reused: bool,
        invalidated: bool,
        faults_before: int,
        span: Any,
    ) -> ExecutionResult:
        """Re-run a faulted query to completion on a scratch serial cluster.

        The scratch cluster inherits the remaining deadline and gets
        freshly distributed copies of the bound relations (the serving
        caches stay warm-backend-shaped).  Because ledgers and outputs
        are backend-independent (the conformance contract), the rerun is
        *the same execution* — and when a recording of this query is
        still valid, that is checked, not assumed: a ledger or size
        mismatch means a determinism violation, which must surface, never
        serve.
        """
        scratch = Cluster(self.p, backend="serial")
        scratch.deadline = deadline_at
        group = scratch.root_group()
        dspan = span.child("degrade_serial", fault=type(fault).__name__)
        with dspan:
            if entry.kind == "join":
                rels = {
                    b.edge: distribute_relation(self._bound(b), group)
                    for b in entry.parsed.bindings
                }
                result = run_join_algorithm(
                    group, entry.parsed.query, rels,
                    entry.algorithm, plan=entry.plan,
                )
                relation: DistRelation | Relation | None = result
                scalar = None
                out_size = result.total_size()
                meta: dict[str, Any] = {"out_size": out_size}
            else:
                rels = {}
                for b in entry.parsed.bindings:
                    rel = self._bound(b)
                    if not rel.annotated:
                        rel = rel.with_annotations(entry.parsed.semiring)
                    rels[b.edge] = distribute_relation(rel, group, annotate=True)
                relation, scalar, meta = run_aggregate_algorithm(
                    group, entry.parsed.query,
                    entry.parsed.output_attrs or (), rels,
                    entry.parsed.semiring, algorithm=entry.algorithm,
                )
                out_size = len(relation) if relation is not None else 1
        report = scratch.snapshot()
        cached = entry.cached_result
        if cached is not None and cached.relation_versions == versions:
            if (
                report.as_dict() != cached.report.as_dict()
                or out_size != cached.out_size
            ):
                raise EngineError(
                    "serial degradation diverged from the cached recording "
                    "(determinism violation); refusing to serve"
                )
        entry.uses += 1
        meta.update(
            {
                "algorithm": entry.algorithm,
                "p": self.p,
                "backend": self.backend_name,
                "query_class": entry.query_class,
                "wire_bytes": 0,
                "degraded_serial": True,
                "degraded_from": f"{type(fault).__name__}: {fault}",
            }
        )
        metrics = QueryMetrics(
            text=entry.parsed.text,
            kind=entry.kind,
            algorithm=entry.algorithm,
            cache_hit=cache_hit,
            plan_reused=plan_reused,
            invalidated=invalidated,
            result_cached=False,
            load=report.load,
            max_step_load=report.max_step_load,
            steps=report.steps,
            out_size=out_size,
            wall_seconds=time.perf_counter() - t0,
            plan_quality=entry.plan_quality,
            degraded_serial=True,
            fault_events=self._fault_level() - faults_before,
            trace_id=span.trace_id,
        )
        self._record(metrics, "degraded")
        return ExecutionResult(
            prepared=entry,
            relation=relation,
            scalar=scalar,
            report=report,
            metrics=metrics,
            meta=meta,
        )

    # ------------------------------------------------------------------
    # Explain: trace a plan without executing on the serving cluster
    # ------------------------------------------------------------------
    def trace_plan(
        self, query: str | ParsedQuery, algorithm: str = "auto"
    ) -> PhysicalPlan:
        """The physical plan a warm execution of ``query`` would replay.

        Reuses the serving entry's trace when one is valid for the
        current data versions; otherwise performs one traced execution on
        a *scratch* serial cluster (same ``p``, freshly distributed
        copies of the bound relations) so neither the serving ledger nor
        the warm backend is touched.  The op schedule is
        backend-independent — ledgers are, by the conformance contract —
        so the scratch trace is exactly what the serving session would
        record.
        """
        parsed = query if isinstance(query, ParsedQuery) else parse_query(query)
        with self._lock:
            entry, _status = self._resolve(parsed, algorithm)
            versions = self._current_versions(parsed)
            trace = entry.trace
            if trace is not None and trace.relation_versions == versions:
                return trace
            scratch = Cluster(self.p, backend="serial")
            group = scratch.root_group()
            if entry.kind == "join":
                rels = {
                    b.edge: distribute_relation(self._bound(b), group)
                    for b in entry.parsed.bindings
                }
            else:
                rels = {}
                for b in entry.parsed.bindings:
                    rel = self._bound(b)
                    if not rel.annotated:
                        rel = rel.with_annotations(entry.parsed.semiring)
                    rels[b.edge] = distribute_relation(rel, group, annotate=True)
            rec = TraceRecorder()
            scratch.recorder = rec
            try:
                if entry.kind == "join":
                    run_join_algorithm(
                        group, entry.parsed.query, rels,
                        entry.algorithm, plan=entry.plan,
                    )
                else:
                    run_aggregate_algorithm(
                        group, entry.parsed.query,
                        entry.parsed.output_attrs or (), rels,
                        entry.parsed.semiring, algorithm=entry.algorithm,
                    )
            finally:
                scratch.recorder = None
            return rec.finish(
                query=entry.parsed.text,
                kind=entry.kind,
                algorithm=entry.algorithm,
                p=self.p,
                backend=self.backend_name,
                relation_versions=versions,
            )

    def explain(
        self,
        query: str | ParsedQuery,
        algorithm: str = "auto",
        fusion: bool = True,
        timings: bool = False,
    ) -> str:
        """Render :meth:`trace_plan` — ops, fusion groups, ledger units.

        With ``timings=True`` the plan is additionally *measured*: the
        query executes once (warming worker memos and distributed caches
        into their serving state), then the trace replays per-op on the
        serving backend (:meth:`timed_replay`), and every Charge/MapParts
        row gains measured ``wall=``/``wire=`` columns — the ledger's
        load story and the wall-clock/bytes story, row by row.
        """
        if timings:
            trace, op_timings = self.timed_replay(query, algorithm)
            return trace.explain(fusion=fusion, timings=op_timings)
        return self.trace_plan(query, algorithm).explain(fusion=fusion)

    def timed_replay(
        self, query: str | ParsedQuery, algorithm: str = "auto"
    ) -> tuple[PhysicalPlan, dict[int, dict[str, float]]]:
        """Measure one per-op replay of the query's physical plan.

        Executes the query once first — recording a trace and warming the
        backend exactly the way serving would — then replays that trace
        unfused and unpipelined on a scratch ledger over the *serving*
        backend with per-op wall/wire measurement
        (``Executor.replay(timed=True)``).  The scratch ledger is
        discarded; the serving ledger and session stats see only the
        warming execution.  Returns ``(plan, op_timings)`` with
        ``op_timings`` keyed by op index (the shape
        :meth:`PhysicalPlan.explain` accepts).
        """
        parsed = query if isinstance(query, ParsedQuery) else parse_query(query)
        self.execute(parsed, algorithm)
        with self._lock:
            entry, _status = self._resolve(parsed, algorithm)
            versions = self._current_versions(parsed)
            trace = entry.trace
        if trace is None or trace.relation_versions != versions:
            # plan_replay is off (or the trace was evicted with its
            # recording): trace on a scratch cluster instead.
            trace = self.trace_plan(parsed, algorithm)
        scratch = Cluster(self.p, backend=self._cluster.backend)
        stats = Executor(scratch, fusion=False, pipeline=False).replay(
            trace, timed=True
        )
        return trace, stats["op_timings"]

    # ------------------------------------------------------------------
    # Plan shipping (DESIGN.md section 11): export/install warm state
    # ------------------------------------------------------------------
    def export_plan(
        self, query: str | ParsedQuery, algorithm: str = "auto"
    ) -> bytes:
        """Encode this engine's warm state for a query into portable bytes.

        The blob (wire format: :mod:`repro.plan.ship`) carries the traced
        op schedule, the recorded outputs + ledger, the planning-stats
        fingerprint, and per-relation content digests.  Another engine
        over the same data :meth:`install_plan`\\ s it and serves the
        query warm — zero re-traces — exactly as if it had executed the
        query itself.

        Raises:
            PlanShipError: The query has no current trace + recording on
                this engine (execute it first), or a payload value
                resists serialization.
        """
        parsed = query if isinstance(query, ParsedQuery) else parse_query(query)
        with self._lock:
            entry = self._plans.get(self._plan_key(parsed, algorithm))
            versions = self._current_versions(parsed)
            trace = entry.trace if entry is not None else None
            cached = entry.cached_result if entry is not None else None
            if (
                entry is None
                or trace is None
                or cached is None
                or trace.relation_versions != versions
                or cached.relation_versions != versions
            ):
                raise PlanShipError(
                    f"nothing to export for {parsed.text!r}: a shippable "
                    f"plan needs a current trace and recording — execute "
                    f"the query on this engine first"
                )
            digests = {
                b.relation: relation_digest(self._relations[b.relation])
                for b in parsed.bindings
            }

            # Identity-match each MapParts op back to the distributed
            # relation it ran over; mid-execution intermediates (parts
            # born inside the driver) find no match and ship unbound.
            dist_items = list(self._dist_cache.items())

            def source_of(op: Any) -> "tuple | None":
                for k, dist in dist_items:
                    if op.owner is dist and op.parts is dist.parts:
                        name, _version, edge, variables, aggregate = k
                        return ("base", name, edge, variables, aggregate)
                return None

            stored = cached.relation
            if isinstance(stored, _ColumnarPayload):
                result: tuple = (
                    "dist", stored.name, stored.attrs,
                    [pack_blob((), b) for b in stored.blocks],
                )
            elif isinstance(stored, Relation):
                result = (
                    "rel", stored.name, stored.attrs, list(stored.rows),
                    (
                        list(stored.annotations)
                        if stored.annotations is not None else None
                    ),
                    getattr(stored.semiring, "name", None),
                )
            elif stored is None:
                result = ("none",)
            else:  # pragma: no cover - no other recording payloads exist
                raise PlanShipError(
                    f"recording payload {type(stored).__name__} is not "
                    f"shippable"
                )
            rep = cached.report
            payload = {
                "query": entry.parsed.text,
                "kind": entry.kind,
                "algorithm": entry.algorithm,
                "algorithm_request": algorithm,
                "p": self.p,
                "backend": self.backend_name,
                "fingerprint": entry.fingerprint,
                "relation_digests": digests,
                "ops": encode_ops(trace.ops, source_of),
                "result": result,
                "report": {
                    "p": rep.p,
                    "totals": tuple(rep.totals),
                    "load": rep.load,
                    "max_step_load": rep.max_step_load,
                    "steps": rep.steps,
                    "by_label": dict(rep.by_label),
                },
                "meta": dict(cached.meta),
                "out_size": cached.out_size,
                "scalar": cached.scalar,
            }
            return encode_plan(payload)

    def install_plan(self, blob: bytes) -> str:
        """Install a shipped plan into this engine's caches; returns its digest.

        Revalidates before touching anything: envelope digest, cluster
        size, per-relation *content* digests (the recorded outputs are
        only the truth over byte-identical data), and the planning-stats
        fingerprint against this engine's own compile of the same query
        (the existing revalidation mechanism).  On success the entry
        holds a rebuilt trace + recording under this engine's relation
        versions, so its next execution replays warm — zero re-traces.
        Any mismatch raises and leaves the engine as it was: the next
        execution simply traces cold.

        Raises:
            PlanShipError: Corrupt blob, incompatible cluster size,
                missing/mismatched relations, stats-fingerprint drift, or
                an fn reference outside the allowlisted registry.
        """
        payload = decode_plan(blob)
        try:
            parsed = parse_query(payload["query"])
            algorithm_request = payload["algorithm_request"]
            ship_p = payload["p"]
            ship_digests = payload["relation_digests"]
            ship_fingerprint = payload["fingerprint"]
            ship_algorithm = payload["algorithm"]
            ship_kind = payload["kind"]
            op_records = payload["ops"]
            result_desc = payload["result"]
            rep = payload["report"]
        except KeyError as exc:
            raise PlanShipError(f"plan payload missing field {exc}") from exc
        with self._lock:
            if ship_p != self.p:
                raise PlanShipError(
                    f"plan was traced at p={ship_p}; this engine serves "
                    f"p={self.p}"
                )
            for name, digest in ship_digests.items():
                rel = self._relations.get(name)
                if rel is None:
                    raise PlanShipError(
                        f"plan touches relation {name!r}, not registered "
                        f"on this engine"
                    )
                if relation_digest(rel) != digest:
                    raise PlanShipError(
                        f"content digest mismatch for relation {name!r}: "
                        f"this engine's data differs from the tracing "
                        f"engine's"
                    )
            entry, _status = self._resolve(parsed, algorithm_request)
            if ship_fingerprint != entry.fingerprint:
                raise PlanShipError(
                    "stats fingerprint mismatch: the plan was compiled "
                    "against different data statistics — falling back to "
                    "a cold trace"
                )
            if ship_algorithm != entry.algorithm or ship_kind != entry.kind:
                raise PlanShipError(
                    f"plan resolved to {ship_kind}/{ship_algorithm} on the "
                    f"tracing engine but {entry.kind}/{entry.algorithm} "
                    f"here"
                )
            versions = self._current_versions(parsed)
            aggregate = (
                None if entry.kind == "join"
                else (parsed.aggregate or "bool")
            )
            bindings = {b.edge: b for b in parsed.bindings}
            # Deterministic and coordinator-side only (stride partition of
            # the registered rows, no backend rounds), so the receiver's
            # parts match the tracing engine's by construction.
            dists = self._dist_rels(parsed, aggregate=aggregate)

            def bind(fn_ref: str, source: tuple) -> "tuple | None":
                tag, name, edge, variables, src_aggregate = source
                if tag != "base":
                    raise PlanShipError(
                        f"unknown MapParts source kind {tag!r}"
                    )
                binding = bindings.get(edge)
                if (
                    binding is None
                    or binding.relation != name
                    or binding.variables != variables
                    or src_aggregate != aggregate
                ):
                    raise PlanShipError(
                        f"MapParts source {edge!r} does not match this "
                        f"engine's binding of the same query"
                    )
                dist = dists[edge]
                return (resolve_fn(fn_ref), dist.parts, dist)

            ops = decode_ops(op_records, bind)
            stored = self._decode_shipped_result(result_desc)
            report = LoadReport(
                p=rep["p"], totals=tuple(rep["totals"]), load=rep["load"],
                max_step_load=rep["max_step_load"], steps=rep["steps"],
                by_label=dict(rep["by_label"]),
            )
            recording = _CachedResult(
                relation_versions=dict(versions),
                relation=stored,
                scalar=payload["scalar"],
                report=report,
                meta=dict(payload["meta"]),
                out_size=payload["out_size"],
                stored_bytes=self._recording_nbytes(stored),
            )
            plan = PhysicalPlan(
                query=entry.parsed.text,
                kind=entry.kind,
                algorithm=ship_algorithm,
                p=self.p,
                backend=self.backend_name,
                relation_versions=dict(versions),
                ops=ops,
            )
            entry.trace = plan
            self._store_recording(entry, recording)
            self._stats.plans_installed += 1
            return plan_digest(blob)

    def _decode_shipped_result(self, desc: tuple) -> Any:
        """A shipped result descriptor back to a recording payload."""
        tag = desc[0]
        if tag == "none":
            return None
        if tag == "dist":
            _tag, name, attrs, blobs = desc
            arity = len(attrs)
            blocks = [
                ColumnBlock.from_rows(unpack_blob(b), arity) for b in blobs
            ]
            return _ColumnarPayload(name, tuple(attrs), blocks)
        if tag == "rel":
            _tag, name, attrs, rows, annotations, semiring_name = desc
            semiring = next(
                (s for s in ALL_SEMIRINGS if s.name == semiring_name), None
            )
            return Relation(
                name, tuple(attrs), rows,
                annotations=annotations, semiring=semiring,
            )
        raise PlanShipError(f"unknown result descriptor kind {tag!r}")

    # ------------------------------------------------------------------
    # Batch submission front
    # ------------------------------------------------------------------
    def submit_batch(
        self,
        queries: Sequence[str | ParsedQuery | PreparedQuery],
        threads: int = 1,
        budget: float | None = None,
    ) -> BatchReport:
        """Run many queries against the shared backend.

        Args:
            queries: Query texts / parsed / prepared queries, executed in
                submission order (results align with the input).
            threads: Number of submitter threads.  Cold executions
                serialize on the shared serving cluster (per-query
                ledgers need exclusive access), but *warm replays* run
                on per-query scratch ledgers outside the engine lock —
                with >1 threads many queries' fused op chains flow
                through the one shared backend concurrently, overlapping
                at round granularity on its dispatcher.
            budget: Wall-clock seconds for the *whole batch* (``None`` =
                unbounded).  Each query executes under the remaining
                budget as its deadline; once the budget is spent, the
                rest of the batch fast-fails with
                :class:`~repro.errors.DeadlineExceeded`.

        Returns:
            :class:`BatchReport` with per-query results and aggregated
            :class:`EngineStats` for just this batch.  Unlike a direct
            :meth:`execute`, a failed query does not abort the batch:
            its :class:`ExecutionResult` carries the error (``ok`` is
            False, the report is empty) so one poisoned query cannot
            take the whole submission down.
        """
        if not queries:
            raise EngineError("empty batch")
        cutoff = time.monotonic() + budget if budget is not None else None

        def run(q: str | ParsedQuery | PreparedQuery) -> ExecutionResult:
            try:
                remaining = (
                    cutoff - time.monotonic() if cutoff is not None else None
                )
                return self.execute(q, deadline=remaining)
            except ReproError as exc:
                return self._failed_result(q, exc)

        if threads <= 1:
            results = [run(q) for q in queries]
        else:
            with ThreadPoolExecutor(max_workers=threads) as pool:
                results = list(pool.map(run, queries))
        stats = EngineStats(p=self.p, backend=self.backend_name)
        for res in results:
            stats.record(res.metrics)
        stats.prepares = sum(
            1 for r in results if r.ok and not r.metrics.plan_reused
        )
        return BatchReport(results=results, stats=stats)

    def _failed_result(
        self, query: str | ParsedQuery | PreparedQuery, exc: ReproError
    ) -> ExecutionResult:
        """An error embedded as a result (batch alignment; empty ledger)."""
        if isinstance(query, PreparedQuery):
            text = query.parsed.text
        elif isinstance(query, ParsedQuery):
            text = query.text
        else:
            text = str(query)
        metrics = QueryMetrics(
            text=text,
            kind="?",
            algorithm="?",
            cache_hit=False,
            plan_reused=False,
            invalidated=False,
            result_cached=False,
            load=0,
            max_step_load=0,
            steps=0,
            out_size=0,
            wall_seconds=0.0,
            plan_quality=None,
            failed=True,
            error=f"{type(exc).__name__}: {exc}",
            deadline_exceeded=isinstance(exc, DeadlineExceeded),
        )
        return ExecutionResult(
            prepared=None,
            relation=None,
            scalar=None,
            report=LoadReport(
                p=self.p, totals=(0,) * self.p, load=0,
                max_step_load=0, steps=0, by_label={},
            ),
            metrics=metrics,
            error=exc,
        )

    # ------------------------------------------------------------------
    # Observability: registry recording, views, exposition
    # ------------------------------------------------------------------
    def _record(self, metrics: QueryMetrics, path: str) -> None:
        """Record one execution into the session stats and the registry.

        ``path`` labels the serving path that handled the query:
        ``cold`` | ``replay`` | ``cached`` | ``degraded`` | ``failed``.
        Registry updates are skipped entirely with ``observe=False`` (the
        bare baseline of the overhead benchmark); :class:`EngineStats`
        always records.
        """
        self._stats.record(metrics)
        if not self.observe:
            return
        reg = self.registry
        reg.counter(
            "repro_queries_total",
            help="Queries executed, by serving path.",
            path=path,
        ).inc()
        reg.histogram(
            "repro_query_seconds",
            help="Query wall-clock seconds, by serving path.",
            path=path,
        ).observe(metrics.wall_seconds)

    def _engine_view(self) -> dict[str, float]:
        """:class:`EngineStats` counters as registry gauges (a view —
        the stats object stays the storage)."""
        s = self._stats
        return {
            "repro_engine_queries": s.queries,
            "repro_engine_prepares": s.prepares,
            "repro_engine_cache_hits": s.cache_hits,
            "repro_engine_cache_misses": s.cache_misses,
            "repro_engine_invalidations": s.invalidations,
            "repro_engine_result_hits": s.result_hits,
            "repro_engine_plan_replays": s.plan_replays,
            "repro_engine_plans_installed": s.plans_installed,
            "repro_engine_total_load": s.total_load,
            "repro_engine_wire_bytes": s.total_wire_bytes,
            "repro_engine_backend_requests": s.total_backend_requests,
            "repro_engine_failures": s.failures,
            "repro_engine_deadline_misses": s.deadline_misses,
            "repro_engine_quarantined": s.quarantined,
            "repro_engine_degraded_serial": s.degraded_serial,
            "repro_engine_fault_events": s.fault_events,
        }

    def _backend_view(self) -> dict[str, float]:
        """The warm backend's wire/fault counters as registry gauges.

        Both snapshots are lock-protected copies on the backend side, so
        a scrape mid-round sees a consistent picture.
        """
        backend = self._cluster.backend
        out: dict[str, float] = {}
        for k, v in backend.wire_stats().items():
            out[f"repro_wire_{k}"] = v
        for k, v in backend.fault_stats().items():
            out[f"repro_fault_{k}"] = v
        return out

    def metrics_snapshot(self) -> dict[str, Any]:
        """The unified registry (instruments + views) as JSON-able data."""
        return self.registry.snapshot()

    def metrics_text(self) -> str:
        """The unified registry in the Prometheus text exposition format."""
        return self.registry.render_prometheus()

    # ------------------------------------------------------------------
    def stats(self) -> EngineStats:
        """Cumulative session statistics (live object; treat as read-only)."""
        with self._lock:
            return self._stats

    def backend_fault_stats(self) -> dict:
        """The warm backend's cumulative fault/recovery counters."""
        with self._lock:
            return self._cluster.backend.fault_stats()

    def prepared_queries(self) -> list[PreparedQuery]:
        with self._lock:
            return list(self._plans.values())

    def clear_caches(self) -> None:
        """Drop prepared plans, cached relations, recordings, quarantine."""
        with self._lock:
            self._plans.clear()
            self._bound_cache.clear()
            self._dist_cache.clear()
            self._recordings.clear()
            self._recording_bytes = 0
            self._quarantine.clear()

    def __repr__(self) -> str:
        return (
            f"Engine<p={self.p}, backend={self.backend_name}, "
            f"{len(self._relations)} relations, {len(self._plans)} plans>"
        )
