"""The persistent query engine: parse, prepare, cache, serve.

The serving layer over the one-shot entry points of :mod:`repro.core`:

* :func:`~repro.engine.parser.parse_query` — datalog-style text (or a
  catalog name) to a :class:`~repro.engine.parser.ParsedQuery`.
* :class:`~repro.engine.session.Engine` — a long-lived session holding
  registered base relations, one warm cluster/backend, and a prepared-plan
  cache keyed by canonical query form + data-stats fingerprint.
* :meth:`~repro.engine.session.Engine.submit_batch` — the concurrent
  submission front, aggregating per-query metrics into
  :class:`~repro.engine.session.EngineStats`.

See DESIGN.md section 5 and ``examples/serving_session.py``.
"""

from repro.engine.parser import AGGREGATES, Binding, ParsedQuery, parse_query
from repro.engine.session import (
    BatchReport,
    Engine,
    EngineStats,
    ExecutionResult,
    PreparedQuery,
    QueryMetrics,
)

__all__ = [
    "AGGREGATES",
    "Binding",
    "ParsedQuery",
    "parse_query",
    "BatchReport",
    "Engine",
    "EngineStats",
    "ExecutionResult",
    "PreparedQuery",
    "QueryMetrics",
]
