"""repro: instance- and output-optimal MPC join algorithms.

A faithful reproduction of Hu & Yi, *Instance and Output Optimal Parallel
Algorithms for Acyclic Joins* (PODS 2019), built on a simulated MPC cluster
whose per-server received-tuple ledger implements the paper's load metric.

Quickstart::

    from repro import Hypergraph, mpc_join
    from repro.data import random_instance

    query = Hypergraph({"R1": ("A", "B"), "R2": ("B", "C"), "R3": ("C", "D")})
    instance = random_instance(query, size=1000, dom_size=50, seed=0)
    result = mpc_join(query, instance, p=16)       # auto-dispatched
    print(result.report.summary(), result.output_size)

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced claim.
"""

from repro.core import (
    ALGORITHMS,
    AggregateResult,
    JoinResult,
    auto_algorithm,
    best_yannakakis_plan,
    mpc_join,
    mpc_join_aggregate,
    mpc_join_project,
    mpc_output_size,
)
from repro.data import Instance, Relation
from repro.engine import Engine, EngineStats, ExecutionResult, parse_query
from repro.mpc import Cluster, LoadReport
from repro.query import Hypergraph, JoinClass, classify
from repro.semiring import BOOLEAN, COUNT, MAX_TROPICAL, MIN_TROPICAL, SUM_PRODUCT, Semiring

__version__ = "1.0.0"

__all__ = [
    "Hypergraph",
    "JoinClass",
    "classify",
    "Relation",
    "Instance",
    "Cluster",
    "LoadReport",
    "JoinResult",
    "AggregateResult",
    "ALGORITHMS",
    "mpc_join",
    "mpc_join_aggregate",
    "mpc_join_project",
    "mpc_output_size",
    "best_yannakakis_plan",
    "auto_algorithm",
    "Engine",
    "EngineStats",
    "ExecutionResult",
    "parse_query",
    "Semiring",
    "COUNT",
    "SUM_PRODUCT",
    "MIN_TROPICAL",
    "MAX_TROPICAL",
    "BOOLEAN",
    "__version__",
]
