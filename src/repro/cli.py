"""Command-line interface: run the paper's algorithms on CSV data.

Usage (after ``pip install -e .``)::

    python -m repro classify DATA_DIR
    python -m repro join DATA_DIR -p 16 [--algorithm auto] [--out results.csv]
    python -m repro count DATA_DIR -p 16
    python -m repro aggregate DATA_DIR -p 16 --group-by A,B [--semiring count]
    python -m repro plan DATA_DIR -p 16
    python -m repro catalog
    python -m repro query 'Q(A,B) :- R1(A,B), R2(B,C)' DATA_DIR -p 16
    python -m repro explain 'Q(A,B) :- R1(A,B), R2(B,C)' DATA_DIR -p 16
    python -m repro serve DATA_DIR --queries queries.txt -p 16
    python -m repro stats DATA_DIR --queries queries.txt --format prom

``DATA_DIR`` holds one ``<relation>.csv`` per relation (header = attribute
names); the query hypergraph is inferred from the headers.  ``query`` and
``serve`` go through the persistent engine (:mod:`repro.engine`): the CSV
relations are registered as base relations and datalog-style query text
binds to them by name (atom variables rename columns positionally).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.runner import (
    ALGORITHMS,
    mpc_join,
    mpc_join_aggregate,
    mpc_output_size,
)
from repro.io import read_instance_dir, write_relation_csv
from repro.query.classify import classify
from repro.query.paths import minimal_path_of_length_3
from repro.semiring import BOOLEAN, COUNT, MAX_TROPICAL, MIN_TROPICAL, SUM_PRODUCT

SEMIRINGS = {
    "count": COUNT,
    "sum": SUM_PRODUCT,
    "min": MIN_TROPICAL,
    "max": MAX_TROPICAL,
    "bool": BOOLEAN,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Instance/output-optimal MPC joins (Hu & Yi, PODS 2019)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        from repro.mpc.backends import available_backends, default_backend_name

        p.add_argument("data_dir", help="directory of <relation>.csv files")
        p.add_argument("-p", "--servers", type=int, default=8)
        p.add_argument(
            "--backend",
            choices=available_backends(),
            default=default_backend_name(),
            help="execution backend (default: REPRO_BACKEND env or serial)",
        )

    c = sub.add_parser("classify", help="classify the query (Figure 1)")
    c.add_argument("data_dir")

    j = sub.add_parser("join", help="compute the full join")
    add_common(j)
    j.add_argument("--algorithm", choices=ALGORITHMS, default="auto")
    j.add_argument("--out", help="write results to this CSV file")
    j.add_argument("--validate", action="store_true",
                   help="cross-check against the RAM oracle")

    n = sub.add_parser("count", help="compute |Q(R)| with linear load")
    add_common(n)

    a = sub.add_parser("aggregate", help="join-aggregate (Section 6)")
    add_common(a)
    a.add_argument("--group-by", default="",
                   help="comma-separated output attributes (empty = total)")
    a.add_argument("--semiring", choices=sorted(SEMIRINGS), default="count")
    a.add_argument("--out", help="write results to this CSV file")

    pl = sub.add_parser("plan", help="price Yannakakis join orders (Sec 4.1)")
    add_common(pl)

    sub.add_parser("catalog", help="list named catalog queries (Figure 1)")

    q = sub.add_parser("query", help="run one datalog-style query (engine)")
    q.add_argument("text", help="e.g. 'Q(A,B) :- R1(A,B), R2(B,C)'")
    add_common(q)
    q.add_argument("--algorithm", choices=ALGORITHMS, default="auto")
    q.add_argument("--out", help="write results to this CSV file")

    x = sub.add_parser(
        "explain",
        help="print the traced physical plan (ops, fusion groups, "
        "per-op ledger units) without executing on the serving cluster",
    )
    x.add_argument("text", help="e.g. 'Q(A,B) :- R1(A,B), R2(B,C)'")
    add_common(x)
    x.add_argument("--algorithm", choices=ALGORITHMS, default="auto")
    x.add_argument("--no-fuse", action="store_true",
                   help="show the unfused schedule (one request per op)")
    x.add_argument("--timings", action="store_true",
                   help="execute once to warm the backend, then time a "
                        "per-op replay: wall=/wire= columns per op")

    s = sub.add_parser("serve", help="serve a query workload (engine session)")
    add_common(s)
    s.add_argument("--queries", required=True,
                   help="file with one query per line ('#' comments)")
    s.add_argument("--repeat", type=int, default=1,
                   help="serve the workload this many times (warm-path demo)")
    s.add_argument("--threads", type=int, default=1,
                   help="submitter threads for submit_batch")
    s.add_argument("--budget", type=float, default=None,
                   help="wall-clock seconds per workload round; queries "
                        "past the budget fast-fail (DeadlineExceeded)")
    s.add_argument("--chaos", action="store_true",
                   help="serve on the fault-injecting 'chaos' backend "
                        "(recovery demo: results stay bit-identical)")
    s.add_argument("--chaos-seed", type=int, default=None,
                   help="fault-schedule seed for --chaos (default: "
                        "REPRO_CHAOS_SEED env or 1)")
    s.add_argument("--no-pipeline", action="store_true",
                   help="await every replay round synchronously instead of "
                        "overlapping charge posting with in-flight rounds")
    s.add_argument("--replicas", type=int, default=1,
                   help="serve through the sharded front door with this "
                        "many engine replicas (routing, admission, "
                        "micro-batching, plan shipping); --threads/--budget "
                        "apply to single-replica mode only")
    s.add_argument("--shed-after", type=int, default=64,
                   help="per-replica backlog bound before admission sheds "
                        "(front-door mode only)")
    s.add_argument("--trace", metavar="JSONL",
                   help="write the session's span records (engine -> "
                        "executor -> backend -> worker rounds) to this "
                        "JSONL file")
    s.add_argument("--metrics-out", metavar="PROM",
                   help="write the final metrics registry in Prometheus "
                        "text format to this file")

    st = sub.add_parser(
        "stats",
        help="serve a workload and print the unified metrics registry "
        "(counters, latency histograms, engine/backend stat views)",
    )
    add_common(st)
    st.add_argument("--queries", required=True,
                    help="file with one query per line ('#' comments)")
    st.add_argument("--repeat", type=int, default=2,
                    help="workload rounds (default 2: cold then warm)")
    st.add_argument("--threads", type=int, default=1)
    st.add_argument("--format", choices=("json", "prom"), default="json",
                    help="output format (default json)")
    return parser


def _load_engine(args, tracer=None) -> "Engine":
    """Build an engine session with every CSV in the data dir registered."""
    from pathlib import Path

    from repro.engine import Engine
    from repro.io import read_relation_csv

    engine = Engine(
        p=args.servers,
        backend=args.backend,
        pipeline=not getattr(args, "no_pipeline", False),
        tracer=tracer,
    )
    for path in sorted(Path(args.data_dir).glob("*.csv")):
        engine.register(read_relation_csv(path))
    return engine


def _serve_frontdoor(args, workload, tracer=None) -> int:
    """Serve a workload through the multi-replica front door."""
    import os
    from pathlib import Path

    from repro.io import read_relation_csv
    from repro.serve import Frontdoor

    backend = args.backend
    if args.chaos:
        backend = "chaos"
        if args.chaos_seed is not None:
            os.environ["REPRO_CHAOS_SEED"] = str(args.chaos_seed)
    with Frontdoor(
        p=args.servers,
        replicas=args.replicas,
        backend=backend,
        shed_after=args.shed_after,
        tracer=tracer,
        pipeline=not args.no_pipeline,
    ) as door:
        for path in sorted(Path(args.data_dir).glob("*.csv")):
            door.register(read_relation_csv(path))
        for rnd in range(max(1, args.repeat)):
            if rnd:
                # Per-round percentiles: drop last round's counters and
                # histograms, keep the registered stat views.
                door.registry.reset()
            futures = door.submit_many(workload, best_effort=True)
            for fut in futures:
                try:
                    res = fut.result()
                except Exception as exc:  # shed at the door
                    print(f"REJECTED: {exc}")
                    continue
                if not res.ok:
                    print(f"FAILED {res.metrics.text!r}: {res.metrics.error}")
        print("front door:")
        stats = door.stats().as_dict()
        print("  " + " ".join(f"{k}={stats[k]}" for k in sorted(stats)))
        print("per-replica session totals:")
        for i, eng in enumerate(door.engines):
            print(f"  replica {i}: {eng.stats().summary()}")
        if tracer is not None:
            tracer.close()
            print(f"trace written to {args.trace} "
                  f"({tracer.sink.emitted} spans)")
        if args.metrics_out:
            with open(args.metrics_out, "w") as fh:
                fh.write(door.metrics_text())
            print(f"metrics written to {args.metrics_out}")
    return 0


def _print_execution(res) -> None:
    m = res.metrics
    print(
        f"kind={m.kind} algorithm={m.algorithm} class="
        f"{res.prepared.query_class} load={m.load} out={m.out_size} "
        f"{'hit' if m.cache_hit else 'miss'}"
        f"{' (invalidated)' if m.invalidated else ''}"
    )
    if res.prepared.plan_order:
        print(f"plan order: {' -> '.join(res.prepared.plan_order)}")
    if res.prepared.plan_quality:
        q = res.prepared.plan_quality
        print(
            f"plan quality: best={q['best']} worst={q['worst']} "
            f"({q['orders']} orders priced)"
        )


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "catalog":
        from repro.query.catalog import CATALOG

        width = max(len(n) for n in CATALOG)
        for name, query in CATALOG.items():
            shape = ", ".join(
                f"{e}({','.join(sorted(query.attrs_of(e)))})"
                for e in query.edge_names
            )
            print(f"{name:<{width}}  {classify(query).name:<14}  {shape}")
        return 0

    if args.command == "query":
        engine = _load_engine(args)
        res = engine.execute(args.text, algorithm=args.algorithm)
        _print_execution(res)
        if res.scalar is not None:
            print(f"scalar = {res.scalar}")
        elif args.out and res.relation is not None:
            rel = res.relation
            if hasattr(rel, "to_relation"):  # DistRelation
                rel = rel.to_relation()
            write_relation_csv(rel, args.out)
            print(f"results written to {args.out}")
        else:
            for row in res.rows()[:20]:
                print(f"  {row}")
        return 0

    if args.command == "explain":
        engine = _load_engine(args)
        print(
            engine.explain(
                args.text, algorithm=args.algorithm,
                fusion=not args.no_fuse, timings=args.timings,
            )
        )
        return 0

    if args.command == "serve":
        with open(args.queries) as fh:
            workload = [
                line.strip() for line in fh
                if line.strip() and not line.lstrip().startswith("#")
            ]
        tracer = None
        if args.trace:
            from repro.obs import SpanSink, Tracer

            # Truncate up front: the sink appends on every flush.
            open(args.trace, "w").close()
            tracer = Tracer(SpanSink(path=args.trace))
        if args.replicas > 1:
            return _serve_frontdoor(args, workload, tracer=tracer)
        if args.chaos:
            from repro.mpc.backends.chaos import FaultInjectingBackend

            args.backend = FaultInjectingBackend(seed=args.chaos_seed)
        engine = _load_engine(args, tracer=tracer)
        report = None
        for rnd in range(max(1, args.repeat)):
            if rnd:
                # Per-round percentiles: drop last round's counters and
                # histograms, keep the registered stat views.
                engine.registry.reset()
            report = engine.submit_batch(
                workload, threads=args.threads, budget=args.budget
            )
        assert report is not None
        for res in report.results:
            if not res.ok:
                print(f"FAILED {res.metrics.text!r}: {res.metrics.error}")
        print("last round:")
        print(report.stats.summary())
        print("session totals:")
        print(engine.stats().summary())
        fault_stats = engine.backend_fault_stats()
        if any(fault_stats.values()):
            print("backend faults: " + ", ".join(
                f"{k}={v}" for k, v in sorted(fault_stats.items()) if v
            ))
        if tracer is not None:
            tracer.close()
            print(f"trace written to {args.trace} "
                  f"({tracer.sink.emitted} spans)")
        if args.metrics_out:
            with open(args.metrics_out, "w") as fh:
                fh.write(engine.metrics_text())
            print(f"metrics written to {args.metrics_out}")
        if args.chaos:
            args.backend.close()
        return 0

    if args.command == "stats":
        import json as _json

        with open(args.queries) as fh:
            workload = [
                line.strip() for line in fh
                if line.strip() and not line.lstrip().startswith("#")
            ]
        engine = _load_engine(args)
        for _ in range(max(1, args.repeat)):
            engine.submit_batch(workload, threads=args.threads)
        if args.format == "prom":
            sys.stdout.write(engine.metrics_text())
        else:
            print(_json.dumps(engine.metrics_snapshot(), indent=2))
        return 0

    if args.command == "classify":
        instance = read_instance_dir(args.data_dir)
        query = instance.query
        cls = classify(query)
        print(f"query: {query}")
        print(f"class: {cls.name}")
        if cls.name == "ACYCLIC":
            path = minimal_path_of_length_3(query)
            print(f"Lemma 2 witness (minimal 3-path): {' -> '.join(path or ())}")
        return 0

    instance = read_instance_dir(
        args.data_dir,
        semiring=SEMIRINGS[args.semiring] if args.command == "aggregate" else None,
    )
    query = instance.query

    if args.command == "join":
        result = mpc_join(
            query, instance, p=args.servers,
            algorithm=args.algorithm, validate=args.validate,
            backend=args.backend,
        )
        print(f"algorithm: {result.meta['algorithm']} "
              f"(backend: {result.meta['backend']})")
        print(f"IN={instance.input_size} OUT={result.output_size} "
              f"p={args.servers} load={result.report.load}")
        if args.out:
            write_relation_csv(result.relation.to_relation(), args.out)
            print(f"results written to {args.out}")
        return 0

    if args.command == "count":
        count, report = mpc_output_size(
            query, instance, args.servers, backend=args.backend
        )
        print(f"|Q(R)| = {count}  (load={report.load}, IN/p="
              f"{instance.input_size / args.servers:.0f})")
        return 0

    if args.command == "aggregate":
        outputs = {a for a in args.group_by.split(",") if a}
        semiring = SEMIRINGS[args.semiring]
        if not instance.annotated:
            instance = instance.with_uniform_annotations(semiring)
        res = mpc_join_aggregate(
            query, outputs, instance, semiring, p=args.servers,
            backend=args.backend,
        )
        if not outputs:
            print(f"total aggregate = {res.scalar}  (load={res.report.load})")
        else:
            print(f"{len(res.relation)} groups  (load={res.report.load})")
            for row, w in list(
                zip(res.relation.rows, res.relation.annotations or ())
            )[:20]:
                print(f"  {row} -> {w}")
            if args.out:
                write_relation_csv(res.relation, args.out)
                print(f"results written to {args.out}")
        return 0

    if args.command == "plan":
        from repro.core.planner import best_yannakakis_plan, plan_quality
        from repro.mpc import Cluster, distribute_instance

        cluster = Cluster(args.servers, backend=args.backend)
        group = cluster.root_group()
        rels = distribute_instance(instance, group)
        choice = best_yannakakis_plan(group, query, rels)
        quality = plan_quality(group, query, rels)
        print(f"orders considered: {quality['orders']}")
        print(f"best order:  {' -> '.join(choice.order)}")
        print(f"max intermediate: best={quality['best']} worst={quality['worst']}")
        if quality["best"] > 0 and quality["worst"] / max(1, quality["best"]) < 2:
            print("note: all orders are similar — if the best is still "
                  "OUT-sized, prefer the heavy/light algorithms (Sec 4.2/5.1)")
        return 0

    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
