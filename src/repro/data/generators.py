"""Synthetic workload generators with controlled IN, OUT, and skew.

These generators produce the instances the benchmarks sweep over:

* :func:`random_instance` — iid uniform tuples (property tests, smoke).
* :func:`matching_instance` — identity matchings (OUT = n, zero skew).
* :func:`forest_instance` — hierarchical instances built along the
  attribute forest with per-attribute fanouts and optional skew
  (Sections 3 benches).
* :func:`line_trap_instance` — the Figure 3 expansion/contraction pattern
  generalized to line-k, with exact IN/OUT control (Sections 4-5 benches).
* :func:`binary_out_controlled` — binary joins with a prescribed output.
* :func:`cartesian_instance` — Cartesian products of given sizes.
* :func:`add_dangling` — inject dangling tuples into any instance.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.data.instance import Instance
from repro.data.relation import Relation
from repro.data.seeds import rng_for
from repro.errors import InstanceError
from repro.query.catalog import cartesian_product, line_join
from repro.query.forests import attribute_forest
from repro.query.hypergraph import Hypergraph

__all__ = [
    "random_instance",
    "matching_instance",
    "forest_instance",
    "line_trap_instance",
    "binary_out_controlled",
    "cartesian_instance",
    "add_dangling",
    "star_instance",
]


def random_instance(
    query: Hypergraph,
    size: int | Mapping[str, int],
    dom_size: int | Mapping[str, int] = 10,
    seed: int = 0,
) -> Instance:
    """Uniform iid tuples: each relation samples values per attribute.

    Args:
        query: Any hypergraph.
        size: Rows per relation (int applies to all).
        dom_size: Domain size per attribute (int applies to all).
        seed: RNG seed (stream scoped per relation via
            :func:`repro.data.seeds.rng_for`, so adding a relation to a
            query never shifts the rows another relation receives).
    """
    rels = {}
    for name in query.edge_names:
        rng = rng_for(seed, "random_instance", name)
        attrs = tuple(sorted(query.attrs_of(name)))
        n = size if isinstance(size, int) else size[name]
        rows = []
        for _ in range(n):
            row = tuple(
                rng.randrange(dom_size if isinstance(dom_size, int) else dom_size[a])
                for a in attrs
            )
            rows.append(row)
        rels[name] = Relation(name, attrs, rows)
    return Instance(query, rels)


def matching_instance(query: Hypergraph, n: int) -> Instance:
    """Identity matching: row ``i`` of every relation uses value ``i`` everywhere.

    Produces OUT = n results with zero skew — the easiest possible instance.
    """
    rels = {}
    for name in query.edge_names:
        attrs = tuple(sorted(query.attrs_of(name)))
        rows = [tuple(i for _ in attrs) for i in range(n)]
        rels[name] = Relation(name, attrs, rows)
    return Instance(query, rels)


def forest_instance(
    query: Hypergraph,
    fanout: int | Mapping[str, int],
    skew: float = 1.0,
    seed: int = 0,
) -> Instance:
    """A hierarchical instance built along the attribute forest.

    Every attribute ``x`` expands each parent combination into ``fanout[x]``
    child values (roots expand a single virtual parent).  Relation rows are
    the value combinations along their root-to-leaf attribute path, so the
    instance is dangling-free and ``OUT = prod_x fanout_x``.

    Args:
        query: A *hierarchical* query.
        fanout: Per-attribute expansion factor (int applies to all).
        skew: If > 1, the first value of every expansion receives
            ``ceil(fanout * skew)`` children instead of ``fanout``,
            concentrating degree mass on a single spine (higher skew means
            higher ``L_instance``).
        seed: Reserved for future randomized placement (values themselves
            are deterministic path encodings).

    Raises:
        InstanceError: If the query is not hierarchical.
    """
    del seed  # values are deterministic path ids; kept for API stability
    try:
        forest = attribute_forest(query)
    except Exception as exc:  # noqa: BLE001 - re-raise with context
        raise InstanceError(f"forest_instance needs a hierarchical query: {exc}") from exc

    def fan(x: str) -> int:
        return fanout if isinstance(fanout, int) else fanout[x]

    # combos[x] = list of path id tuples from the root of x's tree down to x.
    combos: dict[str, list[tuple[int, ...]]] = {}

    def expand(x: str, prefixes: list[tuple[int, ...]]) -> None:
        out: list[tuple[int, ...]] = []
        base = fan(x)
        for prefix in prefixes:
            is_spine = all(v == 0 for v in prefix)
            width = max(1, int(round(base * skew))) if (is_spine and skew > 1) else base
            out.extend(prefix + (j,) for j in range(width))
        combos[x] = out
        for child in forest.children[x]:
            expand(child, out)

    for root in forest.roots:
        expand(root, [()])

    # Deterministic integer ids per attribute value (path prefix).
    value_ids: dict[str, dict[tuple[int, ...], int]] = {
        x: {c: i for i, c in enumerate(cs)} for x, cs in combos.items()
    }

    rels = {}
    for name in query.edge_names:
        attrs = tuple(sorted(query.attrs_of(name)))
        deepest = forest.edge_leaf(name)
        path = list(reversed(forest.path_to_root(deepest)))  # root..deepest
        depth_of = {x: i for i, x in enumerate(path)}
        rows = []
        for c in combos[deepest]:
            row = tuple(value_ids[a][c[: depth_of[a] + 1]] for a in attrs)
            rows.append(row)
        rels[name] = Relation(name, attrs, rows)
    return Instance(query, rels)


def line_trap_instance(
    k: int,
    in_size: int,
    out_size: int,
    direction: str = "forward",
    doubled: bool = False,
) -> Instance:
    """Figure 3's hard instance, generalized to the line-k join.

    The *forward* shape (for ``k = 3``, exactly the paper's Figure 3 top):
    ``|dom(X0)| = OUT/N``, ``|dom(X1)| = N^2/OUT``, ``|dom(X2)| = N``,
    remaining domains have one value.  ``R1 = dom(X0) x dom(X1)``, ``R2`` is
    a balanced one-to-many map ``X1 -> X2``, and every later relation is a
    contraction onto a single value (identity matchings for ``k > 3``).
    The intermediate ``R1 join R2`` already has size OUT, while
    ``R2 join R3`` stays linear — which is why join order matters in MPC
    (paper Section 4.1).

    Args:
        k: Number of relations (>= 2).
        in_size: Target IN (per copy; actual within a constant factor).
        out_size: Target OUT, must satisfy ``N <= OUT <= N^2`` for
            ``N = in_size / k``.
        direction: ``"forward"`` (expansion at the head) or ``"backward"``
            (mirrored).
        doubled: Glue both directions (disjoint domains) into one instance —
            Figure 3's full construction where *no* single join order wins.

    Returns:
        An instance of :func:`repro.query.catalog.line_join` with ``k``
        relations.
    """
    if k < 2:
        raise InstanceError("line trap needs k >= 2")
    query = line_join(k)
    n = max(4, in_size // k)
    if not (n <= out_size <= n * n):
        raise InstanceError(
            f"need N <= OUT <= N^2 with N={n}, got OUT={out_size}"
        )
    expansion = max(1, out_size // n)  # |dom(X0)|
    mid = max(1, n // expansion)  # |dom(X1)| = N^2/OUT
    deg = max(1, n // mid)  # children per X1 value

    def build(prefix: str, forward: bool) -> dict[str, list[tuple]]:
        """Rows per relation; values namespaced by ``prefix``."""

        def v(level: int, i: int) -> str:
            return f"{prefix}L{level}v{i}"

        rows: dict[str, list[tuple]] = {f"R{i + 1}": [] for i in range(k)}
        # Head expansion: R1 = dom(X0) x dom(X1).
        head = [
            (v(0, a), v(1, b)) for a in range(expansion) for b in range(mid)
        ]
        # One-to-many: X1 -> X2 balanced, degree ``deg``.
        fan = [
            (v(1, b), v(2, b * deg + j)) for b in range(mid) for j in range(deg)
        ]
        # Contractions: identity on level-2 values, final level collapses.
        middles = []
        for lvl in range(2, k - 1):
            middles.append(
                [(v(lvl, c), v(lvl + 1, c)) for c in range(mid * deg)]
            )
        tail = [(v(k - 1, c), v(k, 0)) for c in range(mid * deg)]
        chain = [head, fan, *middles, tail]
        if not forward:
            chain = [[(b, a) for (a, b) in rel] for rel in reversed(chain)]
        for i, rel_rows in enumerate(chain):
            rows[f"R{i + 1}"] = rel_rows
        return rows

    parts = [build("f", direction == "forward")]
    if doubled:
        parts.append(build("g", direction != "forward"))

    rels = {}
    for i in range(k):
        name = f"R{i + 1}"
        attrs = tuple(sorted(query.attrs_of(name)))  # (X{i}, X{i+1}) sorted
        rows: list[tuple] = []
        for p in parts:
            for a, b in p[name]:
                # Map (X_i, X_{i+1}) onto the sorted attribute order.
                natural = {f"X{i}": a, f"X{i + 1}": b}
                rows.append(tuple(natural[x] for x in attrs))
        rels[name] = Relation(name, attrs, rows)
    return Instance(query, rels)


def binary_out_controlled(in_size: int, out_size: int, seed: int = 0) -> Instance:
    """A binary join ``R1(A,B) join R2(B,C)`` with OUT close to a target.

    Degree-balanced: each of ``m`` join values has degree ``d`` on both
    sides where ``m * d^2 ~ OUT`` and ``2 * m * d ~ IN``.
    """
    from repro.query.catalog import binary_join

    query = binary_join()
    n = max(2, in_size // 2)
    d = max(1, round(out_size / max(1, n)))
    d = min(d, n)
    m = max(1, n // d)
    rows1 = [(f"a{b}_{i}", f"b{b}") for b in range(m) for i in range(d)]
    rows2 = [(f"b{b}", f"c{b}_{i}") for b in range(m) for i in range(d)]
    return Instance(
        query,
        {
            "R1": Relation("R1", ("A", "B"), rows1),
            "R2": Relation("R2", ("B", "C"), rows2),
        },
    )


def cartesian_instance(sizes: Sequence[int]) -> Instance:
    """Cartesian product instance with the given relation sizes."""
    query = cartesian_product(len(sizes))
    rels = {}
    for i, n in enumerate(sizes, start=1):
        name = f"R{i}"
        attrs = (f"X{i}",)
        rels[name] = Relation(name, attrs, [(f"x{i}_{j}",) for j in range(n)])
    return Instance(query, rels)


def star_instance(k: int, center: int, fanout: int) -> Instance:
    """Star join with ``center`` hub values each seeing ``fanout`` satellites.

    OUT = ``center * fanout^k``.
    """
    from repro.query.catalog import star_join

    query = star_join(k)
    rels = {}
    for i in range(1, k + 1):
        name = f"R{i}"
        attrs = tuple(sorted(query.attrs_of(name)))
        rows = []
        for z in range(center):
            for j in range(fanout):
                natural = {"Z": f"z{z}", f"X{i}": f"x{i}_{z}_{j}"}
                rows.append(tuple(natural[a] for a in attrs))
        rels[name] = Relation(name, attrs, rows)
    return Instance(query, rels)


def add_dangling(instance: Instance, per_relation: int, seed: int = 0) -> Instance:
    """Append tuples over fresh domain values (guaranteed dangling).

    The extra tuples join nothing, so OUT is unchanged while IN grows — the
    adversarial pattern that breaks one-round algorithms on non-tall-flat
    queries (paper Section 3.1 remark).
    """
    rels = {}
    for name, rel in instance.relations.items():
        rng = rng_for(seed, "add_dangling", name)
        extra = [
            tuple(f"!dangle{rng.randrange(10**9)}_{a}" for a in rel.attrs)
            for _ in range(per_relation)
        ]
        rels[name] = Relation(name, rel.attrs, list(rel.rows) + extra)
    return Instance(instance.query, rels)
