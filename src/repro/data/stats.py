"""Instance statistics: degrees, skew, and the paper's difficulty measures.

A small diagnostic layer used by the examples and benchmarks: given an
instance, summarize the quantities the paper's analysis revolves around —
per-attribute degree distributions, heavy-value counts at the theorems'
thresholds, and the IN/OUT-derived bound values.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

from repro.data.instance import Instance
from repro.query.classify import classify

__all__ = [
    "DegreeSummary",
    "InstanceReport",
    "degree_summary",
    "instance_report",
    "stats_fingerprint",
]


@dataclass(frozen=True)
class DegreeSummary:
    """Degree distribution of one attribute within one relation.

    Attributes:
        relation: Relation name.
        attr: Attribute name.
        distinct: Number of distinct values.
        max_degree: Largest value frequency.
        mean_degree: Average value frequency.
        skew: ``max/mean`` — 1.0 means perfectly uniform.
    """

    relation: str
    attr: str
    distinct: int
    max_degree: int
    mean_degree: float

    @property
    def skew(self) -> float:
        return self.max_degree / self.mean_degree if self.mean_degree else 0.0


def degree_summary(instance: Instance, relation: str, attr: str) -> DegreeSummary:
    """Summarize one attribute's degree distribution in one relation."""
    degs = instance.degrees(relation, (attr,))
    if not degs:
        return DegreeSummary(relation, attr, 0, 0, 0.0)
    values = list(degs.values())
    return DegreeSummary(
        relation=relation,
        attr=attr,
        distinct=len(values),
        max_degree=max(values),
        mean_degree=sum(values) / len(values),
    )


@dataclass
class InstanceReport:
    """A one-stop difficulty profile of an instance.

    Attributes:
        query_class: Figure 1 class name.
        in_size / out_size: The IN/OUT parameters.
        degrees: Degree summaries for every (relation, join attribute).
        heavy_counts: For the paper's thresholds tau, how many join-attr
            values are heavy: keyed by ``(relation, attr)``.
        tau_line3: sqrt(OUT/IN), the Section 4.2 threshold.
    """

    query_class: str
    in_size: int
    out_size: int
    degrees: list[DegreeSummary] = field(default_factory=list)
    heavy_counts: dict[tuple[str, str], int] = field(default_factory=dict)
    tau_line3: float = 1.0

    def max_skew(self) -> float:
        return max((d.skew for d in self.degrees), default=0.0)

    def summary(self) -> str:
        lines = [
            f"class={self.query_class} IN={self.in_size} OUT={self.out_size} "
            f"tau={self.tau_line3:.1f} max_skew={self.max_skew():.1f}"
        ]
        for d in self.degrees:
            heavy = self.heavy_counts.get((d.relation, d.attr), 0)
            lines.append(
                f"  {d.relation}.{d.attr}: distinct={d.distinct} "
                f"max_deg={d.max_degree} skew={d.skew:.1f} heavy@tau={heavy}"
            )
        return "\n".join(lines)


def stats_fingerprint(instance: Instance) -> str:
    """A stable digest of the statistics that drive planning decisions.

    Hashes, per relation: its size and the degree profile (distinct count,
    max degree, mean degree) of every *join* attribute — exactly the
    quantities Section 4.1 join-order pricing and the heavy/light
    thresholds depend on.  The serving engine keys its prepared-plan cache
    on the query's canonical form plus this fingerprint: when a registered
    relation changes but its fingerprint does not, the compiled plan is
    still valid and is revalidated instead of recompiled.

    This is a planning fingerprint, not a content hash: two datasets with
    identical degree profiles share a fingerprint on purpose (their optimal
    plans coincide).  Result freshness is guaranteed separately by the
    engine's version-keyed data caches.
    """
    h = hashlib.sha256()
    query = instance.query
    for name in sorted(instance.relations):
        rel = instance.relations[name]
        h.update(f"{name}|{len(rel)}".encode())
        for attr in sorted(rel.attrs):
            if attr not in query.attributes or len(query.edges_with(attr)) < 2:
                continue
            d = degree_summary(instance, name, attr)
            h.update(
                f"|{attr}:{d.distinct}:{d.max_degree}:{d.mean_degree:.8f}".encode()
            )
        h.update(b";")
    return h.hexdigest()[:16]


def instance_report(instance: Instance) -> InstanceReport:
    """Profile an instance: class, IN/OUT, join-attribute degrees, skew.

    OUT is computed by the RAM oracle (cached on the instance), so this is
    a diagnostic for experiment setup, not an MPC-costed operation.
    """
    query = instance.query
    in_size = instance.input_size
    out_size = instance.output_size()
    tau = max(1.0, math.sqrt(out_size / in_size)) if in_size else 1.0
    report = InstanceReport(
        query_class=classify(query).name,
        in_size=in_size,
        out_size=out_size,
        tau_line3=tau,
    )
    for name in query.edge_names:
        for attr in sorted(query.attrs_of(name)):
            if len(query.edges_with(attr)) < 2:
                continue  # only join attributes drive difficulty
            summary = degree_summary(instance, name, attr)
            report.degrees.append(summary)
            degs = instance.degrees(name, (attr,))
            report.heavy_counts[(name, attr)] = sum(
                1 for d in degs.values() if d > tau
            )
    return report
