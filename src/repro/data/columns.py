"""Columnar relation storage: typed columns, dictionary encoding, wire packing.

Every layer of the data plane historically held rows as lists of Python
tuples, paying per-row object overhead on exactly the paths the substrate
and backends made hot (sorted-run caching, worker memoization, warm
replay).  This module is the shared columnar representation those layers
now build on:

* :class:`Column` — one attribute's values in typed storage with a *kind
  tag*: ``"i"`` (homogeneous ints in an ``array('q')``), ``"d"``
  (dictionary-encoded: integer codes into a list of distinct values), or
  ``"o"`` (raw object list, the escape hatch for unhashable values).
* :class:`ColumnBlock` — a fixed-arity bundle of equal-length columns, the
  columnar twin of a list of row tuples.
* :func:`pack_blob` / :func:`unpack_blob` — the compact wire format the
  multiprocess backend ships instead of pickled tuple lists: per-column
  minimal-width integer arrays, shared dictionaries, and optional zlib,
  behind a one-byte format flag with a pickle fallback for anything the
  columnar form cannot represent.

The load-bearing invariant is **exact round-trip**: decoding an encoded
column yields values equal to the originals *with their original types*
(``True`` stays ``bool``, ``1`` stays ``int``, ``1.0`` stays ``float``).
Dictionary keys are therefore ``(type, value)`` pairs — plain value keys
would collapse ``1``/``True``/``1.0``, which Python's ``dict`` considers
equal, silently rewriting data on the wire.  Non-int values keep their
*original objects* in the dictionary, so even exotic cases (``NaN``,
interned strings) survive unchanged.  The ledger never sees any of this:
encoding changes bytes on a wire, never the number of logical tuples.
"""

from __future__ import annotations

import pickle
import zlib
from array import array
from typing import Any, Iterable, Sequence

__all__ = [
    "Column",
    "ColumnBlock",
    "encode_column",
    "pack_blob",
    "unpack_blob",
    "packed_size",
    "pack_frame",
    "unpack_frame_block",
    "unpack_frame",
]

_PROTO = pickle.HIGHEST_PROTOCOL

#: :func:`repro.mpc.substrate.orderable` type tags mirrored here so the
#: substrate can read a column's homogeneity in O(1) instead of scanning.
TAG_NUM = 2
TAG_STR = 3

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

# Signed/unsigned array typecodes by width, verified at import time (the C
# sizes of 'i'/'l' are platform-defined; we only use codes whose itemsize
# matches the width we narrowed for).
_SIGNED = [(tc, array(tc).itemsize) for tc in ("b", "h", "i", "l", "q")]
_UNSIGNED = [(tc, array(tc).itemsize) for tc in ("B", "H", "I", "L", "Q")]


def _narrow_typecode(lo: int, hi: int) -> str:
    """Smallest signed typecode holding every value in ``[lo, hi]``."""
    for tc, size in _SIGNED:
        bits = size * 8 - 1
        if -(1 << bits) <= lo and hi < (1 << bits):
            return tc
    return "q"


def _narrow_unsigned_typecode(hi: int) -> str:
    """Smallest unsigned typecode holding codes in ``[0, hi]``."""
    for tc, size in _UNSIGNED:
        if hi < (1 << (size * 8)):
            return tc
    return "Q"


def _order_tag_of(values: Iterable[Any]) -> int | None:
    """The substrate's homogeneity tag, by the exact ``column_kind`` rule.

    ``TAG_NUM`` when every value's type is exactly ``int`` or ``float``
    (``bool`` disqualifies — it is an ``int`` subclass with a different
    orderable tag), ``TAG_STR`` when every type is exactly ``str``, else
    ``None``.  An empty iterable yields ``None``.
    """
    state = 0
    for v in values:
        tv = type(v)
        if tv is int or tv is float:
            t = TAG_NUM
        elif tv is str:
            t = TAG_STR
        else:
            return None
        if state == 0:
            state = t
        elif state != t:
            return None
    return state if state in (TAG_NUM, TAG_STR) else None


class Column:
    """One attribute's values in typed storage.

    Attributes:
        kind: ``"i"`` — ``data`` is an ``array('q')`` of values that were
            all exactly ``int``; ``"d"`` — ``data`` is an integer-code
            array and ``dictionary`` the distinct values in first-seen
            order; ``"o"`` — ``data`` is the raw value list (unhashable
            values).
        data: The typed storage (see ``kind``).
        dictionary: Distinct original value objects (``"d"`` only).
    """

    __slots__ = ("kind", "data", "dictionary", "_order_tag")

    def __init__(self, kind: str, data: Any, dictionary: list | None = None) -> None:
        self.kind = kind
        self.data = data
        self.dictionary = dictionary
        self._order_tag: Any = _UNSET

    def __len__(self) -> int:
        return len(self.data)

    def values(self) -> list:
        """Decode back to the original values (exact types and objects)."""
        if self.kind == "i":
            return self.data.tolist()
        if self.kind == "d":
            d = self.dictionary
            assert d is not None
            return [d[c] for c in self.data]
        return list(self.data)

    @property
    def order_tag(self) -> int | None:
        """Homogeneity tag for the substrate's key-encoding fast paths.

        Computed from the *dictionary* (the distinct values) for ``"d"``
        columns — type homogeneity over distinct values equals homogeneity
        over all values — and cached; an empty column reports ``None``.
        """
        tag = self._order_tag
        if tag is _UNSET:
            if self.kind == "i":
                tag = TAG_NUM if len(self.data) else None
            elif self.kind == "d":
                tag = _order_tag_of(self.dictionary or ())
                if not len(self.data):
                    tag = None
            else:
                tag = _order_tag_of(self.data)
            self._order_tag = tag
        return tag

    def take_stride(self, start: int, step: int) -> "Column":
        """The sub-column of positions ``start, start+step, ...`` (C-speed).

        Dictionary columns share the dictionary object with the parent;
        codes unused by the slice simply never occur in it.
        """
        if self.kind == "o":
            return Column("o", self.data[start::step])
        col = Column(self.kind, self.data[start::step], self.dictionary)
        return col

    def approx_nbytes(self) -> int:
        """Approximate resident size (cache-accounting, not wire size).

        Typed arrays report their exact buffer size; dictionary values
        and raw objects are estimated via :func:`sys.getsizeof`.  Shared
        dictionaries are counted once per referencing column — an
        overcount, i.e. conservative for the cache bounds built on this.
        """
        import sys as _sys

        if self.kind == "i":
            return self.data.itemsize * len(self.data)
        if self.kind == "d":
            base = self.data.itemsize * len(self.data)
            return base + sum(_sys.getsizeof(v) for v in self.dictionary or ())
        return sum(_sys.getsizeof(v) for v in self.data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        extra = f", |dict|={len(self.dictionary)}" if self.kind == "d" else ""
        return f"Column<{self.kind}, {len(self)} values{extra}>"


_UNSET = object()


def encode_column(values: Sequence[Any]) -> Column:
    """Encode one column of values, preserving exact round-trip.

    Homogeneous ``int`` columns (every value's type exactly ``int``, within
    int64) become ``array('q')``; everything else is dictionary-encoded on
    ``(type, value)`` keys — the type in the key is what keeps ``True``,
    ``1``, and ``1.0`` apart even though ``dict`` equality identifies them.
    Unhashable values fall back to a plain object list.
    """
    vals = values if isinstance(values, list) else list(values)
    all_int = True
    for v in vals:
        if type(v) is not int or not (_I64_MIN <= v <= _I64_MAX):
            all_int = False
            break
    if all_int:
        return Column("i", array("q", vals))
    index: dict[tuple, int] = {}
    dictionary: list = []
    codes = array("q", bytes(0))
    try:
        append = codes.append
        for v in vals:
            k = (v.__class__, v)
            c = index.get(k)
            if c is None:
                c = index[k] = len(dictionary)
                dictionary.append(v)
            append(c)
    except TypeError:  # unhashable value somewhere: store objects as-is
        return Column("o", list(vals))
    return Column("d", codes, dictionary)


class ColumnBlock:
    """A fixed-arity bundle of equal-length columns (one rowset).

    ``n`` is stored explicitly so zero-arity rowsets (Boolean queries)
    keep their cardinality.
    """

    __slots__ = ("n", "columns")

    def __init__(self, n: int, columns: Sequence[Column]) -> None:
        self.n = n
        self.columns = tuple(columns)

    @classmethod
    def from_rows(cls, rows: Sequence[tuple], arity: int) -> "ColumnBlock":
        """Encode a list of equal-arity row tuples.

        Raises:
            ValueError: If any row's arity differs — ``zip`` would
                otherwise silently truncate to the shortest row and a
                later decode would serve corrupted rows.
        """
        n = len(rows)
        if not n or not arity:
            if any(len(r) != arity for r in rows):
                raise ValueError(f"rows are not uniformly arity {arity}")
            return cls(n, [encode_column([]) for _ in range(arity)])
        if any(len(r) != arity for r in rows):
            raise ValueError(f"rows are not uniformly arity {arity}")
        return cls(n, [encode_column(col) for col in zip(*rows)])

    def __len__(self) -> int:
        return self.n

    @property
    def arity(self) -> int:
        return len(self.columns)

    def rows(self) -> list[tuple]:
        """Materialize the row-tuple view (exact round-trip)."""
        if not self.columns:
            return [()] * self.n
        return list(zip(*[c.values() for c in self.columns]))

    def column_values(self, i: int) -> list:
        return self.columns[i].values()

    def take_stride(self, start: int, step: int) -> "ColumnBlock":
        """Rows ``start, start+step, ...`` as a new block (shared dicts)."""
        if not self.columns:
            return ColumnBlock(len(range(start, self.n, step)), ())
        cols = [c.take_stride(start, step) for c in self.columns]
        return ColumnBlock(len(cols[0]) if cols else 0, cols)

    def approx_nbytes(self) -> int:
        """Approximate resident size of all columns (see ``Column``)."""
        return 64 + sum(c.approx_nbytes() for c in self.columns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnBlock<{self.n} rows x {self.arity} cols>"


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
#
# blob = flag byte + payload.  Flag bits: 0x01 = columnar payload (pickled
# ``(n, specs)``), 0x00 = pickled row list (fallback); 0x80 = payload is
# zlib-compressed.  Specs are per column:
#   ("i", narrow_signed_array)           int column
#   ("d", narrow_unsigned_codes, values) dictionary column
#   ("o", values)                        object column
# Narrowing picks the smallest array typecode covering the value range, so
# small-domain columns cost 1-2 bytes per row before compression.

_F_COLS = 0x01
_F_ZLIB = 0x80
_COMPRESS_MIN = 256


def _narrow_signed(arr: array) -> array:
    if not len(arr):
        return array("b", bytes(0))
    lo, hi = min(arr), max(arr)
    tc = _narrow_typecode(lo, hi)
    return arr if tc == arr.typecode else array(tc, arr)


def _narrow_codes(codes: array, n_values: int) -> array:
    tc = _narrow_unsigned_typecode(max(0, n_values - 1))
    return array(tc, codes)


def _pack_spec(col: Column) -> tuple:
    if col.kind == "i":
        return ("i", _narrow_signed(col.data))
    if col.kind == "d":
        d = col.dictionary or []
        # Remap codes to the values this column actually uses: strided
        # slices share the parent relation's full dictionary, and shipping
        # it verbatim would send every part all distinct values of the
        # whole relation (inflating the wire past the row-pickle baseline
        # on high-cardinality columns).  First-occurrence order keeps the
        # blob deterministic.
        remap: dict[int, int] = {}
        used: list = []
        codes = array("q", bytes(0))
        append = codes.append
        get = remap.get
        for c in col.data:
            nc = get(c)
            if nc is None:
                nc = remap[c] = len(used)
                used.append(d[c])
            append(nc)
        return ("d", _narrow_codes(codes, len(used)), used)
    return ("o", list(col.data))


def _pack_rows(part: Sequence) -> tuple | None:
    """Columnar packing of a row list; ``None`` when rows aren't uniform tuples."""
    n = len(part)
    if n == 0:
        return (0, ())
    first = part[0]
    if type(first) is not tuple:
        return None
    arity = len(first)
    for r in part:
        if type(r) is not tuple or len(r) != arity:
            return None
    if arity == 0:
        return (n, ())
    return (n, tuple(_pack_spec(encode_column(col)) for col in zip(*part)))


def _pack_block(block: ColumnBlock) -> tuple:
    return (block.n, tuple(_pack_spec(c) for c in block.columns))


def _finish(flag: int, payload: bytes) -> bytes:
    if len(payload) > _COMPRESS_MIN:
        z = zlib.compress(payload, 1)
        if len(z) < len(payload):
            return bytes((flag | _F_ZLIB,)) + z
    return bytes((flag,)) + payload


def pack_blob(part: Sequence, block: ColumnBlock | None = None) -> bytes:
    """Serialize one part for the wire (columnar when possible).

    Args:
        part: The row list the receiver must reconstruct exactly.
        block: The part's already-encoded :class:`ColumnBlock`, when the
            owner is columnar-backed — skips re-encoding from rows.

    May raise whatever :mod:`pickle` raises on unpicklable values; callers
    (the multiprocess backend) already treat that as "run inline".
    """
    packed = _pack_block(block) if block is not None else _pack_rows(part)
    if packed is None:
        return _finish(0x00, pickle.dumps(list(part), _PROTO))
    return _finish(_F_COLS, pickle.dumps(packed, _PROTO))


def unpack_blob(blob: bytes) -> list[tuple]:
    """Invert :func:`pack_blob`: the exact original row list."""
    flag = blob[0]
    payload = blob[1:]
    if flag & _F_ZLIB:
        payload = zlib.decompress(payload)
    data = pickle.loads(payload)
    if not flag & _F_COLS:
        return data
    n, specs = data
    if not specs:
        return [()] * n
    value_lists = []
    for spec in specs:
        tag = spec[0]
        if tag == "i":
            value_lists.append(spec[1].tolist())
        elif tag == "d":
            d = spec[2]
            value_lists.append([d[c] for c in spec[1]])
        else:
            value_lists.append(spec[1])
    return list(zip(*value_lists))


def packed_size(part: Sequence, block: ColumnBlock | None = None) -> int:
    """Wire bytes :func:`pack_blob` would ship for ``part`` (bench helper)."""
    return len(pack_blob(part, block))


# ----------------------------------------------------------------------
# Frame format (shared-memory transport)
# ----------------------------------------------------------------------
#
# A *frame* is the shared-memory sibling of the blob wire format: instead
# of one pickled payload the receiver must copy while decoding, a frame
# splits each column into a tiny pickled header and *raw typed sections*
# laid out at aligned offsets, so a receiver holding the frame in a
# shared-memory segment reconstructs every numeric column as a
# ``memoryview.cast`` over the segment — zero bytes copied.  Layout::
#
#     u32 header_len | pickled header | padded raw sections ...
#
# The header is ``(n, specs)`` with per-column specs
#
#     ("i", typecode, offset, count)              int column (raw section)
#     ("d", typecode, offset, count, values)      dict codes (raw section)
#     ("o", values)                               object column (in header)
#
# or ``(n, None, rows)`` as the pickled-row fallback for parts the
# columnar form cannot represent.  Offsets are frame-relative and aligned
# to the section's itemsize, which is what makes the cast legal.  Frames
# are deliberately uncompressed: they live in shared memory, written once
# and mapped by every worker, so decode latency beats resident bytes.

def _aligned(offset: int, itemsize: int) -> int:
    return (offset + itemsize - 1) // itemsize * itemsize


def pack_frame(part: Sequence, block: ColumnBlock | None = None) -> bytes:
    """Serialize one part as a zero-copy-decodable frame.

    Mirrors :func:`pack_blob`'s inputs: ``block`` skips re-encoding when
    the owner is columnar-backed.  May raise whatever :mod:`pickle`
    raises on unpicklable values (callers treat that as "run inline").
    """
    if block is not None:
        n, specs = block.n, [_pack_spec(c) for c in block.columns]
    else:
        packed = _pack_rows(part)
        if packed is None:
            header = pickle.dumps((len(part), None, list(part)), _PROTO)
            return len(header).to_bytes(4, "little") + header
        n, raw_specs = packed
        specs = list(raw_specs)
    sections: list[array] = []
    header_specs: list[tuple] = []
    # Two passes: the header's pickled size depends on the offsets, and
    # the offsets depend on the header size.  Pickle once with zero
    # offsets to learn the size, then patch real offsets in — the pickle
    # of an int is not width-stable, so pad the header to a fixed slot.
    for spec in specs:
        if spec[0] == "i":
            header_specs.append(("i", spec[1].typecode, 0, len(spec[1])))
            sections.append(spec[1])
        elif spec[0] == "d":
            header_specs.append(("d", spec[1].typecode, 0, len(spec[1]), spec[2]))
            sections.append(spec[1])
        else:
            header_specs.append(spec)
    probe = pickle.dumps((n, header_specs), _PROTO)
    header_len = len(probe) + 16 * len(sections)  # room for real offsets
    offset = 4 + header_len
    si = 0
    final_specs: list[tuple] = []
    for spec in header_specs:
        if spec[0] in ("i", "d"):
            arr = sections[si]
            si += 1
            offset = _aligned(offset, arr.itemsize or 1)
            final_specs.append((*spec[:2], offset, *spec[3:]))
            offset += arr.itemsize * len(arr)
        else:
            final_specs.append(spec)
    header = pickle.dumps((n, final_specs), _PROTO)
    if len(header) > header_len:  # pragma: no cover - padding invariant
        raise ValueError("frame header grew past its padded slot")
    out = bytearray(offset)
    out[0:4] = header_len.to_bytes(4, "little")
    out[4:4 + len(header)] = header
    si = 0
    for spec in final_specs:
        if spec[0] in ("i", "d"):
            arr = sections[si]
            si += 1
            start = spec[2]
            out[start:start + arr.itemsize * len(arr)] = arr.tobytes()
    return bytes(out)


def unpack_frame_block(view: "memoryview | bytes") -> ColumnBlock:
    """Reconstruct a :class:`ColumnBlock` over a frame **without copying**.

    Numeric columns (``"i"`` data, ``"d"`` codes) become ``memoryview``
    casts straight into ``view`` — no bytes move; only dictionaries and
    object columns (Python objects, necessarily pickled) are materialized.
    The returned block therefore *borrows* ``view``: it must not outlive
    the buffer (the shared-memory segment) it was built over.

    A pickled-row fallback frame decodes with a copy, exactly like the
    blob format.
    """
    if not isinstance(view, memoryview):
        view = memoryview(view)
    header_len = int.from_bytes(view[0:4], "little")
    decoded = pickle.loads(view[4:4 + header_len])
    if decoded[1] is None:
        n, _none, rows = decoded
        arity = len(rows[0]) if rows else 0
        return ColumnBlock.from_rows(rows, arity)
    n, specs = decoded
    cols: list[Column] = []
    for spec in specs:
        if spec[0] == "i":
            _tag, tc, off, count = spec
            itemsize = array(tc).itemsize
            data = view[off:off + itemsize * count].cast(tc)
            cols.append(Column("i", data))
        elif spec[0] == "d":
            _tag, tc, off, count, values = spec
            itemsize = array(tc).itemsize
            codes = view[off:off + itemsize * count].cast(tc)
            cols.append(Column("d", codes, values))
        else:
            cols.append(Column("o", spec[1]))
    return ColumnBlock(n, cols)


def unpack_frame(view: "memoryview | bytes") -> list[tuple]:
    """Invert :func:`pack_frame`: the exact original row list."""
    if not isinstance(view, memoryview):
        view = memoryview(view)
    header_len = int.from_bytes(view[0:4], "little")
    decoded = pickle.loads(view[4:4 + header_len])
    if decoded[1] is None:
        return decoded[2]
    return unpack_frame_block(view).rows()
