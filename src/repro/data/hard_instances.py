"""Lower-bound instance constructions from the paper's proofs.

* :func:`yannakakis_trap` / :func:`yannakakis_trap_doubled` — Figure 3:
  the instances showing that join order matters in MPC and that no single
  order is always good (Section 4.1).
* :func:`line3_random_hard` — Figure 4: the randomized construction behind
  the line-3 lower bound (Theorem 6).
* :func:`triangle_random_hard` — Figure 6: the randomized construction
  behind the triangle lower bound (Theorem 11).
* :func:`rhier_extremal` — the Lemma 1 based extremal instance showing
  Theorem 4's closed-form output-optimal bound is tight.
* :func:`embed_line3` — the Lemma 2 embedding that transfers the line-3
  hard instance into any acyclic non-r-hierarchical query (Theorem 8).
"""

from __future__ import annotations

import math

from repro.data.instance import Instance
from repro.data.generators import line_trap_instance
from repro.data.relation import Relation
from repro.data.seeds import rng_for
from repro.errors import InstanceError
from repro.query.catalog import line3, triangle
from repro.query.covers import integral_edge_cover
from repro.query.hypergraph import Hypergraph
from repro.query.paths import minimal_path_of_length_3

__all__ = [
    "yannakakis_trap",
    "yannakakis_trap_doubled",
    "line3_random_hard",
    "triangle_random_hard",
    "rhier_extremal",
    "embed_line3",
]


def yannakakis_trap(in_size: int, out_size: int, direction: str = "forward") -> Instance:
    """Figure 3 (top half): the line-3 instance where one join order is bad.

    With the *forward* direction, the plan ``(R1 join R2) join R3`` shuffles
    an OUT-sized intermediate while ``R1 join (R2 join R3)`` stays linear.
    """
    return line_trap_instance(3, in_size, out_size, direction=direction)


def yannakakis_trap_doubled(in_size: int, out_size: int) -> Instance:
    """Figure 3 (full): two mirrored traps — every global join order is bad."""
    return line_trap_instance(3, in_size // 2, out_size // 2, doubled=True)


def line3_random_hard(in_size: int, out_size: int, seed: int = 0) -> Instance:
    """Figure 4: the randomized hard instance for the line-3 lower bound.

    ``N = IN/3``, ``tau = sqrt(OUT/N)``; ``dom(B) = dom(C) = N/tau``;
    each B value owns a *group* of ``tau`` tuples in ``R1`` (distinct A's),
    symmetrically for C in ``R3``; each ``(b, c)`` pair joins independently
    with probability ``tau^2/N``.

    Requires ``IN <= OUT`` (so ``tau >= 1``) and ``OUT <= (IN/3)^2``
    (so ``tau <= N/ tau`` stays meaningful).
    """
    n = in_size // 3
    if out_size < n:
        raise InstanceError(f"need OUT >= N (got OUT={out_size}, N={n})")
    tau = max(1, round(math.sqrt(out_size / n)))
    groups = max(1, n // tau)
    rng = rng_for(seed, "line3_random_hard")

    r1_rows = [(f"a{b}_{i}", f"b{b}") for b in range(groups) for i in range(tau)]
    r3_rows = [(f"c{c}", f"d{c}_{i}") for c in range(groups) for i in range(tau)]
    prob = min(1.0, tau * tau / n)
    r2_rows = [
        (f"b{b}", f"c{c}")
        for b in range(groups)
        for c in range(groups)
        if rng.random() < prob
    ]
    query = line3()
    return Instance(
        query,
        {
            "R1": Relation("R1", ("A", "B"), r1_rows),
            "R2": Relation("R2", ("B", "C"), r2_rows),
            "R3": Relation("R3", ("C", "D"), r3_rows),
        },
    )


def triangle_random_hard(in_size: int, out_size: int, seed: int = 0) -> Instance:
    """Figure 6: the randomized hard instance for the triangle lower bound.

    ``N = IN/3``, ``tau = OUT/N``; ``dom(A) = tau``,
    ``dom(B) = dom(C) = N/tau``; ``R2(A,C)`` and ``R3(A,B)`` are complete
    bipartite; ``R1(B,C)`` contains each pair independently with
    probability ``tau^2/N``.

    Requires ``IN <= OUT <= (IN/3)^{3/2}`` (AGM range).
    """
    n = in_size // 3
    tau = max(1, round(out_size / n))
    if tau * tau > n:
        raise InstanceError(
            f"need OUT <= N^1.5 (got OUT={out_size}, N={n}, tau={tau})"
        )
    side = max(1, n // tau)
    rng = rng_for(seed, "triangle_random_hard")
    r2_rows = [(f"a{a}", f"c{c}") for a in range(tau) for c in range(side)]
    r3_rows = [(f"a{a}", f"b{b}") for a in range(tau) for b in range(side)]
    prob = min(1.0, tau * tau / n)
    r1_rows = [
        (f"b{b}", f"c{c}")
        for b in range(side)
        for c in range(side)
        if rng.random() < prob
    ]
    query = triangle()
    return Instance(
        query,
        {
            "R1": Relation("R1", ("B", "C"), r1_rows),
            "R2": Relation("R2", ("A", "C"), r2_rows),
            "R3": Relation("R3", ("A", "B"), r3_rows),
        },
    )


def rhier_extremal(query: Hypergraph, in_size: int, out_size: int) -> Instance:
    """The Lemma 1 extremal instance making Theorem 4's bound tight.

    Picks an optimal *integral* edge cover ``C`` (acyclic joins have one),
    nested subsets ``C_{k*-1} subset C_{k*}`` with ``k* = ceil(log_IN OUT)``,
    and gives each cover edge a private attribute whose domain carries the
    instance's mass: ``IN`` values for the first ``k*-1`` cover edges,
    ``OUT / IN^{k*-1}`` values for the ``k*``-th; every other attribute is a
    singleton.  Then ``|join of C_{k*-1}| = IN^{k*-1}`` and
    ``|join of C_{k*}| = OUT``.

    Raises:
        InstanceError: If the cover is too small for the requested OUT
            (``OUT > IN^|C|`` violates the AGM bound).
    """
    if out_size < 1 or in_size < 2:
        raise InstanceError("need IN >= 2 and OUT >= 1")
    cover = sorted(integral_edge_cover(query))
    k_star = max(1, math.ceil(math.log(out_size) / math.log(in_size)))
    if k_star > len(cover):
        raise InstanceError(
            f"OUT={out_size} needs k*={k_star} cover edges, cover has {len(cover)}"
        )
    chosen = cover[:k_star]

    # Private attribute per cover edge: one not shared with any other edge.
    def private_attr(edge: str) -> str:
        attrs = query.attrs_of(edge)
        others: set[str] = set()
        for other in query.edge_names:
            if other != edge:
                others |= query.attrs_of(other)
        candidates = sorted(attrs - others)
        if not candidates:
            raise InstanceError(
                f"cover edge {edge!r} has no private attribute; "
                "query is not in extremal form"
            )
        return candidates[0]

    dom_sizes: dict[str, int] = {a: 1 for a in query.attributes}
    last_dom = max(1, out_size // in_size ** (k_star - 1))
    for i, e in enumerate(chosen):
        attr = private_attr(e)
        dom_sizes[attr] = in_size if i < k_star - 1 else last_dom

    rels = {}
    for name in query.edge_names:
        attrs = tuple(sorted(query.attrs_of(name)))
        # Cartesian product of the attribute domains (all but at most one
        # private attribute are singletons, so sizes stay linear).
        rows: list[tuple] = [()]
        for a in attrs:
            rows = [r + (f"{a}#{v}",) for r in rows for v in range(dom_sizes[a])]
        rels[name] = Relation(name, attrs, rows)
    return Instance(query, rels)


def embed_line3(query: Hypergraph, in_size: int, out_size: int, seed: int = 0) -> Instance:
    """Embed the Figure 4 hard instance into an acyclic non-r-hier query.

    Implements the Theorem 8 construction: find a minimal path
    ``(x1, x2, x3, x4)`` (Lemma 2), place the line-3 hard relations on the
    three covering edges, and give every other attribute a singleton domain.

    Raises:
        InstanceError: If the query has no minimal path of length 3
            (i.e. it is r-hierarchical).
    """
    path = minimal_path_of_length_3(query)
    if path is None:
        raise InstanceError(
            f"{query.name} is r-hierarchical; no line-3 embedding exists"
        )
    hard = line3_random_hard(in_size, out_size, seed=seed)
    path_index = {attr: i for i, attr in enumerate(path)}

    # Values per path attribute, from the hard instance's columns.
    def column(rel: str, attr_pos: int) -> list:
        return sorted({row[attr_pos] for row in hard.relations[rel].rows})

    dom: dict[str, list] = {a: ["*"] for a in query.attributes}
    dom[path[0]] = column("R1", 0)
    dom[path[1]] = column("R1", 1)
    dom[path[2]] = column("R3", 0)
    dom[path[3]] = column("R3", 1)

    rels = {}
    for name in query.edge_names:
        attrs = tuple(sorted(query.attrs_of(name)))
        overlap = sorted((a for a in attrs if a in path_index), key=path_index.get)
        if len(overlap) == 2:
            i, j = path_index[overlap[0]], path_index[overlap[1]]
            if j != i + 1:
                raise InstanceError(
                    f"edge {name!r} contains non-consecutive path attributes; "
                    "minimal path violated"
                )
            # Case 3: the edge carries a copy of R_{i+1} on the pair.
            src = f"R{i + 1}"
            pa, pb = path[i], path[j]
            rows = []
            for va, vb in hard.relations[src].rows:
                vals = {pa: va, pb: vb}
                rows.append(
                    tuple(vals[a] if a in vals else dom[a][0] for a in attrs)
                )
        elif len(overlap) <= 1:
            # Cases 1-2: expand the (at most one) path attribute's domain.
            rows = [()]
            for a in attrs:
                rows = [r + (v,) for r in rows for v in dom[a]]
        else:
            raise InstanceError(
                f"edge {name!r} contains {len(overlap)} path attributes; "
                "minimal path violated"
            )
        rels[name] = Relation(name, attrs, rows)
    return Instance(query, rels)
