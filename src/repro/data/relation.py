"""Schema-carrying relations (sets of tuples, optionally annotated).

A :class:`Relation` presents rows as Python tuples aligned with an
attribute tuple, but is *columnar-backed*: the authoritative storage is a
:class:`~repro.data.columns.ColumnBlock` (typed, dictionary-encoded
columns) derived lazily from the deduplicated rows — or supplied directly
via :meth:`Relation.from_columns`.  The row view and the column view are
always interchangeable; decoding is an exact round-trip (types included),
so every consumer of ``rows`` sees precisely what it always saw.

Natural-join semantics are set semantics: rows are deduplicated at
construction.  For annotated relations (paper Section 6) duplicates combine
their annotations with the semiring's ``plus``.  Both construction paths —
rows in, columns in — apply the identical dedup/combine pass, so the two
representations can never disagree on contents.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.data.columns import ColumnBlock
from repro.errors import SchemaError
from repro.semiring import Semiring

__all__ = ["Relation", "project_row"]

Row = tuple


def project_row(row: Row, positions: Sequence[int]) -> Row:
    """Project ``row`` onto the given attribute positions."""
    return tuple(row[i] for i in positions)


class Relation:
    """An immutable named relation.

    Args:
        name: Relation name (matches the hypergraph edge name).
        attrs: Attribute names, in column order.
        rows: Iterable of value tuples (one entry per attribute).
        annotations: Optional per-row annotations, parallel to ``rows``.
        semiring: Required when ``annotations`` is given; duplicate rows
            combine annotations with ``semiring.plus``.

    Raises:
        SchemaError: On arity mismatches or annotation misuse.
    """

    def __init__(
        self,
        name: str,
        attrs: Sequence[str],
        rows: Iterable[Row],
        annotations: Iterable[Any] | None = None,
        semiring: Semiring | None = None,
    ) -> None:
        self.name = name
        self.attrs: tuple[str, ...] = tuple(attrs)
        if len(set(self.attrs)) != len(self.attrs):
            raise SchemaError(f"relation {name!r} has duplicate attributes {attrs}")
        arity = len(self.attrs)

        if annotations is None:
            seen: dict[Row, None] = {}
            for row in rows:
                row = tuple(row)
                if len(row) != arity:
                    raise SchemaError(
                        f"row {row!r} has arity {len(row)}, expected {arity} in {name!r}"
                    )
                seen[row] = None
            self._rows: tuple[Row, ...] = tuple(seen)
            self._annotations: tuple[Any, ...] | None = None
            self.semiring: Semiring | None = None
        else:
            if semiring is None:
                raise SchemaError("annotated relations need a semiring")
            combined: dict[Row, Any] = {}
            rows = list(rows)
            annotations = list(annotations)
            if len(rows) != len(annotations):
                raise SchemaError(
                    f"{len(rows)} rows but {len(annotations)} annotations in {name!r}"
                )
            for row, w in zip(rows, annotations):
                row = tuple(row)
                if len(row) != arity:
                    raise SchemaError(
                        f"row {row!r} has arity {len(row)}, expected {arity} in {name!r}"
                    )
                if row in combined:
                    combined[row] = semiring.plus(combined[row], w)
                else:
                    combined[row] = w
            self._rows = tuple(combined)
            self._annotations = tuple(combined.values())
            self.semiring = semiring
        # Lazy caches (the relation is immutable): membership set for
        # __contains__/__eq__, attribute index for positions(), columnar
        # backing for the data plane (encoded once, shared by renames).
        self._row_set: frozenset | None = None
        self._attr_pos: dict[str, int] | None = None
        self._cols: ColumnBlock | None = None

    @classmethod
    def from_columns(
        cls,
        name: str,
        attrs: Sequence[str],
        block: ColumnBlock,
        annotations: Iterable[Any] | None = None,
        semiring: Semiring | None = None,
    ) -> "Relation":
        """Construct from a :class:`~repro.data.columns.ColumnBlock`.

        Semantically identical to constructing from ``block.rows()`` —
        the same dedup / annotation-combining pass runs — but when the
        block holds no duplicates it is kept as the columnar backing, so
        no re-encoding ever happens on the columnar fast path.
        """
        if block.arity != len(tuple(attrs)):
            raise SchemaError(
                f"block arity {block.arity} != {len(tuple(attrs))} attrs in {name!r}"
            )
        rel = cls(name, attrs, block.rows(), annotations, semiring)
        if len(rel._rows) == block.n:
            rel._cols = block
        return rel

    # ------------------------------------------------------------------
    @property
    def rows(self) -> tuple[Row, ...]:
        return self._rows

    @property
    def columns(self) -> ColumnBlock:
        """The columnar backing (encoded lazily, then cached)."""
        cols = self._cols
        if cols is None:
            cols = self._cols = ColumnBlock.from_rows(self._rows, len(self.attrs))
        return cols

    def renamed(self, name: str, attrs: Sequence[str] | None = None) -> "Relation":
        """The same relation under a new name / attribute names.

        A metadata-only operation: rows, annotations, and the columnar
        backing are shared with ``self`` (both are immutable).  ``attrs``
        must have the original arity; passing ``None`` keeps the old names.
        """
        attrs = self.attrs if attrs is None else tuple(attrs)
        if len(attrs) != len(self.attrs):
            raise SchemaError(
                f"cannot rename {self.attrs} to {attrs}: arity differs"
            )
        clone = object.__new__(type(self))
        clone.name = name
        clone.attrs = attrs
        if len(set(attrs)) != len(attrs):
            raise SchemaError(f"relation {name!r} has duplicate attributes {attrs}")
        clone._rows = self._rows
        clone._annotations = self._annotations
        clone.semiring = self.semiring
        clone._row_set = self._row_set
        clone._attr_pos = None
        clone._cols = self._cols
        return clone

    @property
    def annotations(self) -> tuple[Any, ...] | None:
        return self._annotations

    @property
    def annotated(self) -> bool:
        return self._annotations is not None

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def _rowset(self) -> frozenset:
        cached = self._row_set
        if cached is None:
            cached = self._row_set = frozenset(self._rows)
        return cached

    def __contains__(self, row: Row) -> bool:
        return tuple(row) in self._rowset()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        if self.attrs != other.attrs:
            # Same set of attributes in a different order still counts equal.
            if set(self.attrs) != set(other.attrs):
                return False
            other = other.reordered(self.attrs)
        if self.annotated != other.annotated:
            return False
        if not self.annotated:
            return self._rowset() == other._rowset()
        return dict(zip(self._rows, self._annotations or ())) == dict(
            zip(other._rows, other._annotations or ())
        )

    def __repr__(self) -> str:
        tag = " annotated" if self.annotated else ""
        return f"Relation<{self.name}({','.join(self.attrs)}), {len(self)} rows{tag}>"

    # ------------------------------------------------------------------
    def positions(self, attrs: Sequence[str]) -> tuple[int, ...]:
        """Column positions of the given attribute names.

        Raises:
            SchemaError: If an attribute is missing.
        """
        index = self._attr_pos
        if index is None:
            index = self._attr_pos = {a: i for i, a in enumerate(self.attrs)}
        try:
            return tuple(index[a] for a in attrs)
        except KeyError as exc:
            raise SchemaError(
                f"attributes {attrs} not all present in {self.name!r}{self.attrs}"
            ) from exc

    def project(self, attrs: Sequence[str], name: str | None = None) -> "Relation":
        """Project onto ``attrs`` (set semantics; annotations combine via plus)."""
        pos = self.positions(attrs)
        if self.annotated:
            assert self.semiring is not None and self._annotations is not None
            return Relation(
                name or self.name,
                attrs,
                (project_row(r, pos) for r in self._rows),
                annotations=self._annotations,
                semiring=self.semiring,
            )
        return Relation(name or self.name, attrs, (project_row(r, pos) for r in self._rows))

    def select(self, predicate: Callable[[Mapping[str, Any]], bool]) -> "Relation":
        """Filter rows by a predicate over an attr -> value mapping."""
        keep_idx = [
            i
            for i, r in enumerate(self._rows)
            if predicate(dict(zip(self.attrs, r)))
        ]
        rows = [self._rows[i] for i in keep_idx]
        if self.annotated:
            assert self.semiring is not None and self._annotations is not None
            anns = [self._annotations[i] for i in keep_idx]
            return Relation(self.name, self.attrs, rows, anns, self.semiring)
        return Relation(self.name, self.attrs, rows)

    def restrict(self, filter_rows: set[Row], key_attrs: Sequence[str]) -> "Relation":
        """Keep rows whose projection onto ``key_attrs`` is in ``filter_rows``."""
        pos = self.positions(key_attrs)
        keep_idx = [
            i for i, r in enumerate(self._rows) if project_row(r, pos) in filter_rows
        ]
        rows = [self._rows[i] for i in keep_idx]
        if self.annotated:
            assert self.semiring is not None and self._annotations is not None
            anns = [self._annotations[i] for i in keep_idx]
            return Relation(self.name, self.attrs, rows, anns, self.semiring)
        return Relation(self.name, self.attrs, rows)

    def reordered(self, attrs: Sequence[str]) -> "Relation":
        """Return the same relation with columns permuted to ``attrs``."""
        if set(attrs) != set(self.attrs):
            raise SchemaError(f"cannot reorder {self.attrs} to {attrs}")
        pos = self.positions(attrs)
        if self.annotated:
            assert self.semiring is not None and self._annotations is not None
            return Relation(
                self.name,
                attrs,
                (project_row(r, pos) for r in self._rows),
                annotations=self._annotations,
                semiring=self.semiring,
            )
        return Relation(self.name, attrs, (project_row(r, pos) for r in self._rows))

    def degrees(self, key_attrs: Sequence[str]) -> dict[Row, int]:
        """Degree of each distinct key: ``|sigma_{key=v} R|`` per value ``v``."""
        pos = self.positions(key_attrs)
        out: dict[Row, int] = {}
        for r in self._rows:
            k = project_row(r, pos)
            out[k] = out.get(k, 0) + 1
        return out

    def with_annotations(self, semiring: Semiring, default: Any | None = None) -> "Relation":
        """Attach a uniform annotation (``semiring.one`` unless given)."""
        w = semiring.one if default is None else default
        return Relation(
            self.name,
            self.attrs,
            self._rows,
            annotations=[w] * len(self._rows),
            semiring=semiring,
        )

    def annotation_map(self) -> dict[Row, Any]:
        """Row -> annotation mapping (requires an annotated relation)."""
        if not self.annotated:
            raise SchemaError(f"relation {self.name!r} is not annotated")
        assert self._annotations is not None
        return dict(zip(self._rows, self._annotations))
