"""Instances: a set of relations matching a query hypergraph.

An :class:`Instance` pairs a :class:`~repro.query.hypergraph.Hypergraph`
with one :class:`~repro.data.relation.Relation` per hyperedge, and exposes
the statistics the paper's algorithms and bounds consume: the input size
``IN``, the output size ``OUT`` (computed by the RAM oracle and cached),
degree information, and dangling-tuple structure.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.data.relation import Relation, Row, project_row
from repro.errors import InstanceError
from repro.query.hypergraph import Hypergraph, join_tree

__all__ = ["Instance"]


class Instance:
    """Relations for every edge of a query.

    Args:
        query: The join hypergraph.
        relations: Mapping edge name -> relation.  Each relation's attribute
            set must equal its edge's attribute set.

    Raises:
        InstanceError: On missing/extra relations or schema mismatches.
    """

    def __init__(self, query: Hypergraph, relations: Mapping[str, Relation]) -> None:
        self.query = query
        missing = set(query.edge_names) - set(relations)
        extra = set(relations) - set(query.edge_names)
        if missing or extra:
            raise InstanceError(
                f"instance/query mismatch: missing={sorted(missing)} extra={sorted(extra)}"
            )
        self.relations: dict[str, Relation] = {}
        for name in query.edge_names:
            rel = relations[name]
            if set(rel.attrs) != set(query.attrs_of(name)):
                raise InstanceError(
                    f"relation {name!r} attrs {rel.attrs} != edge attrs "
                    f"{sorted(query.attrs_of(name))}"
                )
            self.relations[name] = rel
        self._out_size: int | None = None

    # ------------------------------------------------------------------
    @property
    def input_size(self) -> int:
        """``IN``: total number of tuples across all relations."""
        return sum(len(r) for r in self.relations.values())

    def __getitem__(self, name: str) -> Relation:
        try:
            return self.relations[name]
        except KeyError:
            raise InstanceError(f"no relation {name!r} in instance") from None

    def __iter__(self) -> Iterator[str]:
        return iter(self.relations)

    def __repr__(self) -> str:
        sizes = ", ".join(f"{n}:{len(r)}" for n, r in self.relations.items())
        return f"Instance<{self.query.name}; IN={self.input_size}; {sizes}>"

    @property
    def annotated(self) -> bool:
        return any(r.annotated for r in self.relations.values())

    # ------------------------------------------------------------------
    def output_size(self) -> int:
        """``OUT``: number of join results (RAM oracle; cached)."""
        if self._out_size is None:
            from repro.ram.yannakakis import join_size

            self._out_size = join_size(self)
        return self._out_size

    def without_dangling(self) -> "Instance":
        """Full-reducer pass in RAM: drop tuples not in any join result.

        Two semi-join sweeps over a join tree (leaf-to-root, then
        root-to-leaf), exactly the Yannakakis preprocessing (paper
        Section 2 / Section 4.1).  Annotations are preserved (semi-joins
        only filter).
        """
        tree = join_tree(self.query)
        rels = dict(self.relations)

        def semijoin(target: str, source: str) -> None:
            shared = tuple(
                sorted(self.query.attrs_of(target) & self.query.attrs_of(source))
            )
            if not shared:
                # Disconnected tree edge: only emptiness propagates.
                if len(rels[source]) == 0:
                    rels[target] = Relation(target, rels[target].attrs, [])
                return
            keys = {
                project_row(r, rels[source].positions(shared))
                for r in rels[source].rows
            }
            rels[target] = rels[target].restrict(keys, shared)

        for node in tree.bottom_up():
            par = tree.parent[node]
            if par is not None:
                semijoin(par, node)
        for node in tree.top_down():
            for child in tree.children[node]:
                semijoin(child, node)
        reduced = Instance(self.query, rels)
        reduced._out_size = self._out_size
        return reduced

    def is_dangling_free(self) -> bool:
        """Whether every tuple participates in at least one join result."""
        reduced = self.without_dangling()
        return all(
            len(reduced.relations[n]) == len(self.relations[n]) for n in self.relations
        )

    # ------------------------------------------------------------------
    def degrees(self, edge_name: str, key_attrs: tuple[str, ...]) -> dict[Row, int]:
        """Degrees of ``key_attrs`` values within one relation."""
        return self[edge_name].degrees(key_attrs)

    def max_degree(self, edge_name: str, key_attrs: tuple[str, ...]) -> int:
        degs = self.degrees(edge_name, key_attrs)
        return max(degs.values(), default=0)

    def with_uniform_annotations(self, semiring, value=None) -> "Instance":
        """Annotate every relation uniformly (``semiring.one`` by default)."""
        return Instance(
            self.query,
            {
                n: r.with_annotations(semiring, value)
                for n, r in self.relations.items()
            },
        )

    def subset(self, edge_names: list[str] | frozenset[str]) -> "Instance":
        """Sub-instance over a subset of edges (for ``Q(R, S)`` statistics)."""
        sub_query = Hypergraph(
            {n: self.query.attrs_of(n) for n in edge_names},
            name=f"{self.query.name}-sub",
        )
        return Instance(sub_query, {n: self.relations[n] for n in edge_names})
