"""Relations, instances, workload generators, and hard-instance constructions."""

from repro.data.columns import (
    Column,
    ColumnBlock,
    encode_column,
    pack_blob,
    unpack_blob,
)
from repro.data.generators import (
    add_dangling,
    binary_out_controlled,
    cartesian_instance,
    forest_instance,
    line_trap_instance,
    matching_instance,
    random_instance,
    star_instance,
)
from repro.data.hard_instances import (
    embed_line3,
    line3_random_hard,
    rhier_extremal,
    triangle_random_hard,
    yannakakis_trap,
    yannakakis_trap_doubled,
)
from repro.data.instance import Instance
from repro.data.stats import (
    DegreeSummary,
    InstanceReport,
    degree_summary,
    instance_report,
    stats_fingerprint,
)
from repro.data.relation import Relation

__all__ = [
    "Column",
    "ColumnBlock",
    "encode_column",
    "pack_blob",
    "unpack_blob",
    "Relation",
    "Instance",
    "random_instance",
    "matching_instance",
    "forest_instance",
    "line_trap_instance",
    "binary_out_controlled",
    "cartesian_instance",
    "star_instance",
    "add_dangling",
    "yannakakis_trap",
    "yannakakis_trap_doubled",
    "line3_random_hard",
    "triangle_random_hard",
    "rhier_extremal",
    "embed_line3",
    "DegreeSummary",
    "InstanceReport",
    "degree_summary",
    "instance_report",
    "stats_fingerprint",
]
