"""The one entry point for generator randomness.

Every synthetic-workload generator draws its randomness from
:func:`rng_for` — a plain :class:`random.Random` (Mersenne Twister) whose
stream is fixed by Python's language spec, so the same ``(seed, scope)``
yields the same instance on every platform, Python build, and execution
backend.  That determinism is what lets the differential conformance
harness (``tests/conformance/``) replay one grid cell on several backends
and demand *bit-identical* outputs and ledgers.

Two rules keep replays honest:

* **No module-level or OS randomness.**  ``numpy`` RNGs (dtype- and
  version-sensitive), ``random``'s global state (shared, order-dependent)
  and ``hash()`` (salted per process) are all banned from generators.
* **Scoped streams.**  Generators derive their stream from the user seed
  *and* a scope label (:func:`derive_seed`), so two generators handed the
  same seed don't consume one another's draws — adding a draw to one
  generator can never shift the values another produces.
"""

from __future__ import annotations

import random
from hashlib import blake2b

__all__ = ["derive_seed", "rng_for"]


def derive_seed(seed: int, *scope: str | int) -> int:
    """A 64-bit seed derived from a user seed and a scope label.

    Hash-based (BLAKE2b over a canonical encoding), so streams for
    different scopes are decorrelated and the mapping is stable across
    platforms and Python versions.
    """
    h = blake2b(digest_size=8)
    h.update(repr(int(seed)).encode())
    for part in scope:
        h.update(b"\x1f")
        h.update(repr(part).encode())
    return int.from_bytes(h.digest(), "big")


def rng_for(seed: int, *scope: str | int) -> random.Random:
    """The RNG for one generator invocation (the only sanctioned source).

    Args:
        seed: The caller-facing seed.
        scope: Labels identifying the consumer, e.g.
            ``rng_for(seed, "random_instance")`` — include anything that
            should isolate streams (generator name, relation name, ...).
    """
    return random.Random(derive_seed(seed, *scope))
