"""CSV import/export for relations and instances.

A relation file is a CSV whose header row names the attributes; an
instance is a directory of ``<relation>.csv`` files matching the query's
edges.  Annotated relations carry their annotation in a column named
``__weight__`` (parsed with the semiring's value type).

This is deliberately minimal — enough to run the library on real exported
data without pulling in a dataframe dependency.
"""

from __future__ import annotations

import csv
import os
from pathlib import Path
from typing import Callable

from repro.data.instance import Instance
from repro.data.relation import Relation
from repro.errors import SchemaError
from repro.query.hypergraph import Hypergraph
from repro.semiring import Semiring

__all__ = [
    "WEIGHT_COLUMN",
    "read_relation_csv",
    "write_relation_csv",
    "read_instance_dir",
    "write_instance_dir",
    "infer_query",
]

WEIGHT_COLUMN = "__weight__"


def read_relation_csv(
    path: str | Path,
    name: str | None = None,
    semiring: Semiring | None = None,
    weight_parser: Callable[[str], object] = float,
) -> Relation:
    """Load a relation from a CSV file with a header row.

    Args:
        path: CSV file path.
        name: Relation name (defaults to the file stem).
        semiring: If given and a ``__weight__`` column exists, rows become
            annotated (duplicates combine with the semiring's plus).
        weight_parser: Parses weight cells (default ``float``).

    Raises:
        SchemaError: On an empty file or ragged rows.
    """
    path = Path(path)
    rel_name = name or path.stem
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path} is empty; expected a header row") from None
        rows = list(reader)
    header = [h.strip() for h in header]
    w_idx = header.index(WEIGHT_COLUMN) if WEIGHT_COLUMN in header else None
    attrs = [h for h in header if h != WEIGHT_COLUMN]
    data = []
    weights = []
    for i, row in enumerate(rows):
        if len(row) != len(header):
            raise SchemaError(
                f"{path}:{i + 2}: expected {len(header)} cells, got {len(row)}"
            )
        values = tuple(cell for j, cell in enumerate(row) if j != w_idx)
        data.append(values)
        if w_idx is not None:
            weights.append(weight_parser(row[w_idx]))
    if semiring is not None and w_idx is not None:
        return Relation(rel_name, attrs, data, weights, semiring)
    return Relation(rel_name, attrs, data)


def write_relation_csv(rel: Relation, path: str | Path) -> None:
    """Write a relation (annotations in ``__weight__`` if present)."""
    path = Path(path)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        if rel.annotated:
            writer.writerow([*rel.attrs, WEIGHT_COLUMN])
            for row, w in zip(rel.rows, rel.annotations or ()):
                writer.writerow([*row, w])
        else:
            writer.writerow(rel.attrs)
            writer.writerows(rel.rows)


def read_instance_dir(
    directory: str | Path,
    query: Hypergraph | None = None,
    semiring: Semiring | None = None,
) -> Instance:
    """Load an instance from a directory of ``<relation>.csv`` files.

    If ``query`` is omitted it is inferred: each file is an edge whose
    attributes are its columns.
    """
    directory = Path(directory)
    files = sorted(p for p in directory.glob("*.csv"))
    if not files:
        raise SchemaError(f"no .csv files in {directory}")
    rels = {
        p.stem: read_relation_csv(p, semiring=semiring) for p in files
    }
    if query is None:
        query = Hypergraph(
            {name: rel.attrs for name, rel in rels.items()},
            name=directory.name,
        )
    return Instance(query, rels)


def write_instance_dir(instance: Instance, directory: str | Path) -> None:
    """Write every relation of an instance as ``<relation>.csv``."""
    directory = Path(directory)
    os.makedirs(directory, exist_ok=True)
    for name, rel in instance.relations.items():
        write_relation_csv(rel, directory / f"{name}.csv")


def infer_query(directory: str | Path, name: str | None = None) -> Hypergraph:
    """Build the hypergraph implied by a directory's CSV headers."""
    directory = Path(directory)
    edges = {}
    for p in sorted(directory.glob("*.csv")):
        with open(p, newline="") as fh:
            header = next(csv.reader(fh))
        edges[p.stem] = tuple(
            h.strip() for h in header if h.strip() != WEIGHT_COLUMN
        )
    if not edges:
        raise SchemaError(f"no .csv files in {directory}")
    return Hypergraph(edges, name=name or directory.name)
