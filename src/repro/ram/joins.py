"""RAM-model join operators (the correctness oracle substrate).

Plain hash-based natural joins and semi-joins over
:class:`~repro.data.relation.Relation`.  These are *not* MPC algorithms:
they exist so every simulated MPC algorithm has an independent reference to
be validated against, and so the theory module can compute exact
per-instance statistics such as ``|Q(R, S)|``.
"""

from __future__ import annotations

from typing import Iterable

from repro.data.relation import Relation, Row, project_row
from repro.errors import SchemaError

__all__ = ["natural_join", "semi_join", "multi_join", "anti_join"]


def natural_join(r1: Relation, r2: Relation, name: str | None = None) -> Relation:
    """Natural join of two relations (annotations multiply if present).

    The output schema is ``r1.attrs`` followed by ``r2``'s attributes that
    are not in ``r1``.

    Raises:
        SchemaError: If exactly one of the inputs is annotated, or the
            semirings differ.
    """
    if r1.annotated != r2.annotated:
        raise SchemaError("cannot join annotated with non-annotated relation")
    shared = tuple(sorted(set(r1.attrs) & set(r2.attrs)))
    extra2 = tuple(a for a in r2.attrs if a not in set(r1.attrs))
    out_attrs = r1.attrs + extra2
    pos1 = r1.positions(shared)
    pos2 = r2.positions(shared)
    pos2_extra = r2.positions(extra2)

    if r1.annotated:
        assert r1.semiring is not None and r2.semiring is not None
        if r1.semiring is not r2.semiring:
            raise SchemaError("joined relations use different semirings")
        times = r1.semiring.times
        index: dict[Row, list[tuple[Row, object]]] = {}
        ann2 = r2.annotations or ()
        for row, w in zip(r2.rows, ann2):
            index.setdefault(project_row(row, pos2), []).append(
                (project_row(row, pos2_extra), w)
            )
        rows: list[Row] = []
        anns: list[object] = []
        ann1 = r1.annotations or ()
        for row, w1 in zip(r1.rows, ann1):
            for extra, w2 in index.get(project_row(row, pos1), ()):
                rows.append(row + extra)
                anns.append(times(w1, w2))
        return Relation(
            name or f"{r1.name}*{r2.name}", out_attrs, rows, anns, r1.semiring
        )

    index_plain: dict[Row, list[Row]] = {}
    for row in r2.rows:
        index_plain.setdefault(project_row(row, pos2), []).append(
            project_row(row, pos2_extra)
        )
    rows = []
    for row in r1.rows:
        for extra in index_plain.get(project_row(row, pos1), ()):
            rows.append(row + extra)
    return Relation(name or f"{r1.name}*{r2.name}", out_attrs, rows)


def semi_join(r1: Relation, r2: Relation) -> Relation:
    """``r1 semijoin r2``: rows of ``r1`` matching some row of ``r2``."""
    shared = tuple(sorted(set(r1.attrs) & set(r2.attrs)))
    if not shared:
        if len(r2) == 0:
            return Relation(r1.name, r1.attrs, [])
        return r1
    keys = {project_row(row, r2.positions(shared)) for row in r2.rows}
    return r1.restrict(keys, shared)


def anti_join(r1: Relation, r2: Relation) -> Relation:
    """``r1 antijoin r2``: rows of ``r1`` matching *no* row of ``r2``."""
    shared = tuple(sorted(set(r1.attrs) & set(r2.attrs)))
    if not shared:
        if len(r2) == 0:
            return r1
        return Relation(r1.name, r1.attrs, [])
    keys = {project_row(row, r2.positions(shared)) for row in r2.rows}
    pos = r1.positions(shared)
    rows = [row for row in r1.rows if project_row(row, pos) not in keys]
    return Relation(r1.name, r1.attrs, rows)


def multi_join(relations: Iterable[Relation], name: str = "join") -> Relation:
    """Left-fold natural join of several relations."""
    rels = list(relations)
    if not rels:
        raise SchemaError("multi_join needs at least one relation")
    acc = rels[0]
    for rel in rels[1:]:
        acc = natural_join(acc, rel)
    return Relation(name, acc.attrs, acc.rows, acc.annotations, acc.semiring)
