"""The classic RAM-model Yannakakis algorithm (correctness oracle).

Computes acyclic joins in ``O(IN + OUT)`` time: full reducer (two semi-join
sweeps over a join tree) followed by pairwise joins along the tree.  Also
provides the counting variant (``join_size``) that aggregates instead of
materializing — the RAM analogue of the paper's Corollary 4 — and
``subset_join_sizes`` which computes ``|Q(R, S)|`` for every ``S`` (the
statistics behind the per-instance lower bound, eq. 2).
"""

from __future__ import annotations

from itertools import combinations

from repro.data.instance import Instance
from repro.data.relation import Relation, Row, project_row
from repro.query.hypergraph import join_tree
from repro.ram.joins import natural_join

__all__ = [
    "yannakakis",
    "join_size",
    "subset_join_sizes",
    "group_by_count",
]


def yannakakis(instance: Instance, name: str = "result") -> Relation:
    """Full join results of an acyclic instance, as a relation over all attrs.

    The output schema is the query's attributes in sorted order.  Works for
    annotated instances too (annotations multiply along the join).
    """
    reduced = instance.without_dangling()
    tree = join_tree(instance.query)
    rels = {n: reduced.relations[n] for n in reduced.relations}
    for node in tree.bottom_up():
        par = tree.parent[node]
        if par is not None:
            rels[par] = natural_join(rels[par], rels[node])
    result = rels[tree.root]
    ordered = tuple(sorted(instance.query.attributes))
    return Relation(
        name,
        ordered,
        (project_row(r, result.positions(ordered)) for r in result.rows),
        annotations=result.annotations,
        semiring=result.semiring,
    )


def join_size(instance: Instance) -> int:
    """``|Q(R)|`` without materializing results (counting Yannakakis).

    Bottom-up over a join tree: each tuple carries the number of result
    extensions within its subtree; the root sums them.
    """
    tree = join_tree(instance.query)
    query = instance.query
    counts: dict[str, dict[Row, int]] = {
        n: {row: 1 for row in instance.relations[n].rows}
        for n in instance.relations
    }
    for node in tree.bottom_up():
        par = tree.parent[node]
        if par is None:
            continue
        shared = tuple(sorted(query.attrs_of(node) & query.attrs_of(par)))
        child_rel = instance.relations[node]
        child_counts = counts[node]
        if shared:
            pos_c = child_rel.positions(shared)
            agg: dict[Row, int] = {}
            for row, c in child_counts.items():
                k = project_row(row, pos_c)
                agg[k] = agg.get(k, 0) + c
            par_rel = instance.relations[par]
            pos_p = par_rel.positions(shared)
            new_counts: dict[Row, int] = {}
            for row, c in counts[par].items():
                factor = agg.get(project_row(row, pos_p), 0)
                if factor:
                    new_counts[row] = c * factor
            counts[par] = new_counts
        else:
            total = sum(child_counts.values())
            if total == 0:
                counts[par] = {}
            else:
                counts[par] = {row: c * total for row, c in counts[par].items()}
    return sum(counts[tree.root].values())


def subset_join_sizes(instance: Instance) -> dict[frozenset[str], int]:
    """``|Q(R, S)|`` for every non-empty ``S subset-of E`` (paper eq. 2 input).

    ``Q(R, S)`` is the set of tuple combinations from the relations in ``S``
    that appear in some full join result, i.e. the distinct projections of
    ``Q(R)`` onto the union of ``S``'s attribute sets.  Computes the full
    result once and counts distinct projections per subset.
    """
    full = yannakakis(instance)
    query = instance.query
    names = list(query.edge_names)
    sizes: dict[frozenset[str], int] = {}
    for k in range(1, len(names) + 1):
        for combo in combinations(names, k):
            s = frozenset(combo)
            attrs = tuple(sorted(frozenset().union(*(query.attrs_of(n) for n in combo))))
            pos = full.positions(attrs)
            sizes[s] = len({project_row(r, pos) for r in full.rows})
    return sizes


def group_by_count(instance: Instance, group_attrs: tuple[str, ...]) -> dict[Row, int]:
    """``COUNT(*) GROUP BY group_attrs`` over the full join (RAM oracle)."""
    tree = join_tree(instance.query)
    query = instance.query
    # Count extensions per root tuple (as in join_size), then aggregate the
    # root tuples by their group key -- valid only when the group attributes
    # all live in the root relation; otherwise fall back to materializing.
    if set(group_attrs) <= set(query.attrs_of(tree.root)):
        counts: dict[str, dict[Row, int]] = {
            n: {row: 1 for row in instance.relations[n].rows}
            for n in instance.relations
        }
        for node in tree.bottom_up():
            par = tree.parent[node]
            if par is None:
                continue
            shared = tuple(sorted(query.attrs_of(node) & query.attrs_of(par)))
            child_rel = instance.relations[node]
            if shared:
                pos_c = child_rel.positions(shared)
                agg: dict[Row, int] = {}
                for row, c in counts[node].items():
                    k = project_row(row, pos_c)
                    agg[k] = agg.get(k, 0) + c
                par_rel = instance.relations[par]
                pos_p = par_rel.positions(shared)
                new_counts: dict[Row, int] = {}
                for row, c in counts[par].items():
                    factor = agg.get(project_row(row, pos_p), 0)
                    if factor:
                        new_counts[row] = c * factor
                counts[par] = new_counts
            else:
                total = sum(counts[node].values())
                counts[par] = (
                    {row: c * total for row, c in counts[par].items()} if total else {}
                )
        root_rel = instance.relations[tree.root]
        pos = root_rel.positions(group_attrs)
        out: dict[Row, int] = {}
        for row, c in counts[tree.root].items():
            k = project_row(row, pos)
            out[k] = out.get(k, 0) + c
        return out

    full = yannakakis(instance)
    pos = full.positions(group_attrs)
    out = {}
    for row in full.rows:
        k = project_row(row, pos)
        out[k] = out.get(k, 0) + 1
    return out
