"""RAM-model reference algorithms (oracles for the MPC simulator).

The classic Yannakakis algorithm and hash-join operators.  Every MPC
algorithm in :mod:`repro.core` is validated against these in the test
suite.
"""

from repro.ram.joins import anti_join, multi_join, natural_join, semi_join
from repro.ram.yannakakis import (
    group_by_count,
    join_size,
    subset_join_sizes,
    yannakakis,
)

__all__ = [
    "natural_join",
    "semi_join",
    "anti_join",
    "multi_join",
    "yannakakis",
    "join_size",
    "subset_join_sizes",
    "group_by_count",
]
