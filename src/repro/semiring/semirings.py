"""Commutative semiring definitions (paper Section 6).

A commutative semiring ``(R, plus, times)`` has:

* ``plus``: associative, commutative, with identity :attr:`Semiring.zero`;
* ``times``: associative, commutative, with identity :attr:`Semiring.one`;
* ``times`` distributes over ``plus``;
* ``zero`` annihilates: ``times(zero, a) == zero``.

The paper's join-aggregate semantics (Section 6): the annotation of a join
result is the ``times``-aggregate of the annotations of its constituent
tuples; grouping by the output attributes combines annotations with ``plus``.
Setting every annotation to 1 under :data:`COUNT` yields ``COUNT(*) GROUP BY``;
with no output attributes it computes ``|Q(R)|`` (paper Corollary 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import Any, Callable, Iterable


@dataclass(frozen=True)
class Semiring:
    """A commutative semiring over Python values.

    Attributes:
        name: Human-readable identifier used in reprs and reports.
        zero: Identity of ``plus`` (annihilator of ``times``).
        one: Identity of ``times``.
        plus: Binary aggregation operator.
        times: Binary combination operator.
    """

    name: str
    zero: Any
    one: Any
    plus: Callable[[Any, Any], Any]
    times: Callable[[Any, Any], Any]

    def plus_all(self, values: Iterable[Any]) -> Any:
        """Fold ``values`` with ``plus``, starting from :attr:`zero`."""
        return reduce(self.plus, values, self.zero)

    def times_all(self, values: Iterable[Any]) -> Any:
        """Fold ``values`` with ``times``, starting from :attr:`one`."""
        return reduce(self.times, values, self.one)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Semiring({self.name})"


def _add(a: Any, b: Any) -> Any:
    return a + b


def _mul(a: Any, b: Any) -> Any:
    return a * b


#: Natural-number semiring (N, +, x) with all annotations 1: COUNT queries.
COUNT = Semiring(name="count", zero=0, one=1, plus=_add, times=_mul)

#: Real semiring (R, +, x): SUM-of-products aggregates.
SUM_PRODUCT = Semiring(name="sum_product", zero=0.0, one=1.0, plus=_add, times=_mul)

#: Tropical min-plus semiring: shortest-path style aggregation.
MIN_TROPICAL = Semiring(
    name="min_tropical", zero=float("inf"), one=0.0, plus=min, times=_add
)

#: Tropical max-plus semiring: longest/critical-path style aggregation.
MAX_TROPICAL = Semiring(
    name="max_tropical", zero=float("-inf"), one=0.0, plus=max, times=_add
)

#: Boolean semiring (set semantics / existence of a join result).
BOOLEAN = Semiring(
    name="boolean",
    zero=False,
    one=True,
    plus=lambda a, b: a or b,
    times=lambda a, b: a and b,
)

#: All built-in semirings, for parameterized tests.
ALL_SEMIRINGS = (COUNT, SUM_PRODUCT, MIN_TROPICAL, MAX_TROPICAL, BOOLEAN)
