"""Commutative semirings for annotated relations (paper Section 6).

Join-aggregate queries are defined over a commutative semiring
``(R, plus, times)``: tuple annotations are combined with ``times`` when
tuples join and with ``plus`` when results are aggregated (grouped).
"""

from repro.semiring.semirings import (
    BOOLEAN,
    COUNT,
    MAX_TROPICAL,
    MIN_TROPICAL,
    SUM_PRODUCT,
    Semiring,
)

__all__ = [
    "Semiring",
    "COUNT",
    "SUM_PRODUCT",
    "MIN_TROPICAL",
    "MAX_TROPICAL",
    "BOOLEAN",
]
