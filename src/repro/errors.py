"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one type.  Sub-types distinguish the three common failure domains:
malformed queries, malformed data, and misuse of the MPC simulator.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class QueryError(ReproError):
    """A query (hypergraph) is malformed or outside an algorithm's class.

    Raised, for example, when an acyclic-only algorithm receives a cyclic
    join, or when a free-connex algorithm receives a non-free-connex
    join-aggregate query.
    """


class CyclicQueryError(QueryError):
    """The query is cyclic but an acyclic query was required."""


class ParseError(QueryError):
    """Datalog-style query text could not be parsed."""


class EngineError(ReproError):
    """Misuse of a serving-engine session (unknown relations, bad batch)."""


class SchemaError(ReproError):
    """Relation data does not match its declared schema."""


class InstanceError(ReproError):
    """An instance is inconsistent with its query (e.g. missing relations)."""


class MPCError(ReproError):
    """Misuse of the MPC simulator (bad routing targets, empty groups, ...)."""


class AllocationError(MPCError):
    """Server allocation could not satisfy the requested sub-problem demands."""


# ----------------------------------------------------------------------
# Fault taxonomy (DESIGN.md section 8).
#
# Faults are *environmental* failures — a worker process dying, a round
# hanging past its timeout — as opposed to the deterministic errors above
# (bad queries, bad data, simulator misuse).  The distinction matters
# because faults are retryable: re-executing the same pure computation on
# a respawned worker, inline, or on the serial backend yields the exact
# same result (the simulation is deterministic), so every layer from the
# backend up owns a rung of the degradation ladder
# (respawn -> resubmit -> inline -> serial -> quarantine).
# ----------------------------------------------------------------------


class FaultError(MPCError):
    """Base class for recoverable environmental faults.

    Catching this type is how the engine separates "retry/degrade"
    failures from deterministic errors that would fail identically on
    any backend.
    """


class WorkerDied(FaultError):
    """A backend worker process exited (or its pipe broke) mid-round."""

    def __init__(self, message: str, worker: int | None = None) -> None:
        super().__init__(message)
        self.worker = worker


class RoundTimeout(FaultError):
    """A backend round did not complete within its configured timeout.

    Raised internally when a worker is declared hung; surfaces to callers
    only wrapped in :class:`RetryExhausted` (the supervisor kills and
    respawns hung workers rather than propagating).
    """

    def __init__(self, message: str, worker: int | None = None) -> None:
        super().__init__(message)
        self.worker = worker


class RetryExhausted(FaultError):
    """Recovery gave up: the retry budget is spent and degradation is off.

    ``__cause__`` carries the last underlying fault (:class:`WorkerDied`
    or :class:`RoundTimeout`).
    """


class DeadlineExceeded(FaultError):
    """A query (or batch) ran past its caller-supplied deadline.

    Checked cooperatively at every ledger post — i.e. between simulated
    communication rounds — so a deadline cancels a query mid-execution,
    not just before it starts.
    """


class QueryQuarantined(EngineError):
    """The engine fast-failed a query previously marked unservable.

    A query that exhausts the whole degradation ladder is quarantined:
    until its input relations change version, further submissions raise
    this error immediately (carrying the original failure text) instead
    of burning the retry budget again.
    """


class PlanShipError(EngineError):
    """A shipped physical plan could not be encoded, decoded, or installed.

    Raised on a corrupt or version-incompatible wire blob, an fn
    reference outside the allowlisted registry, or a receiving engine
    whose catalog/statistics do not match the plan's fingerprints.  An
    installation rejected with this error leaves the receiver untouched:
    its next execution of the query simply traces cold, exactly as if
    nothing had been shipped.
    """


class AdmissionRejected(EngineError):
    """The serving front door shed a request at admission.

    Raised synchronously by :meth:`repro.serve.Frontdoor.submit` when the
    target replica's backlog has reached the configured ``shed_after``
    bound.  Nothing was enqueued or executed; the caller may retry later
    or route elsewhere.
    """
