"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one type.  Sub-types distinguish the three common failure domains:
malformed queries, malformed data, and misuse of the MPC simulator.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class QueryError(ReproError):
    """A query (hypergraph) is malformed or outside an algorithm's class.

    Raised, for example, when an acyclic-only algorithm receives a cyclic
    join, or when a free-connex algorithm receives a non-free-connex
    join-aggregate query.
    """


class CyclicQueryError(QueryError):
    """The query is cyclic but an acyclic query was required."""


class ParseError(QueryError):
    """Datalog-style query text could not be parsed."""


class EngineError(ReproError):
    """Misuse of a serving-engine session (unknown relations, bad batch)."""


class SchemaError(ReproError):
    """Relation data does not match its declared schema."""


class InstanceError(ReproError):
    """An instance is inconsistent with its query (e.g. missing relations)."""


class MPCError(ReproError):
    """Misuse of the MPC simulator (bad routing targets, empty groups, ...)."""


class AllocationError(MPCError):
    """Server allocation could not satisfy the requested sub-problem demands."""
