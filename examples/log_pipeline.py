"""Sessionization pipeline: a chain join over clickstream-style data.

The workload the paper's introduction motivates: chains of one-to-many
relationships (users -> sessions -> events -> pages) whose intermediate
joins can dwarf both input and output.  This script builds such a skewed
chain, shows why the classic Yannakakis algorithm's join *order* suddenly
matters in MPC (paper Section 4.1 / Figure 3), and how the Section 4.2/5.1
heavy-light decomposition sidesteps the problem.

Run:  python examples/log_pipeline.py
"""

import random

from repro import Hypergraph, mpc_join
from repro.core.yannakakis import left_deep_plan
from repro.data.instance import Instance
from repro.data.relation import Relation

P = 16
rng = random.Random(42)

# users(uid, region) -> sessions(uid, sid) -> events(sid, url)
query = Hypergraph(
    {
        "users": ("region", "uid"),
        "sessions": ("uid", "sid"),
        "events": ("sid", "url"),
    },
    name="clickstream",
)

# A few "bot" users generate most sessions; most sessions are short, but
# bot sessions fire thousands of events: the classic power-law shape.
users = []
sessions = []
events = []
for uid in range(800):
    users.append((f"r{uid % 10}", f"u{uid}"))
    n_sessions = 40 if uid < 8 else rng.randint(1, 3)  # 8 bot users
    for s in range(n_sessions):
        sid = f"u{uid}s{s}"
        sessions.append((f"u{uid}", sid))
        n_events = 120 if uid < 8 else rng.randint(1, 4)
        for e in range(n_events):
            events.append((sid, f"/page{rng.randrange(50)}"))

instance = Instance(
    query,
    {
        "users": Relation("users", ("region", "uid"), users),
        "sessions": Relation("sessions", ("uid", "sid"), sessions),
        "events": Relation("events", ("sid", "url"), events),
    },
)
print(f"IN = {instance.input_size} tuples, OUT = {instance.output_size()} results")

# --- The two Yannakakis orders ------------------------------------------
plans = {
    "(users*sessions)*events": left_deep_plan(["users", "sessions", "events"]),
    "users*(sessions*events)": ("users", ("sessions", "events")),
}
print(f"\nYannakakis on p={P} servers: the join order changes the load")
for name, plan in plans.items():
    res = mpc_join(query, instance, p=P, algorithm="yannakakis", plan=plan)
    print(f"  {name:28s} load = {res.report.load:>7}")

# --- The paper's output-optimal algorithm --------------------------------
res = mpc_join(query, instance, p=P, algorithm="line3", validate=True)
print(f"  {'line3 heavy/light (Sec 4.2)':28s} load = {res.report.load:>7}")

# --- Business question: events per region (a join-aggregate query) -------
from repro import COUNT, mpc_join_aggregate

annotated = instance.with_uniform_annotations(COUNT)
agg = mpc_join_aggregate(query, {"region"}, annotated, COUNT, p=P)
print(f"\nevents per region (COUNT GROUP BY region), load = {agg.report.load}:")
for row, count in sorted(
    zip(agg.relation.rows, agg.relation.annotations), key=lambda kv: -kv[1]
)[:5]:
    print(f"  {row[0]:>4}: {count}")
print(
    "\nNote: the aggregate load is far below shipping the"
    f" {instance.output_size()} join results anywhere."
)
