"""Lower-bound laboratory: the paper's hard instances, hands-on.

Builds the three adversarial constructions from the paper's proofs,
evaluates the lower-bound formulas, runs the counting argument's J(L)
estimator, and shows where each upper-bound algorithm lands relative to
the wall.  A compact tour of Sections 4.3, 5.2, and 7.

Run:  python examples/lower_bound_lab.py
"""

from repro import mpc_join
from repro.data.hard_instances import (
    embed_line3,
    line3_random_hard,
    triangle_random_hard,
)
from repro.query import catalog
from repro.theory.bounds import l_instance
from repro.theory.lower_bounds import (
    estimate_j_line3,
    line3_lower_bound,
    min_load_from_j,
    triangle_lower_bound,
)

P = 8
IN = 3000

# ---------------------------------------------------------------- line-3
print("1. Figure 4: the randomized line-3 hard instance (Theorem 6)")
inst = line3_random_hard(IN, 8 * IN, seed=1)
out = inst.output_size()
lb = line3_lower_bound(inst.input_size, out, P)
print(f"   IN={inst.input_size} OUT={out}  Thm6 bound = {lb:.0f}")

need = min_load_from_j(
    out, P, lambda load: estimate_j_line3(inst, load, seed=2), hi=inst.input_size
)
print(f"   counting argument: p*J(L) >= OUT first holds at L ~ {need}")

for algo in ("line3", "yannakakis", "wc-line3"):
    res = mpc_join(inst.query, inst, p=P, algorithm=algo)
    print(f"   {algo:12s} load = {res.report.load:>6}  ({res.report.load / lb:.1f}x bound)")

print(
    "   -> no algorithm dips under the bound; the Sec 4.2 algorithm is\n"
    "      within a polylog factor: output-optimal for OUT <= p*IN."
)

# ------------------------------------------------- instance-optimality gap
print("\n2. Corollary 2: why instance-optimality stops at r-hierarchical")
inst = line3_random_hard(IN, P * IN, seed=3)  # OUT = p * IN
li = l_instance(inst.query, inst, P)
res = mpc_join(inst.query, inst, p=P, algorithm="line3")
print(f"   L_instance(p, R) = {li:.0f}   (the eq. 2 per-instance bound)")
print(f"   best measured load = {res.report.load}  "
      f"({res.report.load / li:.0f}x above it)")
print(
    "   -> on this instance every tuple-based algorithm provably needs\n"
    "      ~IN/sqrt(p) load while L_instance is only ~IN/p: no algorithm\n"
    "      can be instance-optimal on the line-3 join."
)

# ---------------------------------------------------------------- embedding
print("\n3. Theorem 8: the Lemma 2 embedding transfers the bound")
for name in ("fork", "broom"):
    q = catalog.CATALOG[name]
    emb = embed_line3(q, IN, 6 * IN, seed=4)
    res = mpc_join(q, emb, p=P, algorithm="acyclic")
    print(f"   {name:8s} IN={emb.input_size} OUT={emb.output_size()} "
          f"load={res.report.load}")
print("   -> any acyclic non-r-hierarchical query inherits line-3 hardness.")

# ---------------------------------------------------------------- triangle
print("\n4. Figure 6: the triangle hard instance (Theorem 11)")
tri = triangle_random_hard(2 * IN, 8 * IN, seed=5)
res = mpc_join(tri.query, tri, p=P, algorithm="wc-triangle")
lb = triangle_lower_bound(tri.input_size, res.output_size, P)
print(f"   IN={tri.input_size} OUT={res.output_size}")
print(f"   Thm11 bound = {lb:.0f}; p^(1/3)-grid load = {res.report.load}")
print(
    "   -> the worst-case-optimal grid sits at the bound: for\n"
    "      OUT >= IN*p^(1/3) it is also output-optimal (remark 1), and\n"
    "      below that cyclic joins are provably harder than acyclic ones."
)
