"""Join-aggregate queries: COUNT, SUM, MIN over semiring annotations.

Section 6 of the paper: free-connex join-aggregate queries evaluate with
LinearAggroYannakakis (linear load) followed by an output-optimal join on
the residual (output-attribute-only) query.  The script runs three
classic aggregates over a supply-chain chain join and shows the load is
driven by the *aggregated* output, not the (huge) underlying join.

Run:  python examples/count_groupby.py
"""

import random

from repro import COUNT, MIN_TROPICAL, SUM_PRODUCT, Hypergraph, mpc_join_aggregate
from repro.data.instance import Instance
from repro.data.relation import Relation
from repro.query.ghd import is_free_connex, is_out_hierarchical

P = 8
rng = random.Random(3)

# suppliers -> parts -> shipments, annotated with costs/quantities.
query = Hypergraph(
    {
        "supplies": ("supplier", "part"),
        "ships": ("part", "route"),
        "delivers": ("route", "city"),
    },
    name="supply-chain",
)

supplies, s_cost = [], []
ships, sh_cost = [], []
delivers, d_cost = [], []
for s in range(30):
    for p in range(rng.randint(1, 6)):
        supplies.append((f"s{s}", f"part{(s * 3 + p) % 40}"))
        s_cost.append(float(rng.randint(1, 9)))
for part in range(40):
    for r in range(rng.randint(1, 5)):
        ships.append((f"part{part}", f"route{(part + r) % 25}"))
        sh_cost.append(float(rng.randint(1, 9)))
for route in range(25):
    for c in range(rng.randint(1, 4)):
        delivers.append((f"route{route}", f"city{(route * 2 + c) % 12}"))
        d_cost.append(float(rng.randint(1, 9)))


def annotated(semiring, costs=True):
    def ann(values, rel_costs):
        return rel_costs if costs else [semiring.one] * len(values)

    return Instance(
        query,
        {
            "supplies": Relation(
                "supplies", ("part", "supplier"),
                [(p, s) for s, p in supplies],
                ann(supplies, s_cost), semiring,
            ),
            "ships": Relation("ships", ("part", "route"), ships, ann(ships, sh_cost), semiring),
            "delivers": Relation(
                "delivers", ("city", "route"),
                [(c, r) for r, c in delivers],
                ann(delivers, d_cost), semiring,
            ),
        },
    )


y = {"supplier"}
print(f"free-connex for y={sorted(y)}: {is_free_connex(query, y)}")
print(f"out-hierarchical (Theorem 10 applies): {is_out_hierarchical(query, y)}")

# 1. COUNT: delivery options per supplier.
count_inst = annotated(COUNT, costs=False)
res = mpc_join_aggregate(query, y, count_inst, COUNT, p=P)
total = mpc_join_aggregate(query, set(), count_inst, COUNT, p=P)
print(f"\n|full join| = {total.scalar} results (computed with linear load)")
print(f"delivery options per supplier (top 3, load={res.report.load}):")
for row, cnt in sorted(zip(res.relation.rows, res.relation.annotations), key=lambda kv: -kv[1])[:3]:
    print(f"  {row[0]:>4}: {cnt}")

# 2. SUM of products: total weighted flow per supplier.
sum_inst = annotated(SUM_PRODUCT)
res = mpc_join_aggregate(query, y, sum_inst, SUM_PRODUCT, p=P)
print(f"\nweighted flow per supplier (top 3, load={res.report.load}):")
for row, w in sorted(zip(res.relation.rows, res.relation.annotations), key=lambda kv: -kv[1])[:3]:
    print(f"  {row[0]:>4}: {w:.0f}")

# 3. MIN-plus: cheapest supply route cost per supplier.
min_inst = annotated(MIN_TROPICAL)
res = mpc_join_aggregate(query, y, min_inst, MIN_TROPICAL, p=P)
print(f"\ncheapest chain cost per supplier (top 3, load={res.report.load}):")
for row, w in sorted(zip(res.relation.rows, res.relation.annotations), key=lambda kv: kv[1])[:3]:
    print(f"  {row[0]:>4}: {w:.0f}")
