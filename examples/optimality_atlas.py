"""Optimality atlas: what the paper guarantees for *your* query.

Walks the query catalog (plus any shape you add), classifies each query in
the Figure 1 hierarchy, and prints which algorithm the dispatcher picks
with the load guarantee the paper proves for it — a practical rendering of
Table 1.  For a sample instance it also evaluates the per-instance lower
bound L_instance (eq. 2) so you can see the optimality ratio concretely.

Run:  python examples/optimality_atlas.py
"""

from repro import JoinClass, classify, mpc_join
from repro.core.runner import auto_algorithm
from repro.data.generators import random_instance
from repro.query import catalog
from repro.query.paths import minimal_path_of_length_3
from repro.theory.bounds import l_instance

GUARANTEES = {
    "rhierarchical": "instance-optimal: O(IN/p + L_instance)      [Thm 3]",
    "line3": "output-optimal: O(IN/p + sqrt(IN*OUT)/p)   [Thm 5]",
    "acyclic": "output-optimal: O(IN/p + sqrt(IN*OUT)/p)   [Thm 7]",
    "wc-triangle": "worst-case optimal: O~(IN/p^(2/3))          [24]",
    "hypercube": "worst-case HyperCube shares                 [3, 8]",
}

print(f"{'query':<24} {'class':<15} {'algorithm':<14} guarantee")
print("-" * 100)
for name, query in sorted(catalog.CATALOG.items()):
    cls = classify(query)
    algo = auto_algorithm(query)
    print(f"{name:<24} {cls.name:<15} {algo:<14} {GUARANTEES[algo]}")

print(
    "\nLemma 2 witnesses (the structure that *forbids* instance-optimality\n"
    "beyond r-hierarchical joins): minimal paths of length 3"
)
for name, query in sorted(catalog.CATALOG.items()):
    if classify(query) == JoinClass.ACYCLIC:
        path = minimal_path_of_length_3(query)
        print(f"  {name:<12} {' -> '.join(path)}")

# Concrete optimality ratios on one sample instance per class.
print("\nmeasured optimality ratios on random instances (p=8):")
print(f"{'query':<24} {'IN':>6} {'OUT':>8} {'L_inst':>8} {'load':>7} {'ratio':>6}")
for name in ("star3", "q2_hierarchical", "line3", "fork"):
    query = catalog.CATALOG[name]
    inst = random_instance(query, 300, 15, seed=5)
    bound = inst.input_size / 8 + l_instance(query, inst, 8)
    res = mpc_join(query, inst, p=8)
    print(
        f"{name:<24} {inst.input_size:>6} {inst.output_size():>8} "
        f"{bound:>8.0f} {res.report.load:>7} {res.report.load / bound:>6.1f}"
    )

print(
    "\nFor r-hierarchical queries the ratio is a constant (Theorem 3); for\n"
    "line3/fork no algorithm can achieve a constant ratio on all instances\n"
    "(Corollaries 2-3), and the dispatcher falls back to output-optimality."
)
