"""Quickstart: a persistent serving session over the query engine.

Registers base relations once, then serves datalog-style query text with
prepared plans, a warm cluster, and per-query load metrics — the serving
counterpart of ``examples/quickstart.py``'s one-shot calls.

Run:  PYTHONPATH=src python examples/serving_session.py
"""

from __future__ import annotations

from repro.data.relation import Relation
from repro.engine import Engine

# ----------------------------------------------------------------------
# 1. A session with registered base relations (a tiny social graph).
# ----------------------------------------------------------------------
engine = Engine(p=8)
engine.register(
    Relation("Follows", ("src", "dst"), [(u, (u * 7 + k) % 50) for u in range(50) for k in range(3)])
)
engine.register(
    Relation("Likes", ("user", "post"), [(u, p) for u in range(50) for p in range(u % 4)])
)

# ----------------------------------------------------------------------
# 2. Text queries: full join, projection, aggregate — prepared once.
# ----------------------------------------------------------------------
TWO_HOP = "Q(A,B,C) :- Follows(A,B), Follows(B,C)"          # self-join
FEED = "Q(B,Post) :- Follows(A,B), Likes(B,Post)"           # join-project
POPULARITY = "Q(B; count) :- Follows(A,B), Likes(B,Post)"   # GROUP BY count

def wire(res):
    """Per-query physical wire bytes (0 on in-process backends — the
    columnar blobs only cross a boundary when workers exist)."""
    return f"{res.metrics.wire_bytes}B wire"


res = engine.execute(TWO_HOP)
print(f"two-hop: {res.output_size} rows, algorithm={res.metrics.algorithm}, "
      f"load={res.report.load}, {wire(res)}")
print(f"  plan order: {res.prepared.plan_order}")
print(f"  plan quality (Sec 4.1): {res.prepared.plan_quality}")

res = engine.execute(FEED)
print(f"feed: {res.output_size} rows, class={res.prepared.query_class}, "
      f"{wire(res)}")

res = engine.execute(POPULARITY)
top = sorted(
    zip(res.relation.rows, res.relation.annotations), key=lambda rw: -rw[1]
)[:3]
print(f"popularity: {res.output_size} groups, top={top}, {wire(res)}")

# ----------------------------------------------------------------------
# 3. Warm serving: the second round is all cache hits (plans + results).
# ----------------------------------------------------------------------
batch = engine.submit_batch([TWO_HOP, FEED, POPULARITY], threads=2)
print("\nwarm batch:")
print(batch.stats.summary())
assert all(r.metrics.plan_reused for r in batch.results)

# ----------------------------------------------------------------------
# 3b. The traced physical plan behind a warm execution (repro explain).
# ----------------------------------------------------------------------
plan = engine.trace_plan(TWO_HOP)
counts = plan.op_counts()
print(
    f"\nphysical plan for two-hop: {len(plan.ops)} ops "
    f"({counts.get('MapParts', 0)} worker-local, "
    f"{len(plan.charges())} charges, {plan.charged_units()} units); "
    f"warm replays fuse them into single backend requests"
)

# ----------------------------------------------------------------------
# 4. Data evolves: updates invalidate exactly what they must.
# ----------------------------------------------------------------------
engine.register(
    Relation("Likes", ("user", "post"), [(u, p) for u in range(50) for p in range(u % 6)])
)
res = engine.execute(POPULARITY)
print(f"\nafter update: {res.output_size} groups "
      f"(plan reused: {res.metrics.plan_reused}, "
      f"recomputed: {not res.metrics.result_cached}, {wire(res)})")

print("\nsession totals:")
print(engine.stats().summary())
