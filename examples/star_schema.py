"""Star-schema analytics: instance-optimal joins on hierarchical queries.

A retail-style star join (orders hub with customer / product / warehouse
dimensions) is *hierarchical*, so the paper's Section 3.2 algorithm is
instance-optimal: its load tracks the per-instance lower bound
L_instance(p, R) — eq. (2) — within a constant, no matter how skewed the
hub is.  The script sweeps skew and prints the optimality ratio next to
the one-round BinHC baseline.

Run:  python examples/star_schema.py
"""

from repro import Hypergraph, classify, mpc_join
from repro.data.instance import Instance
from repro.data.relation import Relation
from repro.theory.bounds import l_instance

P = 16

# Each dimension shares only the hub key with the others: hierarchical.
query = Hypergraph(
    {
        "by_customer": ("order_id", "customer"),
        "by_product": ("order_id", "product"),
        "by_warehouse": ("order_id", "warehouse"),
    },
    name="star-schema",
)
print(f"query class: {classify(query).name}")


def build_instance(skew: int) -> Instance:
    """orders 0..39; order 0 is a mega-order touching `skew` x more parts."""
    rows = {"by_customer": [], "by_product": [], "by_warehouse": []}
    for order in range(40):
        fan = 60 * skew if order == 0 else 6
        for i in range(fan):
            rows["by_customer"].append((f"c{order}_{i % 7}", f"o{order}"))
            rows["by_product"].append((f"o{order}", f"p{order}_{i}"))
            rows["by_warehouse"].append((f"o{order}", f"w{i % 5}"))
    return Instance(
        query,
        {
            "by_customer": Relation(
                "by_customer", ("customer", "order_id"), rows["by_customer"]
            ),
            "by_product": Relation(
                "by_product", ("order_id", "product"), rows["by_product"]
            ),
            "by_warehouse": Relation(
                "by_warehouse", ("order_id", "warehouse"), rows["by_warehouse"]
            ),
        },
    )


print(f"\n{'skew':>5} {'IN':>7} {'OUT':>9} {'L_inst':>8} "
      f"{'rhier load':>11} {'ratio':>6} {'binhc load':>11} {'ratio':>6}")
for skew in (1, 4, 16):
    inst = build_instance(skew)
    bound = inst.input_size / P + l_instance(query, inst, P)
    optimal = mpc_join(query, inst, p=P, algorithm="rhierarchical", validate=True)
    binhc = mpc_join(query, inst, p=P, algorithm="binhc")
    print(
        f"{skew:>5} {inst.input_size:>7} {inst.output_size():>9} "
        f"{bound:>8.0f} {optimal.report.load:>11} "
        f"{optimal.report.load / bound:>6.1f} {binhc.report.load:>11} "
        f"{binhc.report.load / bound:>6.1f}"
    )

print(
    "\nThe rhier ratio does not grow as the mega-order inflates 16x (it\n"
    "even shrinks as fixed coordination costs amortize): that is Theorem\n"
    "3's instance-optimality.  BinHC tracks it up to its polylog factor\n"
    "because this instance is dangling-free (Theorem 2)."
)
