"""Quickstart: define a join, run it on a simulated MPC cluster, read the load.

Covers the core loop of the library:
  1. declare a query hypergraph,
  2. build (or load) an instance,
  3. let the dispatcher pick the strongest algorithm for the query's class,
  4. inspect the results and the per-server load ledger.

Run:  python examples/quickstart.py
"""

from repro import Hypergraph, classify, mpc_join
from repro.data.generators import random_instance

# 1. A query is a named hypergraph: attributes are vertices, relations are
#    hyperedges.  This one is the paper's line-3 join.
query = Hypergraph(
    {"R1": ("A", "B"), "R2": ("B", "C"), "R3": ("C", "D")},
    name="sessions",
)
print(f"query {query.name}: {query}")
print(f"class: {classify(query).name}")

# 2. A synthetic instance: 2000 tuples per relation, values from a domain
#    of 80 (so the join has plenty of results).
instance = random_instance(query, size=2000, dom_size=80, seed=7)
print(f"IN = {instance.input_size}, OUT = {instance.output_size()}")

# 3. Run on 16 simulated servers.  'auto' picks the Section 4.2 line-3
#    algorithm here (output-optimal: load ~ IN/p + sqrt(IN*OUT)/p).
result = mpc_join(query, instance, p=16, algorithm="auto", validate=True)

# 4. Results are ordinary tuples over the sorted attributes.
print(f"\nalgorithm: {result.meta['algorithm']}")
print(f"emitted {result.output_size} join results; first three:")
for row in sorted(result.rows())[:3]:
    print("  ", dict(zip(result.relation.attrs, row)))

# The load report is the paper's cost model: tuples received per server.
report = result.report
print(f"\nload (max tuples received by any server): {report.load}")
print(f"average per server: {report.average:.1f}")
print(f"communication steps: {report.steps}")
print("\nheaviest phases:")
for label, units in sorted(report.by_label.items(), key=lambda kv: -kv[1])[:5]:
    print(f"  {label:40s} {units:>8} units")

# Where output-optimality pays off: an adversarially shaped workload
# whose OUT is ~40x IN (paper Figure 3's doubled trap).
from repro.data.generators import line_trap_instance

trap = line_trap_instance(3, 4500, 90000, doubled=True)
new = mpc_join(trap.query, trap, p=16, algorithm="line3")
baseline = mpc_join(trap.query, trap, p=16, algorithm="yannakakis")
print(
    f"\nadversarial chain (IN={trap.input_size}, OUT={trap.output_size()}):"
)
print(f"  Yannakakis load:      {baseline.report.load}")
print(f"  output-optimal load:  {new.report.load}")
print(f"  -> {baseline.report.load / new.report.load:.1f}x lighter")
