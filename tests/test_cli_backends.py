"""Backend selection precedence across the engine-backed CLI commands.

The contract (DESIGN.md, the registry docstring): an explicit
``--backend`` flag beats the ``REPRO_BACKEND`` environment variable,
which beats the built-in ``serial`` default — for every subcommand that
builds an engine (``query``, ``serve``, ``explain``).
"""

from __future__ import annotations

import pytest

import repro.cli as cli
from repro.data.generators import random_instance
from repro.io import write_instance_dir
from repro.mpc.backends import shm_supported, shutdown_backends
from repro.query import catalog

QUERY = "Q(A,B,C,D) :- R1(A,B), R2(B,C), R3(C,D)"


@pytest.fixture(scope="module")
def data_dir(tmp_path_factory):
    inst = random_instance(catalog.line3(), 40, 6, seed=7)
    path = tmp_path_factory.mktemp("cli") / "data"
    write_instance_dir(inst, path)
    return str(path)


@pytest.fixture
def queries_file(tmp_path):
    path = tmp_path / "queries.txt"
    path.write_text(f"# workload\n{QUERY}\n")
    return str(path)


@pytest.fixture
def capture_engine(monkeypatch):
    """Run the real CLI but record the engine each command builds."""
    captured: dict = {}
    original = cli._load_engine

    def spy(args, **kwargs):
        engine = original(args, **kwargs)
        captured["backend_arg"] = args.backend
        captured["engine"] = engine
        return engine

    monkeypatch.setattr(cli, "_load_engine", spy)
    yield captured
    shutdown_backends()


def _run(command, data_dir, extra=(), queries_file=None):
    if command == "serve":
        argv = ["serve", data_dir, "--queries", queries_file, *extra]
    else:
        argv = [command, QUERY, data_dir, *extra]
    assert cli.main(argv) == 0


ENGINE_COMMANDS = ("query", "explain", "serve")


class TestBackendPrecedence:
    @pytest.mark.parametrize("command", ENGINE_COMMANDS)
    def test_default_is_serial(
        self, command, data_dir, queries_file, capture_engine, monkeypatch
    ):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        _run(command, data_dir, queries_file=queries_file)
        assert capture_engine["backend_arg"] == "serial"
        assert capture_engine["engine"].backend_name == "serial"

    @pytest.mark.parametrize("command", ENGINE_COMMANDS)
    def test_env_var_overrides_default(
        self, command, data_dir, queries_file, capture_engine, monkeypatch
    ):
        monkeypatch.setenv("REPRO_BACKEND", "multiprocess")
        _run(command, data_dir, queries_file=queries_file)
        assert capture_engine["backend_arg"] == "multiprocess"
        assert capture_engine["engine"].backend_name == "multiprocess"

    @pytest.mark.parametrize("command", ENGINE_COMMANDS)
    def test_flag_overrides_env_var(
        self, command, data_dir, queries_file, capture_engine, monkeypatch
    ):
        monkeypatch.setenv("REPRO_BACKEND", "multiprocess")
        _run(
            command, data_dir,
            extra=["--backend", "serial"],
            queries_file=queries_file,
        )
        assert capture_engine["backend_arg"] == "serial"
        assert capture_engine["engine"].backend_name == "serial"

    @pytest.mark.skipif(not shm_supported(), reason="no shared memory here")
    @pytest.mark.parametrize("command", ENGINE_COMMANDS)
    def test_shm_backend_via_flag(
        self, command, data_dir, queries_file, capture_engine, monkeypatch
    ):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        _run(
            command, data_dir,
            extra=["--backend", "shm"],
            queries_file=queries_file,
        )
        assert capture_engine["backend_arg"] == "shm"
        assert capture_engine["engine"].backend_name == "shm"

    @pytest.mark.skipif(not shm_supported(), reason="no shared memory here")
    def test_shm_backend_via_env(
        self, data_dir, queries_file, capture_engine, monkeypatch
    ):
        monkeypatch.setenv("REPRO_BACKEND", "shm")
        _run("serve", data_dir, queries_file=queries_file)
        assert capture_engine["backend_arg"] == "shm"
        assert capture_engine["engine"].backend_name == "shm"

    def test_unknown_backend_flag_is_rejected(self, data_dir, capsys):
        with pytest.raises(SystemExit):
            cli.main(["query", QUERY, data_dir, "--backend", "bogus"])
        assert "invalid choice" in capsys.readouterr().err


class TestServePipelineFlag:
    def test_pipeline_defaults_on(self, data_dir, queries_file, capture_engine):
        _run("serve", data_dir, queries_file=queries_file)
        assert capture_engine["engine"].pipeline is True

    def test_no_pipeline_flag(self, data_dir, queries_file, capture_engine):
        _run(
            "serve", data_dir,
            extra=["--no-pipeline"],
            queries_file=queries_file,
        )
        assert capture_engine["engine"].pipeline is False

    def test_query_and_explain_default_to_pipelined(
        self, data_dir, capture_engine
    ):
        _run("query", data_dir)
        assert capture_engine["engine"].pipeline is True
