"""Tests for the instance-optimal r-hierarchical algorithm (Section 3.2)."""

import pytest

from repro.core.rhierarchical import rhierarchical_join
from repro.data.generators import (
    add_dangling,
    cartesian_instance,
    forest_instance,
    matching_instance,
    random_instance,
    star_instance,
)
from repro.errors import QueryError
from repro.query import catalog
from repro.theory.bounds import l_instance
from tests.conftest import assert_matches_oracle


class TestCorrectness:
    @pytest.mark.parametrize(
        "name",
        ["binary", "star3", "star4", "q1_tall_flat", "q2_hierarchical",
         "q2_r_hierarchical", "simple_r_hierarchical", "cartesian2", "cartesian3"],
    )
    def test_random_instances(self, name):
        q = catalog.CATALOG[name]
        inst = random_instance(q, 50, 5, seed=41)
        assert_matches_oracle(inst, rhierarchical_join)

    def test_forest_instances(self):
        for skew in (1.0, 4.0):
            inst = forest_instance(catalog.q2_hierarchical(), 3, skew=skew)
            assert_matches_oracle(inst, rhierarchical_join)

    def test_star_with_heavy_hub(self):
        inst = star_instance(3, 2, 12)  # two hubs, large fanout -> heavy
        assert_matches_oracle(inst, rhierarchical_join)

    def test_cartesian_products(self):
        for sizes in ([30, 30], [100, 5, 2], [12, 12, 12]):
            inst = cartesian_instance(sizes)
            assert_matches_oracle(inst, rhierarchical_join)

    def test_with_dangling(self):
        inst = add_dangling(star_instance(3, 5, 3), 20, seed=42)
        assert_matches_oracle(inst, rhierarchical_join)

    def test_non_r_hierarchical_rejected(self):
        inst = matching_instance(catalog.line3(), 10)
        from repro.mpc import Cluster, distribute_instance

        cl = Cluster(4)
        g = cl.root_group()
        with pytest.raises(QueryError):
            rhierarchical_join(g, inst.query, distribute_instance(inst, g))

    @pytest.mark.parametrize("p", [1, 2, 4, 16])
    def test_various_cluster_sizes(self, p):
        inst = star_instance(3, 6, 4)
        assert_matches_oracle(inst, rhierarchical_join, p=p)

    def test_single_relation(self):
        from repro.query.hypergraph import Hypergraph
        from repro.data.instance import Instance
        from repro.data.relation import Relation

        q = Hypergraph({"R1": ("A", "B")})
        inst = Instance(q, {"R1": Relation("R1", ("A", "B"), [(1, 2), (3, 4)])})
        assert_matches_oracle(inst, rhierarchical_join)

    def test_mixed_heavy_light_hub(self):
        """Hub values straddling the light/heavy threshold (Case 1 split)."""
        from repro.data.instance import Instance
        from repro.data.relation import Relation

        q = catalog.star_join(2)
        rows1 = [("hot", f"x{i}") for i in range(60)] + [
            (f"z{j}", f"x{j}") for j in range(30)
        ]
        rows2 = [("hot", f"y{i}") for i in range(60)] + [
            (f"z{j}", f"y{j}") for j in range(30)
        ]
        inst = Instance(
            q,
            {
                "R1": Relation("R1", ("X1", "Z"), [(b, a) for a, b in rows1]),
                "R2": Relation("R2", ("X2", "Z"), [(b, a) for a, b in rows2]),
            },
        )
        assert_matches_oracle(inst, rhierarchical_join)


class TestInstanceOptimality:
    """Theorem 3: load = O(IN/p + L_instance(p, R))."""

    RATIO_CAP = 40  # generous constant; the point is independence from skew

    @pytest.mark.parametrize("skew", [1.0, 2.0, 8.0])
    def test_ratio_bounded_across_skew(self, skew):
        p = 8
        inst = forest_instance(catalog.q2_hierarchical(), 4, skew=skew)
        rep = assert_matches_oracle(inst, rhierarchical_join, p=p)
        bound = inst.input_size / p + l_instance(inst.query, inst, p)
        assert rep.load <= self.RATIO_CAP * bound + 30 * p

    def test_cartesian_ratio(self):
        p = 8
        inst = cartesian_instance([400, 20, 20])
        rep = assert_matches_oracle(inst, rhierarchical_join, p=p)
        bound = inst.input_size / p + l_instance(inst.query, inst, p)
        assert rep.load <= self.RATIO_CAP * bound + 30 * p

    def test_budget_override(self):
        inst = star_instance(3, 6, 4)
        rep = assert_matches_oracle(
            inst, rhierarchical_join, p=4, budget=10**9
        )
        # A huge budget means everything is light: still correct.
        assert rep.load > 0
