"""Tests for deterministic routing hashes."""

import pytest

from repro.mpc.hashing import stable_hash


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))

    def test_salt_changes_value(self):
        assert stable_hash("key", salt=0) != stable_hash("key", salt=1)

    def test_types_distinguished(self):
        assert stable_hash(1) != stable_hash("1")
        assert stable_hash(True) != stable_hash(1)
        assert stable_hash(None) != stable_hash(0)

    def test_tuples_order_sensitive(self):
        assert stable_hash((1, 2)) != stable_hash((2, 1))

    def test_nested_tuples(self):
        assert stable_hash(((1, 2), 3)) != stable_hash((1, (2, 3)))

    def test_large_ints(self):
        assert stable_hash(2**100) == stable_hash(2**100)
        assert stable_hash(2**100) != stable_hash(2**100 + 1)

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            stable_hash([1, 2])

    def test_spread_over_buckets(self):
        """A basic uniformity check: no bucket absorbs half the keys."""
        buckets = [0] * 16
        for i in range(4096):
            buckets[stable_hash(("key", i)) % 16] += 1
        assert max(buckets) < 2 * (4096 // 16)
        assert min(buckets) > (4096 // 16) // 2

    def test_string_spread(self):
        buckets = [0] * 8
        for i in range(2048):
            buckets[stable_hash(f"value-{i}") % 8] += 1
        assert max(buckets) < 2 * (2048 // 8)
