"""Tests for distributed relations and the common result plumbing."""

import pytest

from repro.core.common import (
    align_to_schema,
    canonical_attrs,
    concat_distrels,
    local_hash_join,
    local_tree_join,
    merge_result_parts,
)
from repro.data.generators import matching_instance, random_instance
from repro.data.relation import Relation
from repro.errors import MPCError, SchemaError
from repro.mpc import Cluster, DistRelation, distribute_instance, distribute_relation
from repro.query import catalog
from repro.semiring import COUNT


class TestDistRelation:
    def test_distribution_is_even(self):
        rel = Relation("R", ("A",), [(i,) for i in range(100)])
        cl = Cluster(8)
        d = distribute_relation(rel, cl.root_group())
        sizes = [len(p) for p in d.parts]
        assert max(sizes) - min(sizes) <= 1
        assert d.total_size() == 100

    def test_initial_distribution_free(self):
        rel = Relation("R", ("A",), [(i,) for i in range(100)])
        cl = Cluster(8)
        distribute_relation(rel, cl.root_group())
        assert cl.snapshot().load == 0

    def test_annotate_appends_weight_column(self):
        rel = Relation("R", ("A",), [(1,)], annotations=[3], semiring=COUNT)
        cl = Cluster(2)
        d = distribute_relation(rel, cl.root_group(), annotate=True)
        assert d.attrs == ("A", "#w:R")
        assert d.all_rows() == [(1, 3)]

    def test_rehash_costs_and_groups(self):
        rel = Relation("R", ("A", "B"), [(i % 3, i) for i in range(60)])
        cl = Cluster(4)
        g = cl.root_group()
        d = distribute_relation(rel, g)
        h = d.rehash(g, ("A",), "x")
        assert cl.snapshot().load > 0
        non_empty = [p for p in h.parts if p]
        assert len(non_empty) <= 3  # three distinct keys

    def test_positions_missing_raises(self):
        d = DistRelation("R", ("A",), [[]])
        with pytest.raises(SchemaError):
            d.positions(("Z",))

    def test_filter_and_map(self):
        d = DistRelation("R", ("A",), [[(1,), (2,)], [(3,)]])
        f = d.filter_local(lambda r: r[0] > 1)
        assert f.total_size() == 2
        m = d.map_parts(lambda rows: rows[:1])
        assert m.total_size() == 2

    def test_to_relation_dedupes(self):
        d = DistRelation("R", ("A",), [[(1,)], [(1,)]])
        assert len(d.to_relation()) == 1

    def test_mismatched_group_rejected(self):
        rel = Relation("R", ("A",), [(1,)])
        cl = Cluster(4)
        d = distribute_relation(rel, cl.root_group())
        with pytest.raises(MPCError):
            d.rehash(cl.root_group().subgroup([0, 1]), ("A",), "x")


class TestCommonHelpers:
    def test_canonical_attrs_order(self):
        got = canonical_attrs([("B", "#w:R2"), ("A", "#w:R1")])
        assert got == ("A", "B", "#w:R1", "#w:R2")

    def test_align_to_schema(self):
        rows = [(1, 2)]
        assert align_to_schema(rows, ("A", "B"), ("B", "A")) == [(2, 1)]
        assert align_to_schema(rows, ("A", "B"), ("A", "B")) is rows

    def test_local_hash_join(self):
        attrs, rows = local_hash_join(
            ("A", "B"), [(1, 2), (3, 4)], ("B", "C"), [(2, 9)]
        )
        assert attrs == ("A", "B", "C")
        assert rows == [(1, 2, 9)]

    def test_local_tree_join_matches_oracle(self):
        inst = random_instance(catalog.fork_join(), 25, 4, seed=111)
        from repro.ram.yannakakis import yannakakis

        schemas = {n: inst[n].attrs for n in inst.query.edge_names}
        rows = {n: list(inst[n].rows) for n in inst.query.edge_names}
        attrs, joined = local_tree_join(inst.query, schemas, rows)
        expected = yannakakis(inst)
        assert attrs == expected.attrs
        assert set(joined) == set(expected.rows)

    def test_merge_result_parts(self):
        parts = merge_result_parts(3, [(0, [(1,)]), (2, [(2,), (3,)])])
        assert parts == [[(1,)], [], [(2,), (3,)]]

    def test_merge_out_of_range(self):
        with pytest.raises(MPCError):
            merge_result_parts(2, [(5, [])])

    def test_concat_distrels_aligns_schemas(self):
        cl = Cluster(2)
        g = cl.root_group()
        a = DistRelation("a", ("A", "B"), [[(1, 2)], []])
        b = DistRelation("b", ("B", "A"), [[], [(9, 8)]])
        merged = concat_distrels("m", g, [a, b])
        assert merged.attrs == ("A", "B")
        assert set(merged.all_rows()) == {(1, 2), (8, 9)}

    def test_concat_empty_rejected(self):
        cl = Cluster(2)
        with pytest.raises(MPCError):
            concat_distrels("m", cl.root_group(), [])


class TestDistributeInstance:
    def test_all_relations_distributed(self):
        inst = matching_instance(catalog.line3(), 30)
        cl = Cluster(4)
        rels = distribute_instance(inst, cl.root_group())
        assert set(rels) == {"R1", "R2", "R3"}
        assert all(r.total_size() == 30 for r in rels.values())
