"""Parser round-trip and rejection cases for the engine's query text."""

from __future__ import annotations

import pytest

from repro.engine.parser import AGGREGATES, parse_query
from repro.errors import ParseError
from repro.query import canonical_form, catalog
from repro.semiring import BOOLEAN, COUNT, SUM_PRODUCT


# ----------------------------------------------------------------------
# Acceptance
# ----------------------------------------------------------------------
def test_full_join_head_normalizes_to_none():
    p = parse_query("Q(A,B,C) :- R1(A,B), R2(B,C)")
    assert p.kind == "join"
    assert p.output_attrs is None
    assert p.head_name == "Q"
    assert p.query.edges == {"R1": frozenset("AB"), "R2": frozenset("BC")}
    assert p.semiring is None


def test_projection_keeps_head_order():
    p = parse_query("Q(C,A) :- R1(A,B), R2(B,C)")
    assert p.kind == "project"
    assert p.output_attrs == ("C", "A")
    assert p.semiring is BOOLEAN


def test_aggregate_spec():
    p = parse_query("Q(B; count) :- R1(A,B), R2(B,C)")
    assert p.kind == "aggregate"
    assert p.aggregate == "count"
    assert p.output_attrs == ("B",)
    assert p.semiring is COUNT


def test_total_aggregate_empty_groupby():
    p = parse_query("Q(; sum) :- R1(A,B), R2(B,C)")
    assert p.kind == "aggregate"
    assert p.output_attrs == ()
    assert p.semiring is SUM_PRODUCT


def test_boolean_query_empty_head():
    p = parse_query("Q() :- R1(A,B), R2(B,C)")
    assert p.kind == "project"
    assert p.output_attrs == ()


def test_whitespace_and_case_tolerance():
    p = parse_query("  Q( A , C )\n :-  R1( A , B ),\n R2( B , C ) ")
    assert p.output_attrs == ("A", "C")
    assert parse_query("Q(B; COUNT) :- R(A,B)").aggregate == "count"


def test_positional_bindings_record_variable_order():
    p = parse_query("Q(X,Z) :- Edge(X,Y), Edge(Y,Z)")
    assert [b.edge for b in p.bindings] == ["Edge", "Edge@2"]
    assert [b.relation for b in p.bindings] == ["Edge", "Edge"]
    assert p.bindings[0].variables == ("X", "Y")
    assert p.bindings[1].variables == ("Y", "Z")


def test_self_join_canonical_round_trips():
    p = parse_query("Q(X,Z) :- Edge(X,Y), Edge(Y,Z)")
    again = parse_query(p.canonical())
    assert again.canonical() == p.canonical()
    assert set(again.query.edge_names) == {"Edge", "Edge@2"}
    assert [b.relation for b in again.bindings] == ["Edge", "Edge"]


@pytest.mark.parametrize(
    "text",
    [
        "Q(A,B,C,D) :- R1(A,B), R2(B,C), R3(C,D)",
        "Q(A,C) :- R1(A,B), R2(B,C)",
        "Q(B; count) :- R1(A,B), R2(B,C)",
        "Q(; max) :- R1(A,B), R2(B,C)",
        "Q() :- R1(A,B)",
    ],
)
def test_canonical_is_idempotent(text):
    p = parse_query(text)
    assert parse_query(p.canonical()).canonical() == p.canonical()


def test_canonical_ignores_edge_and_attr_order():
    a = parse_query("Q(A,B,C) :- R2(B,C), R1(B,A)")
    b = parse_query("Q(C,B,A) :- R1(A,B), R2(C,B)")
    assert a.canonical() == b.canonical()
    assert a.canonical() == canonical_form(a.query)


def test_catalog_lookup():
    p = parse_query("line3")
    assert p.query == catalog.line3()
    assert p.kind == "join"
    assert all(b.variables is None for b in p.bindings)


def test_aggregates_table_matches_cli_semirings():
    from repro.cli import SEMIRINGS

    assert set(AGGREGATES) == set(SEMIRINGS)


# ----------------------------------------------------------------------
# Rejection
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "text",
    [
        "",
        "   ",
        "Q(A) :-",
        ":- R(A)",
        "Q(A) :- R()",
        "Q(A) - R(A)",
        "Q(A) :- R(A,)",
        "Q(A) :- R(A) garbage",
        "Q(A) :- R(A) S(B)",
        "Q(A,A) :- R(A,B)",
        "Q(A) :- R(A,A)",
        "Q(A; count; sum) :- R(A,B)",
        "1bad(A) :- R(A)",
    ],
)
def test_rejected(text):
    with pytest.raises(ParseError):
        parse_query(text)


def test_unknown_head_variable_suggests_body_variable():
    with pytest.raises(ParseError, match="Alpha"):
        parse_query("Q(Alphb) :- R(Alpha,Beta)")


def test_unknown_aggregate_suggests():
    with pytest.raises(ParseError, match="count"):
        parse_query("Q(A; cout) :- R(A,B)")


def test_suggest_with_no_candidates_names_the_reason():
    # The near-miss helper with zero candidates must say *why* there is
    # nothing to suggest instead of rendering an empty list.
    from repro.engine.parser import _suggest

    assert _suggest("R9", [], "available") == (
        "; available: none (the catalog is empty)"
    )
    assert _suggest(
        "X", [], "body variables", empty="the body binds no variables"
    ) == "; body variables: none (the body binds no variables)"
    assert _suggest("lin3", ["line3"], "available") == "; did you mean line3?"


def test_unknown_catalog_name_suggests_near_miss():
    with pytest.raises(ParseError, match="line3"):
        parse_query("lin3")
    with pytest.raises(ParseError, match="did you mean"):
        parse_query("traingle")


def test_duplicate_explicit_alias_rejected():
    with pytest.raises(ParseError, match="duplicate"):
        parse_query("Q(A,B) :- R@2(A,B), R@2(B,A)")


def test_mixed_bare_and_explicit_aliases():
    p = parse_query("Q(A,B,C,D) :- R(A,B), R@2(B,C), R(C,D)")
    assert [b.edge for b in p.bindings] == ["R", "R@2", "R@3"]
    assert [b.relation for b in p.bindings] == ["R", "R", "R"]
