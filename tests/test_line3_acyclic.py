"""Tests for the line-3 (Section 4.2) and general acyclic (5.1) algorithms."""

import math

import pytest

from repro.core.acyclic import acyclic_join
from repro.core.line3 import line3_join
from repro.data.generators import (
    add_dangling,
    line_trap_instance,
    matching_instance,
    random_instance,
)
from repro.data.hard_instances import embed_line3, line3_random_hard
from repro.errors import QueryError
from repro.query import catalog
from repro.theory.bounds import theorem5_bound, theorem7_bound
from tests.conftest import assert_matches_oracle


class TestLine3Correctness:
    def test_matching(self):
        assert_matches_oracle(matching_instance(catalog.line3(), 40), line3_join)

    @pytest.mark.parametrize("seed", range(4))
    def test_random(self, seed):
        inst = random_instance(catalog.line3(), 120, 10, seed=seed)
        assert_matches_oracle(inst, line3_join)

    def test_trap_both_directions(self):
        for direction in ("forward", "backward"):
            inst = line_trap_instance(3, 900, 9000, direction=direction)
            assert_matches_oracle(inst, line3_join)

    def test_doubled_trap(self):
        inst = line_trap_instance(3, 900, 5400, doubled=True)
        assert_matches_oracle(inst, line3_join)

    def test_random_hard_instance(self):
        inst = line3_random_hard(900, 2700, seed=43)
        assert_matches_oracle(inst, line3_join)

    def test_with_dangling(self):
        inst = add_dangling(matching_instance(catalog.line3(), 60), 25, seed=44)
        assert_matches_oracle(inst, line3_join)

    def test_empty_output(self):
        from repro.data.instance import Instance
        from repro.data.relation import Relation

        q = catalog.line3()
        inst = Instance(
            q,
            {
                "R1": Relation("R1", ("A", "B"), [(1, 2)]),
                "R2": Relation("R2", ("B", "C"), [(8, 9)]),
                "R3": Relation("R3", ("C", "D"), [(9, 1)]),
            },
        )
        assert_matches_oracle(inst, line3_join)

    def test_rejects_non_line3(self):
        inst = matching_instance(catalog.star_join(3), 5)
        from repro.mpc import Cluster, distribute_instance

        cl = Cluster(2)
        g = cl.root_group()
        with pytest.raises(QueryError):
            line3_join(g, inst.query, distribute_instance(inst, g))

    def test_detects_renamed_line3(self):
        """Shape detection is structural, not name-based."""
        from repro.query.hypergraph import Hypergraph
        from repro.data.instance import Instance
        from repro.data.relation import Relation

        q = Hypergraph({"mid": ("V", "W"), "left": ("U", "V"), "right": ("W", "Y")})
        inst = Instance(
            q,
            {
                "left": Relation("left", ("U", "V"), [(1, 2)]),
                "mid": Relation("mid", ("V", "W"), [(2, 3)]),
                "right": Relation("right", ("W", "Y"), [(3, 4)]),
            },
        )
        assert_matches_oracle(inst, line3_join)


class TestLine3Load:
    def test_load_beats_yannakakis_on_large_out(self):
        """Theorem 5 vs Section 4.1: sqrt(IN*OUT)/p << OUT/p when OUT >> IN."""
        from repro.core.yannakakis import left_deep_plan, yannakakis_mpc

        p = 8
        inst = line_trap_instance(3, 1200, 43200, doubled=True)
        new_rep = assert_matches_oracle(inst, line3_join, p=p)
        yan_rep = assert_matches_oracle(
            inst, yannakakis_mpc, p=p, plan=left_deep_plan(["R1", "R2", "R3"])
        )
        assert new_rep.load < yan_rep.load

    @pytest.mark.parametrize("out_target", [6000, 24000, 54000])
    def test_load_tracks_theorem5(self, out_target):
        p = 8
        inst = line_trap_instance(3, 1200, out_target, doubled=True)
        rep = assert_matches_oracle(inst, line3_join, p=p)
        out = inst.output_size()
        bound = theorem5_bound(inst.input_size, out, p)
        assert rep.load <= 25 * bound + 30 * p


class TestAcyclicCorrectness:
    @pytest.mark.parametrize(
        "name", ["line3", "line4", "line5", "fork", "broom", "two_ears"]
    )
    def test_random(self, name):
        q = catalog.CATALOG[name]
        inst = random_instance(q, 80, 8, seed=45)
        assert_matches_oracle(inst, acyclic_join)

    @pytest.mark.parametrize(
        "name", ["binary", "star3", "q1_tall_flat", "q2_r_hierarchical"]
    )
    def test_also_handles_r_hierarchical(self, name):
        """Section 5.1 works on all acyclic joins, including r-hier ones."""
        q = catalog.CATALOG[name]
        inst = random_instance(q, 50, 5, seed=46)
        assert_matches_oracle(inst, acyclic_join)

    def test_trap(self):
        assert_matches_oracle(line_trap_instance(3, 900, 9000), acyclic_join)

    def test_longer_trap_chain(self):
        assert_matches_oracle(line_trap_instance(4, 1200, 9000), acyclic_join)

    def test_embedded_hard_instance(self):
        inst = embed_line3(catalog.fork_join(), 600, 1800, seed=47)
        assert_matches_oracle(inst, acyclic_join)

    def test_with_dangling(self):
        inst = add_dangling(random_instance(catalog.fork_join(), 60, 6, seed=48), 20, seed=49)
        assert_matches_oracle(inst, acyclic_join)

    def test_cyclic_rejected(self):
        from repro.mpc import Cluster, distribute_instance

        inst = random_instance(catalog.triangle(), 20, 4, seed=50)
        cl = Cluster(2)
        g = cl.root_group()
        with pytest.raises(QueryError):
            acyclic_join(g, inst.query, distribute_instance(inst, g))

    @pytest.mark.parametrize("p", [1, 2, 4, 16])
    def test_various_cluster_sizes(self, p):
        inst = random_instance(catalog.fork_join(), 60, 6, seed=51)
        assert_matches_oracle(inst, acyclic_join, p=p)

    def test_disconnected_query(self):
        from repro.query.hypergraph import Hypergraph
        from repro.data.instance import Instance
        from repro.data.relation import Relation

        q = Hypergraph(
            {"R1": ("A", "B"), "R2": ("B", "C"), "R3": ("C", "D"), "R4": ("X", "Y")}
        )
        inst = Instance(
            q,
            {
                "R1": Relation("R1", ("A", "B"), [(i, i % 5) for i in range(20)]),
                "R2": Relation("R2", ("B", "C"), [(i % 5, i % 3) for i in range(20)]),
                "R3": Relation("R3", ("C", "D"), [(i % 3, i) for i in range(20)]),
                "R4": Relation("R4", ("X", "Y"), [(i, i) for i in range(4)]),
            },
        )
        assert_matches_oracle(inst, acyclic_join)


class TestAcyclicLoad:
    @pytest.mark.parametrize("out_target", [9000, 36000])
    def test_load_tracks_theorem7(self, out_target):
        p = 8
        inst = line_trap_instance(4, 1600, out_target, doubled=True)
        rep = assert_matches_oracle(inst, acyclic_join, p=p)
        out = inst.output_size()
        bound = theorem7_bound(inst.input_size, out, p)
        assert rep.load <= 30 * bound + 30 * p
