"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.data.instance import Instance
from repro.mpc import Cluster, distribute_instance
from repro.query import catalog
from repro.ram.yannakakis import yannakakis


@pytest.fixture
def line3_query():
    return catalog.line3()


@pytest.fixture
def star3_query():
    return catalog.star_join(3)


@pytest.fixture
def triangle_query():
    return catalog.triangle()


def oracle_rows(instance: Instance) -> set:
    """Full join results per the RAM Yannakakis oracle (canonical order)."""
    return set(yannakakis(instance).rows)


def run_mpc(instance: Instance, algorithm_fn, p: int = 8, **kwargs):
    """Distribute an instance, run an algorithm function, return (rows, report).

    ``algorithm_fn(group, query, rels, **kwargs)`` must return a
    DistRelation.
    """
    cluster = Cluster(p)
    group = cluster.root_group()
    rels = distribute_instance(instance, group)
    result = algorithm_fn(group, instance.query, rels, **kwargs)
    return set(result.all_rows()), cluster.snapshot()


def assert_matches_oracle(instance: Instance, algorithm_fn, p: int = 8, **kwargs):
    """Run the algorithm and compare its emitted rows with the oracle."""
    got, report = run_mpc(instance, algorithm_fn, p=p, **kwargs)
    expected = oracle_rows(instance)
    assert got == expected, (
        f"result mismatch: {len(got)} vs {len(expected)} rows; "
        f"missing={sorted(expected - got)[:3]} extra={sorted(got - expected)[:3]}"
    )
    return report
