"""Property-based tests (hypothesis) on core invariants.

Strategy sizes are kept small: the point is adversarial structure, not
volume.  Each property pins an invariant the paper's machinery relies on.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.runner import auto_algorithm, mpc_join
from repro.data.instance import Instance
from repro.data.relation import Relation
from repro.mpc import Cluster
from repro.mpc.hashing import stable_hash
from repro.mpc.packing import parallel_packing
from repro.mpc.primitives import multi_numbering, multi_search, sum_by_key
from repro.query import catalog
from repro.query.classify import JoinClass, classify, is_r_hierarchical
from repro.query.hypergraph import Hypergraph, gyo_reduction, join_tree
from repro.query.paths import has_minimal_path_of_length_3
from repro.ram.yannakakis import join_size, yannakakis
from repro.semiring import COUNT

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Random hypergraph strategy: 2-5 edges over up to 6 attributes.
# ----------------------------------------------------------------------
@st.composite
def hypergraphs(draw):
    n_attrs = draw(st.integers(2, 6))
    attrs = [f"x{i}" for i in range(n_attrs)]
    n_edges = draw(st.integers(2, 5))
    edges = {}
    for i in range(n_edges):
        size = draw(st.integers(1, min(3, n_attrs)))
        subset = draw(
            st.lists(st.sampled_from(attrs), min_size=size, max_size=size, unique=True)
        )
        edges[f"R{i}"] = tuple(subset)
    return Hypergraph(edges, name="random")


@st.composite
def small_instances(draw):
    """A small random instance of a random catalog query."""
    name = draw(
        st.sampled_from(
            ["binary", "line3", "star3", "fork", "simple_r_hierarchical", "cartesian2"]
        )
    )
    query = catalog.CATALOG[name]
    dom = draw(st.integers(1, 4))
    rels = {}
    for edge in query.edge_names:
        attrs = tuple(sorted(query.attrs_of(edge)))
        n_rows = draw(st.integers(0, 12))
        rows = [
            tuple(draw(st.integers(0, dom)) for _ in attrs) for _ in range(n_rows)
        ]
        rels[edge] = Relation(edge, attrs, rows)
    return Instance(query, rels)


class TestHypergraphProperties:
    @SETTINGS
    @given(hypergraphs())
    def test_reduce_idempotent(self, q):
        reduced, _ = q.reduce()
        again, witness = reduced.reduce()
        assert witness == {}
        assert again == reduced

    @SETTINGS
    @given(hypergraphs())
    def test_gyo_consistent_with_join_tree(self, q):
        if gyo_reduction(q) is None:
            return
        tree = join_tree(q)
        tree.validate()

    @SETTINGS
    @given(hypergraphs())
    def test_lemma2_dichotomy(self, q):
        """Acyclic and non-r-hierarchical iff a minimal 3-path exists."""
        if gyo_reduction(q) is None:
            return
        assert has_minimal_path_of_length_3(q) == (not is_r_hierarchical(q))

    @SETTINGS
    @given(hypergraphs())
    def test_classification_consistent(self, q):
        cls = classify(q)
        if cls == JoinClass.CYCLIC:
            assert gyo_reduction(q) is None
        else:
            assert gyo_reduction(q) is not None

    @SETTINGS
    @given(hypergraphs())
    def test_residual_of_acyclic_stays_acyclic(self, q):
        """Removing attributes preserves alpha-acyclicity (used by Q_x)."""
        if gyo_reduction(q) is None:
            return
        for attr in sorted(q.attributes):
            rest = q.attributes - {attr}
            if not rest:
                continue
            residual = q.residual({attr})
            assert residual.is_acyclic()


class TestPrimitiveProperties:
    @SETTINGS
    @given(
        st.lists(
            st.tuples(st.integers(0, 8), st.integers(-5, 5)), max_size=120
        ),
        st.integers(1, 7),
    )
    def test_sum_by_key(self, pairs, p):
        cl = Cluster(p)
        parts = [pairs[i::p] for i in range(p)]
        res = sum_by_key(cl.root_group(), parts)
        got = {}
        for part in res:
            for k, v in part:
                assert k not in got
                got[k] = v
        expected: dict = {}
        for k, v in pairs:
            expected[k] = expected.get(k, 0) + v
        assert got == expected

    @SETTINGS
    @given(
        st.lists(st.integers(0, 5), max_size=80),
        st.integers(1, 6),
    )
    def test_multi_numbering_is_permutation(self, keys, p):
        pairs = [(k, i) for i, k in enumerate(keys)]
        cl = Cluster(p)
        parts = [pairs[i::p] for i in range(p)]
        res = multi_numbering(cl.root_group(), parts)
        per_key: dict = {}
        for part in res:
            for k, _payload, num in part:
                per_key.setdefault(k, []).append(num)
        for k, nums in per_key.items():
            assert sorted(nums) == list(range(1, len(nums) + 1))

    @SETTINGS
    @given(
        st.lists(st.integers(0, 1000), max_size=60),
        st.lists(st.integers(0, 1000), max_size=60, unique=True),
        st.integers(1, 5),
    )
    def test_multi_search_predecessors(self, xs, ys, p):
        import bisect

        ys_sorted = sorted(ys)
        cl = Cluster(p)
        res = multi_search(
            cl.root_group(),
            [[(x, None) for x in xs[i::p]] for i in range(p)],
            [[(y, y) for y in ys[i::p]] for i in range(p)],
        )
        for part in res:
            for xk, _xp, pk, _pv in part:
                i = bisect.bisect_right(ys_sorted, xk)
                assert pk == (ys_sorted[i - 1] if i else None)

    @SETTINGS
    @given(
        st.lists(
            st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
            max_size=60,
        ),
        st.integers(1, 6),
    )
    def test_parallel_packing_invariants(self, weights, p):
        items = [(i, w) for i, w in enumerate(weights)]
        cl = Cluster(p)
        assign, n_groups = parallel_packing(
            cl.root_group(), [items[i::p] for i in range(p)]
        )
        totals: dict = {}
        seen = set()
        for part in assign:
            for iid, gid in part:
                assert iid not in seen
                seen.add(iid)
                totals[gid] = totals.get(gid, 0.0) + weights[iid]
        assert seen == set(range(len(weights)))
        assert all(w <= 1 + 1e-9 for w in totals.values())
        assert sum(1 for w in totals.values() if w < 0.5) <= 1

    @SETTINGS
    @given(st.integers(), st.integers(0, 100))
    def test_stable_hash_pure(self, v, salt):
        assert stable_hash(v, salt) == stable_hash(v, salt)


class TestJoinProperties:
    @SETTINGS
    @given(small_instances(), st.integers(1, 8))
    def test_auto_join_matches_oracle(self, inst, p):
        res = mpc_join(inst.query, inst, p=p)
        expected = set(yannakakis(inst).rows)
        assert res.row_set() == expected

    @SETTINGS
    @given(small_instances())
    def test_yannakakis_matches_oracle(self, inst):
        res = mpc_join(inst.query, inst, p=4, algorithm="yannakakis")
        assert res.row_set() == set(yannakakis(inst).rows)

    @SETTINGS
    @given(small_instances())
    def test_binhc_matches_oracle(self, inst):
        res = mpc_join(inst.query, inst, p=4, algorithm="binhc-multiround")
        assert res.row_set() == set(yannakakis(inst).rows)

    @SETTINGS
    @given(small_instances())
    def test_out_size_consistency(self, inst):
        """OUT from the MPC count primitive == oracle == emitted rows."""
        from repro.core.runner import mpc_output_size

        cnt, _ = mpc_output_size(inst.query, inst, 4)
        assert cnt == join_size(inst)

    @SETTINGS
    @given(small_instances())
    def test_count_aggregate_equals_out(self, inst):
        from repro.core.runner import mpc_join_aggregate

        ann = inst.with_uniform_annotations(COUNT)
        res = mpc_join_aggregate(inst.query, set(), ann, COUNT, p=4)
        assert res.scalar == join_size(inst)


class TestLoadProperties:
    @SETTINGS
    @given(small_instances(), st.integers(2, 8))
    def test_load_never_exceeds_trivial(self, inst, p):
        """No algorithm ships more than a constant times all data to one
        server across its O(1) phases."""
        res = mpc_join(inst.query, inst, p=p)
        out = res.output_size
        assert res.report.load <= 60 * (inst.input_size + out + p)

    @SETTINGS
    @given(small_instances())
    def test_l_instance_lower_bounds_out_shape(self, inst):
        from repro.theory.bounds import l_instance

        p = 4
        li = l_instance(inst.query, inst, p)
        out = join_size(inst)
        m = len(inst.query.edge_names)
        assert li >= (out / p) ** (1.0 / m) - 1e-9
