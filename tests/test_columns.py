"""The columnar data plane: encode/decode round-trips, wire format, parity.

Covers the load-bearing invariants of ``repro/data/columns.py`` and its
integration into :class:`~repro.data.relation.Relation`,
:class:`~repro.mpc.distrel.DistRelation`, the substrate's column-aware
encoders, and the multiprocess backend's wire format:

* exact round-trip for mixed-type columns (types and values preserved —
  the bool/int/float distinction especially),
* row-path vs columnar-path :class:`Relation` construction parity
  (equality, dedup, annotation combining),
* the owned-parts fast path and lazy row materialization of
  :class:`DistRelation`,
* wire blobs smaller than pickled tuple lists, decoding to identical rows,
* identical outputs and ledgers with columnar storage in the loop.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.columns import (
    Column,
    ColumnBlock,
    encode_column,
    pack_blob,
    unpack_blob,
)
from repro.data.relation import Relation
from repro.mpc import Cluster, DistRelation, distribute_relation
from repro.mpc.backends import MultiprocessBackend
from repro.mpc.primitives import count_by_key, semi_join
from repro.mpc.substrate import cache_disabled, column_kind, orderable
from repro.semiring import COUNT


def same_values(decoded, original):
    """Equality *and* type identity per element (1 vs True vs 1.0 differ)."""
    assert len(decoded) == len(original)
    for d, o in zip(decoded, original):
        assert type(d) is type(o), (d, o)
        assert d == o or (d != d and o != o), (d, o)  # NaN-tolerant


# A generator of messy column values: ints (small/huge), floats, strings,
# bools, None, bytes, nested tuples, and unorderable-but-hashable objects.
mixed_value = st.one_of(
    st.integers(min_value=-(2**70), max_value=2**70),
    st.booleans(),
    st.none(),
    st.floats(allow_nan=False),
    st.text(max_size=8),
    st.binary(max_size=6),
    st.tuples(st.integers(-5, 5), st.text(max_size=3)),
    st.frozensets(st.integers(0, 3), max_size=2),
)


class TestColumnRoundTrip:
    @given(st.lists(mixed_value, max_size=60))
    @settings(max_examples=120, deadline=None)
    def test_encode_decode_exact(self, vals):
        col = encode_column(vals)
        same_values(col.values(), vals)

    @given(st.lists(st.integers(min_value=-(2**80), max_value=2**80)))
    @settings(max_examples=60, deadline=None)
    def test_huge_ints_fall_back_to_dictionary(self, vals):
        col = encode_column(vals)
        same_values(col.values(), vals)

    def test_unhashable_values_use_object_column(self):
        vals = [[1, 2], [3], [1, 2]]
        col = encode_column(vals)
        assert col.kind == "o"
        assert col.values() == vals
        # Original objects, not copies.
        assert col.values()[0] is vals[0]

    def test_int_column_uses_typed_array(self):
        col = encode_column(list(range(100)))
        assert col.kind == "i"
        assert col.data.typecode == "q"
        assert col.order_tag == 2

    def test_dictionary_shared_by_stride_slices(self):
        col = encode_column(["a", "b", "a", "c"] * 5)
        assert col.kind == "d"
        part = col.take_stride(1, 3)
        assert part.dictionary is col.dictionary
        assert part.values() == (["a", "b", "a", "c"] * 5)[1::3]

    @given(st.lists(st.tuples(mixed_value, mixed_value), max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_block_rows_round_trip(self, rows):
        block = ColumnBlock.from_rows(rows, 2)
        got = block.rows()
        assert len(got) == len(rows)
        for g, r in zip(got, rows):
            same_values(list(g), list(r))

    def test_zero_arity_block_keeps_cardinality(self):
        block = ColumnBlock.from_rows([(), (), ()], 0)
        assert block.n == 3
        assert block.rows() == [(), (), ()]
        assert block.take_stride(1, 2).rows() == [()]


class TestBoolIntRegression:
    """The dictionary encoder must never identify 1 / True / 1.0.

    Python's ``dict`` does (``hash(1) == hash(True) == hash(1.0)`` and all
    compare equal), which is exactly the latent ambiguity the
    ``(type, value)`` dictionary keys exist to kill.
    """

    VALUES = [1, True, 0, False, 1.0, 0.0, 2, "1"]

    def test_column_round_trip_preserves_types(self):
        col = encode_column(self.VALUES)
        assert col.kind == "d"  # bool/float disqualify the int fast path
        same_values(col.values(), self.VALUES)
        # Distinct dictionary entries for the dict-equal triple.
        assert len(col.dictionary) == len(self.VALUES)

    def test_wire_round_trip_preserves_types(self):
        rows = [(v, i) for i, v in enumerate(self.VALUES)]
        got = unpack_blob(pack_blob(rows))
        assert got == rows
        for g, r in zip(got, rows):
            assert type(g[0]) is type(r[0])

    def test_bool_disqualifies_column_kind_via_columns(self):
        rel_ram = Relation("R", ("A", "B"), [(1, "x"), (True, "y"), (2, "z")])
        cl = Cluster(2)
        rel = distribute_relation(rel_ram, cl.root_group())
        assert rel.column_parts is not None
        assert column_kind(rel, 0) is None  # bool present -> no fast tag
        assert column_kind(rel, 1) == 3

    def test_orderable_distinguishes_after_decode(self):
        col = encode_column([1, True, 1.0])
        oks = [orderable(v) for v in col.values()]
        assert oks == [(2, 1), (1, 1), (2, 1.0)]
        assert oks[0] != oks[1]

    def test_sorted_primitive_parity_cached_vs_bypass(self):
        rows = [(v, i % 3) for i, v in enumerate([1, True, 0, False, 1, True])]
        rel_ram = Relation("R", ("A", "B"), rows)
        cl = Cluster(3)
        g = cl.root_group()
        rel = distribute_relation(rel_ram, g)
        got = count_by_key(g, rel, ("A",), "cnt")
        with cache_disabled():
            cl2 = Cluster(3)
            g2 = cl2.root_group()
            rel2 = distribute_relation(rel_ram, g2)
            ref = count_by_key(g2, rel2, ("A",), "cnt")
        assert got == ref
        assert cl.snapshot().as_dict() == cl2.snapshot().as_dict()


class TestRelationParity:
    """Row-path and columnar-path construction are semantically identical."""

    ROWS = [(1, "a"), (2, "b"), (1, "a"), (True, "a"), (2.0, "b")]

    def test_dedup_matches(self):
        by_rows = Relation("R", ("A", "B"), self.ROWS)
        block = ColumnBlock.from_rows([tuple(r) for r in self.ROWS], 2)
        by_cols = Relation.from_columns("R", ("A", "B"), block)
        assert by_rows == by_cols
        assert by_rows.rows == by_cols.rows  # same order, same survivors

    def test_annotation_combining_matches(self):
        anns = [10, 20, 3, 4, 5]
        by_rows = Relation("R", ("A", "B"), self.ROWS, anns, COUNT)
        block = ColumnBlock.from_rows([tuple(r) for r in self.ROWS], 2)
        by_cols = Relation.from_columns("R", ("A", "B"), block, anns, COUNT)
        assert by_rows == by_cols
        assert by_rows.annotation_map() == by_cols.annotation_map()

    @given(
        st.lists(st.tuples(mixed_value, st.integers(0, 3)), max_size=30)
    )
    @settings(max_examples=60, deadline=None)
    def test_construction_paths_agree(self, rows):
        try:
            by_rows = Relation("R", ("A", "B"), rows)
        except TypeError:
            return  # unhashable rows reject on both paths identically
        block = ColumnBlock.from_rows([tuple(r) for r in rows], 2)
        by_cols = Relation.from_columns("R", ("A", "B"), block)
        assert by_rows.rows == by_cols.rows

    def test_unique_block_is_kept_as_backing(self):
        block = ColumnBlock.from_rows([(1, "a"), (2, "b")], 2)
        rel = Relation.from_columns("R", ("A", "B"), block)
        assert rel.columns is block

    def test_columns_lazy_and_exact(self):
        rel = Relation("R", ("A", "B"), self.ROWS)
        block = rel.columns
        assert block.rows() == list(rel.rows)
        assert rel.columns is block  # cached

    def test_renamed_shares_backing(self):
        rel = Relation("R", ("A", "B"), [(1, "a"), (2, "b")])
        _ = rel.columns
        r2 = rel.renamed("S", ("X", "Y"))
        assert r2.name == "S" and r2.attrs == ("X", "Y")
        assert r2.rows is rel.rows
        assert r2.columns is rel.columns
        assert r2.positions(("Y",)) == (1,)
        with pytest.raises(Exception):
            rel.renamed("S", ("X",))  # arity mismatch


class TestDistRelationColumnar:
    def test_distribute_is_columnar_and_lazy(self):
        rel_ram = Relation("R", ("A",), [(i,) for i in range(20)])
        cl = Cluster(4)
        d = distribute_relation(rel_ram, cl.root_group())
        assert d.column_parts is not None
        assert d._parts is None  # rows not yet materialized
        assert d.total_size() == 20  # size answered from columns
        # Materialized rows match the historical round-robin deal.
        expected = [[(i,) for i in range(j, 20, 4)] for j in range(4)]
        assert d.parts == expected

    def test_column_values_both_backings(self):
        rows = [[(1, "a"), (2, "b")], [(3, "c")]]
        d = DistRelation("R", ("A", "B"), rows)
        assert d.column_values(0, 1) == ["a", "b"]
        c = DistRelation("R", ("A", "B"), rows).compact()
        assert c.column_values(1, 0) == [3]

    def test_compact_round_trips(self):
        rows = [[(1, "a"), (True, "b")], [(2.5, "c")]]
        d = DistRelation("R", ("A", "B"), rows)
        before = [list(p) for p in d.parts]
        d.compact()
        assert d._parts is None
        assert d.parts == before
        for p, q in zip(d.parts, before):
            for r1, r2 in zip(p, q):
                assert type(r1[0]) is type(r2[0])

    def test_owned_parts_skip_copy(self):
        fresh = [[(1,)], [(2,)]]
        d = DistRelation("R", ("A",), fresh, owned=True)
        assert d.parts[0] is fresh[0]  # no per-part copy

    def test_default_still_copies_defensively(self):
        mine = [[(1,)], [(2,)]]
        d = DistRelation("R", ("A",), mine)
        assert d.parts[0] is not mine[0]
        mine[0].append((9,))
        assert d.parts[0] == [(1,)]

    def test_transforms_use_owned_path(self):
        d = DistRelation("R", ("A",), [[(1,)], [(2,)]])
        f = d.filter_local(lambda r: r[0] > 1)
        assert f.parts == [[], [(2,)]]
        m = d.map_parts(lambda p: [r + r for r in p])
        assert m.parts == [[(1, 1)], [(2, 2)]]
        e = d.empty_like()
        assert e.parts == [[], []]

    def test_semi_join_on_columnar_relations(self):
        cl = Cluster(3)
        g = cl.root_group()
        r = distribute_relation(
            Relation("R", ("A", "B"), [(i % 5, i) for i in range(30)]), g
        )
        s = distribute_relation(
            Relation("S", ("A",), [(0,), (2,), ("x",)]), g
        )
        out = semi_join(g, r, s, "sj")
        assert sorted(out.all_rows()) == sorted(
            (i % 5, i) for i in range(30) if i % 5 in (0, 2)
        )


class TestWireFormat:
    def test_blob_smaller_than_pickle_on_typical_rows(self):
        rows = [(i % 100, f"user{i % 50}", i % 7) for i in range(5000)]
        blob = pack_blob(rows)
        baseline = pickle.dumps(rows, pickle.HIGHEST_PROTOCOL)
        assert unpack_blob(blob) == rows
        assert len(blob) * 2 <= len(baseline)

    def test_strided_parts_ship_only_their_own_dictionary(self):
        # take_stride shares the parent's full dictionary in memory; the
        # wire must remap codes to the slice's used values or every part
        # would ship all distinct values of the whole relation.
        rows = [(f"unique-string-value-{i}", i) for i in range(4000)]
        rel_ram = Relation("R", ("A", "B"), rows)
        cl = Cluster(8)
        d = distribute_relation(rel_ram, cl.root_group())
        encoded = sum(len(d.wire_blob(i)) for i in range(8))
        baseline = sum(
            len(pickle.dumps(p, pickle.HIGHEST_PROTOCOL)) for p in d.parts
        )
        assert encoded < baseline
        for i in range(8):
            assert unpack_blob(d.wire_blob(i)) == d.parts[i]

    def test_non_uniform_rows_fall_back_to_pickle(self):
        part = [(1, 2), (3,), "not-a-tuple"]
        assert unpack_blob(pack_blob(part)) == part

    def test_empty_part(self):
        assert unpack_blob(pack_blob([])) == []

    def test_multiprocess_wire_stats_and_parity(self, monkeypatch):
        monkeypatch.setenv("REPRO_WIRE_BASELINE", "1")
        backend = MultiprocessBackend(workers=2)
        try:
            rel_ram = Relation(
                "R", ("A", "B"),
                [(f"k{i % 40}" if i % 2 else i % 40, i) for i in range(2000)],
            )
            cl = Cluster(4, backend=backend)
            g = cl.root_group()
            rel = distribute_relation(rel_ram, g)
            got = count_by_key(g, rel, ("A",), "cnt")

            cl_ref = Cluster(4)
            g_ref = cl_ref.root_group()
            ref = count_by_key(
                g_ref, distribute_relation(rel_ram, g_ref), ("A",), "cnt"
            )
            assert got == ref
            assert cl.snapshot().as_dict() == cl_ref.snapshot().as_dict()

            stats = backend.wire_stats()
            assert stats["parts_shipped"] > 0
            assert 0 < stats["bytes_shipped"] < stats["baseline_bytes"]
        finally:
            backend.close()

    def test_worker_memo_hits_ship_no_bytes(self):
        backend = MultiprocessBackend(workers=2)
        try:
            rel_ram = Relation("R", ("A",), [(i,) for i in range(500)])

            def run():
                cl = Cluster(4, backend=backend)
                g = cl.root_group()
                return count_by_key(
                    g, distribute_relation(rel_ram, g), ("A",), "cnt"
                )

            first = run()
            cold = backend.wire_stats()["bytes_shipped"]
            second = run()
            warm = backend.wire_stats()["bytes_shipped"] - cold
            assert first == second
            assert warm == 0  # content-addressed memo: nothing re-shipped
        finally:
            backend.close()
