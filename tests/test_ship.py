"""Unit tests for the plan-shipping wire format (:mod:`repro.plan.ship`).

The conformance cell (tests/conformance/test_plan_ship.py) holds the
end-to-end contract — shipped replay bit-identical per backend.  These
tests pin the envelope itself (magic, version, digest, truncation), the
fn-reference allowlist, and the typed install-time rejections.
"""

from __future__ import annotations

import pytest

from repro.data.generators import random_instance
from repro.data.relation import Relation
from repro.engine import Engine
from repro.errors import PlanShipError
from repro.plan.ship import (
    SHIP_VERSION,
    decode_plan,
    encode_plan,
    plan_digest,
    register_shippable,
    relation_digest,
    resolve_fn,
)
from repro.query import catalog

TEXT = "Q(A,B,C) :- R1(A,B), R2(B,C)"


def _engine(p=6, **kwargs):
    inst = random_instance(catalog.binary_join(), 120, 12, seed=11)
    engine = Engine(p=p, backend="serial", result_cache=False, **kwargs)
    for name, rel in inst.relations.items():
        engine.register(rel, name=name)
    return engine


def _blob(engine):
    engine.execute(TEXT)
    return engine.export_plan(TEXT)


# ----------------------------------------------------------------------
# Envelope
# ----------------------------------------------------------------------

def test_envelope_roundtrip_and_digest():
    payload = {"query": TEXT, "p": 6, "ops": []}
    blob = encode_plan(payload)
    assert blob[:4] == b"RPLN"
    assert blob[4] == SHIP_VERSION
    assert decode_plan(blob) == payload
    assert plan_digest(blob) == blob[5:25].hex()


def test_envelope_rejects_corruption():
    blob = encode_plan({"query": TEXT})
    flipped = blob[:-1] + bytes([blob[-1] ^ 0xFF])
    with pytest.raises(PlanShipError, match="digest"):
        decode_plan(flipped)


def test_envelope_rejects_truncation_magic_and_version():
    blob = encode_plan({"query": TEXT})
    with pytest.raises(PlanShipError):
        decode_plan(blob[:10])
    with pytest.raises(PlanShipError, match="magic"):
        decode_plan(b"XXXX" + blob[4:])
    with pytest.raises(PlanShipError, match="version"):
        decode_plan(blob[:4] + bytes([SHIP_VERSION + 1]) + blob[5:])


def test_envelope_rejects_non_dict_body():
    with pytest.raises(PlanShipError):
        decode_plan(encode_plan(["not", "a", "dict"]))


# ----------------------------------------------------------------------
# fn-reference allowlist
# ----------------------------------------------------------------------

def test_resolve_fn_roundtrips_repro_function():
    fn = resolve_fn("repro.plan.ship:relation_digest")
    assert fn is relation_digest


@pytest.mark.parametrize("ref", [
    "no-colon-here",
    ":qualname",
    "module:",
    "repro.plan.ship:outer.<locals>.inner",
    "os:system",                       # outside the allowlist
    "repro.nonexistent_module:fn",
    "repro.plan.ship:does_not_exist",
    "repro.plan.ship:SHIP_VERSION",    # not callable
])
def test_resolve_fn_rejects(ref):
    with pytest.raises(PlanShipError):
        resolve_fn(ref)


def test_register_shippable_escape_hatch():
    # Aliased import path would fail the round-trip check; explicit
    # registration is the documented way around the prefix allowlist.
    def local_fn():
        return 42

    ref = f"{local_fn.__module__}:{local_fn.__qualname__}"
    with pytest.raises(PlanShipError):
        resolve_fn(ref)
    register_shippable(local_fn)
    assert resolve_fn(ref) is local_fn


# ----------------------------------------------------------------------
# relation_digest
# ----------------------------------------------------------------------

def test_relation_digest_tracks_content():
    a = Relation("R", ("A", "B"), [(1, 2), (3, 4)])
    b = Relation("R", ("A", "B"), [(1, 2), (3, 4)])
    c = Relation("R", ("A", "B"), [(1, 2), (3, 5)])
    assert relation_digest(a) == relation_digest(b)
    assert relation_digest(a) != relation_digest(c)


# ----------------------------------------------------------------------
# Export / install rejections
# ----------------------------------------------------------------------

def test_export_before_execute_raises():
    engine = _engine()
    with pytest.raises(PlanShipError, match="nothing to export"):
        engine.export_plan(TEXT)


def test_install_rejects_cluster_size_mismatch():
    blob = _blob(_engine(p=6))
    with pytest.raises(PlanShipError, match="p="):
        _engine(p=8).install_plan(blob)


def test_install_rejects_missing_relation():
    blob = _blob(_engine())
    receiver = Engine(p=6, backend="serial", result_cache=False)
    with pytest.raises(PlanShipError):
        receiver.install_plan(blob)


def test_install_rejects_content_drift():
    sender = _engine()
    blob = _blob(sender)
    receiver = _engine()
    receiver.register(
        Relation("R1", ("A", "B"), [(0, 0)]), name="R1"
    )
    with pytest.raises(PlanShipError):
        receiver.install_plan(blob)
    assert receiver.stats().plans_installed == 0


def test_install_rejects_missing_payload_field():
    blob = _blob(_engine())
    payload = decode_plan(blob)
    del payload["ops"]
    with pytest.raises(PlanShipError, match="missing"):
        _engine().install_plan(encode_plan(payload))


def test_install_then_warm_replay_zero_retrace():
    sender = _engine()
    cold = sender.execute(TEXT)
    blob = sender.export_plan(TEXT)
    receiver = _engine()
    receiver.install_plan(blob)
    assert receiver.stats().plans_installed == 1
    warm = receiver.execute(TEXT)
    assert warm.metrics.plan_replayed
    assert warm.report.as_dict() == cold.report.as_dict()
