"""Tests for BinHC (Section 3.1): correctness and instance-optimality ratio."""

import pytest

from repro.core.binhc import binhc_join
from repro.data.generators import (
    add_dangling,
    cartesian_instance,
    forest_instance,
    matching_instance,
    random_instance,
    star_instance,
)
from repro.query import catalog
from repro.theory.bounds import l_instance
from tests.conftest import assert_matches_oracle


class TestCorrectness:
    @pytest.mark.parametrize(
        "name", ["binary", "star3", "q1_tall_flat", "q2_hierarchical", "cartesian3"]
    )
    def test_random_instances(self, name):
        q = catalog.CATALOG[name]
        inst = random_instance(q, 60, 6, seed=61)
        assert_matches_oracle(inst, binhc_join)

    def test_skewed_instance(self):
        inst = forest_instance(catalog.q2_hierarchical(), 3, skew=6.0)
        assert_matches_oracle(inst, binhc_join)

    def test_line3_still_correct(self):
        """Correct (if not optimal) outside the tall-flat class."""
        inst = random_instance(catalog.line3(), 60, 8, seed=62)
        assert_matches_oracle(inst, binhc_join)

    def test_dangling_tuples_still_correct(self):
        inst = add_dangling(star_instance(3, 5, 3), 15, seed=63)
        assert_matches_oracle(inst, binhc_join)

    def test_multiround_variant(self):
        inst = add_dangling(star_instance(3, 5, 3), 15, seed=64)
        assert_matches_oracle(inst, binhc_join, remove_dangling_first=True)

    def test_cartesian_products(self):
        inst = cartesian_instance([20, 10, 5])
        assert_matches_oracle(inst, binhc_join)

    def test_no_duplicate_emissions(self):
        from repro.mpc import Cluster, distribute_instance

        inst = random_instance(catalog.star_join(3), 80, 6, seed=65)
        cl = Cluster(8)
        g = cl.root_group()
        res = binhc_join(g, inst.query, distribute_instance(inst, g))
        rows = res.all_rows()
        assert len(rows) == len(set(rows))


class TestOptimality:
    def test_polylog_ratio_on_tall_flat(self):
        """Theorem 1: load within polylog of IN/p + L_instance."""
        import math

        p = 8
        inst = forest_instance(catalog.q1_tall_flat(), 3, skew=4.0)
        rep = assert_matches_oracle(inst, binhc_join, p=p)
        bound = inst.input_size / p + l_instance(inst.query, inst, p)
        polylog = math.log2(max(4, inst.input_size)) ** 2
        assert rep.load <= 10 * polylog * bound + 30 * p

    def test_dangling_hurts_one_round(self):
        """Koutris-Suciu: with dangling tuples the one-round load grows;
        removing them first (multi-round) brings it back down."""
        p = 8
        base = star_instance(3, 4, 6)
        dirty = add_dangling(base, 400, seed=66)
        one_round = assert_matches_oracle(dirty, binhc_join, p=p)
        multi_round = assert_matches_oracle(
            dirty, binhc_join, p=p, remove_dangling_first=True
        )
        # The reducer pass costs linear load; the one-round run must ship
        # dangling garbage into the hypercube grids.
        assert multi_round.load <= one_round.load * 2
