"""Tests for parallel-packing and server-allocation primitives."""

import random

import pytest

from repro.errors import AllocationError
from repro.mpc import Cluster
from repro.mpc.packing import parallel_packing, server_allocation


def spread(items, p):
    return [list(items[i::p]) for i in range(p)]


class TestParallelPacking:
    @pytest.mark.parametrize("p,n", [(1, 5), (4, 100), (8, 500), (16, 37)])
    def test_invariants(self, p, n):
        rng = random.Random(p * 1000 + n)
        items = [(f"i{i}", rng.uniform(0.001, 1.0)) for i in range(n)]
        cl = Cluster(p)
        assign, n_groups = parallel_packing(cl.root_group(), spread(items, p))
        w_of = dict(items)
        weights: dict[int, float] = {}
        seen = set()
        for part in assign:
            for iid, gid in part:
                assert iid not in seen
                seen.add(iid)
                weights[gid] = weights.get(gid, 0.0) + w_of[iid]
        # Every item assigned exactly once.
        assert seen == set(w_of)
        # Group capacity.
        assert all(w <= 1.0 + 1e-9 for w in weights.values())
        # All but at most one group at least half full (paper Section 2).
        assert sum(1 for w in weights.values() if w < 0.5) <= 1
        # Group count bound: m <= 1 + 2 * total weight.
        total = sum(w_of.values())
        assert n_groups == len(weights) <= 1 + 2 * total

    def test_all_heavy_items(self):
        items = [(i, 0.9) for i in range(20)]
        cl = Cluster(4)
        assign, n_groups = parallel_packing(cl.root_group(), spread(items, 4))
        assert n_groups == 20  # each heavy item in its own group

    def test_all_tiny_items(self):
        items = [(i, 0.01) for i in range(100)]
        cl = Cluster(4)
        _assign, n_groups = parallel_packing(cl.root_group(), spread(items, 4))
        assert n_groups <= 1 + 2 * 1.0 + 4  # ~1 unit of weight total

    def test_invalid_weight_raises(self):
        cl = Cluster(2)
        with pytest.raises(AllocationError):
            parallel_packing(cl.root_group(), [[("x", 1.5)], []])
        with pytest.raises(AllocationError):
            parallel_packing(cl.root_group(), [[("x", 0.0)], []])

    def test_empty(self):
        cl = Cluster(2)
        assign, n_groups = parallel_packing(cl.root_group(), [[], []])
        assert n_groups == 0
        assert all(not part for part in assign)

    def test_coordinator_load_is_bounded(self):
        p = 8
        items = [(i, 0.4) for i in range(800)]
        cl = Cluster(p)
        parallel_packing(cl.root_group(), spread(items, p))
        # Only O(p) coordination traffic: no data item ever moves.
        assert cl.snapshot().load <= 4 * p


class TestServerAllocation:
    def test_disjoint_contiguous_ranges(self):
        cl = Cluster(4)
        ranges = server_allocation(
            cl.root_group(), [[("a", 3)], [("b", 2)], [("c", 4)], []]
        )
        spans = sorted(ranges.values())
        assert spans[0][0] == 0
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 == s2
        assert max(e for _s, e in spans) == 3 + 2 + 4

    def test_duplicate_id_raises(self):
        cl = Cluster(2)
        with pytest.raises(AllocationError):
            server_allocation(cl.root_group(), [[("a", 1)], [("a", 2)]])

    def test_nonpositive_demand_raises(self):
        cl = Cluster(2)
        with pytest.raises(AllocationError):
            server_allocation(cl.root_group(), [[("a", 0)], []])

    def test_broadcast_cost_accounted(self):
        cl = Cluster(4)
        server_allocation(cl.root_group(), [[("a", 1)], [("b", 1)], [], []])
        assert cl.snapshot().load >= 2  # every server learns both ranges
