"""Tests for free-connex scaffolding (paper Section 6)."""

import pytest

from repro.errors import QueryError
from repro.query import catalog
from repro.query.ghd import (
    OUTPUT_EDGE,
    is_free_connex,
    is_out_hierarchical,
    output_join_tree,
    residual_output_query,
)
from repro.query.hypergraph import Hypergraph


class TestFreeConnex:
    def test_full_output_always_free_connex(self):
        for name in ["line3", "star3", "fork", "q1_tall_flat"]:
            q = catalog.CATALOG[name]
            assert is_free_connex(q, q.attributes)

    def test_empty_output_free_connex_iff_acyclic(self):
        assert is_free_connex(catalog.line3(), set())
        assert not is_free_connex(catalog.triangle(), set())

    def test_line3_prefix_outputs(self):
        q = catalog.line3()
        assert is_free_connex(q, {"A"})
        assert is_free_connex(q, {"A", "B"})
        assert is_free_connex(q, {"A", "B", "C"})
        assert is_free_connex(q, {"B", "C"})

    def test_line3_endpoints_not_free_connex(self):
        """pi_{A,D}(line3) is the classic non-free-connex projection."""
        assert not is_free_connex(catalog.line3(), {"A", "D"})

    def test_unknown_output_attr_raises(self):
        with pytest.raises(QueryError):
            is_free_connex(catalog.line3(), {"Z"})

    def test_cyclic_never_free_connex(self):
        assert not is_free_connex(catalog.triangle(), {"A"})


class TestOutputJoinTree:
    def test_virtual_root(self):
        scaffold = output_join_tree(catalog.line3(), {"A", "B"})
        assert scaffold.has_virtual_root
        assert scaffold.tree.root == OUTPUT_EDGE
        scaffold.tree.validate()

    def test_empty_output_has_real_root(self):
        scaffold = output_join_tree(catalog.line3(), set())
        assert not scaffold.has_virtual_root

    def test_non_free_connex_raises(self):
        with pytest.raises(QueryError):
            output_join_tree(catalog.line3(), {"A", "D"})

    def test_real_nodes_bottom_up_excludes_virtual(self):
        scaffold = output_join_tree(catalog.line3(), {"B"})
        nodes = scaffold.real_nodes_bottom_up()
        assert OUTPUT_EDGE not in nodes
        assert sorted(nodes) == ["R1", "R2", "R3"]

    def test_top_attr_node_output_attr_is_root(self):
        scaffold = output_join_tree(catalog.line3(), {"B"})
        assert scaffold.top_attr_node("B") == OUTPUT_EDGE

    def test_top_attr_node_private_attr(self):
        scaffold = output_join_tree(catalog.line3(), {"B"})
        assert scaffold.top_attr_node("A") == "R1"


class TestResidualQuery:
    def test_residual_edges_projected(self):
        scaffold = output_join_tree(catalog.line3(), {"A", "B", "C"})
        res = residual_output_query(scaffold)
        assert res.attributes == {"A", "B", "C"}
        assert res.is_acyclic()

    def test_residual_full_output_is_original(self):
        q = catalog.line3()
        scaffold = output_join_tree(q, q.attributes)
        res = residual_output_query(scaffold)
        assert res.attributes == q.attributes

    def test_residual_empty_output_raises(self):
        scaffold = output_join_tree(catalog.line3(), set())
        with pytest.raises(QueryError):
            residual_output_query(scaffold)


class TestOutHierarchical:
    def test_group_by_single_attr_is_out_hierarchical(self):
        assert is_out_hierarchical(catalog.line3(), {"A"})
        assert is_out_hierarchical(catalog.line3(), {"B"})

    def test_line3_prefix_ab_not_out_hierarchical(self):
        # Residual on {A, B} is the single edge {A,B} plus {B} -> r-hier.
        assert is_out_hierarchical(catalog.line3(), {"A", "B"})

    def test_full_line3_not_out_hierarchical(self):
        assert not is_out_hierarchical(catalog.line3(), catalog.line3().attributes)

    def test_star_join_everything_out_hierarchical(self):
        q = catalog.star_join(3)
        assert is_out_hierarchical(q, {"Z"})
        assert is_out_hierarchical(q, {"Z", "X1"})
        assert is_out_hierarchical(q, q.attributes)

    def test_non_free_connex_not_out_hierarchical(self):
        assert not is_out_hierarchical(catalog.line3(), {"A", "D"})

    def test_hierarchical_query_full_output(self):
        q = catalog.q2_hierarchical()
        assert is_out_hierarchical(q, q.attributes)
