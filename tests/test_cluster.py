"""Tests for the cluster ledger and load reports."""

import pytest

from repro.errors import MPCError
from repro.mpc.cluster import Cluster


class TestTally:
    def test_basic_accounting(self):
        cl = Cluster(4)
        cl.tally([0, 1, 2, 3], [5, 3, 0, 2], "phase1")
        rep = cl.snapshot()
        assert rep.load == 5
        assert rep.totals == (5, 3, 0, 2)
        assert rep.total == 10
        assert rep.steps == 1

    def test_accumulation_across_steps(self):
        cl = Cluster(2)
        cl.tally([0, 1], [4, 1], "a")
        cl.tally([0, 1], [1, 7], "b")
        rep = cl.snapshot()
        assert rep.totals == (5, 8)
        assert rep.load == 8
        assert rep.max_step_load == 7
        assert rep.by_label == {"a": 5, "b": 8}

    def test_out_of_range_server(self):
        cl = Cluster(2)
        with pytest.raises(MPCError):
            cl.tally([5], [1], "x")

    def test_negative_count(self):
        cl = Cluster(2)
        with pytest.raises(MPCError):
            cl.tally([0], [-1], "x")

    def test_length_mismatch(self):
        cl = Cluster(2)
        with pytest.raises(MPCError):
            cl.tally([0, 1], [1], "x")

    def test_reset(self):
        cl = Cluster(2)
        cl.tally([0, 1], [3, 4], "x")
        cl.reset()
        rep = cl.snapshot()
        assert rep.load == 0 and rep.steps == 0

    def test_invalid_p(self):
        with pytest.raises(MPCError):
            Cluster(0)


class TestReport:
    def test_average(self):
        cl = Cluster(4)
        cl.tally([0, 1, 2, 3], [4, 4, 4, 4], "x")
        assert cl.snapshot().average == 4.0

    def test_summary_mentions_load(self):
        cl = Cluster(2)
        cl.tally([0, 1], [9, 1], "shuffle")
        s = cl.snapshot().summary()
        assert "load=9" in s
        assert "shuffle" in s

    def test_root_group_spans_cluster(self):
        cl = Cluster(5)
        g = cl.root_group()
        assert g.size == 5
        assert g.members == ((0, 1, 2, 3, 4),)
