"""Fault tolerance: supervision, injection, deadlines, degradation.

The recovery contract under test is DESIGN.md section 8: faults may cost
wall-clock, retries, and backend round-trips — never correctness.  Every
recovered (or degraded) execution must produce outputs and LoadReports
bit-identical to the fault-free serial run, because the simulation is
deterministic and every rung of the ladder (respawn → resubmit → inline
→ serial → quarantine) recomputes the same pure functions on the same
immutable parts.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time

import pytest

from repro.core.runner import mpc_join
from repro.data.generators import random_instance
from repro.data.instance import Instance
from repro.data.relation import Relation
from repro.engine import Engine
from repro.errors import (
    DeadlineExceeded,
    EngineError,
    FaultError,
    MPCError,
    QueryQuarantined,
    ReproError,
    RetryExhausted,
    RoundTimeout,
    WorkerDied,
)
from repro.mpc.backends import (
    FaultInjectingBackend,
    MultiprocessBackend,
    available_backends,
)
from repro.mpc.cluster import Cluster
from repro.query import catalog

BINARY = "Q(A,B,C) :- R1(A,B), R2(B,C)"


def _binary_relations(seed: int = 7) -> dict[str, Relation]:
    inst = random_instance(catalog.binary_join(), 180, 20, seed=seed)
    return dict(inst.relations)


def _sort_part(part, common, idx):
    return sorted(part)


def _len_part(part, common, idx):
    return len(part)


def _slow_part(part, common, idx):
    time.sleep(common)
    return sorted(part)


class _Unpicklable:
    """Hash/order-able payload that refuses the wire."""

    def __init__(self, v: int) -> None:
        self.v = v

    def __reduce__(self):
        raise TypeError("cannot pickle this")

    def __lt__(self, other):
        return self.v < other.v

    def __eq__(self, other):
        return isinstance(other, _Unpicklable) and self.v == other.v

    def __hash__(self):
        return hash(("_Unpicklable", self.v))


@pytest.fixture
def supervised():
    backend = MultiprocessBackend(
        workers=2, round_timeout=5.0, retry_budget=3, backoff_base=0.0
    )
    yield backend
    procs = list(backend._procs)
    backend.close()
    assert all(not p.is_alive() for p in procs), "leaked worker processes"


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------

class TestTaxonomy:
    def test_faults_are_retryable_mpc_errors(self):
        for exc_type in (WorkerDied, RoundTimeout, RetryExhausted,
                         DeadlineExceeded):
            assert issubclass(exc_type, FaultError)
            assert issubclass(exc_type, MPCError)
            assert issubclass(exc_type, ReproError)

    def test_quarantine_is_an_engine_error_not_a_fault(self):
        # Fast-fails are deterministic (same answer every submission), so
        # callers retrying on FaultError must not catch them.
        assert issubclass(QueryQuarantined, EngineError)
        assert not issubclass(QueryQuarantined, FaultError)

    def test_worker_faults_carry_the_worker_index(self):
        assert WorkerDied("gone", worker=3).worker == 3
        assert RoundTimeout("hung", worker=1).worker == 1


# ----------------------------------------------------------------------
# Worker supervision in MultiprocessBackend
# ----------------------------------------------------------------------

class TestSupervision:
    def test_killed_worker_is_respawned_alone(self, supervised):
        parts = [[(i, j) for j in range(3)] for i in range(6)]
        assert supervised.map_parts(_sort_part, parts) == parts
        pids = [p.pid for p in supervised._procs]
        os.kill(pids[0], signal.SIGKILL)
        got = supervised.map_parts(_sort_part, parts)
        assert got == parts
        stats = supervised.fault_stats()
        assert stats["worker_deaths"] == 1
        assert stats["respawns"] == 1
        # Only the dead worker's process changed; the pool size held.
        new_pids = [p.pid for p in supervised._procs]
        assert len(new_pids) == 2
        assert new_pids[1] == pids[1]
        assert new_pids[0] != pids[0]

    def test_surviving_replies_are_kept(self, supervised):
        # 6 parts over 2 workers = 3 jobs each.  Killing one worker must
        # resubmit at most that worker's slice — the survivor's replies
        # (and the whole pool) are kept, not torn down.
        parts = [[(i, j) for j in range(3)] for i in range(6)]
        supervised.map_parts(_sort_part, parts)
        os.kill(supervised._procs[0].pid, signal.SIGKILL)
        assert supervised.map_parts(_sort_part, parts) == parts
        assert 0 < supervised.fault_stats()["resubmitted_jobs"] <= 3

    def test_hung_worker_times_out_and_recovers(self):
        backend = MultiprocessBackend(
            workers=2, round_timeout=0.4, retry_budget=2, backoff_base=0.0
        )
        try:
            parts = [[2, 1], [4, 3]]
            assert backend.map_parts(_sort_part, parts) == [[1, 2], [3, 4]]
            backend._conns[0].send_bytes(
                __import__("pickle").dumps(("sleep", 5.0))
            )
            t0 = time.monotonic()
            assert backend.map_parts(_sort_part, parts) == [[1, 2], [3, 4]]
            assert time.monotonic() - t0 < 3.0, "waited for the hang"
            stats = backend.fault_stats()
            assert stats["round_timeouts"] >= 1
            assert stats["respawns"] >= 1
        finally:
            backend.close()

    def test_exhausted_budget_degrades_inline(self):
        backend = MultiprocessBackend(
            workers=1, retry_budget=0, backoff_base=0.0
        )
        try:
            parts = [[2, 1], [4, 3]]
            backend.map_parts(_len_part, parts)  # start the pool
            os.kill(backend._procs[0].pid, signal.SIGKILL)
            assert backend.map_parts(_sort_part, parts) == [[1, 2], [3, 4]]
            assert backend.fault_stats()["inline_degradations"] == 2
        finally:
            backend.close()

    def test_degrade_disabled_raises_retry_exhausted(self):
        backend = MultiprocessBackend(
            workers=1, retry_budget=0, backoff_base=0.0,
            degrade_to_inline=False,
        )
        try:
            backend.map_parts(_len_part, [[1], [2]])
            os.kill(backend._procs[0].pid, signal.SIGKILL)
            with pytest.raises(RetryExhausted) as info:
                backend.map_parts(_sort_part, [[2, 1], [4, 3]])
            assert isinstance(info.value.__cause__, (WorkerDied, RoundTimeout))
        finally:
            backend.close()

    def test_respawned_worker_reseeds_memo_lazily(self, supervised):
        class Owner:
            def __init__(self):
                self._substrate = {}

        owner = Owner()
        parts = [[(3, 1)], [(9, 2)]]
        first = supervised.map_parts(_sort_part, parts, owner=owner)
        os.kill(supervised._procs[0].pid, signal.SIGKILL)
        supervised.map_parts(_len_part, [[1], [2]])  # trip the detection
        # The respawned worker's memo (and its coordinator mirror) is
        # empty; a warm call must re-ship content and still be correct.
        assert supervised.map_parts(_sort_part, parts, owner=owner) == first

    def test_close_is_idempotent_and_bounded(self):
        backend = MultiprocessBackend(workers=2)
        backend.map_parts(_len_part, [[1], [2]])
        procs = list(backend._procs)
        # Kill one first so close() exercises the escalation path too.
        os.kill(procs[0].pid, signal.SIGKILL)
        backend.close()
        backend.close()  # second close: no-op, no error
        assert all(not p.is_alive() for p in procs)
        assert backend._conns is None

    def test_no_leaked_processes_after_fault_storm(self):
        before = {p.pid for p in mp.active_children()}
        backend = MultiprocessBackend(
            workers=2, retry_budget=2, backoff_base=0.0
        )
        parts = [[(i, 0)] for i in range(4)]
        for _ in range(3):
            backend.map_parts(_sort_part, parts)
            os.kill(backend._procs[0].pid, signal.SIGKILL)
        backend.map_parts(_sort_part, parts)
        backend.close()
        leaked = {p.pid for p in mp.active_children()} - before
        assert not leaked, f"leaked worker pids: {leaked}"


# ----------------------------------------------------------------------
# Unpicklable fallbacks: inline rungs keep output AND ledger parity
# ----------------------------------------------------------------------

class TestInlineFallbackParity:
    def test_unpicklable_common_runs_inline(self, supervised):
        got = supervised.map_parts(_sort_part, [[2, 1]], common=lambda: 0)
        assert got == [[1, 2]]
        assert supervised.wire_stats()["parts_shipped"] == 0

    def test_unpicklable_parts_without_owner_run_inline(self, supervised):
        parts = [[(_Unpicklable(1), 1)], []]
        assert supervised.map_parts(_len_part, parts) == [1, 0]
        assert supervised.wire_stats()["parts_shipped"] == 0

    def test_unpicklable_parts_with_owner_run_inline(self, supervised):
        # The owner path fingerprints parts before shipping; unpicklable
        # rows must fail that step gracefully and fall inline too.
        class Owner:
            def __init__(self):
                self._substrate = {}

        parts = [[(_Unpicklable(2), 1)], [(_Unpicklable(3), 2)]]
        got = supervised.map_parts(_sort_part, parts, owner=Owner())
        assert got == parts
        assert supervised.wire_stats()["parts_shipped"] == 0

    def test_unpicklable_rows_full_join_parity_with_serial(self, supervised):
        # End to end: a join whose rows refuse the wire runs every
        # worker-local step inline, yet outputs and the full LoadReport
        # must match the serial reference bit for bit.
        q = catalog.binary_join()
        r1 = Relation(
            "R1", ("A", "B"),
            [(_Unpicklable(i % 5), i % 7) for i in range(40)],
        )
        r2 = Relation("R2", ("B", "C"), [(i % 7, i % 3) for i in range(30)])
        inst = Instance(q, {"R1": r1, "R2": r2})
        ref = mpc_join(q, inst, p=4, backend="serial")
        got = mpc_join(q, inst, p=4, backend=supervised)
        assert sorted(got.relation.all_rows()) == sorted(
            ref.relation.all_rows()
        )
        assert got.report.as_dict() == ref.report.as_dict()
        assert supervised.wire_stats()["parts_shipped"] == 0


# ----------------------------------------------------------------------
# FaultInjectingBackend ("chaos")
# ----------------------------------------------------------------------

class TestChaosBackend:
    def test_fault_schedule_is_seed_deterministic(self):
        def schedule(seed):
            backend = FaultInjectingBackend(
                inner=MultiprocessBackend(
                    workers=2, round_timeout=1.0, backoff_base=0.0
                ),
                seed=seed, rate=0.9, kinds=("kill", "corrupt", "drop"),
            )
            try:
                parts = [[(i, 0)] for i in range(4)]
                for _ in range(6):
                    assert backend.map_parts(_sort_part, parts) == parts
                return list(backend.fault_log)
            finally:
                backend.close()

        first = schedule(42)
        assert first == schedule(42)
        assert first != schedule(43)
        assert first, "rate=0.9 over 6 rounds injected nothing"

    def test_injection_is_observable_and_recovered(self):
        backend = FaultInjectingBackend(
            inner=MultiprocessBackend(
                workers=2, round_timeout=1.0, backoff_base=0.0
            ),
            seed=1, rate=1.0, kinds=("kill",),
        )
        try:
            parts = [[(i, 0)] for i in range(4)]
            for _ in range(3):
                assert backend.map_parts(_sort_part, parts) == parts
            stats = backend.fault_stats()
            assert stats["injected_kill"] == 3
            assert stats["worker_deaths"] >= 1
            assert stats["respawns"] >= 1
        finally:
            backend.close()

    def test_chaos_engine_results_match_serial(self):
        relations = _binary_relations()
        ref = Engine(p=6, backend="serial", result_cache=False)
        chaos = FaultInjectingBackend(
            inner=MultiprocessBackend(
                workers=2, round_timeout=1.0, backoff_base=0.0
            ),
            seed=2, rate=0.5,
        )
        injected = Engine(p=6, backend=chaos, result_cache=False)
        try:
            for name, rel in relations.items():
                ref.register(rel, name=name)
                injected.register(rel, name=name)
            for _ in range(3):
                want = ref.execute(BINARY)
                got = injected.execute(BINARY)
                assert sorted(got.rows()) == sorted(want.rows())
                assert got.report.as_dict() == want.report.as_dict()
        finally:
            chaos.close()

    def test_engine_metrics_see_wire_and_fault_stats_through_chaos(self):
        """Regression guard for the metrics path under injection: the
        wrapper must delegate wire_stats/fault_stats/requests to its
        inner backend, or every per-query delta the engine reports
        (wire_bytes, backend_requests, fault_events) reads as zero."""
        chaos = FaultInjectingBackend(
            inner=MultiprocessBackend(
                workers=2, round_timeout=1.0, backoff_base=0.0
            ),
            seed=3, rate=1.0, kinds=("kill",),
        )
        eng = Engine(p=4, backend=chaos, result_cache=False)
        try:
            for name, rel in _binary_relations().items():
                eng.register(rel, name=name)
            cold = eng.execute(BINARY)
            assert cold.metrics.wire_bytes > 0
            assert cold.meta["wire_bytes"] == cold.metrics.wire_bytes
            assert cold.metrics.backend_requests > 0
            # Every round drew a kill, so the inner pool's absorbed
            # faults must be visible through the wrapper's delta.
            assert cold.metrics.fault_events > 0
            stats = chaos.wire_stats()
            assert stats["bytes_shipped"] >= cold.metrics.wire_bytes
            fs = chaos.fault_stats()
            assert fs["injected_kill"] > 0 and fs["worker_deaths"] > 0
        finally:
            chaos.close()

    @pytest.mark.skipif(
        "shm" not in available_backends(), reason="no shared memory here"
    )
    def test_chaos_wraps_a_private_shm_inner(self):
        """inner="shm" builds a private SharedMemoryBackend (never the
        registry's shared instance) and stays bit-identical; closing the
        wrapper unlinks the private arena."""
        from repro.mpc.backends import get_backend
        from repro.mpc.backends.shm import SharedMemoryBackend

        chaos = FaultInjectingBackend(inner="shm", seed=4, rate=0.5)
        assert isinstance(chaos.inner, SharedMemoryBackend)
        assert chaos.inner is not get_backend("shm")
        ref = Engine(p=4, backend="serial", result_cache=False)
        eng = Engine(p=4, backend=chaos, result_cache=False)
        try:
            for name, rel in _binary_relations().items():
                ref.register(rel, name=name)
                eng.register(rel, name=name)
            for _ in range(3):
                want = ref.execute(BINARY)
                got = eng.execute(BINARY)
                assert sorted(got.rows()) == sorted(want.rows())
                assert got.report.as_dict() == want.report.as_dict()
        finally:
            chaos.close()
        # close() destroyed the private arena: nothing left to unlink.
        assert chaos.inner.wire_stats()["shm_segments"] == 0

    def test_drop_re_drives_the_round(self):
        backend = FaultInjectingBackend(
            inner=MultiprocessBackend(workers=1, backoff_base=0.0),
            seed=9, rate=1.0, kinds=("drop",),
        )
        try:
            with pytest.raises(RetryExhausted, match="dropped"):
                backend.map_parts(_sort_part, [[2, 1]])
            backend.rate = 0.5  # some rounds now dispatch
            assert backend.map_parts(_sort_part, [[2, 1]]) == [[1, 2]]
            assert backend.fault_stats()["injected_drop"] >= 1
        finally:
            backend.close()

    def test_chaos_refuses_to_wrap_itself(self):
        inner = FaultInjectingBackend(inner=MultiprocessBackend(workers=1))
        try:
            with pytest.raises(MPCError, match="wrap itself"):
                FaultInjectingBackend(inner=inner)
            with pytest.raises(MPCError, match="wrap itself"):
                FaultInjectingBackend(inner="chaos")
        finally:
            inner.close()

    def test_unknown_fault_kind_is_rejected(self):
        with pytest.raises(MPCError, match="unknown fault kinds"):
            FaultInjectingBackend(
                inner=MultiprocessBackend(workers=1), kinds=("explode",)
            ).close()

    def test_process_faults_skip_on_in_process_inner(self):
        backend = FaultInjectingBackend(
            inner="serial", seed=1, rate=1.0, kinds=("kill",)
        )
        # No pool to sabotage: the fault is recorded as skipped and the
        # round proceeds on the untouched inner backend.
        assert backend.map_parts(_sort_part, [[2, 1]]) == [[1, 2]]
        assert backend.fault_stats()["injected_skipped"] == 1


# ----------------------------------------------------------------------
# Engine resilience: deadlines, quarantine, serial degradation, budgets
# ----------------------------------------------------------------------

def _faulty_engine(**engine_kwargs):
    """An engine whose backend always fails its rounds past recovery."""
    chaos = FaultInjectingBackend(
        inner=MultiprocessBackend(
            workers=1, retry_budget=0, backoff_base=0.0,
            degrade_to_inline=False,
        ),
        seed=3, rate=1.0, kinds=("kill",),
    )
    engine = Engine(p=6, backend=chaos, **engine_kwargs)
    for name, rel in _binary_relations().items():
        engine.register(rel, name=name)
    return engine, chaos


class TestEngineResilience:
    @pytest.fixture
    def serial_ref(self):
        engine = Engine(p=6, backend="serial")
        for name, rel in _binary_relations().items():
            engine.register(rel, name=name)
        return engine.execute(BINARY)

    def test_deadline_cancels_mid_execution(self):
        engine = Engine(p=6, backend="serial")
        for name, rel in _binary_relations().items():
            engine.register(rel, name=name)
        with pytest.raises(DeadlineExceeded):
            engine.execute(BINARY, deadline=1e-9)
        stats = engine.stats()
        assert stats.deadline_misses == 1
        assert stats.failures == 1
        # A miss is not a quarantine: the same query serves normally.
        res = engine.execute(BINARY)
        assert res.ok and res.metrics.load > 0

    def test_deadline_checked_between_replay_rounds(self):
        engine = Engine(p=6, backend="serial", result_cache=False)
        for name, rel in _binary_relations().items():
            engine.register(rel, name=name)
        engine.execute(BINARY)  # cold: record the trace
        with pytest.raises(DeadlineExceeded):
            engine.execute(BINARY, deadline=1e-9)  # warm: replay path

    def test_degrade_to_serial_serves_identical_results(self, serial_ref):
        engine, chaos = _faulty_engine(degrade_to_serial=True)
        try:
            res = engine.execute(BINARY)
            assert res.metrics.degraded_serial
            assert res.meta["degraded_serial"]
            assert sorted(res.rows()) == sorted(serial_ref.rows())
            assert res.report.as_dict() == serial_ref.report.as_dict()
            assert engine.stats().degraded_serial == 1
            assert not engine.quarantined_queries()
        finally:
            chaos.close()

    def test_quarantine_fast_fails_until_data_changes(self):
        engine, chaos = _faulty_engine(degrade_to_serial=False)
        try:
            with pytest.raises(FaultError):
                engine.execute(BINARY)
            assert BINARY in engine.quarantined_queries()
            with pytest.raises(QueryQuarantined, match="RetryExhausted"):
                engine.execute(BINARY)
            stats = engine.stats()
            assert stats.quarantined == 1
            assert stats.quarantine_fast_fails == 1
            # Parole: new data versions get a fresh attempt (and with the
            # injection off, it succeeds).
            relations = _binary_relations()
            engine.register(relations["R1"], name="R1")
            chaos.rate = 0.0
            res = engine.execute(BINARY)
            assert res.ok
            assert not engine.quarantined_queries()
        finally:
            chaos.close()

    def test_batch_embeds_failures_and_keeps_alignment(self):
        engine = Engine(p=6, backend="serial")
        for name, rel in _binary_relations().items():
            engine.register(rel, name=name)
        bad = "Q(A,B) :- R1(A,B), Nope(B,C)"
        report = engine.submit_batch([BINARY, bad, BINARY])
        assert [r.ok for r in report.results] == [True, False, True]
        assert report.results[1].error is not None
        assert "Nope" in report.results[1].metrics.error
        assert report.stats.failures == 1
        assert report.stats.queries == 3

    def test_batch_budget_fast_fails_the_tail(self):
        engine = Engine(p=6, backend="serial")
        for name, rel in _binary_relations().items():
            engine.register(rel, name=name)
        report = engine.submit_batch([BINARY] * 3, budget=1e-9)
        assert [r.ok for r in report.results] == [False] * 3
        assert report.stats.deadline_misses == 3
        assert all(
            isinstance(r.error, DeadlineExceeded) for r in report.results
        )

    def test_fault_events_counted_per_query(self):
        chaos = FaultInjectingBackend(
            inner=MultiprocessBackend(
                workers=2, round_timeout=1.0, backoff_base=0.0
            ),
            seed=1, rate=1.0, kinds=("kill",),
        )
        engine = Engine(p=6, backend=chaos, result_cache=False)
        try:
            for name, rel in _binary_relations().items():
                engine.register(rel, name=name)
            res = engine.execute(BINARY)
            assert res.ok
            assert res.metrics.fault_events >= 1
            assert engine.stats().fault_events >= 1
            assert engine.backend_fault_stats()["injected_kill"] >= 1
        finally:
            chaos.close()

    def test_cluster_deadline_is_cooperative(self):
        cluster = Cluster(2, backend="serial")
        cluster.tally([0, 1], [1, 1], "warmup")
        cluster.deadline = time.monotonic() - 1.0
        with pytest.raises(DeadlineExceeded):
            cluster.tally([0, 1], [1, 1], "late")
        cluster.deadline = None
        cluster.tally([0, 1], [1, 1], "fine again")
