"""Tests for the RAM-model reference algorithms (the oracle itself)."""

import itertools

import pytest

from repro.data.generators import matching_instance, random_instance
from repro.data.instance import Instance
from repro.data.relation import Relation
from repro.query import catalog
from repro.ram.joins import anti_join, multi_join, natural_join, semi_join
from repro.ram.yannakakis import (
    group_by_count,
    join_size,
    subset_join_sizes,
    yannakakis,
)
from repro.semiring import COUNT, MIN_TROPICAL


def brute_force_join(instance: Instance) -> set:
    """Exhaustive join over all attribute assignments (tiny instances only)."""
    q = instance.query
    attrs = sorted(q.attributes)
    domains = {a: set() for a in attrs}
    for n in q.edge_names:
        rel = instance[n]
        for i, a in enumerate(rel.attrs):
            for row in rel.rows:
                domains[a].add(row[i])
    results = set()
    for combo in itertools.product(*(sorted(domains[a], key=repr) for a in attrs)):
        assignment = dict(zip(attrs, combo))
        ok = True
        for n in q.edge_names:
            rel = instance[n]
            wanted = tuple(assignment[a] for a in rel.attrs)
            if wanted not in set(rel.rows):
                ok = False
                break
        if ok:
            results.add(combo)
    return results


class TestJoins:
    def test_natural_join_basic(self):
        r1 = Relation("R1", ("A", "B"), [(1, 2), (3, 4)])
        r2 = Relation("R2", ("B", "C"), [(2, 5), (2, 6)])
        j = natural_join(r1, r2)
        assert set(j.rows) == {(1, 2, 5), (1, 2, 6)}

    def test_natural_join_no_shared_is_product(self):
        r1 = Relation("R1", ("A",), [(1,), (2,)])
        r2 = Relation("R2", ("B",), [(3,)])
        j = natural_join(r1, r2)
        assert set(j.rows) == {(1, 3), (2, 3)}

    def test_annotated_join_multiplies(self):
        r1 = Relation("R1", ("A",), [(1,)], annotations=[2], semiring=COUNT)
        r2 = Relation("R2", ("A",), [(1,)], annotations=[3], semiring=COUNT)
        j = natural_join(r1, r2)
        assert j.annotation_map()[(1,)] == 6

    def test_annotated_mixed_raises(self):
        from repro.errors import SchemaError

        r1 = Relation("R1", ("A",), [(1,)], annotations=[2], semiring=COUNT)
        r2 = Relation("R2", ("A",), [(1,)])
        with pytest.raises(SchemaError):
            natural_join(r1, r2)

    def test_semi_join(self):
        r1 = Relation("R1", ("A", "B"), [(1, 2), (3, 4)])
        r2 = Relation("R2", ("B",), [(2,)])
        assert set(semi_join(r1, r2).rows) == {(1, 2)}

    def test_semi_join_empty_filter_no_shared(self):
        r1 = Relation("R1", ("A",), [(1,)])
        r2 = Relation("R2", ("B",), [])
        assert len(semi_join(r1, r2)) == 0

    def test_anti_join(self):
        r1 = Relation("R1", ("A", "B"), [(1, 2), (3, 4)])
        r2 = Relation("R2", ("B",), [(2,)])
        assert set(anti_join(r1, r2).rows) == {(3, 4)}

    def test_multi_join_fold(self):
        inst = matching_instance(catalog.line3(), 5)
        j = multi_join([inst[n] for n in inst.query.edge_names])
        assert len(j) == 5


class TestYannakakis:
    @pytest.mark.parametrize(
        "name", ["binary", "line3", "star3", "fork", "q2_hierarchical"]
    )
    def test_matches_brute_force(self, name):
        q = catalog.CATALOG[name]
        inst = random_instance(q, 12, 3, seed=11)
        assert set(yannakakis(inst).rows) == brute_force_join(inst)

    def test_annotated_results(self):
        q = catalog.binary_join()
        inst = Instance(
            q,
            {
                "R1": Relation(
                    "R1", ("A", "B"), [(1, 2)], annotations=[5.0],
                    semiring=MIN_TROPICAL,
                ),
                "R2": Relation(
                    "R2", ("B", "C"), [(2, 3)], annotations=[7.0],
                    semiring=MIN_TROPICAL,
                ),
            },
        )
        res = yannakakis(inst)
        assert res.annotation_map()[(1, 2, 3)] == 12.0


class TestJoinSize:
    @pytest.mark.parametrize("name", ["line3", "fork", "star3", "line5", "broom"])
    def test_counts_match_materialization(self, name):
        q = catalog.CATALOG[name]
        inst = random_instance(q, 25, 4, seed=13)
        assert join_size(inst) == len(yannakakis(inst).rows)

    def test_zero_output(self):
        q = catalog.binary_join()
        inst = Instance(
            q,
            {
                "R1": Relation("R1", ("A", "B"), [(1, 2)]),
                "R2": Relation("R2", ("B", "C"), [(9, 9)]),
            },
        )
        assert join_size(inst) == 0

    def test_counts_with_dangling(self):
        from repro.data.generators import add_dangling

        base = matching_instance(catalog.line3(), 8)
        assert join_size(add_dangling(base, 5, seed=1)) == 8


class TestSubsetSizes:
    def test_matching_line3(self):
        inst = matching_instance(catalog.line3(), 9)
        sizes = subset_join_sizes(inst)
        assert all(v == 9 for v in sizes.values())
        assert len(sizes) == 7  # 2^3 - 1 subsets

    def test_full_subset_is_out(self):
        inst = random_instance(catalog.line3(), 20, 4, seed=3)
        sizes = subset_join_sizes(inst)
        full = frozenset(inst.query.edge_names)
        assert sizes[full] == join_size(inst.without_dangling())

    def test_monotone_under_union_of_attrs(self):
        """Subsets covering more attributes have at least as many combos."""
        inst = random_instance(catalog.line3(), 20, 4, seed=4)
        sizes = subset_join_sizes(inst)
        assert sizes[frozenset({"R1", "R2"})] >= sizes[frozenset({"R1"})]


class TestGroupByCount:
    def test_matches_materialization(self):
        q = catalog.line3()
        inst = random_instance(q, 30, 4, seed=5)
        full = yannakakis(inst)
        pos = full.positions(("B",))
        expected = {}
        for row in full.rows:
            k = (row[pos[0]],)
            expected[k] = expected.get(k, 0) + 1
        assert group_by_count(inst, ("B",)) == expected

    def test_group_attrs_not_in_root(self):
        """Falls back to materialization when no relation holds all attrs."""
        q = catalog.line3()
        inst = matching_instance(q, 6)
        res = group_by_count(inst, ("A", "D"))
        assert sum(res.values()) == 6
