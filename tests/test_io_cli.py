"""Tests for CSV I/O and the command-line interface."""

import pytest

from repro.cli import main
from repro.data.generators import matching_instance, random_instance
from repro.data.relation import Relation
from repro.errors import SchemaError
from repro.io import (
    infer_query,
    read_instance_dir,
    read_relation_csv,
    write_instance_dir,
    write_relation_csv,
)
from repro.query import catalog
from repro.semiring import COUNT


class TestRelationCsv:
    def test_round_trip(self, tmp_path):
        rel = Relation("R", ("A", "B"), [("x", "1"), ("y", "2")])
        path = tmp_path / "R.csv"
        write_relation_csv(rel, path)
        back = read_relation_csv(path)
        assert back.attrs == ("A", "B")
        assert set(back.rows) == set(rel.rows)
        assert back.name == "R"

    def test_annotated_round_trip(self, tmp_path):
        rel = Relation(
            "R", ("A",), [("x",), ("y",)], annotations=[2.0, 3.0], semiring=COUNT
        )
        path = tmp_path / "R.csv"
        write_relation_csv(rel, path)
        back = read_relation_csv(path, semiring=COUNT)
        assert back.annotated
        assert back.annotation_map() == {("x",): 2.0, ("y",): 3.0}

    def test_weight_column_ignored_without_semiring(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("A,__weight__\nx,5\n")
        back = read_relation_csv(path)
        assert not back.annotated
        assert back.rows == (("x",),)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            read_relation_csv(path)

    def test_ragged_row_raises(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("A,B\nx\n")
        with pytest.raises(SchemaError):
            read_relation_csv(path)


class TestInstanceDir:
    def test_round_trip(self, tmp_path):
        inst = matching_instance(catalog.line3(), 10)
        write_instance_dir(inst, tmp_path / "data")
        back = read_instance_dir(tmp_path / "data")
        assert set(back.query.edge_names) == set(inst.query.edge_names)
        assert back.input_size == inst.input_size
        # CSV stringifies values, so compare sizes + join sizes.
        assert back.output_size() == inst.output_size()

    def test_infer_query(self, tmp_path):
        inst = matching_instance(catalog.fork_join(), 4)
        write_instance_dir(inst, tmp_path / "d")
        q = infer_query(tmp_path / "d")
        assert q == inst.query or set(q.edge_names) == set(inst.query.edge_names)

    def test_empty_dir_raises(self, tmp_path):
        with pytest.raises(SchemaError):
            read_instance_dir(tmp_path)


class TestCli:
    @pytest.fixture
    def data_dir(self, tmp_path):
        inst = random_instance(catalog.line3(), 60, 8, seed=121)
        write_instance_dir(inst, tmp_path / "data")
        return str(tmp_path / "data")

    def test_classify(self, data_dir, capsys):
        assert main(["classify", data_dir]) == 0
        out = capsys.readouterr().out
        assert "ACYCLIC" in out
        assert "minimal 3-path" in out

    def test_join(self, data_dir, capsys, tmp_path):
        out_file = str(tmp_path / "results.csv")
        assert main(["join", data_dir, "-p", "4", "--validate", "--out", out_file]) == 0
        out = capsys.readouterr().out
        assert "algorithm: line3" in out
        back = read_relation_csv(out_file)
        assert len(back) > 0

    def test_count(self, data_dir, capsys):
        assert main(["count", data_dir, "-p", "4"]) == 0
        assert "|Q(R)|" in capsys.readouterr().out

    def test_aggregate_total(self, data_dir, capsys):
        assert main(["aggregate", data_dir, "-p", "4"]) == 0
        assert "total aggregate" in capsys.readouterr().out

    def test_aggregate_group_by(self, data_dir, capsys):
        assert main(["aggregate", data_dir, "-p", "4", "--group-by", "A"]) == 0
        assert "groups" in capsys.readouterr().out

    def test_plan(self, data_dir, capsys):
        assert main(["plan", data_dir, "-p", "4"]) == 0
        out = capsys.readouterr().out
        assert "best order" in out

    def test_cli_agreement_with_oracle(self, tmp_path, capsys):
        """count via CLI == RAM oracle on a fresh instance."""
        from repro.ram.yannakakis import join_size

        inst = random_instance(catalog.star_join(3), 30, 5, seed=122)
        write_instance_dir(inst, tmp_path / "d")
        main(["count", str(tmp_path / "d"), "-p", "4"])
        out = capsys.readouterr().out
        assert f"|Q(R)| = {join_size(inst)}" in out
