"""Tests for the output-optimal binary join."""

import math

import pytest

from repro.data.generators import binary_out_controlled, matching_instance, random_instance
from repro.data.instance import Instance
from repro.data.relation import Relation
from repro.mpc import Cluster, distribute_instance
from repro.core.binary_join import binary_join
from repro.query import catalog
from tests.conftest import oracle_rows


def run_binary(inst, p=8):
    cl = Cluster(p)
    g = cl.root_group()
    rels = distribute_instance(inst, g)
    res = binary_join(g, rels["R1"], rels["R2"])
    # Canonicalize column order for oracle comparison.
    order = tuple(sorted(res.attrs))
    idx = [res.attrs.index(a) for a in order]
    got = {tuple(r[i] for i in idx) for r in res.all_rows()}
    return got, cl.snapshot()


class TestCorrectness:
    def test_matching(self):
        inst = matching_instance(catalog.binary_join(), 50)
        got, _ = run_binary(inst)
        assert got == oracle_rows(inst)

    @pytest.mark.parametrize("seed", range(5))
    def test_random(self, seed):
        inst = random_instance(catalog.binary_join(), 150, 12, seed=seed)
        got, _ = run_binary(inst)
        assert got == oracle_rows(inst)

    def test_controlled_output(self):
        inst = binary_out_controlled(500, 4000)
        got, _ = run_binary(inst)
        assert got == oracle_rows(inst)

    def test_empty_result(self):
        q = catalog.binary_join()
        inst = Instance(
            q,
            {
                "R1": Relation("R1", ("A", "B"), [(1, 2)]),
                "R2": Relation("R2", ("B", "C"), [(3, 4)]),
            },
        )
        got, rep = run_binary(inst)
        assert got == set()

    def test_single_heavy_key(self):
        """One join value produces the entire (quadratic) output."""
        q = catalog.binary_join()
        inst = Instance(
            q,
            {
                "R1": Relation("R1", ("A", "B"), [(i, "hot") for i in range(80)]),
                "R2": Relation("R2", ("B", "C"), [("hot", i) for i in range(80)]),
            },
        )
        got, rep = run_binary(inst)
        assert got == oracle_rows(inst)
        assert len(got) == 6400

    def test_cartesian_fallback(self):
        q = catalog.cartesian_product(2)
        inst = Instance(
            q,
            {
                "R1": Relation("R1", ("X1",), [(i,) for i in range(10)]),
                "R2": Relation("R2", ("X2",), [(j,) for j in range(7)]),
            },
        )
        cl = Cluster(4)
        g = cl.root_group()
        rels = distribute_instance(inst, g)
        res = binary_join(g, rels["R1"], rels["R2"])
        assert res.total_size() == 70


class TestLoadBounds:
    @pytest.mark.parametrize("out_target", [1000, 10000, 40000])
    def test_load_tracks_bound(self, out_target):
        """Load stays within a constant of IN/p + sqrt(OUT/p) (skew-free)."""
        p = 16
        inst = binary_out_controlled(2000, out_target)
        got, rep = run_binary(inst, p=p)
        out = len(got)
        bound = inst.input_size / p + math.sqrt(out / p)
        assert rep.load <= 12 * bound + 30 * p

    def test_skewed_instance_still_bounded(self):
        p = 16
        q = catalog.binary_join()
        rows1 = [(i, "hot") for i in range(500)] + [
            (i, f"b{i % 50}") for i in range(500)
        ]
        rows2 = [("hot", i) for i in range(500)] + [
            (f"b{i % 50}", i) for i in range(500)
        ]
        inst = Instance(
            q,
            {
                "R1": Relation("R1", ("A", "B"), rows1),
                "R2": Relation("R2", ("B", "C"), rows2),
            },
        )
        got, rep = run_binary(inst, p=p)
        assert got == oracle_rows(inst)
        bound = inst.input_size / p + math.sqrt(len(got) / p)
        assert rep.load <= 12 * bound + 30 * p

    def test_no_duplicate_emissions(self):
        inst = binary_out_controlled(600, 5000)
        cl = Cluster(8)
        g = cl.root_group()
        rels = distribute_instance(inst, g)
        res = binary_join(g, rels["R1"], rels["R2"])
        rows = res.all_rows()
        assert len(rows) == len(set(rows))
