"""Tests for minimal paths and the Lemma 2 dichotomy."""

import pytest

from repro.query import catalog
from repro.query.classify import is_acyclic, is_r_hierarchical
from repro.query.hypergraph import Hypergraph
from repro.query.paths import (
    covering_edge,
    has_minimal_path_of_length_3,
    is_minimal_path,
    minimal_path_of_length_3,
)


class TestCoveringEdge:
    def test_found(self):
        assert covering_edge(catalog.line3(), {"A", "B"}) == "R1"

    def test_not_found(self):
        assert covering_edge(catalog.line3(), {"A", "C"}) is None

    def test_single_attr(self):
        assert covering_edge(catalog.line3(), {"C"}) in ("R2", "R3")


class TestMinimalPath:
    def test_line3_canonical_path(self):
        q = catalog.line3()
        path = minimal_path_of_length_3(q)
        assert path is not None
        assert is_minimal_path(q, path)
        assert set(path) == {"A", "B", "C", "D"}

    def test_witness_has_no_skipping_edges(self):
        q = catalog.fork_join()
        path = minimal_path_of_length_3(q)
        assert path is not None
        x1, x2, x3, x4 = path
        assert covering_edge(q, {x1, x3}) is None
        assert covering_edge(q, {x1, x4}) is None
        assert covering_edge(q, {x2, x4}) is None

    def test_is_minimal_path_rejects_duplicates(self):
        q = catalog.line3()
        assert not is_minimal_path(q, ("A", "B", "A", "D"))

    def test_is_minimal_path_rejects_non_path(self):
        q = catalog.line3()
        assert not is_minimal_path(q, ("A", "C", "B", "D"))

    def test_short_query_has_no_path(self):
        assert minimal_path_of_length_3(catalog.binary_join()) is None


class TestLemma2:
    """Acyclic join is non-r-hierarchical iff it has a minimal 3-path."""

    @pytest.mark.parametrize("name", sorted(catalog.CATALOG))
    def test_dichotomy_on_catalog(self, name):
        q = catalog.CATALOG[name]
        if not is_acyclic(q):
            pytest.skip("Lemma 2 applies to acyclic joins")
        assert has_minimal_path_of_length_3(q) == (not is_r_hierarchical(q))

    def test_dichotomy_on_constructed_queries(self):
        cases = [
            Hypergraph({"R1": ("A", "B", "C"), "R2": ("B", "C", "D"), "R3": ("C", "D", "E")}),
            Hypergraph({"R1": ("A", "B"), "R2": ("A", "C"), "R3": ("A", "D")}),
            Hypergraph({"R1": ("A", "B"), "R2": ("B", "C"), "R3": ("B", "D")}),
            Hypergraph({"R0": ("A", "B", "C"), "R1": ("A", "B"), "R2": ("B", "C")}),
        ]
        for q in cases:
            if not is_acyclic(q):
                continue
            assert has_minimal_path_of_length_3(q) == (not is_r_hierarchical(q)), q

    def test_line4_contains_multiple_witnesses(self):
        q = catalog.line_join(4)
        path = minimal_path_of_length_3(q)
        assert path is not None
        # Any window of 4 consecutive line attributes is a witness.
        assert is_minimal_path(q, ("X0", "X1", "X2", "X3"))
        assert is_minimal_path(q, ("X1", "X2", "X3", "X4"))
