"""Tests for the public dispatch API."""

import pytest

from repro.core.runner import ALGORITHMS, auto_algorithm, mpc_join
from repro.data.generators import (
    line_trap_instance,
    matching_instance,
    random_instance,
    star_instance,
)
from repro.errors import QueryError
from repro.query import catalog


class TestAutoDispatch:
    def test_r_hierarchical_gets_instance_optimal(self):
        assert auto_algorithm(catalog.star_join(3)) == "rhierarchical"
        assert auto_algorithm(catalog.q1_tall_flat()) == "rhierarchical"
        assert auto_algorithm(catalog.q2_r_hierarchical()) == "rhierarchical"

    def test_line3_gets_specialized(self):
        assert auto_algorithm(catalog.line3()) == "line3"

    def test_general_acyclic(self):
        assert auto_algorithm(catalog.fork_join()) == "acyclic"
        assert auto_algorithm(catalog.line_join(4)) == "acyclic"

    def test_triangle_gets_worst_case(self):
        assert auto_algorithm(catalog.triangle()) == "wc-triangle"


class TestMpcJoin:
    @pytest.mark.parametrize(
        "algorithm", ["auto", "yannakakis", "line3", "acyclic", "binhc", "wc-line3"]
    )
    def test_all_algorithms_on_line3(self, algorithm):
        inst = line_trap_instance(3, 600, 3000)
        res = mpc_join(inst.query, inst, p=8, algorithm=algorithm, validate=True)
        assert res.meta["algorithm"] != "auto"
        assert res.output_size == inst.output_size()

    def test_unknown_algorithm_rejected(self):
        inst = matching_instance(catalog.line3(), 5)
        with pytest.raises(QueryError):
            mpc_join(inst.query, inst, p=4, algorithm="quantum")

    def test_meta_fields(self):
        inst = star_instance(3, 4, 3)
        res = mpc_join(inst.query, inst, p=8)
        assert res.meta["p"] == 8
        assert res.meta["in_size"] == inst.input_size
        assert res.meta["algorithm"] == "rhierarchical"

    def test_validate_catches_mismatch(self):
        """The validation hook runs the oracle (sanity-check the checker)."""
        inst = random_instance(catalog.fork_join(), 40, 5, seed=81)
        res = mpc_join(inst.query, inst, p=4, validate=True)
        assert res.output_size == inst.output_size()

    def test_report_labels_present(self):
        inst = matching_instance(catalog.line3(), 40)
        res = mpc_join(inst.query, inst, p=4, algorithm="line3")
        assert res.report.steps > 0
        assert any("line3" in k for k in res.report.by_label)

    def test_p1_degenerate(self):
        inst = matching_instance(catalog.line3(), 20)
        res = mpc_join(inst.query, inst, p=1, validate=True)
        assert res.output_size == 20

    def test_rows_and_rowset(self):
        inst = matching_instance(catalog.binary_join(), 10)
        res = mpc_join(inst.query, inst, p=4)
        assert len(res.rows()) == 10
        assert len(res.row_set()) == 10

    def test_algorithms_tuple_stable(self):
        assert "auto" in ALGORITHMS and "rhierarchical" in ALGORITHMS
