"""Engine vs one-shot parity on the conformance grid, under every backend.

The engine's central invariant: replaying a prepared plan on the warm
cluster (reused distributed relations, warm substrate caches, ledger
reset per query) must be observationally identical to the one-shot entry
points — **bit-identical outputs** (same rows, same order, same per-server
parts) and a **bit-identical LoadReport** (every field of ``as_dict()``).

Each cell is checked cold (first execution, plan compile) *and* warm
(second execution, cache hit) — the warm pass exercises the substrate's
sorted-run/encoding caches on the reused relations, guarding the exact
ledger-replay contract across queries.
"""

from __future__ import annotations

import pytest

from repro.core.runner import mpc_join, mpc_join_aggregate, mpc_join_project
from repro.data.generators import (
    add_dangling,
    forest_instance,
    line_trap_instance,
    random_instance,
    star_instance,
)
from repro.engine import Engine, parse_query
from repro.mpc.backends import available_backends
from repro.query import catalog
from repro.semiring import COUNT

BACKENDS = available_backends()


def _query_text(instance, head: str) -> str:
    """Datalog text whose positional bindings reproduce ``instance``."""
    body = ", ".join(
        f"{name}({','.join(rel.attrs)})"
        for name, rel in instance.relations.items()
    )
    return f"{head} :- {body}"


def _full_head(instance) -> str:
    attrs = sorted(instance.query.attributes)
    return f"Q({','.join(attrs)})"


# Each cell: name -> (instance factory, head builder, expected kind)
def _binary_uniform():
    q = catalog.binary_join()
    return random_instance(q, 240, 25, seed=7)


def _line3_trap():
    return line_trap_instance(3, 300, 1500, doubled=True)


def _fork_uniform():
    return random_instance(catalog.fork_join(), 160, 8, seed=17)


def _rhier_skewed():
    return forest_instance(catalog.q2_hierarchical(), fanout=2, skew=3.0)


def _star_dangling():
    return add_dangling(star_instance(3, 4, 4), 40, seed=19)


CELLS = {
    "binary/uniform/full": (_binary_uniform, _full_head, "join"),
    "line3/trap/full": (_line3_trap, _full_head, "join"),
    "acyclic/uniform/full": (_fork_uniform, _full_head, "join"),
    "rhier/skewed/full": (_rhier_skewed, _full_head, "join"),
    "star/dangling/full": (_star_dangling, _full_head, "join"),
    "line3/uniform/project": (
        lambda: random_instance(catalog.line3(), 200, 10, seed=31),
        lambda inst: "Q(A,B)",
        "project",
    ),
    "line3/uniform/groupby-count": (
        lambda: random_instance(catalog.line3(), 200, 10, seed=23),
        lambda inst: "Q(B; count)",
        "aggregate",
    ),
    "binary/uniform/total-count": (
        lambda: random_instance(catalog.binary_join(), 260, 18, seed=29),
        lambda inst: "Q(; count)",
        "aggregate",
    ),
}

P = 6


def _engine_for(instance, backend: str, result_cache: bool = False) -> Engine:
    engine = Engine(p=P, backend=backend, result_cache=result_cache)
    for rel in instance.relations.values():
        engine.register(rel)
    return engine


def _one_shot(parsed, instance, algorithm, plan, backend):
    """The one-shot entry point matching a parsed query's kind."""
    if parsed.kind == "join":
        res = mpc_join(
            parsed.query, instance, p=P, algorithm=algorithm,
            plan=plan, backend=backend,
        )
        payload = {
            "attrs": res.relation.attrs,
            "parts": [list(part) for part in res.relation.parts],
        }
        return payload, res.report.as_dict()
    if parsed.kind == "project":
        res = mpc_join_project(
            parsed.query, parsed.output_attrs, instance, p=P,
            algorithm=algorithm, backend=backend,
        )
    else:
        annotated = instance.with_uniform_annotations(COUNT)
        res = mpc_join_aggregate(
            parsed.query, parsed.output_attrs, annotated, COUNT, p=P,
            algorithm=algorithm, backend=backend,
        )
    payload = {
        "scalar": res.scalar,
        "rows": None if res.relation is None else list(res.relation.rows),
        "annotations": (
            None if res.relation is None
            else list(res.relation.annotations or ())
        ),
    }
    return payload, res.report.as_dict()


def _engine_payload(res):
    if res.metrics.kind == "join":
        return {
            "attrs": res.relation.attrs,
            "parts": [list(part) for part in res.relation.parts],
        }
    return {
        "scalar": res.scalar,
        "rows": None if res.relation is None else list(res.relation.rows),
        "annotations": (
            None if res.relation is None
            else list(res.relation.annotations or ())
        ),
    }


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("cell", sorted(CELLS), ids=sorted(CELLS))
def test_engine_matches_one_shot(cell, backend):
    make, head, kind = CELLS[cell]
    instance = make()
    engine = _engine_for(instance, backend)
    text = _query_text(instance, head(instance))
    parsed = parse_query(text)
    assert parsed.kind == kind

    cold = engine.execute(text)
    bound = engine.instance_for(parsed)
    # The engine's positional rebinding must reproduce the generator's data.
    assert {n: r for n, r in bound.relations.items()} == instance.relations

    ref_payload, ref_ledger = _one_shot(
        parsed, bound, cold.prepared.algorithm,
        cold.prepared.plan, backend,
    )
    assert _engine_payload(cold) == ref_payload, f"cold outputs differ: {cell}"
    assert cold.report.as_dict() == ref_ledger, f"cold ledger differs: {cell}"

    # Warm replay (result cache off): the algorithms re-run over the warm
    # substrate caches and must reproduce outputs and ledger exactly.
    warm = engine.execute(text)
    assert warm.metrics.cache_hit and not warm.metrics.result_cached
    assert _engine_payload(warm) == ref_payload, f"warm outputs differ: {cell}"
    assert warm.report.as_dict() == ref_ledger, f"warm ledger differs: {cell}"

    # Cached serving (result cache on): the recorded execution is replayed
    # and must equal the same one-shot reference bit for bit.
    serving = _engine_for(instance, backend, result_cache=True)
    serving.execute(text)
    hit = serving.execute(text)
    assert hit.metrics.result_cached
    assert _engine_payload(hit) == ref_payload, f"cached outputs differ: {cell}"
    assert hit.report.as_dict() == ref_ledger, f"cached ledger differs: {cell}"


@pytest.mark.parametrize("backend", BACKENDS)
def test_prepared_yannakakis_plan_replays_identically(backend):
    instance = _fork_uniform()
    engine = _engine_for(instance, backend)
    text = _query_text(instance, _full_head(instance))
    parsed = parse_query(text)
    entry = engine.prepare(text, algorithm="yannakakis")
    res = engine.execute(text, algorithm="yannakakis")
    one = mpc_join(
        parsed.query, engine.instance_for(parsed), p=P,
        algorithm="yannakakis", plan=entry.plan, backend=backend,
    )
    assert res.relation.attrs == one.relation.attrs
    assert res.relation.parts == one.relation.parts
    assert res.report.as_dict() == one.report.as_dict()


@pytest.mark.parametrize("backend", BACKENDS)
def test_ledger_isolated_between_queries(backend):
    """A query's report reflects only its own execution on the warm cluster."""
    instance = _binary_uniform()
    engine = _engine_for(instance, backend)
    text = _query_text(instance, _full_head(instance))
    first = engine.execute(text)
    for _ in range(3):
        again = engine.execute(text)
        assert not again.metrics.result_cached
        assert again.report.as_dict() == first.report.as_dict()
