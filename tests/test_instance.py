"""Tests for instances and their statistics."""

import pytest

from repro.data.generators import add_dangling, matching_instance, random_instance
from repro.data.instance import Instance
from repro.data.relation import Relation
from repro.errors import InstanceError
from repro.query import catalog
from repro.semiring import COUNT


class TestConstruction:
    def test_missing_relation_raises(self):
        q = catalog.line3()
        with pytest.raises(InstanceError):
            Instance(q, {"R1": Relation("R1", ("A", "B"), [])})

    def test_extra_relation_raises(self):
        q = catalog.binary_join()
        rels = {
            "R1": Relation("R1", ("A", "B"), []),
            "R2": Relation("R2", ("B", "C"), []),
            "R3": Relation("R3", ("C", "D"), []),
        }
        with pytest.raises(InstanceError):
            Instance(q, rels)

    def test_schema_mismatch_raises(self):
        q = catalog.binary_join()
        rels = {
            "R1": Relation("R1", ("A", "X"), []),
            "R2": Relation("R2", ("B", "C"), []),
        }
        with pytest.raises(InstanceError):
            Instance(q, rels)

    def test_input_size(self):
        inst = matching_instance(catalog.line3(), 10)
        assert inst.input_size == 30

    def test_getitem_unknown_raises(self):
        inst = matching_instance(catalog.line3(), 3)
        with pytest.raises(InstanceError):
            inst["R9"]


class TestDangling:
    def test_matching_instance_dangling_free(self):
        inst = matching_instance(catalog.line3(), 10)
        assert inst.is_dangling_free()

    def test_added_dangling_detected(self):
        inst = add_dangling(matching_instance(catalog.line3(), 10), 5, seed=1)
        assert not inst.is_dangling_free()

    def test_without_dangling_restores(self):
        base = matching_instance(catalog.line3(), 10)
        dirty = add_dangling(base, 5, seed=1)
        clean = dirty.without_dangling()
        assert clean.input_size == base.input_size
        assert clean.output_size() == base.output_size()

    def test_without_dangling_preserves_output(self):
        inst = random_instance(catalog.fork_join(), 50, 5, seed=2)
        clean = inst.without_dangling()
        assert clean.output_size() == inst.output_size()

    def test_empty_relation_kills_everything(self):
        q = catalog.binary_join()
        inst = Instance(
            q,
            {
                "R1": Relation("R1", ("A", "B"), [(1, 2)]),
                "R2": Relation("R2", ("B", "C"), []),
            },
        )
        clean = inst.without_dangling()
        assert clean.input_size == 0


class TestStatistics:
    def test_output_size_cached(self):
        inst = matching_instance(catalog.line3(), 7)
        assert inst.output_size() == 7
        assert inst.output_size() == 7  # cached path

    def test_degrees(self):
        inst = matching_instance(catalog.binary_join(), 5)
        assert inst.max_degree("R1", ("B",)) == 1

    def test_with_uniform_annotations(self):
        inst = matching_instance(catalog.line3(), 4).with_uniform_annotations(COUNT)
        assert inst.annotated
        assert all(r.annotated for r in inst.relations.values())

    def test_subset(self):
        inst = matching_instance(catalog.line3(), 4)
        sub = inst.subset(["R1", "R2"])
        assert set(sub.query.edge_names) == {"R1", "R2"}
        assert sub.input_size == 8
