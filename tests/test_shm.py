"""Shared-memory backend: frame format, arena, transport, lifecycle."""

from __future__ import annotations

import glob
import os
import pickle
import signal
import time

import pytest

from repro.data.columns import (
    ColumnBlock,
    pack_frame,
    unpack_frame,
    unpack_frame_block,
)
from repro.data.relation import Relation
from repro.engine import Engine
from repro.mpc import Cluster
from repro.mpc.backends import SerialBackend, shm_supported
from repro.mpc.backends.shm import (
    SharedMemoryBackend,
    _ShmArena,
    read_descriptor,
)

pytestmark = pytest.mark.skipif(
    not shm_supported(), reason="no usable shared memory on this platform"
)


# ----------------------------------------------------------------------
# Module-level map_parts functions (workers import them by name).
# ----------------------------------------------------------------------

def _sort_part(part, common, idx):  # noqa: ARG001
    return sorted(part)


def _count_part(part, common, idx):  # noqa: ARG001
    return len(part)


def _tag_part(part, common, idx):
    return (idx, common, sorted(part))


class _Unpicklable:
    def __reduce__(self):
        raise TypeError("cannot pickle this")


class _Owner:
    """Minimal fingerprintable owner (what DistRelation provides)."""

    def __init__(self, parts):
        self.parts = parts
        self._substrate: dict = {}


@pytest.fixture
def shm_backend():
    backend = SharedMemoryBackend(workers=2)
    yield backend
    backend.close()


def _leaked_segments() -> list[str]:
    return glob.glob(f"/dev/shm/repro-{os.getpid()}-*")


# ----------------------------------------------------------------------
# Frame format
# ----------------------------------------------------------------------

FRAME_CASES = [
    [(1, 2), (3, 4), (5, 6)],
    [(i, -i * 1000, i % 3) for i in range(100)],
    [("alpha", 1), ("beta", 2), ("alpha", 3)],
    [(1.5, "x"), (2.5, "y")],
    [(None, frozenset({1})), (True, frozenset())],
    [],
    [(), (), ()],
]


class TestFrameFormat:
    @pytest.mark.parametrize("rows", FRAME_CASES)
    def test_round_trip_from_rows(self, rows):
        payload = pack_frame(rows)
        assert unpack_frame(memoryview(payload)) == rows

    @pytest.mark.parametrize("rows", FRAME_CASES)
    def test_round_trip_from_block(self, rows):
        arity = len(rows[0]) if rows else 0
        block = ColumnBlock.from_rows(rows, arity)
        payload = pack_frame((), block)
        assert unpack_frame(memoryview(payload)) == rows
        back = unpack_frame_block(memoryview(payload))
        assert back.rows() == rows

    def test_numeric_decode_is_zero_copy(self):
        rows = [(i, i * 7) for i in range(50)]
        payload = pack_frame(rows)
        block = unpack_frame_block(memoryview(payload))
        for col in block.columns:
            if col.kind in ("i", "d"):
                assert isinstance(col.data, memoryview)

    def test_non_tuple_rows_use_pickled_fallback(self):
        part = [[1, 2], [3]]  # lists, not tuples: no columnar form
        payload = pack_frame(part)
        assert unpack_frame(memoryview(payload)) == part

    def test_ragged_rows_use_pickled_fallback(self):
        part = [(1, 2), (3,)]
        payload = pack_frame(part)
        assert unpack_frame(memoryview(payload)) == part


# ----------------------------------------------------------------------
# Arena
# ----------------------------------------------------------------------

class TestArena:
    def test_intern_is_idempotent_per_content(self):
        arena = _ShmArena()
        try:
            d1 = arena.intern(b"fp1", b"payload-one", "frame")
            d2 = arena.intern(b"fp1", b"other-bytes-ignored", "frame")
            assert d1 == d2
            assert arena.entries == 1
            assert arena.bytes_interned == len(b"payload-one")
        finally:
            arena.destroy()

    def test_fmt_is_part_of_the_key(self):
        arena = _ShmArena()
        try:
            d1 = arena.intern(b"fp", b"x" * 8, "frame")
            d2 = arena.intern(b"fp", b"y" * 8, "bytes")
            assert d1 != d2 and arena.entries == 2
        finally:
            arena.destroy()

    def test_offsets_are_16_aligned_and_payloads_exact(self):
        arena = _ShmArena(segment_bytes=256)
        try:
            payloads = [bytes([i + 1]) * (i + 1) for i in range(10)]
            descs = [
                arena.intern(bytes([i]), p, "bytes")
                for i, p in enumerate(payloads)
            ]
            for desc, p in zip(descs, payloads):
                tag, _name, offset, length, _fmt = desc
                assert tag == "shm" and offset % 16 == 0 and length == len(p)
                assert bytes(read_descriptor(desc)) == p
        finally:
            arena.destroy()

    def test_oversized_payload_gets_own_segment(self):
        arena = _ShmArena(segment_bytes=64)
        try:
            arena.intern(b"small", b"s" * 8, "bytes")
            arena.intern(b"large", b"L" * 1024, "bytes")
            assert arena.segments == 2
        finally:
            arena.destroy()

    def test_destroy_unlinks_segments_and_is_idempotent(self):
        # Diff against pre-existing segments: other live backends in this
        # process (the shared registry instance, other fixtures) may hold
        # arenas of their own.
        before = set(_leaked_segments())
        arena = _ShmArena()
        arena.intern(b"fp", b"payload", "bytes")
        created = set(_leaked_segments()) - before
        assert created
        arena.destroy()
        assert not (set(_leaked_segments()) & created)
        arena.destroy()  # second call is a no-op


# ----------------------------------------------------------------------
# Transport semantics
# ----------------------------------------------------------------------

PARTS = [[(1, 2), (3, 4)], [(5, 6)], [], [(7, 8), (9, 10), (11, 12)]]


class TestSharedMemoryTransport:
    def test_matches_serial(self, shm_backend):
        owner = _Owner(PARTS)
        got = shm_backend.map_parts(_tag_part, PARTS, common="c", owner=owner)
        assert got == SerialBackend().map_parts(_tag_part, PARTS, common="c")

    def test_content_ships_once_across_functions(self, shm_backend):
        """The base backend re-ships parts per (fn, common) memo key; the
        arena is keyed by content alone, so a new function over the same
        parts must ship zero new part bytes."""
        owner = _Owner(PARTS)
        shm_backend.map_parts(_sort_part, PARTS, owner=owner)
        stats = shm_backend.wire_stats()
        assert stats["shm_entries"] > 0
        shipped_after_first = stats["bytes_shipped"]
        shm_backend.map_parts(_count_part, PARTS, owner=owner)
        stats = shm_backend.wire_stats()
        assert stats["bytes_shipped"] == shipped_after_first
        assert stats["descriptor_ships"] > 0

    def test_respawned_worker_reseeds_without_reshipping(self, shm_backend):
        owner = _Owner(PARTS)
        first = shm_backend.map_parts(_sort_part, PARTS, owner=owner)
        shipped = shm_backend.wire_stats()["bytes_shipped"]
        # Kill every worker; the supervisor respawns them and resubmits.
        for proc in shm_backend._procs:
            os.kill(proc.pid, signal.SIGKILL)
        time.sleep(0.05)
        again = shm_backend.map_parts(_sort_part, PARTS, owner=owner)
        assert again == first
        assert shm_backend.fault_stats()["worker_deaths"] > 0
        # Re-seeding went through descriptors: not one byte re-shipped.
        assert shm_backend.wire_stats()["bytes_shipped"] == shipped

    def test_large_common_is_interned_once(self, shm_backend):
        owner = _Owner(PARTS)
        big_common = tuple(range(2000))  # pickles well past 1024 bytes
        entries_before = shm_backend.wire_stats()["shm_entries"]
        r1 = shm_backend.map_parts(_tag_part, PARTS, common=big_common, owner=owner)
        entries_mid = shm_backend.wire_stats()["shm_entries"]
        r2 = shm_backend.map_parts(_tag_part, PARTS, common=big_common, owner=owner)
        assert r1 == r2 == SerialBackend().map_parts(
            _tag_part, PARTS, common=big_common
        )
        assert entries_mid > entries_before  # the common landed in the arena
        assert shm_backend.wire_stats()["shm_entries"] == entries_mid

    def test_ownerless_parts_fall_back_to_pipe_shipping(self, shm_backend):
        got = shm_backend.map_parts(_sort_part, PARTS)
        assert got == SerialBackend().map_parts(_sort_part, PARTS)

    def test_unpicklable_parts_fall_back_inline(self, shm_backend):
        parts = [[(_Unpicklable(), 1)], []]
        assert shm_backend.map_parts(_count_part, parts) == [1, 0]

    def test_close_unlinks_all_segments(self):
        before = set(_leaked_segments())
        backend = SharedMemoryBackend(workers=2)
        backend.map_parts(_sort_part, PARTS, owner=_Owner(PARTS))
        created = set(_leaked_segments()) - before
        assert created
        backend.close()
        assert not (set(_leaked_segments()) & created)
        backend.close()  # idempotent

    def test_cluster_and_engine_run_on_shm(self):
        before = set(_leaked_segments())
        backend = SharedMemoryBackend(workers=2)
        try:
            eng = Engine(p=4, backend=backend)
            eng.register(
                Relation("R1", ("A", "B"), [(i, i % 5) for i in range(40)])
            )
            eng.register(
                Relation("R2", ("B", "C"), [(i % 5, i % 7) for i in range(40)])
            )
            serial = Engine(p=4, backend="serial")
            serial.register(
                Relation("R1", ("A", "B"), [(i, i % 5) for i in range(40)])
            )
            serial.register(
                Relation("R2", ("B", "C"), [(i % 5, i % 7) for i in range(40)])
            )
            q = "Q(A,B,C) :- R1(A,B), R2(B,C)"
            cold = eng.execute(q)
            ref = serial.execute(q)
            assert set(cold.rows()) == set(ref.rows())
            assert cold.report.as_dict() == ref.report.as_dict()
            # Invalidate the result cache but keep the trace valid? No —
            # drive the warm path: same query again replays the plan.
            eng.result_cache = False
            warm = eng.execute(q)
            assert warm.metrics.plan_replayed
            assert set(warm.rows()) == set(ref.rows())
            assert warm.report.as_dict() == ref.report.as_dict()
        finally:
            backend.close()
        assert set(_leaked_segments()) <= before

    def test_batched_queries_pipeline_through_one_backend(self):
        before = set(_leaked_segments())
        backend = SharedMemoryBackend(workers=2)
        try:
            eng = Engine(p=4, backend=backend, result_cache=False)
            eng.register(
                Relation("R1", ("A", "B"), [(i, i % 5) for i in range(60)])
            )
            eng.register(
                Relation("R2", ("B", "C"), [(i % 5, i % 7) for i in range(60)])
            )
            queries = [
                "Q(A,B,C) :- R1(A,B), R2(B,C)",
                "Q(A,B) :- R1(A,B), R2(B,C)",
                "Q(B,C) :- R1(A,B), R2(B,C)",
            ]
            cold = eng.submit_batch(queries)  # records traces
            warm = eng.submit_batch(queries * 2, threads=3)
            assert all(r.ok for r in warm.results)
            assert all(r.metrics.plan_replayed for r in warm.results)
            for r_cold, r_warm in zip(cold.results * 2, warm.results):
                assert r_warm.report.as_dict() == r_cold.report.as_dict()
        finally:
            backend.close()
        assert set(_leaked_segments()) <= before
