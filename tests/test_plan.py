"""Unit tests for the physical plan layer (IR, trace, fuse, replay, LRU)."""

from __future__ import annotations

import pytest

from repro.data.relation import Relation
from repro.engine import Engine, parse_query
from repro.mpc import Cluster, distribute_relation
from repro.mpc.backends import SerialBackend, get_backend
from repro.mpc.primitives import attach_degrees, count_by_key, semi_join
from repro.plan import (
    Broadcast,
    Charge,
    Exchange,
    Executor,
    MapParts,
    TraceRecorder,
    fusion_groups,
)


def _traced_primitives(p: int = 6):
    """Trace a mixed primitive run; return (plan, report, outputs)."""
    rel_ram = Relation("R", ("A", "B"), [((i * 7) % 13, i % 5) for i in range(150)])
    flt_ram = Relation("S", ("B", "C"), [(i % 5, i) for i in range(40)])
    cluster = Cluster(p, backend="serial")
    group = cluster.root_group()
    rel = distribute_relation(rel_ram, group)
    flt = distribute_relation(flt_ram, group)
    rec = TraceRecorder()
    cluster.recorder = rec
    outs = (
        attach_degrees(group, rel, ("B",), "deg"),
        count_by_key(group, rel, ("A",), "cnt"),
        semi_join(group, rel, flt, "sj").parts,
    )
    cluster.recorder = None
    plan = rec.finish("prims", "join", "none", p, "serial", {})
    return plan, cluster.snapshot(), outs


class TestTrace:
    def test_charges_account_for_every_ledger_unit(self):
        plan, report, _ = _traced_primitives()
        assert plan.charged_units() == report.total
        assert len(plan.charges()) == report.steps

    def test_primitive_vocabulary_is_recorded(self):
        plan, _, _ = _traced_primitives()
        counts = plan.op_counts()
        for kind in ("AttachDegrees", "FoldByKey", "SemiJoin", "SampleSort"):
            assert counts.get(kind, 0) >= 1, counts
        assert counts.get("MapParts", 0) >= 1
        assert counts.get("Broadcast", 0) >= 1

    def test_spans_scope_their_steps(self):
        plan, _, _ = _traced_primitives()
        span = next(op for op in plan.ops if op.kind == "AttachDegrees")
        inner = plan.ops[span.start : span.end]
        assert any(op.kind == "SampleSort" for op in inner)
        assert all(
            op.path and op.path[0] == "AttachDegrees" for op in inner
        )

    def test_broadcast_charges_are_tagged(self):
        plan, _, _ = _traced_primitives()
        broadcasts = [op for op in plan.ops if isinstance(op, Broadcast)]
        assert broadcasts and all("splitters" in b.label or "bcast" in b.label
                                  for b in broadcasts)

    def test_recording_is_pure_observation(self):
        """Tracing must not change outputs or the ledger."""
        rel_ram = Relation("R", ("A", "B"), [(i % 9, i % 4) for i in range(120)])
        ref_cluster = Cluster(5, backend="serial")
        ref_group = ref_cluster.root_group()
        ref = count_by_key(ref_group, distribute_relation(rel_ram, ref_group), ("A",), "c")
        traced_cluster = Cluster(5, backend="serial")
        traced_cluster.recorder = TraceRecorder()
        traced_group = traced_cluster.root_group()
        got = count_by_key(
            traced_group, distribute_relation(rel_ram, traced_group), ("A",), "c"
        )
        traced_cluster.recorder = None
        assert got == ref
        assert traced_cluster.snapshot().as_dict() == ref_cluster.snapshot().as_dict()


class TestFusion:
    def test_unfused_is_one_group_per_map_op(self):
        plan, _, _ = _traced_primitives()
        groups = fusion_groups(plan.ops, fuse=False)
        n_map = len(plan.map_ops())
        assert len(groups) == n_map and all(len(g) == 1 for g in groups)

    def test_fused_merges_across_replay_pure_charges(self):
        plan, _, _ = _traced_primitives()
        groups = fusion_groups(plan.ops, fuse=True)
        assert len(groups) == 1
        assert sum(len(g) for g in groups) == len(plan.map_ops())

    def test_exchange_barriers_split_groups(self):
        plan, _, _ = _traced_primitives()
        conservative = fusion_groups(plan.ops, fuse=True, exchange_barriers=True)
        assert len(conservative) >= len(fusion_groups(plan.ops, fuse=True))
        assert sum(len(g) for g in conservative) == len(plan.map_ops())

    def test_groups_are_map_ops_in_plan_order(self):
        plan, _, _ = _traced_primitives()
        flat = [i for g in fusion_groups(plan.ops, fuse=True) for i in g]
        assert flat == sorted(flat)
        assert all(isinstance(plan.ops[i], MapParts) for i in flat)


class TestExecutor:
    @pytest.mark.parametrize("fusion", [True, False])
    def test_replay_ledger_is_bit_identical(self, fusion):
        plan, report, _ = _traced_primitives()
        fresh = Cluster(plan.p, backend="serial")
        stats = Executor(fresh, fusion=fusion).replay(plan)
        assert fresh.snapshot().as_dict() == report.as_dict()
        assert stats["map_ops"] == len(plan.map_ops())
        assert stats["groups"] == (1 if fusion else stats["map_ops"])

    def test_fused_replay_issues_fewer_backend_requests(self):
        plan, _, _ = _traced_primitives()
        backend = SerialBackend()
        fused = Executor(Cluster(plan.p, backend=backend), fusion=True).replay(plan)
        unfused = Executor(Cluster(plan.p, backend=backend), fusion=False).replay(plan)
        assert fused["backend_requests"] < unfused["backend_requests"]
        assert fused["backend_requests"] == 1

    def test_explain_mentions_ops_and_fusion(self):
        plan, _, _ = _traced_primitives()
        text = plan.explain()
        assert "SampleSort" in text and "MapParts" in text
        assert "round-trip reduction" in text
        assert "units" in text


class TestRunOps:
    def test_run_ops_matches_map_parts_loop(self):
        from tests.test_backends import _len_part, _sort_part

        parts = [[(3, 1), (2, 2)], [(5, 0)], []]
        ops = [(_sort_part, parts, None, None), (_len_part, parts, "x", None)]
        for name in ("serial", "multiprocess"):
            backend = get_backend(name)
            got = backend.run_ops(ops)
            assert got == [
                backend.map_parts(_sort_part, parts),
                backend.map_parts(_len_part, parts, "x"),
            ], name

    def test_run_ops_counts_one_request_round(self):
        from tests.test_backends import _sort_part

        parts = [[(2, 1)], [(1, 9)]]
        for name in ("serial", "multiprocess"):
            backend = get_backend(name)
            before = backend.requests
            backend.run_ops([(_sort_part, parts, None, None)] * 3)
            assert backend.requests == before + 1, name

    def test_serial_collect_false_skips_execution(self):
        calls = []

        def probe(part, common, idx):  # pragma: no cover - must not run
            calls.append(idx)

        backend = SerialBackend()
        out = backend.run_ops([(probe, [[1], [2]], None, None)], collect=False)
        assert out == [None] and calls == []

    def test_multiprocess_collect_false_still_warms_the_memo(self):
        from tests.test_backends import _sort_part

        class Owner:
            def __init__(self):
                self._substrate = {}

        from repro.mpc.backends import MultiprocessBackend

        backend = MultiprocessBackend(workers=2)
        try:
            parts = [[(4, 1)], [(2, 9)], [(7, 7)]]
            backend.run_ops([(_sort_part, parts, None, Owner())], collect=False)
            shipped = backend.wire_stats()["parts_shipped"]
            # Same content, fresh owner: every part is already cached
            # worker-side — nothing re-ships.
            got = backend.run_ops(
                [(_sort_part, [list(p) for p in parts], None, Owner())]
            )[0]
            assert got == [sorted(p) for p in parts]
            assert backend.wire_stats()["parts_shipped"] == shipped
        finally:
            backend.close()


class TestEngineReplay:
    def _engine(self, **kwargs) -> Engine:
        eng = Engine(p=4, **kwargs)
        eng.register(Relation("R1", ("A", "B"), [(i, i % 5) for i in range(60)]))
        eng.register(Relation("R2", ("B", "C"), [(i % 5, i % 7) for i in range(60)]))
        return eng

    Q = "Q(A,B,C) :- R1(A,B), R2(B,C)"

    def test_warm_execution_replays_the_traced_plan(self):
        eng = self._engine(result_cache=False)
        cold = eng.execute(self.Q)
        warm = eng.execute(self.Q)
        assert not cold.metrics.plan_replayed and warm.metrics.plan_replayed
        assert warm.metrics.plan_ops == cold.metrics.plan_ops > 0
        assert warm.metrics.fused_groups == 1
        assert warm.metrics.fusion_ratio == warm.metrics.map_ops
        assert warm.report.as_dict() == cold.report.as_dict()
        assert warm.rows() == cold.rows()
        assert eng.stats().plan_replays == 1

    def test_plan_replay_can_be_disabled(self):
        eng = self._engine(result_cache=False, plan_replay=False)
        eng.execute(self.Q)
        warm = eng.execute(self.Q)
        assert not warm.metrics.plan_replayed
        assert warm.metrics.plan_ops == 0

    def test_register_invalidates_the_trace(self):
        eng = self._engine(result_cache=False)
        eng.execute(self.Q)
        eng.register(Relation("R2", ("B", "C"), [(i % 5, i % 3) for i in range(80)]))
        fresh = eng.execute(self.Q)
        assert not fresh.metrics.plan_replayed  # stale schedule never replays
        warm = eng.execute(self.Q)
        assert warm.metrics.plan_replayed  # re-traced on the fresh versions
        assert warm.report.as_dict() == fresh.report.as_dict()

    def test_trace_plan_and_explain(self):
        eng = self._engine()
        plan = eng.trace_plan(self.Q)
        assert plan.charged_units() > 0
        assert plan.op_counts().get("MapParts", 0) >= 1
        text = eng.explain(self.Q)
        assert "physical plan" in text and "SampleSort" in text
        # A served entry's own trace is reused once warm.
        res = eng.execute(self.Q)
        assert eng.trace_plan(self.Q) is res.prepared.trace

    def test_scalar_aggregate_replays(self):
        eng = self._engine(result_cache=False)
        q = "Q(; count) :- R1(A,B), R2(B,C)"
        cold = eng.execute(q)
        warm = eng.execute(q)
        assert warm.metrics.plan_replayed
        assert warm.scalar == cold.scalar
        assert warm.report.as_dict() == cold.report.as_dict()


class TestRecordingLRU:
    def _engine(self, **kwargs) -> Engine:
        eng = Engine(p=3, **kwargs)
        eng.register(Relation("R", ("A", "B"), [(i, i % 4) for i in range(40)]))
        eng.register(Relation("S", ("B", "C"), [(i % 4, i) for i in range(40)]))
        return eng

    def test_entry_bound_evicts_least_recent(self):
        eng = self._engine(result_cache_entries=1)
        q1 = "Q(A,B) :- R(A,B)"
        q2 = "Q(B,C) :- S(B,C)"
        first = eng.execute(q1)
        eng.execute(q2)  # evicts q1's recording
        assert len(eng._recordings) == 1
        again = eng.execute(q1)  # falls back to a full (re-recording) drive
        assert not again.metrics.result_cached and not again.metrics.plan_replayed
        assert again.report.as_dict() == first.report.as_dict()
        assert eng.execute(q1).metrics.result_cached  # re-recorded

    def test_byte_bound_is_enforced(self):
        eng = self._engine(result_cache_bytes=1)  # nothing fits
        q = "Q(A,B,C) :- R(A,B), S(B,C)"
        eng.execute(q)
        assert len(eng._recordings) == 0
        # The unretained recording's trace dies with it (it could never
        # replay and would only pin its recorded inputs).
        assert all(e.trace is None for e in eng.prepared_queries())
        warm = eng.execute(q)
        assert not warm.metrics.result_cached and not warm.metrics.plan_replayed

    def test_dictionary_heavy_recordings_are_priced_byte_exact(self):
        """Regression: the old `256 + approx_nbytes()` accounting priced a
        dictionary column by its narrow code array alone, so a recording
        whose dictionary held a few large values (KBs of string/bytes per
        distinct value over 1-byte codes) was admitted at a tiny fraction
        of its resident size and blew the result_cache_bytes cap.  The
        accounting now measures the packed blob, so the cap must reject
        such a recording outright."""
        import random

        rng = random.Random(11)
        blobs = [rng.randbytes(10_000) for _ in range(4)]  # incompressible
        rows = [(i, blobs[i % 4]) for i in range(100)]
        q = "Q(A,B) :- R(A,B)"

        capped = Engine(p=3, result_cache_bytes=20_000)
        capped.register(Relation("R", ("A", "B"), rows))
        capped.execute(q)
        # Resident size is ~40 KB of dictionary values; the code arrays
        # the old estimate priced are ~100 bytes.  The cap must hold.
        assert len(capped._recordings) == 0
        assert capped._recording_bytes == 0

        unbounded = Engine(p=3, result_cache_bytes=None)
        unbounded.register(Relation("R", ("A", "B"), rows))
        unbounded.execute(q)
        assert unbounded._recording_bytes > 30_000  # dictionaries counted

    def test_unbounded_when_none(self):
        eng = self._engine(result_cache_entries=None, result_cache_bytes=None)
        for q in ("Q(A,B) :- R(A,B)", "Q(B,C) :- S(B,C)", "Q(A,B,C) :- R(A,B), S(B,C)"):
            eng.execute(q)
        assert len(eng._recordings) == 3
        assert eng._recording_bytes > 0

    def test_oversized_recording_does_not_flush_the_cache(self):
        eng = self._engine(result_cache_bytes=10_000)
        small = "Q(A,B) :- R(A,B)"
        eng.execute(small)
        assert small in {e.parsed.text for e in eng.prepared_queries()
                         if e.cached_result is not None}
        # Shrink the budget so the next (larger) recording alone exceeds
        # it: the small query's recording must survive untouched.
        eng.result_cache_bytes = 1
        eng.execute("Q(A,B,C) :- R(A,B), S(B,C)")
        kept = {e.parsed.text for e in eng.prepared_queries()
                if e.cached_result is not None}
        assert small in kept
        assert "Q(A,B,C) :- R(A,B), S(B,C)" not in kept

    def test_eviction_drops_the_trace_with_the_recording(self):
        eng = self._engine(result_cache_entries=1)
        q1 = "Q(A,B) :- R(A,B)"
        eng.execute(q1)
        entry = next(e for e in eng.prepared_queries() if e.parsed.text == q1)
        assert entry.trace is not None
        eng.execute("Q(B,C) :- S(B,C)")  # evicts q1's recording
        assert entry.cached_result is None and entry.trace is None

    def test_register_drops_stale_traces_and_recordings(self):
        eng = self._engine()
        q = "Q(A,B) :- R(A,B)"
        eng.execute(q)
        entry = next(e for e in eng.prepared_queries() if e.parsed.text == q)
        assert entry.trace is not None and entry.cached_result is not None
        eng.register(Relation("R", ("A", "B"), [(i, i % 3) for i in range(50)]))
        assert entry.trace is None and entry.cached_result is None
        assert entry.key not in eng._recordings

    def test_clear_caches_resets_the_lru(self):
        eng = self._engine()
        eng.execute("Q(A,B) :- R(A,B)")
        eng.clear_caches()
        assert len(eng._recordings) == 0 and eng._recording_bytes == 0


def test_cli_explain_smoke(tmp_path, capsys):
    from repro.cli import main

    (tmp_path / "R1.csv").write_text("A,B\n1,2\n2,3\n")
    (tmp_path / "R2.csv").write_text("B,C\n2,5\n3,6\n")
    rc = main([
        "explain", "Q(A,B,C) :- R1(A,B), R2(B,C)", str(tmp_path), "-p", "4",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "physical plan" in out
    assert "fusion" in out and "units" in out
    rc = main([
        "explain", "Q(A,B,C) :- R1(A,B), R2(B,C)", str(tmp_path), "-p", "4",
        "--no-fuse",
    ])
    assert rc == 0
