"""Tests for edge covers, packings, AGM bounds, and Lemma 1."""

import math

import pytest

from repro.query import catalog
from repro.query.covers import (
    agm_bound,
    fractional_edge_cover_number,
    fractional_edge_packing_number,
    integral_edge_cover,
    maximum_edge_packing,
    minimize_agm,
)
from repro.query.hypergraph import Hypergraph


class TestFractionalCover:
    def test_line3_cover_is_two(self):
        res = fractional_edge_cover_number(catalog.line3())
        assert res.total == pytest.approx(2.0, abs=1e-6)

    def test_triangle_cover_is_three_halves(self):
        res = fractional_edge_cover_number(catalog.triangle())
        assert res.total == pytest.approx(1.5, abs=1e-6)

    def test_cover_constraints_hold(self):
        q = catalog.fork_join()
        res = fractional_edge_cover_number(q)
        for x in q.attributes:
            covered = sum(res.weights[e] for e in q.edges_with(x))
            assert covered >= 1 - 1e-6

    def test_single_relation(self):
        res = fractional_edge_cover_number(Hypergraph({"R1": ("A", "B")}))
        assert res.total == pytest.approx(1.0, abs=1e-6)


class TestFractionalPacking:
    def test_triangle_packing_is_three_halves(self):
        res = fractional_edge_packing_number(catalog.triangle())
        assert res.total == pytest.approx(1.5, abs=1e-6)

    def test_line3_packing_is_two(self):
        res = fractional_edge_packing_number(catalog.line3())
        assert res.total == pytest.approx(2.0, abs=1e-6)

    def test_packing_constraints_hold(self):
        q = catalog.broom_join()
        res = fractional_edge_packing_number(q)
        for x in q.attributes:
            packed = sum(res.weights[e] for e in q.edges_with(x))
            assert packed <= 1 + 1e-6

    def test_saturating_packing(self):
        q = catalog.line3()
        res = maximum_edge_packing(q, saturate=frozenset({"B"}))
        assert res is not None
        assert res.weights["R1"] + res.weights["R2"] >= 1 - 1e-6

    def test_saturation_infeasible_returns_none(self):
        # An edge contained in the saturated set carries weight 0 (paper's
        # convention), so a lone edge cannot saturate its own attribute.
        q = Hypergraph({"R1": ("A",)})
        res = maximum_edge_packing(q, saturate=frozenset({"A"}))
        assert res is None


class TestLemma1:
    """Acyclic joins have integral edge cover number."""

    @pytest.mark.parametrize(
        "name", [n for n in sorted(catalog.CATALOG) if n != "triangle"]
    )
    def test_integral_cover_matches_lp(self, name):
        q = catalog.CATALOG[name]
        cover = integral_edge_cover(q)
        lp = fractional_edge_cover_number(q)
        assert len(cover) == pytest.approx(lp.total, abs=1e-6)

    def test_cover_is_actually_covering(self):
        q = catalog.fork_join()
        cover = integral_edge_cover(q)
        covered = set()
        for e in cover:
            covered |= q.attrs_of(e)
        assert covered == q.attributes

    def test_triangle_fractional_gap(self):
        """The triangle's LP optimum (1.5) is strictly below any integral
        cover (2) — the gap Lemma 1 rules out for acyclic joins."""
        lp = fractional_edge_cover_number(catalog.triangle())
        assert lp.total < 2.0


class TestAGM:
    def test_binary_join_agm(self):
        q = catalog.binary_join()
        sizes = {"R1": 100, "R2": 100}
        assert agm_bound(q, sizes) == pytest.approx(100 * 100, rel=0.01)

    def test_triangle_agm_sqrt_product(self):
        q = catalog.triangle()
        sizes = {"R1": 64, "R2": 64, "R3": 64}
        assert agm_bound(q, sizes) == pytest.approx(64 ** 1.5, rel=0.01)

    def test_agm_upper_bounds_actual_output(self):
        from repro.data.generators import random_instance
        from repro.ram.yannakakis import join_size

        q = catalog.line3()
        inst = random_instance(q, 60, 6, seed=1)
        sizes = {n: len(inst[n]) for n in q.edge_names}
        assert join_size(inst) <= agm_bound(q, sizes) * 1.01

    def test_minimize_agm_is_cover(self):
        q = catalog.line3()
        res = minimize_agm(q, {"R1": 10, "R2": 1000, "R3": 10})
        for x in q.attributes:
            assert sum(res.weights[e] for e in q.edges_with(x)) >= 1 - 1e-6
        # The expensive middle relation should carry little weight.
        assert res.weights["R2"] <= 0.5
