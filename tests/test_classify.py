"""Tests for the Figure 1 classification hierarchy."""

import pytest

from repro.query import catalog
from repro.query.classify import (
    JoinClass,
    classify,
    is_acyclic,
    is_hierarchical,
    is_r_hierarchical,
    is_tall_flat,
    tall_flat_order,
)
from repro.query.hypergraph import Hypergraph

#: Expected finest class per catalog query (paper Section 1.4 examples).
EXPECTED = {
    "binary": JoinClass.TALL_FLAT,
    "line3": JoinClass.ACYCLIC,
    "line4": JoinClass.ACYCLIC,
    "line5": JoinClass.ACYCLIC,
    "star3": JoinClass.TALL_FLAT,
    "star4": JoinClass.TALL_FLAT,
    "cartesian2": JoinClass.TALL_FLAT,
    "cartesian3": JoinClass.TALL_FLAT,
    "q1_tall_flat": JoinClass.TALL_FLAT,
    "q2_hierarchical": JoinClass.HIERARCHICAL,
    "q2_r_hierarchical": JoinClass.R_HIERARCHICAL,
    "simple_r_hierarchical": JoinClass.R_HIERARCHICAL,
    "triangle": JoinClass.CYCLIC,
    "fork": JoinClass.ACYCLIC,
    "broom": JoinClass.ACYCLIC,
    "two_ears": JoinClass.ACYCLIC,
}


@pytest.mark.parametrize("name,expected", sorted(EXPECTED.items()))
def test_catalog_classification(name, expected):
    assert classify(catalog.CATALOG[name]) == expected


class TestInclusions:
    """Figure 1: each class contains the previous one."""

    def test_tall_flat_implies_hierarchical(self):
        for q in catalog.CATALOG.values():
            if is_tall_flat(q):
                assert is_hierarchical(q), q.name

    def test_hierarchical_implies_r_hierarchical(self):
        for q in catalog.CATALOG.values():
            if is_hierarchical(q):
                assert is_r_hierarchical(q), q.name

    def test_r_hierarchical_implies_acyclic(self):
        for q in catalog.CATALOG.values():
            if is_r_hierarchical(q):
                assert is_acyclic(q), q.name

    def test_inclusions_are_strict(self):
        """Witnesses that each inclusion in Figure 1 is strict."""
        q2 = catalog.q2_hierarchical()
        assert is_hierarchical(q2) and not is_tall_flat(q2)
        q2r = catalog.q2_r_hierarchical()
        assert is_r_hierarchical(q2r) and not is_hierarchical(q2r)
        l3 = catalog.line3()
        assert is_acyclic(l3) and not is_r_hierarchical(l3)
        tri = catalog.triangle()
        assert not is_acyclic(tri)


class TestTallFlat:
    def test_order_of_q1(self):
        """Paper's Q1 has stem x1..x3 (x4..x6 flat)."""
        order = tall_flat_order(catalog.q1_tall_flat())
        assert order is not None
        stem, flat = order
        assert stem == ["x1", "x2", "x3"]
        assert sorted(flat) == ["x4", "x5", "x6"]

    def test_binary_join_is_tall_flat(self):
        """Section 1.3: the binary join admits instance-optimal BinHC."""
        order = tall_flat_order(catalog.binary_join())
        assert order is not None
        stem, flat = order
        assert stem == ["B"]
        assert sorted(flat) == ["A", "C"]

    def test_cartesian_products_are_tall_flat(self):
        assert is_tall_flat(catalog.cartesian_product(3))

    def test_q2_not_tall_flat(self):
        assert tall_flat_order(catalog.q2_hierarchical()) is None

    def test_two_relation_wide_product_tall_flat(self):
        q = Hypergraph({"R1": ("A", "B"), "R2": ("C", "D")})
        assert is_tall_flat(q)


class TestHierarchical:
    def test_paper_example_r_hier_not_hier(self):
        """R1(A) x R2(A,B) x R3(B) from Section 1.4."""
        q = catalog.simple_r_hierarchical()
        assert not is_hierarchical(q)
        assert is_r_hierarchical(q)

    def test_reduction_makes_q2_extension_hierarchical(self):
        q = catalog.q2_r_hierarchical()
        reduced, _ = q.reduce()
        assert is_hierarchical(reduced)
        assert set(reduced.edge_names) == {"R1", "R2", "R3"}

    def test_line3_reduced_is_itself(self):
        q = catalog.line3()
        reduced, _ = q.reduce()
        assert reduced == q
        assert not is_hierarchical(reduced)


class TestJoinClassOrdering:
    def test_intenum_ordering_matches_inclusion(self):
        assert JoinClass.TALL_FLAT < JoinClass.HIERARCHICAL
        assert JoinClass.HIERARCHICAL < JoinClass.R_HIERARCHICAL
        assert JoinClass.R_HIERARCHICAL < JoinClass.ACYCLIC
        assert JoinClass.ACYCLIC < JoinClass.CYCLIC

    def test_classify_monotone_under_reduce(self):
        """Reducing a query never moves it to a larger class."""
        for q in catalog.CATALOG.values():
            reduced, _ = q.reduce()
            assert classify(reduced) <= classify(q), q.name
