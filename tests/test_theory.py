"""Tests for the bound formulas and lower-bound evaluators."""

import math

import pytest

from repro.data.generators import cartesian_instance, matching_instance, random_instance
from repro.data.hard_instances import line3_random_hard, triangle_random_hard
from repro.query import catalog
from repro.theory.bounds import (
    corollary1_bound,
    k_star,
    l_binhc,
    l_cartesian,
    l_instance,
    theorem4_bound,
    theorem5_bound,
    worst_case_line3_bound,
    worst_case_triangle_bound,
    yannakakis_bound,
)
from repro.theory.lower_bounds import (
    corollary2_lower_bound,
    estimate_j_line3,
    estimate_j_triangle,
    line3_lower_bound,
    min_load_from_j,
    triangle_lower_bound,
)


class TestLCartesian:
    def test_two_equal_sets(self):
        # max over {N/p, (N^2/p)^(1/2)}
        assert l_cartesian([100, 100], 16) == pytest.approx(
            max(100 / 16, math.sqrt(100 * 100 / 16))
        )

    def test_skewed_sets_dominated_by_largest(self):
        """The paper's intro example: skew raises the bound."""
        balanced = l_cartesian([100, 100, 10000], 16)
        skewed = l_cartesian([1, 10000, 10000], 16)
        assert skewed > balanced

    def test_singleton(self):
        assert l_cartesian([50], 10) == pytest.approx(5.0)


class TestLInstance:
    def test_matching_line3(self):
        inst = matching_instance(catalog.line3(), 64)
        # Every subset has 64 combos: max over (64/p)^(1/k).
        got = l_instance(inst.query, inst, 4)
        assert got == pytest.approx(16.0)

    def test_increases_with_skew(self):
        from repro.data.generators import forest_instance

        smooth = forest_instance(catalog.q2_hierarchical(), 3, skew=1.0)
        skewed = forest_instance(catalog.q2_hierarchical(), 3, skew=6.0)
        q = catalog.q2_hierarchical()
        assert l_instance(q, skewed, 8) >= l_instance(q, smooth, 8)

    def test_cartesian_consistency(self):
        """On Cartesian products the two bound formulas agree."""
        sizes = [40, 20, 10]
        inst = cartesian_instance(sizes)
        assert l_instance(inst.query, inst, 8) == pytest.approx(
            l_cartesian(sizes, 8)
        )

    def test_lower_bounds_any_out(self):
        inst = random_instance(catalog.line3(), 50, 6, seed=91)
        out = inst.output_size()
        li = l_instance(inst.query, inst, 8)
        assert li >= (out / 8) ** (1 / 3) - 1e-9


class TestLBinHC:
    def test_theorem1_tall_flat(self):
        """Theorem 1: L_BinHC = O(L_instance) on tall-flat joins."""
        from repro.data.generators import forest_instance

        q = catalog.q1_tall_flat()
        for skew in (1.0, 4.0):
            inst = forest_instance(q, 2, skew=skew)
            lb = l_binhc(q, inst, 8)
            li = l_instance(q, inst, 8)
            assert lb <= 4 * li + 1

    def test_theorem2_r_hier_dangling_free(self):
        from repro.data.generators import star_instance

        q = catalog.star_join(3)
        inst = star_instance(3, 6, 4)
        assert l_binhc(q, inst, 8) <= 4 * l_instance(q, inst, 8) + 1

    def test_positive_on_nonempty(self):
        inst = matching_instance(catalog.binary_join(), 32)
        assert l_binhc(inst.query, inst, 4) > 0


class TestClosedForms:
    def test_k_star(self):
        assert k_star(100, 99) == 1
        assert k_star(100, 100) == 1
        assert k_star(100, 101) == 2
        assert k_star(100, 10**4 + 1) == 3

    def test_theorem4_interpolates(self):
        p = 16
        # k* = 1: linear in both terms.
        assert theorem4_bound(1000, 500, p) == pytest.approx(1000 / p + 500 / p)
        # k* = 2: IN/p + sqrt(OUT/p).
        assert theorem4_bound(1000, 10**6, p) == pytest.approx(
            1000 / p + math.sqrt(10**6 / p)
        )
        # k* = 3: IN/sqrt(p) + (OUT/p)^(1/3).
        assert theorem4_bound(1000, 10**8, p) == pytest.approx(
            1000 / math.sqrt(p) + (10**8 / p) ** (1 / 3)
        )

    def test_corollary1_dominates_theorem4(self):
        """Corollary 1 is the (looser) clean form: Thm4 <= ~Cor1 for OUT<=IN^2."""
        for out in (10**3, 10**4, 10**5, 10**6):
            t4 = theorem4_bound(1000, out, 16)
            c1 = corollary1_bound(1000, out, 16)
            assert t4 <= 3 * c1 + 1

    def test_theorem5_between_linear_and_yannakakis(self):
        in_size, out, p = 1000, 50000, 16
        t5 = theorem5_bound(in_size, out, p)
        assert in_size / p <= t5 <= yannakakis_bound(in_size, out, p) + 1

    def test_bounds_monotone_in_out(self):
        for f in (theorem5_bound, corollary1_bound, yannakakis_bound):
            assert f(1000, 2000, 8) <= f(1000, 20000, 8)


class TestLowerBoundFormulas:
    def test_line3_lb_caps_at_worst_case(self):
        in_size, p = 10000, 16
        lb_huge_out = line3_lower_bound(in_size, in_size * p * 100, p)
        assert lb_huge_out == pytest.approx(worst_case_line3_bound(in_size, p))

    def test_line3_lb_crossover_near_p_in(self):
        """The min switches branches around OUT = p * IN (log-factor slack)."""
        in_size, p = 10000, 16
        log_in = math.log2(in_size)
        small = line3_lower_bound(in_size, in_size, p)
        at_cross = line3_lower_bound(in_size, p * in_size * log_in, p)
        assert small < at_cross * 1.01
        assert at_cross == pytest.approx(worst_case_line3_bound(in_size, p))

    def test_corollary2_gap(self):
        """Corollary 2: LB >> L_instance = IN/p once sqrt(p) >> log IN."""
        in_size, p = 10**6, 4096
        assert corollary2_lower_bound(in_size, p) > 3 * (in_size / p)

    def test_corollary2_gap_grows_with_p(self):
        in_size = 10**6
        ratios = [
            corollary2_lower_bound(in_size, p) / (in_size / p)
            for p in (64, 256, 1024, 4096)
        ]
        assert ratios == sorted(ratios)

    def test_triangle_lb_branches(self):
        in_size, p = 30000, 64
        small_out = triangle_lower_bound(in_size, in_size, p)
        big_out = triangle_lower_bound(in_size, int(in_size ** 1.4), p)
        assert small_out <= big_out + 1e-9
        assert big_out == pytest.approx(worst_case_triangle_bound(in_size, p))


class TestJEstimators:
    def test_line3_j_monotone_in_load(self):
        inst = line3_random_hard(1500, 7500, seed=92)
        j1 = estimate_j_line3(inst, 50, seed=1)
        j2 = estimate_j_line3(inst, 400, seed=1)
        assert j2 >= j1

    def test_line3_counting_argument(self):
        """p * J(L) >= OUT forces L >= ~ the Theorem 6 bound shape."""
        inst = line3_random_hard(1500, 7500, seed=93)
        out = inst.output_size()
        p = 8
        need = min_load_from_j(
            out, p, lambda load: estimate_j_line3(inst, load, seed=2, trials=8),
            hi=inst.input_size,
        )
        assert need > 1  # some real load is required
        # And it cannot exceed what trivially suffices (IN tuples).
        assert need <= inst.input_size

    def test_triangle_j_monotone(self):
        inst = triangle_random_hard(1500, 4500, seed=94)
        assert estimate_j_triangle(inst, 500, seed=1) >= estimate_j_triangle(
            inst, 50, seed=1
        )


class TestExactJ:
    def test_estimator_never_exceeds_exact(self):
        """The greedy/random estimator is a true lower bound on J(L)."""
        from repro.theory.lower_bounds import exact_j_line3

        inst = line3_random_hard(90, 270, seed=95)  # 10 groups per side
        for load in (6, 15, 30):
            exact = exact_j_line3(inst, load)
            assert exact is not None
            approx = estimate_j_line3(inst, load, seed=7, trials=12)
            assert approx <= exact

    def test_exact_monotone_in_load(self):
        from repro.theory.lower_bounds import exact_j_line3

        inst = line3_random_hard(90, 270, seed=96)
        values = [exact_j_line3(inst, load) for load in (6, 15, 30)]
        assert values == sorted(values)

    def test_exact_bails_on_large_instances(self):
        from repro.theory.lower_bounds import exact_j_line3

        inst = line3_random_hard(3000, 12000, seed=97)
        assert exact_j_line3(inst, 100, max_groups=12) is None

    def test_exact_zero_when_load_below_one_group(self):
        from repro.theory.lower_bounds import exact_j_line3

        inst = line3_random_hard(90, 270, seed=98)
        tau = max(inst["R1"].degrees(("B",)).values())
        assert exact_j_line3(inst, tau - 1) == 0
