"""Unified telemetry layer: registry, spans, wire attribution, timings.

The observability contract under test is DESIGN.md section 10: telemetry
is a read-only side channel.  It never touches the LoadReport ledger
(parity is asserted wherever traced and untraced runs are compared), it
is near-free when disabled (``NULL_SPAN``/``observe=False``), and span
trees stay well-formed across every backend — including chaos-injected
worker deaths, where a respawned worker's retry round appears as a fresh
``worker.round`` child under the same ``backend.round`` parent.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.data.generators import random_instance
from repro.data.relation import Relation
from repro.engine import Engine
from repro.mpc.backends import (
    FaultInjectingBackend,
    MultiprocessBackend,
    shm_supported,
)
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_SPAN,
    NULL_TRACER,
    SpanSink,
    Tracer,
    WireMeter,
    percentiles,
)
from repro.obs.check import validate_prometheus_text, validate_trace_lines
from repro.query import catalog

BINARY = "Q(A,B,C) :- R1(A,B), R2(B,C)"
LINE3 = "Q(A,B,C,D) :- R1(A,B), R2(B,C), R3(C,D)"


def _binary_relations(seed: int = 7) -> dict[str, Relation]:
    inst = random_instance(catalog.binary_join(), 180, 20, seed=seed)
    return dict(inst.relations)


def _line3_relations(seed: int = 11) -> dict[str, Relation]:
    inst = random_instance(catalog.line_join(3), 200, 16, seed=seed)
    return dict(inst.relations)


def _engine(backend, relations: dict, **kwargs) -> Engine:
    eng = Engine(p=4, backend=backend, result_cache=False, **kwargs)
    for name, rel in relations.items():
        eng.register(rel, name=name)
    return eng


def _spans(sink: SpanSink) -> list[dict]:
    sink.flush()
    return sink.records()


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------

class TestRegistry:
    def test_counter_identity_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("hits_total", path="cold")
        b = reg.counter("hits_total", path="cold")
        c = reg.counter("hits_total", path="warm")
        assert a is b and a is not c
        a.inc()
        a.inc(2)
        assert a.value == 3
        assert c.value == 0

    def test_histogram_percentiles_bracket_samples(self):
        h = MetricsRegistry().histogram("lat", buckets=DEFAULT_LATENCY_BUCKETS)
        for ms in (1, 2, 3, 4, 100):
            h.observe(ms / 1000.0)
        assert h.count == 5
        assert h.sum == pytest.approx(0.110)
        # interpolation stays clamped inside the observed range
        assert 0.0005 <= h.percentile(50.0) <= 0.01
        assert h.percentile(99.0) <= 10.0
        assert h.percentile(0.0) <= h.percentile(100.0)

    def test_histogram_overflow_bucket(self):
        h = MetricsRegistry().histogram("lat", buckets=(0.001, 0.01))
        h.observe(5.0)  # beyond every finite bound -> +Inf bucket
        assert h.count == 1
        assert h.percentile(50.0) >= 0.01

    def test_views_render_as_gauges_and_broken_views_are_skipped(self):
        reg = MetricsRegistry()
        reg.register_view(lambda: {"live_queries": 2})
        reg.register_view(lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        snap = reg.snapshot()
        assert snap["views"]["live_queries"] == 2
        assert "live_queries 2" in reg.render_prometheus()

    def test_prometheus_round_trip_validates(self):
        reg = MetricsRegistry()
        reg.counter("repro_queries_total", help="Queries.", path="cold").inc()
        reg.histogram("repro_query_seconds", path="cold").observe(0.003)
        reg.gauge("repro_live").set(1)
        text = reg.render_prometheus()
        assert validate_prometheus_text(text) == []
        assert "# TYPE repro_query_seconds histogram" in text
        assert 'repro_query_seconds_bucket{path="cold",le="+Inf"}' in text

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc()
        reg.histogram("h_seconds").observe(0.5)
        snap = reg.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms", "views"}
        (hist,) = snap["histograms"].values()
        assert {"count", "sum", "p50", "p95", "p99"} <= set(hist)

    def test_reset_drops_instruments_but_keeps_views(self):
        # The serve CLI resets between workload rounds so percentiles
        # are per-run; registered views are windows onto external state
        # (EngineStats, backends) and must survive the reset.
        reg = MetricsRegistry()
        reg.counter("c_total").inc()
        reg.histogram("h_seconds").observe(0.5)
        reg.register_view(lambda: {"live": 1})
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {} and snap["histograms"] == {}
        assert snap["views"] == {"live": 1}
        # Fresh instruments after the reset start from zero.
        reg.histogram("h_seconds").observe(0.1)
        (hist,) = reg.snapshot()["histograms"].values()
        assert hist["count"] == 1


class TestPercentiles:
    def test_percentiles_of_known_samples(self):
        got = percentiles([float(i) for i in range(1, 101)])
        assert got["p50"] == pytest.approx(50.5, abs=1.0)
        assert got["p95"] == pytest.approx(95.0, abs=1.5)
        assert got["p99"] == pytest.approx(99.0, abs=1.5)

    def test_empty_and_singleton(self):
        assert percentiles([]) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        assert percentiles([0.25]) == {"p50": 0.25, "p95": 0.25, "p99": 0.25}

    def test_engine_stats_serve_latency(self):
        eng = _engine("serial", _binary_relations())
        for _ in range(3):
            eng.execute(BINARY)
        pcts = eng.stats().latency_percentiles()
        assert pcts["p50"] > 0
        assert pcts["p50"] <= pcts["p95"] <= pcts["p99"]
        assert "latency_percentiles" in eng.stats().as_dict()


# ----------------------------------------------------------------------
# Tracing primitives
# ----------------------------------------------------------------------

class TestTracing:
    def test_null_tracer_is_a_recording_free_singleton(self):
        span = NULL_TRACER.span("query", q="x")
        assert span is NULL_SPAN
        assert span.recording is False
        assert span.trace_id is None
        assert span.child("inner", a=1) is span
        span.set(a=1)
        span.end()
        with span:
            pass
        assert span.attrs == {}

    def test_span_tree_emits_schema_valid_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = SpanSink(path=str(path))
        tracer = Tracer(sink)
        with tracer.span("query", query="Q") as root:
            with root.child("replay", ops=3) as child:
                child.child("backend.round", backend="serial").end()
        tracer.close()
        lines = path.read_text().splitlines()
        assert validate_trace_lines(lines) == []
        recs = [json.loads(line) for line in lines]
        by_name = {r["name"]: r for r in recs}
        assert by_name["backend.round"]["parent"] == by_name["replay"]["span"]
        assert by_name["replay"]["parent"] == by_name["query"]["span"]
        assert by_name["query"]["parent"] is None
        assert len({r["trace"] for r in recs}) == 1

    def test_memory_sink_bounds_and_counts_drops(self):
        sink = SpanSink(capacity=4)
        tracer = Tracer(sink)
        for i in range(10):
            tracer.span("query", i=i).end()
        assert len(sink.records()) < 10
        assert sink.dropped > 0
        assert sink.emitted == 10

    def test_error_paths_tag_the_span(self, tmp_path):
        eng = Engine(p=4, backend="serial",
                     tracer=Tracer(SpanSink(path=str(tmp_path / "t.jsonl"))))
        with pytest.raises(Exception):
            eng.execute("Q(A,B) :- Nope(A,B)")
        eng.tracer.close()
        recs = [json.loads(line)
                for line in (tmp_path / "t.jsonl").read_text().splitlines()]
        assert any("error" in r["attrs"] for r in recs)


# ----------------------------------------------------------------------
# Engine integration: trace ids, parity, wire attribution
# ----------------------------------------------------------------------

class TestEngineTracing:
    def test_metrics_carry_the_trace_id(self):
        sink = SpanSink()
        eng = _engine("serial", _binary_relations(), tracer=Tracer(sink))
        first = eng.execute(BINARY)
        second = eng.execute(BINARY)
        assert first.metrics.trace_id
        assert second.metrics.trace_id
        assert first.metrics.trace_id != second.metrics.trace_id
        traces = {r["trace"] for r in _spans(sink)}
        assert first.metrics.trace_id in traces

    def test_untraced_engine_reports_no_trace_id(self):
        eng = _engine("serial", _binary_relations())
        assert eng.execute(BINARY).metrics.trace_id is None

    def test_tracing_never_touches_the_ledger(self):
        rels = _binary_relations()
        plain = _engine("serial", rels)
        traced = _engine("serial", rels, tracer=Tracer(SpanSink()))
        bare = _engine("serial", rels, observe=False)
        want = plain.execute(BINARY)
        for eng in (traced, bare):
            got = eng.execute(BINARY)
            assert sorted(got.rows()) == sorted(want.rows())
            assert got.report.as_dict() == want.report.as_dict()

    def test_registry_counts_serving_paths(self):
        eng = Engine(p=4, backend="serial")
        for name, rel in _binary_relations().items():
            eng.register(rel, name=name)
        eng.execute(BINARY)
        eng.execute(BINARY)  # result-cache hit
        snap = eng.metrics_snapshot()
        assert any("repro_queries_total" in k for k in snap["counters"])
        text = eng.metrics_text()
        assert validate_prometheus_text(text) == []
        assert 'repro_queries_total{path="cold"} 1' in text
        assert 'repro_queries_total{path="cached"} 1' in text

    def test_observe_false_records_nothing(self):
        eng = _engine("serial", _binary_relations(), observe=False)
        eng.execute(BINARY)
        assert "repro_queries_total" not in eng.metrics_text()
        # per-query stats still work: the ledger view is independent
        assert eng.stats().queries == 1


class TestWireAttribution:
    QUERIES = (BINARY, LINE3, "Q(B,C,D) :- R2(B,C), R3(C,D)")

    def _batch_wire(self, threads: int):
        """Per-query wire bytes + backend delta for one cold batch.

        Queries are prepared up front so the planner's pricing rounds
        (which ship on a deliberately meterless scratch cluster — see
        ``Engine._compile``) fall outside the measured window; the delta
        then covers exactly the serving ships the meters attribute.
        """
        backend = MultiprocessBackend(workers=2, backoff_base=0.0)
        try:
            rels = _line3_relations()
            rels.update(_binary_relations())
            eng = _engine(backend, rels)
            for q in self.QUERIES:
                eng.prepare(q)
            before = backend.wire_stats()["bytes_shipped"]
            report = eng.submit_batch(list(self.QUERIES), threads=threads)
            assert all(r.ok for r in report.results)
            per_query = [r.metrics.wire_bytes for r in report.results]
            delta = backend.wire_stats()["bytes_shipped"] - before
            return per_query, delta
        finally:
            backend.close()

    def test_threaded_batch_wire_bytes_sum_to_backend_delta(self):
        """Regression: per-query wire_bytes under ``threads=N`` must
        attribute each shipped blob to exactly one query — the old
        thread-shared counter delta double-counted concurrent ships."""
        per_query, delta = self._batch_wire(threads=3)
        assert sum(per_query) == delta
        assert all(b > 0 for b in per_query)  # cold runs all shipped

    def test_attribution_is_independent_of_submitter_threads(self):
        serial_bytes, serial_delta = self._batch_wire(threads=1)
        threaded_bytes, threaded_delta = self._batch_wire(threads=3)
        assert serial_bytes == threaded_bytes
        assert serial_delta == threaded_delta == sum(serial_bytes)

    def test_wire_meter_is_additive(self):
        meter = WireMeter()
        meter.add(10)
        meter.add(5)
        assert (meter.parts, meter.bytes) == (2, 15)


# ----------------------------------------------------------------------
# Span trees across live backends
# ----------------------------------------------------------------------

def _tree_checks(recs: list[dict]) -> None:
    """One root per trace; every parent resolves within its trace."""
    by_trace: dict[str, list[dict]] = {}
    for r in recs:
        by_trace.setdefault(r["trace"], []).append(r)
    for trace, spans in by_trace.items():
        roots = [s for s in spans if s["parent"] is None]
        assert len(roots) == 1, f"trace {trace}: {len(roots)} roots"
        ids = {s["span"] for s in spans}
        for s in spans:
            if s["parent"] is not None:
                assert s["parent"] in ids, f"dangling parent in {trace}"


class TestBackendSpans:
    def test_multiprocess_rounds_report_worker_timings(self):
        backend = MultiprocessBackend(workers=2, backoff_base=0.0)
        sink = SpanSink()
        try:
            eng = _engine(backend, _binary_relations(), tracer=Tracer(sink))
            eng.execute(BINARY)
            recs = _spans(sink)
            _tree_checks(recs)
            rounds = [r for r in recs if r["name"] == "backend.round"]
            workers = [r for r in recs if r["name"] == "worker.round"]
            assert rounds and workers
            round_ids = {r["span"] for r in rounds}
            assert all(w["parent"] in round_ids for w in workers)
            assert any("compute_seconds" in w["attrs"] for w in workers)
        finally:
            backend.close()

    def test_chaos_respawn_keeps_the_span_tree_intact(self):
        """A killed worker's retry must appear as a fresh ``worker.round``
        child (``retry: true``) under the same ``backend.round`` parent —
        spans survive the respawn because the coordinator owns them."""
        backend = FaultInjectingBackend(
            inner=MultiprocessBackend(
                workers=2, round_timeout=2.0, backoff_base=0.0
            ),
            seed=1, rate=1.0, kinds=("kill",),
        )
        sink = SpanSink()
        try:
            eng = _engine(backend, _binary_relations(), tracer=Tracer(sink))
            res = eng.execute(BINARY)
            assert res.metrics.fault_events >= 1
            recs = _spans(sink)
            assert validate_trace_lines(
                [json.dumps(r) for r in recs]
            ) == []
            _tree_checks(recs)
            workers = [r for r in recs if r["name"] == "worker.round"]
            retries = [w for w in workers if w["attrs"].get("retry")]
            faulted = [w for w in workers if "fault" in w["attrs"]]
            assert faulted, "injected kill left no faulted worker span"
            assert retries, "respawn produced no retry worker.round span"
            round_ids = {
                r["span"] for r in recs if r["name"] == "backend.round"
            }
            assert all(w["parent"] in round_ids for w in retries)
            # a faulted attempt and its retry share a backend.round parent
            faulted_parents = {w["parent"] for w in faulted}
            assert any(w["parent"] in faulted_parents for w in retries)
        finally:
            backend.close()

    @pytest.mark.skipif(not shm_supported(), reason="no shared memory")
    def test_pipelined_shm_batches_stay_well_nested(self):
        from repro.mpc.backends.shm import SharedMemoryBackend

        backend = SharedMemoryBackend(workers=2)
        sink = SpanSink()
        try:
            eng = _engine(backend, _line3_relations(), tracer=Tracer(sink))
            eng.execute(LINE3)          # cold
            eng.execute(LINE3)          # warm replay -> pipelined submit_ops
            recs = _spans(sink)
            assert validate_trace_lines(
                [json.dumps(r) for r in recs]
            ) == []
            _tree_checks(recs)
            names = {r["name"] for r in recs}
            assert {"query", "backend.round"} <= names
            # children close inside their parents (well-nested intervals)
            by_id = {r["span"]: r for r in recs}
            for r in recs:
                parent = by_id.get(r["parent"] or "")
                if parent is not None:
                    assert r["ts"] >= parent["ts"] - 0.001
                    assert (r["ts"] + r["dur"]
                            <= parent["ts"] + parent["dur"] + 0.001)
        finally:
            backend.close()


# ----------------------------------------------------------------------
# Timed replay / explain --timings / CLI
# ----------------------------------------------------------------------

class TestExplainTimings:
    @pytest.mark.parametrize("backend", ["serial", "multiprocess"])
    def test_explain_timings_render_per_op_wall(self, backend):
        eng = _engine(backend, _binary_relations())
        text = eng.explain(BINARY, timings=True)
        assert "wall=" in text
        plain = eng.explain(BINARY)
        assert "wall=" not in plain

    @pytest.mark.skipif(not shm_supported(), reason="no shared memory")
    def test_explain_timings_on_shm(self):
        eng = _engine("shm", _binary_relations())
        assert "wall=" in eng.explain(BINARY, timings=True)

    def test_timed_replay_parity_with_untimed(self):
        eng = _engine("serial", _binary_relations())
        want = eng.execute(BINARY)
        trace, op_timings = eng.timed_replay(BINARY)
        assert op_timings
        assert all(
            t["wall"] >= 0 and t["wire"] >= 0 for t in op_timings.values()
        )
        again = eng.execute(BINARY)
        assert again.report.as_dict() == want.report.as_dict()


class TestCli:
    def _write_workload(self, tmp_path):
        rels = _binary_relations()
        from repro.io import write_instance_dir
        from repro.data.instance import Instance

        inst = Instance(catalog.binary_join(), rels)
        data = tmp_path / "data"
        write_instance_dir(inst, data)
        queries = tmp_path / "queries.txt"
        queries.write_text(f"{BINARY}\n")
        return data, queries

    def test_stats_subcommand_emits_valid_prometheus(self, tmp_path, capsys):
        data, queries = self._write_workload(tmp_path)
        rc = cli_main([
            "stats", str(data), "-p", "4",
            "--queries", str(queries), "--format", "prom",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert validate_prometheus_text(out) == []
        assert 'repro_queries_total{path="cold"} 1' in out

    def test_stats_subcommand_json_snapshot(self, tmp_path, capsys):
        data, queries = self._write_workload(tmp_path)
        rc = cli_main([
            "stats", str(data), "-p", "4",
            "--queries", str(queries), "--format", "json",
        ])
        assert rc == 0
        snap = json.loads(capsys.readouterr().out)
        assert {"counters", "gauges", "histograms", "views"} <= set(snap)

    def test_serve_trace_artifacts_validate(self, tmp_path, capsys):
        data, queries = self._write_workload(tmp_path)
        trace = tmp_path / "trace.jsonl"
        prom = tmp_path / "metrics.prom"
        rc = cli_main([
            "serve", str(data), "-p", "4",
            "--queries", str(queries),
            "--trace", str(trace), "--metrics-out", str(prom),
        ])
        assert rc == 0
        assert validate_trace_lines(trace.read_text().splitlines()) == []
        assert validate_prometheus_text(prom.read_text()) == []

    def test_checker_cli_passes_on_real_artifacts(self, tmp_path, capsys):
        from repro.obs.check import main as check_main

        data, queries = self._write_workload(tmp_path)
        trace = tmp_path / "trace.jsonl"
        prom = tmp_path / "metrics.prom"
        assert cli_main([
            "serve", str(data), "-p", "4",
            "--queries", str(queries),
            "--trace", str(trace), "--metrics-out", str(prom),
        ]) == 0
        capsys.readouterr()
        assert check_main([str(trace), str(prom)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out
