"""Empirical O(1)-round checks.

The paper's algorithms use a constant number of rounds (independent of
IN).  Our ledger counts every communication step; for algorithms whose
step sequence is a fixed pipeline (Yannakakis, line-3, counting, the
primitives) the step count must not grow with IN.  Recursive algorithms
process logically-parallel branches sequentially in the simulator, so
their *step counts* grow with the branch count even though their round
complexity is constant — those are excluded and the behaviour is
documented in DESIGN.md.
"""

import pytest

from repro.core.runner import mpc_join, mpc_output_size
from repro.data.generators import line_trap_instance, matching_instance
from repro.mpc import Cluster, distribute_instance
from repro.mpc.primitives import sum_by_key
from repro.query import catalog

SIZES = [600, 2400, 9600]


def steps_for(algorithm: str, size: int, p: int = 8) -> int:
    inst = line_trap_instance(3, size, size * 4)
    res = mpc_join(inst.query, inst, p=p, algorithm=algorithm)
    return res.report.steps


class TestConstantRounds:
    @pytest.mark.parametrize("algorithm", ["yannakakis", "line3", "wc-line3"])
    def test_steps_independent_of_in(self, algorithm):
        counts = [steps_for(algorithm, n) for n in SIZES]
        # A fixed pipeline: identical step counts across a 16x IN sweep.
        assert max(counts) - min(counts) <= 4, counts

    def test_count_steps_constant(self):
        counts = []
        for n in SIZES:
            inst = line_trap_instance(3, n, n * 4)
            cl = Cluster(8)
            g = cl.root_group()
            from repro.core.aggregates import mpc_count

            mpc_count(g, inst.query, distribute_instance(inst, g))
            counts.append(cl.snapshot().steps)
        assert max(counts) == min(counts), counts

    def test_primitive_steps_constant(self):
        counts = []
        for n in SIZES:
            cl = Cluster(8)
            pairs = [(i % 50, 1) for i in range(n)]
            sum_by_key(cl.root_group(), [pairs[i::8] for i in range(8)])
            counts.append(cl.snapshot().steps)
        assert max(counts) == min(counts), counts

    def test_steps_independent_of_out(self):
        """Rounds depend on the query, not the output size."""
        counts = []
        for out_mult in (2, 16, 64):
            inst = line_trap_instance(3, 1500, 1500 * out_mult)
            res = mpc_join(inst.query, inst, p=8, algorithm="line3")
            counts.append(res.report.steps)
        assert max(counts) - min(counts) <= 4, counts

    def test_output_size_primitive_steps_constant(self):
        counts = []
        for n in SIZES:
            inst = line_trap_instance(3, n, 4 * n)
            _cnt, rep = mpc_output_size(inst.query, inst, 8)
            counts.append(rep.steps)
        assert max(counts) == min(counts), counts

    def test_steps_grow_with_query_size_not_data(self):
        """Longer chains cost more rounds; more data does not."""
        line4_steps = []
        for n in (1200, 4800):
            inst = line_trap_instance(4, n, 4 * n)
            res = mpc_join(inst.query, inst, p=8, algorithm="yannakakis")
            line4_steps.append(res.report.steps)
        assert line4_steps[0] == line4_steps[1]
        inst3 = line_trap_instance(3, 1200, 4800)
        res3 = mpc_join(inst3.query, inst3, p=8, algorithm="yannakakis")
        assert line4_steps[0] > res3.report.steps
