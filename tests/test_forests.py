"""Tests for attribute forests (paper Figure 2)."""

import pytest

from repro.errors import QueryError
from repro.query import catalog
from repro.query.forests import attribute_forest
from repro.query.hypergraph import Hypergraph


class TestFigure2:
    """The paper's Figure 2 forests for Q1 and Q2, regenerated."""

    def test_q1_forest_shape(self):
        forest = attribute_forest(catalog.q1_tall_flat())
        assert forest.roots == ["x1"]
        assert forest.parent["x2"] == "x1"
        assert forest.parent["x3"] == "x2"
        assert {forest.parent[x] for x in ("x4", "x5", "x6")} == {"x3"}

    def test_q2_forest_shape(self):
        forest = attribute_forest(catalog.q2_hierarchical())
        assert forest.roots == ["x1"]
        assert forest.parent["x2"] == "x1"
        assert forest.parent["x3"] == "x1"
        assert forest.parent["x4"] == "x3"
        assert forest.parent["x5"] == "x3"


class TestForestStructure:
    def test_non_hierarchical_raises(self):
        with pytest.raises(QueryError):
            attribute_forest(catalog.line3())

    def test_cartesian_product_has_k_trees(self):
        forest = attribute_forest(catalog.cartesian_product(3))
        assert forest.num_trees() == 3

    def test_star_is_single_tree(self):
        forest = attribute_forest(catalog.star_join(4))
        assert forest.roots == ["Z"]
        assert forest.num_trees() == 1

    def test_descendant_iff_edge_set_containment(self):
        q = catalog.q2_hierarchical()
        forest = attribute_forest(q)
        for x in q.attributes:
            for anc in forest.ancestors(x):
                assert q.edges_with(x) <= q.edges_with(anc)

    def test_tree_attrs_partition(self):
        q = catalog.cartesian_product(3)
        forest = attribute_forest(q)
        seen = set()
        for root in forest.roots:
            attrs = forest.tree_attrs(root)
            assert not (attrs & seen)
            seen |= attrs
        assert seen == q.attributes

    def test_tree_edges_cover_all(self):
        q = Hypergraph({"R1": ("A", "B"), "R2": ("C",)})
        forest = attribute_forest(q)
        all_edges = set()
        for root in forest.roots:
            all_edges |= forest.tree_edges(root)
        assert all_edges == {"R1", "R2"}

    def test_edge_leaf_on_reduced_query(self):
        q, _ = catalog.q2_r_hierarchical().reduce()
        forest = attribute_forest(q)
        for name in q.edge_names:
            leaf = forest.edge_leaf(name)
            # The edge is exactly the leaf plus its ancestors.
            assert set(forest.path_to_root(leaf)) == q.attrs_of(name)

    def test_equal_edge_sets_chain(self):
        """Attributes with identical E_x chain deterministically."""
        q = Hypergraph({"R1": ("A", "B", "C")})
        forest = attribute_forest(q)
        assert forest.num_trees() == 1
        # A chain of three: each node has at most one child.
        assert all(len(ch) <= 1 for ch in forest.children.values())

    def test_height(self):
        forest = attribute_forest(catalog.q1_tall_flat())
        assert forest.height() == 4  # x1-x2-x3-{x4,x5,x6}

    def test_path_to_root_starts_at_attr(self):
        forest = attribute_forest(catalog.q2_hierarchical())
        path = forest.path_to_root("x4")
        assert path[0] == "x4"
        assert path[-1] == "x1"
