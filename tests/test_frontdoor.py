"""Front-door tests: admission, routing, batching, plan shipping.

The serving tier's correctness story is in the conformance cells
(shipped replay bit-identical, tests/conformance/test_plan_ship.py);
these tests pin the door's *mechanisms*: canonical-form routing
affinity, deterministic load-shed, hot-key spill, partitioned-catalog
eligibility, the cross-replica plan index, and lifecycle semantics.
"""

from __future__ import annotations

import time

import pytest

from repro.data.generators import random_instance
from repro.data.relation import Relation
from repro.engine import Engine
from repro.errors import AdmissionRejected, EngineError, ParseError
from repro.query import catalog
from repro.serve import Frontdoor

P = 6

QUERIES = [
    "Q(A,B,C) :- R1(A,B), R2(B,C)",
    "Q(B,C,D) :- R2(B,C), R3(C,D)",
    "Q(A,B,C,D) :- R1(A,B), R2(B,C), R3(C,D)",
    "Q(A; count) :- R1(A,B), R2(B,C)",
    "Q(; count) :- R1(A,B), R2(B,C), R3(C,D)",
]


def _relations():
    inst = random_instance(catalog.line3(), 150, 10, seed=23)
    return dict(inst.relations)


def _door(**kwargs) -> Frontdoor:
    kwargs.setdefault("p", P)
    kwargs.setdefault("replicas", 3)
    kwargs.setdefault("backend", "serial")
    kwargs.setdefault("result_cache", False)
    door = Frontdoor(**kwargs)
    for name, rel in _relations().items():
        door.register(rel, name=name)
    return door


def _wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            return False
        time.sleep(0.005)
    return True


# ----------------------------------------------------------------------
# Routing + admission (autostart=False: queues stay full, counts are
# deterministic)
# ----------------------------------------------------------------------

def test_routing_affinity_same_query_same_replica():
    door = _door(autostart=False, shed_after=100)
    try:
        for _ in range(4):
            door.submit(QUERIES[0])
        pending = door.pending()
        assert sorted(pending) == [0, 0, 4], pending
    finally:
        door.close()


def test_routing_is_canonical_form_aware():
    door = _door(autostart=False, shed_after=100)
    try:
        door.submit("Q(A,B,C) :- R1(A,B), R2(B,C)")
        # Same canonical query, different atom order and variable names.
        door.submit("Q(X,Y,Z) :- R2(Y,Z), R1(X,Y)")
        assert sorted(door.pending()) == [0, 0, 2]
    finally:
        door.close()


def test_deterministic_shed():
    door = _door(autostart=False, shed_after=2, spill_after=100, replicas=1)
    try:
        door.submit(QUERIES[0])
        door.submit(QUERIES[0])
        with pytest.raises(AdmissionRejected, match="shed_after=2"):
            door.submit(QUERIES[0])
        s = door.stats()
        assert (s.admitted, s.shed) == (2, 1)
    finally:
        door.close()


def test_hot_key_spills_to_least_loaded():
    door = _door(autostart=False, shed_after=100, spill_after=1)
    try:
        for _ in range(3):
            door.submit(QUERIES[0])
        # Home takes the first; the next two spill to the other replicas.
        assert sorted(door.pending()) == [1, 1, 1]
        assert door.stats().spilled == 2
    finally:
        door.close()


def test_partitioned_catalog_gates_eligibility():
    door = Frontdoor(
        p=P, replicas=2, backend="serial", autostart=False, result_cache=False
    )
    try:
        rels = _relations()
        door.register(rels["R1"], replicas=[0])
        door.register(rels["R2"], replicas=[1])
        with pytest.raises(EngineError, match="no replica holds"):
            door.submit(QUERIES[0])
        door.register(rels["R2"], replicas=[0])
        door.submit(QUERIES[0])  # now replica 0 holds both
        assert door.pending() == (1, 0)
        assert door.placement()["R2"] == (0, 1)
    finally:
        door.close()


def test_register_rejects_bad_replica_index():
    door = _door(autostart=False)
    try:
        with pytest.raises(EngineError, match="no such replica"):
            door.register(Relation("X", ("A",), [(1,)]), replicas=[7])
    finally:
        door.close()


def test_submit_many_best_effort_embeds_shed():
    door = _door(autostart=False, shed_after=1, spill_after=100, replicas=1)
    try:
        futures = door.submit_many([QUERIES[0]] * 3, best_effort=True)
        assert len(futures) == 3
        assert [f.exception() is not None for f in futures[1:]] == [True, True]
        assert isinstance(futures[1].exception(), AdmissionRejected)
        with pytest.raises(AdmissionRejected):
            door.submit_many([QUERIES[0]], best_effort=False)
    finally:
        door.close()


def test_close_before_start_fails_queued_futures():
    door = _door(autostart=False)
    fut = door.submit(QUERIES[0])
    door.close()
    assert isinstance(fut.exception(), EngineError)
    with pytest.raises(EngineError, match="closed"):
        door.submit(QUERIES[0])


def test_parse_error_raises_at_the_door():
    door = _door(autostart=False)
    try:
        with pytest.raises(ParseError):
            door.submit("this is not a query (")
    finally:
        door.close()


# ----------------------------------------------------------------------
# End to end: serving + plan shipping
# ----------------------------------------------------------------------

def test_results_match_single_engine_reference():
    relations = _relations()
    ref = Engine(p=P, backend="serial", result_cache=False)
    for name, rel in relations.items():
        ref.register(rel, name=name)
    expected = {q: ref.execute(q) for q in QUERIES}

    with _door() as door:
        for q in QUERIES * 3:
            res = door.execute(q)
            assert res.ok
            want = expected[q]
            assert res.scalar == want.scalar
            assert res.rows() == want.rows()
            assert res.report.as_dict() == want.report.as_dict()


def test_one_cold_trace_warms_the_whole_tier():
    with _door(batch_window=0.0) as door:
        first = [f.result() for f in door.submit_many(QUERIES)]
        assert all(r.ok for r in first)
        # Every distinct query traced cold exactly once, tier-wide.
        assert not any(r.metrics.plan_replayed for r in first)

        # Each cold plan ships to the 2 peer replicas.
        want = len(QUERIES) * (door.replicas - 1)
        assert _wait_for(lambda: door.stats().plans_shipped >= want)
        s = door.stats()
        assert (s.plans_shipped, s.plans_rejected) == (want, 0)
        assert sum(e.stats().plans_installed for e in door.engines) == want

        # Zero re-traces: the warm tier replays everywhere, including on
        # replicas that never executed the query themselves.
        second = [f.result() for f in door.submit_many(QUERIES * 2)]
        assert all(r.ok and r.metrics.plan_replayed for r in second)
        assert door.stats().plans_shipped == want  # nothing re-shipped


def test_reregister_invalidates_plan_index():
    relations = _relations()
    with _door(batch_window=0.0) as door:
        door.submit_many(QUERIES[:1])
        want = door.replicas - 1
        assert _wait_for(lambda: door.stats().plans_shipped >= want)

        # New data generation: the index entry drops, the next cold
        # trace ships a fresh digest instead of being deduped away.
        door.register(relations["R1"], name="R1")
        res = door.execute(QUERIES[0])
        assert res.ok and not res.metrics.plan_replayed
        assert _wait_for(lambda: door.stats().plans_shipped >= 2 * want)


def test_frontdoor_counters_surface_in_registry():
    with _door() as door:
        for q in QUERIES:
            door.execute(q)
        text = door.metrics_text()
    assert "repro_frontdoor_admitted 5" in text
    assert "repro_frontdoor_replicas 3" in text
    assert 'repro_frontdoor_replica_seconds_count{replica="' in text
    # All three replicas share one registry: engine views merge by sum.
    assert "repro_engine_plans_installed" in text


def test_constructor_validation():
    with pytest.raises(EngineError, match="at least one replica"):
        Frontdoor(replicas=0)
    with pytest.raises(EngineError, match="shed_after"):
        Frontdoor(replicas=1, shed_after=0)
