"""Engine session behavior: caching, invalidation, batches, satellites."""

from __future__ import annotations

import pytest

from repro.core.line3 import is_line3
from repro.data.relation import Relation
from repro.data.stats import stats_fingerprint
from repro.engine import Engine, parse_query
from repro.errors import EngineError
from repro.query import catalog
from repro.ram.yannakakis import yannakakis as ram_yannakakis


def _basic_engine(p: int = 4) -> Engine:
    eng = Engine(p=p)
    eng.register(Relation("R1", ("A", "B"), [(i, i % 5) for i in range(40)]))
    eng.register(Relation("R2", ("B", "C"), [(i % 5, i % 7) for i in range(40)]))
    eng.register(Relation("R3", ("C", "D"), [(i % 7, i) for i in range(40)]))
    return eng


LINE3 = "Q(A,B,C,D) :- R1(A,B), R2(B,C), R3(C,D)"


def test_execute_matches_ram_oracle():
    eng = _basic_engine()
    res = eng.execute(LINE3)
    parsed = parse_query(LINE3)
    expected = set(ram_yannakakis(eng.instance_for(parsed)).rows)
    assert set(res.rows()) == expected
    assert res.metrics.algorithm == "line3"
    assert res.prepared.query_class == "ACYCLIC"


def test_plan_cache_hit_on_second_execution():
    eng = _basic_engine()
    first = eng.execute(LINE3)
    second = eng.execute(LINE3)
    assert not first.metrics.cache_hit
    assert second.metrics.cache_hit and second.metrics.plan_reused
    # Equivalent text (different attr/edge order) hits the same entry.
    third = eng.execute("Q(D,C,B,A) :- R3(C,D), R2(B,C), R1(A,B)")
    assert third.metrics.cache_hit
    stats = eng.stats()
    assert stats.queries == 3
    assert stats.prepares == 1
    assert stats.cache_hits == 2 and stats.cache_misses == 1


def test_same_structure_different_binding_is_a_distinct_plan():
    """R(A,B) vs R(B,A) share a canonical hypergraph but not a binding."""
    eng = Engine(p=3)
    eng.register(Relation("R", ("X", "Y"), [(1, 2), (1, 3), (2, 3)]))
    eng.register(Relation("S", ("X", "Y"), [(2, 9), (3, 8)]))
    fwd = eng.execute("Q(A,B,C) :- R(A,B), S(B,C)")
    rev = eng.execute("Q(A,B,C) :- R(B,A), S(B,C)")
    assert not rev.metrics.cache_hit  # must not serve fwd's entry
    assert set(fwd.rows()) != set(rev.rows())


def test_invalidation_on_stats_drift():
    eng = _basic_engine()
    eng.execute(LINE3)
    eng.register(Relation("R2", ("B", "C"), [(i % 3, i % 11) for i in range(80)]))
    res = eng.execute(LINE3)
    assert not res.metrics.cache_hit
    assert res.metrics.invalidated
    expected = set(ram_yannakakis(eng.instance_for(parse_query(LINE3))).rows)
    assert set(res.rows()) == expected
    assert eng.stats().invalidations == 1


def test_result_cache_replays_and_invalidates():
    eng = _basic_engine()
    first = eng.execute(LINE3)
    assert not first.metrics.result_cached
    hit = eng.execute(LINE3)
    assert hit.metrics.result_cached
    assert hit.report.as_dict() == first.report.as_dict()
    assert set(hit.rows()) == set(first.rows())
    assert eng.stats().result_hits == 1
    # Any registered update unservables the recording.
    eng.register(Relation("R3", ("C", "D"), [(i % 7, i + 1) for i in range(40)]))
    fresh = eng.execute(LINE3)
    assert not fresh.metrics.result_cached
    expected = set(ram_yannakakis(eng.instance_for(parse_query(LINE3))).rows)
    assert set(fresh.rows()) == expected


def test_result_cache_can_be_disabled():
    eng = Engine(p=3, result_cache=False)
    eng.register(Relation("R", ("A", "B"), [(0, 1), (1, 2)]))
    eng.execute("Q(A,B) :- R(A,B)")
    again = eng.execute("Q(A,B) :- R(A,B)")
    assert again.metrics.cache_hit and not again.metrics.result_cached
    assert eng.stats().result_hits == 0


def test_stale_plan_never_serves_stale_data():
    """Same-stats update: plan revalidates, but the *data* must be fresh."""
    eng = Engine(p=3)
    eng.register(Relation("R", ("A", "B"), [(0, 1), (1, 2)]))
    eng.register(Relation("S", ("B", "C"), [(1, 7), (2, 8)]))
    text = "Q(A,B,C) :- R(A,B), S(B,C)"
    first = eng.execute(text)
    assert set(first.rows()) == {(0, 1, 7), (1, 2, 8)}
    # Shifted values: identical sizes and degree profiles, different rows.
    eng.register(Relation("S", ("B", "C"), [(1, 70), (2, 80)]))
    second = eng.execute(text)
    assert second.metrics.plan_reused  # fingerprint unchanged
    assert set(second.rows()) == {(0, 1, 70), (1, 2, 80)}


def test_prepare_yannakakis_prices_a_plan():
    eng = _basic_engine()
    entry = eng.prepare(LINE3, algorithm="yannakakis")
    assert entry.algorithm == "yannakakis"
    assert entry.plan is not None and len(entry.plan_order) == 3
    assert entry.plan_quality is not None
    assert entry.plan_quality["best"] <= entry.plan_quality["worst"]
    res = eng.execute(LINE3, algorithm="yannakakis")
    assert res.metrics.cache_hit  # prepare seeded the cache
    expected = set(ram_yannakakis(eng.instance_for(parse_query(LINE3))).rows)
    assert set(res.rows()) == expected


def test_plan_quality_surfaced_in_stats():
    eng = _basic_engine()
    eng.execute(LINE3)
    stats = eng.stats()
    assert stats.per_query[0].plan_quality is not None
    gaps = stats.plan_gaps()
    assert LINE3 in gaps
    assert gaps[LINE3]["gap"] >= 1.0
    assert "plan gap" in stats.summary()


def test_aggregate_and_scalar_paths():
    eng = _basic_engine()
    grouped = eng.execute("Q(B; count) :- R1(A,B), R2(B,C)")
    assert grouped.relation is not None and grouped.scalar is None
    total = eng.execute("Q(; count) :- R1(A,B), R2(B,C)")
    assert total.relation is None
    assert total.scalar == sum(
        w for _row, w in zip(grouped.relation.rows, grouped.relation.annotations)
    )


def test_submit_batch_serial_and_threaded_agree():
    eng = _basic_engine()
    workload = [
        LINE3,
        "Q(B; count) :- R1(A,B), R2(B,C)",
        "Q(A,B,C) :- R1(A,B), R2(B,C)",
        LINE3,
    ]
    serial = eng.submit_batch(workload)
    threaded = eng.submit_batch(workload, threads=4)
    assert serial.stats.queries == threaded.stats.queries == 4
    for a, b in zip(serial.results, threaded.results):
        assert set(a.rows()) == set(b.rows())
        assert a.report.as_dict() == b.report.as_dict()
    # Second batch is fully warm.
    assert threaded.stats.cache_hits == 4
    assert all(r.metrics.plan_reused for r in threaded.results)


def test_submit_batch_empty_rejected():
    with pytest.raises(EngineError):
        _basic_engine().submit_batch([])


def test_unknown_relation_suggests_registered_name():
    eng = _basic_engine()
    with pytest.raises(EngineError, match="R1"):
        eng.execute("Q(A,B) :- R1x(A,B)")


def test_unknown_relation_on_empty_catalog_says_so():
    # Near-miss suggestions need candidates; with nothing registered the
    # message must say *why* there are none, not list an empty set.
    with pytest.raises(EngineError, match="catalog is empty"):
        Engine(p=4).execute("Q(A,B) :- R1(A,B), R2(B,C)")


def test_arity_mismatch_rejected():
    eng = _basic_engine()
    with pytest.raises(EngineError, match="arity"):
        eng.execute("Q(A,B,C) :- R1(A,B,C)")


def test_self_join_binds_one_relation_twice():
    eng = Engine(p=3)
    eng.register(Relation("E", ("X", "Y"), [(1, 2), (2, 3), (3, 4)]))
    res = eng.execute("Q(A,B,C) :- E(A,B), E(B,C)")
    assert set(res.rows()) == {(1, 2, 3), (2, 3, 4)}


def test_catalog_queries_execute_by_name():
    eng = _basic_engine()
    res = eng.execute("line3")
    direct = eng.execute(LINE3)
    assert set(res.rows()) == set(direct.rows())


# ----------------------------------------------------------------------
# Satellites: public is_line3 + stats fingerprint
# ----------------------------------------------------------------------
def test_is_line3_public_and_deprecated_alias():
    assert is_line3(catalog.line3()) == ("R1", "R2", "R3")
    assert is_line3(catalog.triangle()) is None
    from repro.core import line3 as line3_module

    with pytest.warns(DeprecationWarning):
        assert line3_module._is_line3(catalog.line3()) == ("R1", "R2", "R3")
    from repro.core import is_line3 as exported

    assert exported is is_line3


def test_stats_fingerprint_tracks_planning_stats():
    eng = _basic_engine()
    parsed = parse_query(LINE3)
    base = stats_fingerprint(eng.instance_for(parsed))
    assert stats_fingerprint(eng.instance_for(parsed)) == base
    # Value-shifted same-stats data keeps the fingerprint...
    eng.register(Relation("R3", ("C", "D"), [(i % 7, i + 1000) for i in range(40)]))
    assert stats_fingerprint(eng.instance_for(parsed)) == base
    # ...while a degree-profile change moves it.
    eng.register(Relation("R3", ("C", "D"), [(0, i) for i in range(40)]))
    assert stats_fingerprint(eng.instance_for(parsed)) != base
