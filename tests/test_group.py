"""Tests for server groups: exchange semantics, subgroups, and families."""

import pytest

from repro.errors import MPCError
from repro.mpc.cluster import Cluster
from repro.mpc.group import Group


class TestExchange:
    def test_delivery_and_counting(self):
        cl = Cluster(3)
        g = cl.root_group()
        inboxes = g.exchange([[(1, "a")], [(2, "b")], [(0, "c")]], "x")
        assert inboxes == [["c"], ["a"], ["b"]]
        assert cl.snapshot().totals == (1, 1, 1)

    def test_self_messages_free_by_default(self):
        cl = Cluster(2)
        g = cl.root_group()
        g.exchange([[(0, "keep")], []], "x")
        assert cl.snapshot().load == 0

    def test_self_messages_counted_when_asked(self):
        cl = Cluster(2)
        g = cl.root_group()
        g.exchange([[(0, "keep")], []], "x", count_self=True)
        assert cl.snapshot().totals == (1, 0)

    def test_bad_destination(self):
        cl = Cluster(2)
        g = cl.root_group()
        with pytest.raises(MPCError):
            g.exchange([[(7, "a")], []], "x")

    def test_outbox_arity_checked(self):
        cl = Cluster(2)
        g = cl.root_group()
        with pytest.raises(MPCError):
            g.exchange([[]], "x")


class TestRoutingHelpers:
    def test_hash_route_deterministic(self):
        cl = Cluster(4)
        g = cl.root_group()
        parts = [[("k%d" % i, i)] for i in range(4)]
        a = g.hash_route(parts, lambda t: t[0], "x")
        cl2 = Cluster(4)
        b = cl2.root_group().hash_route(parts, lambda t: t[0], "x")
        assert a == b

    def test_hash_route_groups_equal_keys(self):
        cl = Cluster(4)
        g = cl.root_group()
        parts = [[("k", i)] for i in range(4)]
        routed = g.hash_route(parts, lambda t: t[0], "x")
        non_empty = [p for p in routed if p]
        assert len(non_empty) == 1 and len(non_empty[0]) == 4

    def test_broadcast_costs_everyone(self):
        cl = Cluster(3)
        g = cl.root_group()
        g.broadcast(["a", "b"], "x")
        # src keeps its copy free; the other two servers pay 2 each.
        assert cl.snapshot().totals == (0, 2, 2)

    def test_gather(self):
        cl = Cluster(3)
        g = cl.root_group()
        got = g.gather([["a"], ["b"], ["c"]], "x", dst=1)
        assert sorted(got) == ["a", "b", "c"]
        assert cl.snapshot().totals == (0, 2, 0)

    def test_scatter_even(self):
        cl = Cluster(3)
        g = cl.root_group()
        parts = g.scatter_even(list(range(7)), "x")
        assert [len(p) for p in parts] == [3, 2, 2]


class TestSubgroups:
    def test_subgroup_maps_indices(self):
        cl = Cluster(6)
        g = cl.root_group()
        sub = g.subgroup([2, 4])
        sub.exchange([[(1, "z")], []], "x")
        assert cl.snapshot().totals == (0, 0, 0, 0, 1, 0)

    def test_slice(self):
        cl = Cluster(6)
        g = cl.root_group()
        assert g.slice(1, 4).members == ((1, 2, 3),)

    def test_empty_subgroup_raises(self):
        cl = Cluster(2)
        with pytest.raises(MPCError):
            cl.root_group().subgroup([])

    def test_out_of_range_subgroup(self):
        cl = Cluster(2)
        with pytest.raises(MPCError):
            cl.root_group().subgroup([5])


class TestFamilies:
    def test_family_tallies_all_members(self):
        cl = Cluster(4)
        fam = Group(cl, [(0, 1), (2, 3)])
        fam.exchange([[(1, "m")], []], "x")
        # Local server 1 of both members receives one unit.
        assert cl.snapshot().totals == (0, 1, 0, 1)

    def test_member_size_mismatch(self):
        cl = Cluster(4)
        with pytest.raises(MPCError):
            Group(cl, [(0, 1), (2,)])

    def test_grid_line_groups_2x2(self):
        cl = Cluster(4)
        g = cl.root_group()
        fams = g.grid_line_groups([2, 2])
        assert len(fams) == 2
        # Dim 0 lines: columns of the row-major 2x2 grid.
        assert set(fams[0].members) == {(0, 2), (1, 3)}
        # Dim 1 lines: rows.
        assert set(fams[1].members) == {(0, 1), (2, 3)}

    def test_grid_too_big(self):
        cl = Cluster(3)
        with pytest.raises(MPCError):
            cl.root_group().grid_line_groups([2, 2])

    def test_grid_on_family_multiplies_members(self):
        cl = Cluster(8)
        fam = Group(cl, [(0, 1, 2, 3), (4, 5, 6, 7)])
        lines = fam.grid_line_groups([2, 2])
        assert len(lines[0].members) == 4  # 2 members x 2 lines each

    def test_subgroup_of_family(self):
        cl = Cluster(4)
        fam = Group(cl, [(0, 1), (2, 3)])
        sub = fam.subgroup([1])
        assert sub.members == ((1,), (3,))
