"""Tests for the MPC Yannakakis baseline and join plans."""

import pytest

from repro.core.yannakakis import default_plan, left_deep_plan, yannakakis_mpc
from repro.data.generators import (
    add_dangling,
    line_trap_instance,
    matching_instance,
    random_instance,
)
from repro.errors import QueryError
from repro.query import catalog
from tests.conftest import assert_matches_oracle


class TestCorrectness:
    @pytest.mark.parametrize(
        "name", ["binary", "line3", "line4", "star3", "fork", "broom", "q1_tall_flat"]
    )
    def test_random_instances(self, name):
        q = catalog.CATALOG[name]
        inst = random_instance(q, 60, 6, seed=31)
        assert_matches_oracle(inst, yannakakis_mpc)

    def test_with_dangling_tuples(self):
        inst = add_dangling(matching_instance(catalog.line3(), 50), 20, seed=32)
        assert_matches_oracle(inst, yannakakis_mpc)

    def test_trap_instance(self):
        inst = line_trap_instance(3, 900, 9000)
        assert_matches_oracle(inst, yannakakis_mpc)


class TestPlans:
    def test_default_plan_covers_all_relations(self):
        plan = default_plan(catalog.broom_join())

        def leaves(node):
            if isinstance(node, str):
                return [node]
            return leaves(node[0]) + leaves(node[1])

        assert sorted(leaves(plan)) == sorted(catalog.broom_join().edge_names)

    def test_left_deep_plan(self):
        plan = left_deep_plan(["R1", "R2", "R3"])
        assert plan == (("R1", "R2"), "R3")

    def test_empty_plan_raises(self):
        with pytest.raises(QueryError):
            left_deep_plan([])

    def test_plan_must_cover_query(self):
        inst = matching_instance(catalog.line3(), 5)
        from repro.mpc import Cluster, distribute_instance

        cl = Cluster(2)
        g = cl.root_group()
        with pytest.raises(QueryError):
            yannakakis_mpc(
                g, inst.query, distribute_instance(inst, g), plan=("R1", "R2")
            )

    def test_both_orders_agree(self):
        inst = line_trap_instance(3, 600, 3000)
        fwd = left_deep_plan(["R1", "R2", "R3"])
        bwd = ("R1", ("R2", "R3"))
        r1 = assert_matches_oracle(inst, yannakakis_mpc, plan=fwd)
        r2 = assert_matches_oracle(inst, yannakakis_mpc, plan=bwd)
        assert r1.load > 0 and r2.load > 0

    def test_join_order_matters_in_mpc(self):
        """Section 4.1 / Figure 3: on the trap instance the plan shuffling
        the OUT-sized intermediate pays substantially more."""
        inst = line_trap_instance(3, 1500, 45000, direction="forward")
        bad = assert_matches_oracle(
            inst, yannakakis_mpc, p=8, plan=left_deep_plan(["R1", "R2", "R3"])
        )
        good = assert_matches_oracle(
            inst, yannakakis_mpc, p=8, plan=("R1", ("R2", "R3"))
        )
        assert bad.load > 2 * good.load

    def test_doubled_trap_defeats_both_orders(self):
        """Figure 3 (full): no single order is good on the doubled trap."""
        inst = line_trap_instance(3, 1500, 22000, doubled=True)
        loads = []
        for plan in (left_deep_plan(["R1", "R2", "R3"]), ("R1", ("R2", "R3"))):
            rep = assert_matches_oracle(inst, yannakakis_mpc, p=8, plan=plan)
            loads.append(rep.load)
        out_over_p = 2 * 22000 / 8
        assert min(loads) > 0.5 * out_over_p


class TestReduceFirst:
    def test_skipping_reducer_still_correct_on_clean_input(self):
        inst = matching_instance(catalog.line3(), 30)
        assert_matches_oracle(inst, yannakakis_mpc, reduce_first=False)
