"""Tests for the paper's lower-bound instance constructions."""

import math

import pytest

from repro.data.hard_instances import (
    embed_line3,
    line3_random_hard,
    rhier_extremal,
    triangle_random_hard,
    yannakakis_trap,
    yannakakis_trap_doubled,
)
from repro.errors import InstanceError
from repro.query import catalog
from repro.ram.joins import multi_join
from repro.ram.yannakakis import join_size, subset_join_sizes


class TestYannakakisTrap:
    def test_shapes(self):
        inst = yannakakis_trap(1500, 15000)
        assert abs(join_size(inst) - 15000) / 15000 < 0.2

    def test_doubled_symmetric(self):
        inst = yannakakis_trap_doubled(3000, 30000)
        from repro.ram.joins import natural_join

        r12 = natural_join(inst["R1"], inst["R2"])
        r23 = natural_join(inst["R2"], inst["R3"])
        # Figure 3: both intermediates are now OUT-scale.
        assert len(r12) > join_size(inst) / 4
        assert len(r23) > join_size(inst) / 4


class TestLine3RandomHard:
    def test_in_out_close_to_targets(self):
        inst = line3_random_hard(3000, 12000, seed=0)
        assert abs(inst.input_size - 3000) / 3000 < 0.25
        assert abs(join_size(inst) - 12000) / 12000 < 0.35

    def test_group_structure(self):
        """Each B value owns exactly tau R1-tuples (the proof's groups)."""
        inst = line3_random_hard(900, 2700, seed=1)
        n = 900 // 3
        tau = max(1, round(math.sqrt(2700 / n)))
        degs = inst["R1"].degrees(("B",))
        assert set(degs.values()) == {tau}

    def test_out_below_in_rejected(self):
        with pytest.raises(InstanceError):
            line3_random_hard(3000, 10, seed=0)

    def test_deterministic(self):
        a = line3_random_hard(600, 1800, seed=5)
        b = line3_random_hard(600, 1800, seed=5)
        assert set(a["R2"].rows) == set(b["R2"].rows)


class TestTriangleRandomHard:
    def test_sizes(self):
        inst = triangle_random_hard(3000, 9000, seed=0)
        assert abs(inst.input_size - 3000) / 3000 < 0.25

    def test_output_close_to_target(self):
        inst = triangle_random_hard(1500, 4500, seed=2)
        full = multi_join([inst.relations[n] for n in inst.query.edge_names])
        assert abs(len(full) - 4500) / 4500 < 0.4

    def test_agm_range_enforced(self):
        with pytest.raises(InstanceError):
            triangle_random_hard(300, 10**9, seed=0)

    def test_bipartite_sides_complete(self):
        inst = triangle_random_hard(900, 2700, seed=1)
        n = 900 // 3
        tau = max(1, round(2700 / n))
        assert len(inst["R2"]) == tau * (n // tau)
        assert len(inst["R3"]) == tau * (n // tau)


class TestRhierExtremal:
    def test_theorem4_tightness_structure(self):
        """|join of C_{k*-1}| = IN^{k*-1} and |join of C_{k*}| = OUT."""
        q = catalog.cartesian_product(3)
        in_size, out_size = 50, 50 * 50 * 20
        inst = rhier_extremal(q, in_size, out_size)
        sizes = subset_join_sizes(inst)
        values = set(sizes.values())
        assert in_size ** 2 in values
        assert out_size in values or join_size(inst) in values

    def test_out_too_large_raises(self):
        with pytest.raises(InstanceError):
            rhier_extremal(catalog.cartesian_product(2), 10, 10**9)

    def test_star_query(self):
        inst = rhier_extremal(catalog.star_join(3), 40, 1600)
        assert join_size(inst) >= 1600 * 0.5


class TestEmbedLine3:
    @pytest.mark.parametrize("name", ["fork", "broom", "two_ears", "line4"])
    def test_embedding_preserves_line3_results(self, name):
        q = catalog.CATALOG[name]
        inst = embed_line3(q, 600, 1800, seed=3)
        hard = line3_random_hard(600, 1800, seed=3)
        # Theorem 8: the embedded join's output size equals the line-3's.
        assert join_size(inst) == join_size(hard)

    def test_r_hierarchical_rejected(self):
        with pytest.raises(InstanceError):
            embed_line3(catalog.star_join(3), 600, 1800)

    def test_input_stays_linear(self):
        q = catalog.broom_join()
        inst = embed_line3(q, 900, 2700, seed=4)
        assert inst.input_size < 3 * 900
