"""Shipped-plan conformance: installed replay == local trace, per backend.

Plan shipping (:mod:`repro.plan.ship`, DESIGN.md 11) moves a traced plan
from the replica that paid the cold trace to peers that did not.  The
contract has two halves:

* replaying a *shipped* plan is bit-identical — outputs and every
  LoadReport field — to the sender's cold execution, on every registered
  backend, with **zero re-traces** on the receiver (its first execution
  is already a plan replay);
* a corrupted envelope or a stale fingerprint is rejected *atomically*
  (typed :class:`~repro.errors.PlanShipError`, no half-installed state),
  after which the receiver falls back to a cold trace that is itself
  bit-identical to a never-shipped engine's.
"""

from __future__ import annotations

import pytest

from repro.data.generators import line_trap_instance, random_instance
from repro.engine import Engine
from repro.errors import PlanShipError
from repro.mpc.backends import available_backends
from repro.plan.ship import plan_digest
from repro.query import catalog

BACKENDS = available_backends()

P = 6


def _payload(res):
    if res.metrics.kind == "join":
        return {
            "attrs": res.relation.attrs,
            "parts": [list(part) for part in res.relation.parts],
        }
    return {
        "scalar": res.scalar,
        "rows": None if res.relation is None else list(res.relation.rows),
        "annotations": (
            None if res.relation is None
            else list(res.relation.annotations or ())
        ),
    }


def _engine(relations, backend: str) -> Engine:
    # result_cache off so the receiver's first execution exercises the
    # installed *trace* (plan replay), not recording-serving.
    engine = Engine(p=P, backend=backend, result_cache=False)
    for name, rel in relations.items():
        engine.register(rel, name=name)
    return engine


def _binary():
    q = catalog.binary_join()
    inst = random_instance(q, 180, 20, seed=7)
    return dict(inst.relations), "Q(A,B,C) :- R1(A,B), R2(B,C)"


def _line3_trap():
    inst = line_trap_instance(3, 200, 900, doubled=True)
    return (
        dict(inst.relations),
        "Q(A,B,C,D) :- R1(A,B), R2(B,C), R3(C,D)",
    )


def _groupby():
    q = catalog.line3()
    inst = random_instance(q, 150, 10, seed=23)
    return dict(inst.relations), "Q(B; count) :- R1(A,B), R2(B,C), R3(C,D)"


def _total():
    q = catalog.line3()
    inst = random_instance(q, 150, 10, seed=23)
    return dict(inst.relations), "Q(; count) :- R1(A,B), R2(B,C), R3(C,D)"


CELLS = {
    "binary/full": _binary,
    "line3/trap": _line3_trap,
    "aggregate/groupby": _groupby,
    "aggregate/total": _total,
}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("cell", sorted(CELLS), ids=sorted(CELLS))
def test_shipped_replay_bit_identical(cell, backend):
    relations, text = CELLS[cell]()
    sender = _engine(relations, backend)
    cold = sender.execute(text)
    blob = sender.export_plan(text)

    receiver = _engine(relations, backend)
    assert receiver.install_plan(blob) == plan_digest(blob)
    assert receiver.stats().plans_installed == 1

    warm = receiver.execute(text)
    assert warm.metrics.plan_replayed, "receiver re-traced a shipped plan"
    assert not warm.metrics.result_cached
    assert _payload(warm) == _payload(cold)
    assert warm.report.as_dict() == cold.report.as_dict()
    assert warm.scalar == cold.scalar


@pytest.mark.parametrize("backend", BACKENDS)
def test_corrupted_ship_rejected_then_cold_trace(backend):
    relations, text = _binary()
    sender = _engine(relations, backend)
    cold = sender.execute(text)
    blob = sender.export_plan(text)
    corrupt = blob[:-1] + bytes([blob[-1] ^ 0xFF])

    receiver = _engine(relations, backend)
    with pytest.raises(PlanShipError):
        receiver.install_plan(corrupt)
    assert receiver.stats().plans_installed == 0

    res = receiver.execute(text)  # no half-install: traces cold, correctly
    assert not res.metrics.plan_replayed
    assert _payload(res) == _payload(cold)
    assert res.report.as_dict() == cold.report.as_dict()


@pytest.mark.parametrize("backend", BACKENDS)
def test_stale_fingerprint_ship_rejected_then_cold_trace(backend):
    relations, text = _binary()
    sender = _engine(relations, backend)
    sender.execute(text)
    blob = sender.export_plan(text)

    # Same schema, different data: content digests (and stats) disagree.
    q = catalog.binary_join()
    other = dict(random_instance(q, 90, 9, seed=99).relations)
    receiver = _engine(other, backend)
    with pytest.raises(PlanShipError):
        receiver.install_plan(blob)
    assert receiver.stats().plans_installed == 0

    ref = _engine(other, backend).execute(text)
    res = receiver.execute(text)
    assert not res.metrics.plan_replayed
    assert _payload(res) == _payload(ref)
    assert res.report.as_dict() == ref.report.as_dict()
