"""Differential conformance: every backend vs the serial reference.

The central invariant of the backend abstraction (DESIGN.md "Execution
backends"): a backend may change *where* per-server work runs, never *what*
the simulated cluster computes or charges.  Outputs must match bit for bit
— same rows, same order, same per-server parts — and so must every
:class:`~repro.mpc.cluster.LoadReport` field.
"""

from __future__ import annotations

import pytest

from tests.conformance.conftest import (
    CHALLENGERS,
    GRID,
    REFERENCE,
    ledger_diff,
    reference_run,
)

CELL_IDS = [c.name for c in GRID]


@pytest.mark.parametrize("cell", GRID, ids=CELL_IDS)
def test_reference_is_deterministic(cell):
    """The serial reference must replay itself exactly (no hidden state)."""
    first = reference_run(cell)
    again = cell.run(REFERENCE)
    assert again[0] == first[0], f"serial outputs not reproducible: {cell.name}"
    assert again[1] == first[1], (
        f"serial ledger not reproducible: {cell.name}\n"
        + ledger_diff(first[1], again[1])
    )


@pytest.mark.parametrize("cell", GRID, ids=CELL_IDS)
@pytest.mark.parametrize("challenger", CHALLENGERS)
def test_backend_matches_reference(cell, challenger):
    """Outputs and the full ledger are bit-identical to serial."""
    ref_out, ref_ledger = reference_run(cell)
    got_out, got_ledger = cell.run(challenger)
    assert got_out == ref_out, (
        f"backend {challenger!r} changed outputs on {cell.name}"
    )
    assert got_ledger == ref_ledger, (
        f"backend {challenger!r} changed the ledger on {cell.name}:\n"
        + ledger_diff(ref_ledger, got_ledger)
    )


@pytest.mark.parametrize("cell", GRID[:4], ids=CELL_IDS[:4])
@pytest.mark.parametrize("challenger", CHALLENGERS)
def test_backend_replay_is_deterministic(cell, challenger):
    """Back-to-back runs on a challenger agree with each other.

    The second run exercises any warm-path shortcuts a backend keeps
    (worker-local memoization in the multiprocess backend), so this guards
    the cold and warm paths against diverging.
    """
    first = cell.run(challenger)
    second = cell.run(challenger)
    assert second[0] == first[0]
    assert second[1] == first[1], ledger_diff(first[1], second[1])


@pytest.mark.parametrize("cell", GRID[:4], ids=CELL_IDS[:4])
def test_chaos_cells_actually_injected_faults(cell):
    """The chaos grid cells must not pass vacuously.

    The shared ``chaos`` backend injects at its default rate, which on a
    short run could legitimately draw zero faults.  This cell re-runs
    under a private high-rate injector and asserts both halves of the
    recovery oracle: faults were really injected *and* outputs/ledger
    still match the fault-free serial reference bit for bit.
    """
    from repro.mpc.backends import FaultInjectingBackend, MultiprocessBackend

    ref_out, ref_ledger = reference_run(cell)
    chaos = FaultInjectingBackend(
        inner=MultiprocessBackend(
            workers=2, round_timeout=1.0, backoff_base=0.0
        ),
        seed=11, rate=0.7, kinds=("kill", "corrupt", "drop"),
    )
    try:
        got_out, got_ledger = cell.run(chaos)
        stats = chaos.fault_stats()
        injected = sum(v for k, v in stats.items() if k.startswith("injected_"))
        assert injected > 0, "no faults drawn — the chaos cell proved nothing"
        assert got_out == ref_out, f"chaos changed outputs on {cell.name}"
        assert got_ledger == ref_ledger, (
            f"chaos changed the ledger on {cell.name}:\n"
            + ledger_diff(ref_ledger, got_ledger)
        )
    finally:
        chaos.close()


@pytest.mark.parametrize("challenger", CHALLENGERS)
def test_every_ledger_field_is_compared(challenger):
    """Meta-test: as_dict() exposes every LoadReport field the issue names.

    Guards against a future field being added to LoadReport but silently
    dropped from the differential comparison.
    """
    _out, ledger = reference_run(GRID[0])
    for field in ("load", "max_step_load", "steps", "by_label", "totals", "p"):
        assert field in ledger, f"LoadReport.as_dict() lost field {field!r}"
