"""Plan-replay conformance: fused == unfused == re-drive, per backend.

The physical-plan layer adds a third way to execute a warm query (next to
full re-drive and result-cache serving): replay the traced op schedule
through the Executor, with worker-local ops batched into fused
``run_ops`` requests.  The contract mirrors the substrate's cache rules
(DESIGN.md 3.4 / 7): replay may change wall-clock and backend round-trip
counts **only** — outputs and every LoadReport field must be
bit-identical to the cold execution, on every registered backend, fused
or not.

A hypothesis layer drives the same invariant over randomized instances,
so the grid's fixed seeds are not the only shapes pinned down.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.generators import line_trap_instance, random_instance
from repro.data.relation import Relation
from repro.engine import Engine
from repro.mpc.backends import available_backends
from repro.query import catalog

BACKENDS = available_backends()

P = 6


def _payload(res):
    if res.metrics.kind == "join":
        return {
            "attrs": res.relation.attrs,
            "parts": [list(part) for part in res.relation.parts],
        }
    return {
        "scalar": res.scalar,
        "rows": None if res.relation is None else list(res.relation.rows),
        "annotations": (
            None if res.relation is None
            else list(res.relation.annotations or ())
        ),
    }


def _engine(relations: dict[str, Relation], backend: str, **kwargs) -> Engine:
    engine = Engine(p=P, backend=backend, result_cache=False, **kwargs)
    for name, rel in relations.items():
        engine.register(rel, name=name)
    return engine


def _check_replay_modes(relations: dict[str, Relation], text: str, backend: str):
    """Cold vs fused-replay vs unfused-replay vs re-drive: all identical."""
    fused = _engine(relations, backend)
    unfused = _engine(relations, backend, fusion=False)
    redrive = _engine(relations, backend, plan_replay=False)

    cold = fused.execute(text)
    ref_payload, ref_ledger = _payload(cold), cold.report.as_dict()

    unfused_cold = unfused.execute(text)
    assert _payload(unfused_cold) == ref_payload
    assert unfused_cold.report.as_dict() == ref_ledger

    warm_fused = fused.execute(text)
    warm_unfused = unfused.execute(text)
    warm_redrive = redrive.execute(redrive.execute(text).metrics.text)

    assert warm_fused.metrics.plan_replayed
    assert warm_unfused.metrics.plan_replayed
    assert not warm_redrive.metrics.plan_replayed

    for mode, res in (
        ("fused", warm_fused),
        ("unfused", warm_unfused),
        ("re-drive", warm_redrive),
    ):
        assert _payload(res) == ref_payload, f"{mode} outputs differ"
        assert res.report.as_dict() == ref_ledger, f"{mode} ledger differs"

    # The round-trip reduction the fusion pass exists for.  Chaos is
    # exempt from this one *performance* assert only: injected faults add
    # recovery round-trips that can deterministically swamp the fusion
    # saving.  Its correctness asserts above still bind.
    if warm_fused.metrics.map_ops > 1 and backend != "chaos":
        assert (
            warm_fused.metrics.backend_requests
            < warm_unfused.metrics.backend_requests
        )
    return warm_fused


# ----------------------------------------------------------------------
# Grid cells (fixed seeds, both backends)
# ----------------------------------------------------------------------

def _binary():
    q = catalog.binary_join()
    inst = random_instance(q, 180, 20, seed=7)
    return dict(inst.relations), "Q(A,B,C) :- R1(A,B), R2(B,C)"


def _line3_trap():
    inst = line_trap_instance(3, 200, 900, doubled=True)
    return (
        dict(inst.relations),
        "Q(A,B,C,D) :- R1(A,B), R2(B,C), R3(C,D)",
    )


def _fork():
    q = catalog.fork_join()
    inst = random_instance(q, 120, 8, seed=17)
    return (
        dict(inst.relations),
        "Q(A,B,C,D,E) :- F1(A,B), F2(B,C), F3(C,D), F4(C,E)"
        .replace("F", "R"),
    )


def _groupby():
    q = catalog.line3()
    inst = random_instance(q, 150, 10, seed=23)
    return dict(inst.relations), "Q(B; count) :- R1(A,B), R2(B,C), R3(C,D)"


CELLS = {
    "binary/full": _binary,
    "line3/trap": _line3_trap,
    "acyclic/fork": _fork,
    "aggregate/groupby": _groupby,
}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("cell", sorted(CELLS), ids=sorted(CELLS))
def test_replay_modes_identical_on_grid(cell, backend):
    relations, text = CELLS[cell]()
    _check_replay_modes(relations, text, backend)


# ----------------------------------------------------------------------
# Hypothesis layer: randomized instances, serial + every challenger
# ----------------------------------------------------------------------

rows_st = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 6)), min_size=0, max_size=60
)


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=12, deadline=None)
@given(rows1=rows_st, rows2=rows_st)
def test_replay_modes_identical_on_random_instances(backend, rows1, rows2):
    relations = {
        "R1": Relation("R1", ("A", "B"), rows1),
        "R2": Relation("R2", ("B", "C"), [(b, c) for c, b in rows2]),
    }
    _check_replay_modes(relations, "Q(A,B,C) :- R1(A,B), R2(B,C)", backend)
